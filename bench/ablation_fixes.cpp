// ABL — ablation of the two §4 fixes.
//
// The redesign made two independent changes:
//   (1) the starter interposes the wrapper and reads its result file
//       instead of the JVM exit code;
//   (2) the I/O library converts non-contractual errors into escaping
//       Java Errors instead of generic IOExceptions.
// This bench runs the 2x2 grid with scope routing enabled throughout, on
// a pool with both JVM-level faults (misconfigured installs) and
// I/O-level faults (a home-filesystem outage). Each cell reports how many
// jobs ended with the user holding an incidental error — showing that
// *both* fixes are necessary.
#include <cstdio>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

pool::PoolReport run(jvm::WrapMode wrap, jvm::IoDiscipline io,
                     std::uint64_t seed) {
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.wrap = wrap;
  config.discipline.io = io;
  for (int i = 0; i < 4; ++i) {
    config.machines.push_back(pool::MachineSpec::good("good" + std::to_string(i)));
  }
  config.machines.push_back(pool::MachineSpec::misconfigured_java("badjvm0"));

  pool::Pool pool(config);
  pool::stage_workload_inputs(pool);
  Rng rng(seed);
  pool::WorkloadOptions options;
  options.count = 60;
  options.mean_compute = SimTime::sec(15);
  options.remote_io_fraction = 0.5;  // half the jobs touch /home via proxy
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  pool.boot();
  // An I/O-level fault window: /home offline for three minutes.
  pool.engine().schedule(SimTime::minutes(2), [&pool] {
    pool.submit_fs().set_mount_online("/home", false);
  });
  pool.engine().schedule(SimTime::minutes(5), [&pool] {
    pool.submit_fs().set_mount_online("/home", true);
  });
  pool.run_until_done(SimTime::hours(12));
  return pool.report();
}

}  // namespace

int main() {
  std::printf(
      "ABL: ablation of the two §4 fixes (scope routing always on)\n"
      "60 jobs, 4 good + 1 misconfigured machine, 3-minute /home outage\n\n");
  std::printf("%-34s %7s %9s %9s\n", "configuration", "incid", "attempts",
              "makespan");

  struct Cell {
    const char* label;
    jvm::WrapMode wrap;
    jvm::IoDiscipline io;
    int incid = 0;
  } cells[] = {
      {"bare exit code + generic IO", jvm::WrapMode::kBare,
       jvm::IoDiscipline::kGeneric, 0},
      {"bare exit code + concise IO", jvm::WrapMode::kBare,
       jvm::IoDiscipline::kConcise, 0},
      {"wrapper + generic IO", jvm::WrapMode::kWrapped,
       jvm::IoDiscipline::kGeneric, 0},
      {"wrapper + concise IO (the paper)", jvm::WrapMode::kWrapped,
       jvm::IoDiscipline::kConcise, 0},
  };
  for (Cell& cell : cells) {
    const pool::PoolReport report = run(cell.wrap, cell.io, 17);
    cell.incid = report.user_incidental_exposures;
    std::printf("%-34s %7d %9llu %8.0fs\n", cell.label, cell.incid,
                static_cast<unsigned long long>(report.total_attempts),
                report.makespan_seconds);
  }

  std::printf(
      "\nshape check: only the full redesign reaches zero exposures;\n"
      "each fix alone leaves its own class of laundered errors:\n"
      "  bare+concise leaves JVM- and IO-level scopes unread (exit 1)\n"
      "  wrapper+generic leaves IO errors laundered to program scope\n");
  const bool ok = cells[0].incid > 0 && cells[1].incid > 0 &&
                  cells[2].incid > 0 && cells[3].incid == 0;
  std::printf("  verdict: %s\n",
              ok ? "REPRODUCES the expected ablation shape"
                 : "DOES NOT match the expected shape");
  return ok ? 0 : 1;
}
