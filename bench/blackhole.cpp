// EXP-BH — reproduces the §5 black-hole discussion: "a small number of
// misconfigured machines in our Condor pool attracted a continuous stream
// of jobs that would attempt to execute, fail, and be returned to the
// schedd. Although the situation was handled correctly, there was
// continuous waste of CPU and network capacity."
//
// Sweep: number of misconfigured machines x mitigation strategy
// (none / startd self-test / schedd avoidance / both), all under the
// scoped discipline (the paper hit this problem *after* the redesign).
//
// The grid is filled through pool::SweepRunner — every (bad, mitigation)
// cell is an independent engine, so the cells run on all cores — and then
// re-run serially to assert the parallel fill is byte-identical, which is
// the determinism contract the chaos campaigns also rely on.
#include <cstdio>
#include <string>
#include <vector>

#include "pool/pool.hpp"
#include "pool/sweep.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

struct Mitigation {
  const char* label;
  bool selftest;
  bool avoidance;
};

pool::SweepCell make_cell(int bad, int good, const Mitigation& mitigation,
                          std::uint64_t seed, int jobs) {
  pool::SweepCell cell;
  cell.label = std::to_string(bad) + "/" + mitigation.label;
  cell.limit = SimTime::hours(12);

  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.startd_selftest = mitigation.selftest;
  config.discipline.schedd_avoidance = mitigation.avoidance;
  for (int i = 0; i < bad; ++i) {
    config.machines.push_back(
        pool::MachineSpec::misconfigured_java("bad" + std::to_string(i)));
  }
  for (int i = 0; i < good; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }
  cell.config = std::move(config);

  cell.setup = [seed, jobs](pool::Pool& pool) {
    Rng rng(seed);
    pool::WorkloadOptions options;
    options.count = jobs;
    options.mean_compute = SimTime::sec(30);
    for (auto& job : pool::make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
  };
  return cell;
}

/// The determinism fingerprint of one cell: everything the report prints.
std::string fingerprint(const pool::CellOutcome& cell) {
  return cell.label + "|" + cell.report.str() + "|" +
         std::to_string(cell.engine_events);
}

}  // namespace

int main() {
  constexpr int kGood = 6;
  constexpr int kJobs = 60;
  const Mitigation mitigations[] = {
      {"none", false, false},
      {"selftest", true, false},
      {"avoidance", false, true},
      {"both", true, true},
  };

  // Build the grid in submission order; the runner may execute it in any
  // order on any thread, but SweepReport::cells preserves this order.
  std::vector<pool::SweepCell> cells;
  std::vector<int> bad_of;
  std::vector<const Mitigation*> mitigation_of;
  for (const int bad : {0, 1, 2, 4}) {
    for (const Mitigation& mitigation : mitigations) {
      if (bad == 0 && (mitigation.selftest || mitigation.avoidance)) continue;
      cells.push_back(make_cell(bad, kGood, mitigation, 7, kJobs));
      bad_of.push_back(bad);
      mitigation_of.push_back(&mitigation);
    }
  }

  const pool::SweepReport parallel = pool::SweepRunner(0).run(cells);

  std::printf(
      "EXP-BH (paper §5): black-hole machines and their mitigations\n"
      "%d good machines, %d jobs; 'attempts' beyond %d and wasted attempts\n"
      "are the continuous CPU/network waste the paper describes.\n"
      "(grid filled by pool::SweepRunner on %u thread(s), %.2fs wall)\n\n",
      kGood, kJobs, kJobs, parallel.threads_used, parallel.wall_seconds);
  std::printf("%-4s %-11s %9s %9s %10s %10s %10s %9s\n", "bad", "mitigation",
              "attempts", "wasted", "netMsgs", "netMB", "makespan", "done");

  double waste_none = 0;
  double waste_selftest = 0;
  double waste_avoid = 0;
  for (std::size_t i = 0; i < parallel.cells.size(); ++i) {
    const pool::PoolReport& report = parallel.cells[i].report;
    const int bad = bad_of[i];
    const Mitigation& mitigation = *mitigation_of[i];
    std::printf("%-4d %-11s %9llu %9llu %10llu %10.2f %9.0fs %8d\n", bad,
                mitigation.label,
                static_cast<unsigned long long>(report.total_attempts),
                static_cast<unsigned long long>(report.incidental_attempts),
                static_cast<unsigned long long>(report.network_messages),
                static_cast<double>(report.network_bytes) / (1 << 20),
                report.makespan_seconds,
                report.jobs_total - report.unfinished);
    if (bad == 4) {
      if (std::string(mitigation.label) == "none") {
        waste_none = static_cast<double>(report.incidental_attempts);
      } else if (std::string(mitigation.label) == "selftest") {
        waste_selftest = static_cast<double>(report.incidental_attempts);
      } else if (std::string(mitigation.label) == "avoidance") {
        waste_avoid = static_cast<double>(report.incidental_attempts);
      }
    }
  }

  std::printf(
      "\nshape check (paper: correct handling still wastes capacity; the\n"
      "startd self-test stops the waste at its source; schedd avoidance\n"
      "is the complementary fix):\n");
  std::printf("  wasted attempts at bad=4: none=%.0f selftest=%.0f avoidance=%.0f\n",
              waste_none, waste_selftest, waste_avoid);
  const bool shape_ok = waste_none > waste_selftest &&
                        waste_none > waste_avoid && waste_selftest == 0;
  std::printf("  verdict: %s\n",
              shape_ok ? "REPRODUCES the paper's qualitative result"
                       : "DOES NOT match the expected shape");

  // Serial refill: every cell must come back byte-identical, or the
  // parallel grid above cannot be trusted (nor can any sweep-driven CI
  // cell's claim to reproduce on a laptop).
  const pool::SweepReport serial = pool::SweepRunner(1).run(cells);
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (fingerprint(parallel.cells[i]) != fingerprint(serial.cells[i])) {
      std::printf("  DETERMINISM MISMATCH in cell %s\n",
                  parallel.cells[i].label.c_str());
      ++mismatches;
    }
  }
  std::printf("  serial-vs-parallel: %zu of %zu cells byte-identical\n",
              cells.size() - mismatches, cells.size());
  return shape_ok && mismatches == 0 ? 0 : 1;
}
