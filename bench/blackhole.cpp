// EXP-BH — reproduces the §5 black-hole discussion: "a small number of
// misconfigured machines in our Condor pool attracted a continuous stream
// of jobs that would attempt to execute, fail, and be returned to the
// schedd. Although the situation was handled correctly, there was
// continuous waste of CPU and network capacity."
//
// Sweep: number of misconfigured machines x mitigation strategy
// (none / startd self-test / schedd avoidance / both), all under the
// scoped discipline (the paper hit this problem *after* the redesign).
#include <cstdio>
#include <string>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

struct Mitigation {
  const char* label;
  bool selftest;
  bool avoidance;
};

pool::PoolReport run(int bad, int good, const Mitigation& mitigation,
                     std::uint64_t seed, int jobs) {
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.startd_selftest = mitigation.selftest;
  config.discipline.schedd_avoidance = mitigation.avoidance;
  for (int i = 0; i < bad; ++i) {
    config.machines.push_back(
        pool::MachineSpec::misconfigured_java("bad" + std::to_string(i)));
  }
  for (int i = 0; i < good; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }
  pool::Pool pool(config);
  Rng rng(seed);
  pool::WorkloadOptions options;
  options.count = jobs;
  options.mean_compute = SimTime::sec(30);
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  pool.run_until_done(SimTime::hours(12));
  return pool.report();
}

}  // namespace

int main() {
  constexpr int kGood = 6;
  constexpr int kJobs = 60;
  const Mitigation mitigations[] = {
      {"none", false, false},
      {"selftest", true, false},
      {"avoidance", false, true},
      {"both", true, true},
  };

  std::printf(
      "EXP-BH (paper §5): black-hole machines and their mitigations\n"
      "%d good machines, %d jobs; 'attempts' beyond %d and wasted attempts\n"
      "are the continuous CPU/network waste the paper describes.\n\n",
      kGood, kJobs, kJobs);
  std::printf("%-4s %-11s %9s %9s %10s %10s %10s %9s\n", "bad", "mitigation",
              "attempts", "wasted", "netMsgs", "netMB", "makespan", "done");

  double waste_none = 0;
  double waste_selftest = 0;
  double waste_avoid = 0;
  for (const int bad : {0, 1, 2, 4}) {
    for (const Mitigation& mitigation : mitigations) {
      if (bad == 0 && (mitigation.selftest || mitigation.avoidance)) continue;
      const pool::PoolReport report = run(bad, kGood, mitigation, 7, kJobs);
      std::printf("%-4d %-11s %9llu %9llu %10llu %10.2f %9.0fs %8d\n", bad,
                  mitigation.label,
                  static_cast<unsigned long long>(report.total_attempts),
                  static_cast<unsigned long long>(report.incidental_attempts),
                  static_cast<unsigned long long>(report.network_messages),
                  static_cast<double>(report.network_bytes) / (1 << 20),
                  report.makespan_seconds,
                  report.jobs_total - report.unfinished);
      if (bad == 4) {
        if (std::string(mitigation.label) == "none") {
          waste_none = static_cast<double>(report.incidental_attempts);
        } else if (std::string(mitigation.label) == "selftest") {
          waste_selftest = static_cast<double>(report.incidental_attempts);
        } else if (std::string(mitigation.label) == "avoidance") {
          waste_avoid = static_cast<double>(report.incidental_attempts);
        }
      }
    }
  }

  std::printf(
      "\nshape check (paper: correct handling still wastes capacity; the\n"
      "startd self-test stops the waste at its source; schedd avoidance\n"
      "is the complementary fix):\n");
  std::printf("  wasted attempts at bad=4: none=%.0f selftest=%.0f avoidance=%.0f\n",
              waste_none, waste_selftest, waste_avoid);
  const bool shape_ok = waste_none > waste_selftest &&
                        waste_none > waste_avoid && waste_selftest == 0;
  std::printf("  verdict: %s\n",
              shape_ok ? "REPRODUCES the paper's qualitative result"
                       : "DOES NOT match the expected shape");
  return shape_ok ? 0 : 1;
}
