// µ-BLAME — root-cause engine cost: aligning two esg-journals and walking
// the causal chain must stay cheap enough to run on every red campaign
// cell. The aligner is O(n) in spans (one occurrence-count pass per tier
// plus the parent walk), so blame cost should scale linearly with journal
// length and be dwarfed by the two probe replays that produce the inputs.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/blame.hpp"
#include "obs/export.hpp"

using namespace esg;

namespace {

// A synthetic journal shaped like a real campaign cell: per-job chains of
// raised -> routed -> masked spans with the schedd as the disposition
// site, so both alignment tiers and the chain walk do real work.
obs::Journal make_journal(std::int64_t jobs, bool diverge_last) {
  obs::Journal journal;
  std::uint64_t id = 0;
  for (std::int64_t job = 0; job < jobs; ++job) {
    const std::uint64_t raised_id = ++id;
    obs::TraceEvent raised;
    raised.id = raised_id;
    raised.parent = 0;
    raised.when = SimTime::usec(1000 * job + 1);
    raised.type = obs::TraceEventType::kRaised;
    raised.form = obs::ErrorForm::kExplicit;
    raised.kind = ErrorKind::kScratchUnavailable;
    raised.scope = ErrorScope::kRemoteResource;
    raised.job = job;
    raised.component = "starter@exec" + std::to_string(job % 4);
    raised.detail = "environment failure";
    journal.events.push_back(raised);

    obs::TraceEvent routed = raised;
    routed.id = ++id;
    routed.parent = raised_id;
    routed.when = SimTime::usec(1000 * job + 2);
    routed.type = obs::TraceEventType::kRouted;
    routed.component = "schedd@submit0";
    routed.detail = "to schedd@submit0";
    journal.events.push_back(routed);

    obs::TraceEvent disposed = routed;
    disposed.id = ++id;
    disposed.parent = routed.id;
    disposed.when = SimTime::usec(1000 * job + 3);
    const bool last = diverge_last && job + 1 == jobs;
    disposed.type =
        last ? obs::TraceEventType::kDelivered : obs::TraceEventType::kMasked;
    disposed.detail = last ? "to the user" : "rescheduling elsewhere";
    journal.events.push_back(disposed);
  }
  return journal;
}

void BM_BlameAligned(benchmark::State& state) {
  const obs::Journal baseline = make_journal(state.range(0), false);
  const obs::Journal subject = baseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::blame_journals(baseline, subject, "scoped", "naive"));
  }
  state.SetItemsProcessed(state.iterations() * baseline.events.size());
}

void BM_BlameDivergent(benchmark::State& state) {
  const obs::Journal baseline = make_journal(state.range(0), false);
  const obs::Journal subject = make_journal(state.range(0), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obs::blame_journals(baseline, subject, "scoped", "naive"));
  }
  state.SetItemsProcessed(state.iterations() * subject.events.size());
}

void BM_BlameReportRoundTrip(benchmark::State& state) {
  const obs::Journal baseline = make_journal(256, false);
  const obs::Journal subject = make_journal(256, true);
  const std::string text =
      obs::blame_journals(baseline, subject, "scoped", "naive").str();
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::parse_blame_report(text));
  }
}

BENCHMARK(BM_BlameAligned)->Arg(64)->Arg(1024)->Arg(8192);
BENCHMARK(BM_BlameDivergent)->Arg(64)->Arg(1024)->Arg(8192);
BENCHMARK(BM_BlameReportRoundTrip);

}  // namespace

BENCHMARK_MAIN();
