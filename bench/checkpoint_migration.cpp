// EXP-CKPT — checkpointing under eviction churn (extension).
//
// Condor's founding scenario (§2.1): jobs scavenge idle cycles from
// personal workstations and are evicted whenever an owner returns. This
// bench measures what transparent checkpointing buys in that regime:
// long jobs on a pool whose owners come and go; with checkpointing off,
// every eviction restarts the job from scratch; with it on, the next
// attempt resumes from the last checkpoint.
#include <cstdio>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

struct Outcome {
  double total_cpu = 0;      // everything burned, all attempts
  double useful_cpu = 0;     // the programs' actual demand
  double makespan = 0;
  std::uint64_t evictions = 0;
  int done = 0;
};

Outcome run(bool checkpointing, SimTime owner_period, std::uint64_t seed) {
  constexpr int kMachines = 6;
  constexpr int kJobs = 12;
  const SimTime job_length = SimTime::minutes(40);  // 20 slices x 2 min

  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = checkpointing;
  config.discipline.checkpoint_interval = SimTime::minutes(2);
  for (int i = 0; i < kMachines; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("desk" + std::to_string(i)));
  }
  pool::Pool pool(config);

  for (int i = 0; i < kJobs; ++i) {
    jvm::ProgramBuilder builder("batch" + std::to_string(i));
    for (int s = 0; s < 20; ++s) builder.compute(SimTime::minutes(2));
    daemons::JobDescription job;
    job.program = builder.build();
    pool.submit(std::move(job));
  }
  pool.boot();

  // Owner churn: each workstation's owner shows up periodically (phase-
  // shifted), works for a quarter of the period, and leaves.
  struct Churn {
    pool::Pool* pool;
    std::string machine;
    SimTime period;
    Outcome* outcome;
    void arrive() {
      daemons::Startd* startd = pool->startd(machine);
      if (startd == nullptr) return;
      if (startd->claimed()) ++outcome->evictions;
      startd->set_owner_active(true);
      pool->engine().schedule(period * 0.25, [this] {
        if (auto* s = pool->startd(machine)) s->set_owner_active(false);
        pool->engine().schedule(period * 0.75, [this] { arrive(); });
      });
    }
  };
  static std::vector<std::unique_ptr<Churn>> churns;
  churns.clear();
  Outcome outcome;
  for (int i = 0; i < kMachines; ++i) {
    auto churn = std::make_unique<Churn>();
    churn->pool = &pool;
    churn->machine = "desk" + std::to_string(i);
    churn->period = owner_period;
    churn->outcome = &outcome;
    Churn* raw = churn.get();
    pool.engine().schedule(owner_period * ((i + 1) / double(kMachines)),
                           [raw] { raw->arrive(); });
    churns.push_back(std::move(churn));
  }

  pool.run_until_done(SimTime::hours(24));
  const pool::PoolReport report = pool.report();
  for (const auto& truth : pool.ground_truth().entries()) {
    outcome.total_cpu += truth.cpu_seconds;
  }
  outcome.useful_cpu = kJobs * job_length.as_sec();
  outcome.makespan = report.makespan_seconds;
  outcome.done = report.jobs_total - report.unfinished;
  churns.clear();
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "EXP-CKPT: transparent checkpointing under owner-eviction churn\n"
      "12 jobs x 40min compute on 6 workstations whose owners return\n"
      "periodically (evicting visitors); checkpoint interval 2min.\n\n");
  std::printf("%-14s %-12s %9s %10s %10s %10s %6s\n", "owner period",
              "checkpoint", "evictions", "burnedCPU", "usefulCPU", "makespan",
              "done");

  double waste_off = 0;
  double waste_on = 0;
  for (const SimTime period : {SimTime::minutes(30), SimTime::minutes(60)}) {
    for (const bool ckpt : {false, true}) {
      const Outcome o = run(ckpt, period, 7);
      const double waste = o.total_cpu - o.useful_cpu;
      std::printf("%-14s %-12s %9llu %9.0fs %9.0fs %9.0fs %6d\n",
                  (std::to_string(period.as_usec() / 60000000) + " min").c_str(),
                  ckpt ? "on" : "off",
                  static_cast<unsigned long long>(o.evictions), o.total_cpu,
                  o.useful_cpu, o.makespan, o.done);
      if (period == SimTime::minutes(30)) {
        (ckpt ? waste_on : waste_off) = waste;
      }
    }
  }

  std::printf(
      "\nshape check: under heavy churn, checkpointing cuts the repeated\n"
      "work (burned - useful) and the makespan:\n");
  std::printf("  wasted CPU at 30min churn: off=%.0fs on=%.0fs\n", waste_off,
              waste_on);
  const bool ok = waste_off > waste_on * 2;
  std::printf("  verdict: %s\n",
              ok ? "checkpointing pays for itself (expected shape)"
                 : "DOES NOT match the expected shape");
  return ok ? 0 : 1;
}
