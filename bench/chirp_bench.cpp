// µ-CHIRP — throughput of the Chirp protocol stack: codec and full
// client/proxy round trips over the simulated loopback.
#include <benchmark/benchmark.h>

#include "chirp/client.hpp"
#include "chirp/server.hpp"

using namespace esg;
using namespace esg::chirp;

namespace {

void BM_EncodeRequest(benchmark::State& state) {
  Request req;
  req.command = "write";
  req.args = {"7"};
  req.data = std::string(256, 'x');
  for (auto _ : state) {
    std::string wire = req.encode();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_EncodeRequest);

void BM_ParseResponse(benchmark::State& state) {
  const std::string wire =
      Response::ok(4096, std::string(4096, 'y')).encode();
  for (auto _ : state) {
    auto resp = parse_response(wire);
    benchmark::DoNotOptimize(resp);
  }
}
BENCHMARK(BM_ParseResponse);

/// A full session: N round trips through client -> fabric -> server ->
/// FsBackend -> fabric -> client, measuring wall time per simulated op.
void BM_RoundTrips(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine(1);
    net::NetworkFabric fabric(engine);
    fs::SimFileSystem fs("exec0");
    (void)fs.mkdirs("/sandbox");
    (void)fs.write_file("/sandbox/f", std::string(1 << 16, 'z'));
    FsBackend backend(fs, "/sandbox");
    std::unique_ptr<ChirpServer> server;
    std::unique_ptr<ChirpClient> client;
    (void)fabric.listen({"exec0", 9000}, [&](net::Endpoint ep) {
      server = std::make_unique<ChirpServer>(std::move(ep), backend, "k");
    });
    fabric.connect("exec0", {"exec0", 9000}, [&](Result<net::Endpoint> ep) {
      client = std::make_unique<ChirpClient>(engine, std::move(ep).value());
    });
    engine.run();
    client->authenticate("k", [](Result<void>) {});
    std::int64_t fd = -1;
    client->open("f", "r", [&](Result<std::int64_t> r) { fd = r.value(); });
    engine.run();
    state.ResumeTiming();

    const int ops = static_cast<int>(state.range(0));
    int completed = 0;
    for (int i = 0; i < ops; ++i) {
      client->read(fd, 512, [&](Result<std::string> r) {
        if (r.ok()) ++completed;
      });
    }
    engine.run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RoundTrips)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
