// µ-CLASSAD — throughput of the ClassAd substrate: lexing, parsing,
// evaluation, and symmetric matchmaking.
#include <benchmark/benchmark.h>

#include "classad/lexer.hpp"
#include "classad/match.hpp"

using namespace esg;
using namespace esg::classad;

namespace {

const char* kMachineAdText =
    "MyType = \"Machine\"; Name = \"exec7\"; Memory = 512;"
    "HasJava = true; JavaVersion = \"1.3.1\"; State = \"Unclaimed\";"
    "LoadAvg = 0.25; Arch = \"INTEL\"; OpSys = \"LINUX\";"
    "Requirements = TARGET.ImageSizeMB <= MY.Memory && LoadAvg < 0.5;"
    "Rank = 0";

const char* kJobAdText =
    "MyType = \"Job\"; JobId = 42; Owner = \"alice\"; ImageSizeMB = 64;"
    "Cmd = \"Sim\"; JobUniverse = \"java\";"
    "Requirements = TARGET.HasJava =?= true && TARGET.Memory >= "
    "MY.ImageSizeMB;"
    "Rank = TARGET.Memory";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = lex(kMachineAdText);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex);

void BM_ParseAd(benchmark::State& state) {
  for (auto _ : state) {
    auto ad = parse_classad(kMachineAdText);
    benchmark::DoNotOptimize(ad);
  }
}
BENCHMARK(BM_ParseAd);

void BM_ParseExpr(benchmark::State& state) {
  for (auto _ : state) {
    auto e = parse_expr("(TARGET.Memory >= 64 && HasJava =?= true) || x < 3");
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ParseExpr);

void BM_EvalArithmetic(benchmark::State& state) {
  auto expr = parse_expr("1 + 2 * 3 - 4 / 2 + 10 % 3");
  EvalContext ctx;
  for (auto _ : state) {
    Value v = expr.value()->eval(ctx);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EvalArithmetic);

void BM_EvalAttrChain(benchmark::State& state) {
  auto ad = parse_classad("a = 1; b = a + 1; c = b + 1; d = c + 1; e = d + 1");
  for (auto _ : state) {
    Value v = ad.value().eval_attr("e");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EvalAttrChain);

void BM_SymmetricMatch(benchmark::State& state) {
  auto job = parse_classad(kJobAdText);
  auto machine = parse_classad(kMachineAdText);
  for (auto _ : state) {
    MatchResult m = symmetric_match(job.value(), machine.value());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SymmetricMatch);

void BM_MatchOneJobAgainstNMachines(benchmark::State& state) {
  auto job = parse_classad(kJobAdText);
  std::vector<ClassAd> machines;
  for (int i = 0; i < state.range(0); ++i) {
    auto m = parse_classad(kMachineAdText);
    m.value().set("Memory", 64 + i);
    machines.push_back(std::move(m).value());
  }
  for (auto _ : state) {
    int matched = 0;
    for (const ClassAd& m : machines) {
      if (symmetric_match(job.value(), m).matched) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MatchOneJobAgainstNMachines)->Arg(16)->Arg(256);

void BM_Unparse(benchmark::State& state) {
  auto ad = parse_classad(kMachineAdText);
  for (auto _ : state) {
    std::string s = ad.value().str();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Unparse);

}  // namespace

BENCHMARK_MAIN();
