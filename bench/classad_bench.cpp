// µ-CLASSAD — throughput of the ClassAd substrate: lexing, parsing,
// evaluation, symmetric matchmaking, and the matchmaker's ad index
// (predicate extraction + bucketed candidate lookup).
#include <benchmark/benchmark.h>

#include "classad/index.hpp"
#include "classad/lexer.hpp"
#include "classad/match.hpp"

using namespace esg;
using namespace esg::classad;

namespace {

const char* kMachineAdText =
    "MyType = \"Machine\"; Name = \"exec7\"; Memory = 512;"
    "HasJava = true; JavaVersion = \"1.3.1\"; State = \"Unclaimed\";"
    "LoadAvg = 0.25; Arch = \"INTEL\"; OpSys = \"LINUX\";"
    "Requirements = TARGET.ImageSizeMB <= MY.Memory && LoadAvg < 0.5;"
    "Rank = 0";

const char* kJobAdText =
    "MyType = \"Job\"; JobId = 42; Owner = \"alice\"; ImageSizeMB = 64;"
    "Cmd = \"Sim\"; JobUniverse = \"java\";"
    "Requirements = TARGET.HasJava =?= true && TARGET.Memory >= "
    "MY.ImageSizeMB;"
    "Rank = TARGET.Memory";

void BM_Lex(benchmark::State& state) {
  for (auto _ : state) {
    auto tokens = lex(kMachineAdText);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex);

void BM_ParseAd(benchmark::State& state) {
  for (auto _ : state) {
    auto ad = parse_classad(kMachineAdText);
    benchmark::DoNotOptimize(ad);
  }
}
BENCHMARK(BM_ParseAd);

void BM_ParseExpr(benchmark::State& state) {
  for (auto _ : state) {
    auto e = parse_expr("(TARGET.Memory >= 64 && HasJava =?= true) || x < 3");
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_ParseExpr);

void BM_EvalArithmetic(benchmark::State& state) {
  auto expr = parse_expr("1 + 2 * 3 - 4 / 2 + 10 % 3");
  EvalContext ctx;
  for (auto _ : state) {
    Value v = expr.value()->eval(ctx);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EvalArithmetic);

void BM_EvalAttrChain(benchmark::State& state) {
  auto ad = parse_classad("a = 1; b = a + 1; c = b + 1; d = c + 1; e = d + 1");
  for (auto _ : state) {
    Value v = ad.value().eval_attr("e");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_EvalAttrChain);

void BM_SymmetricMatch(benchmark::State& state) {
  auto job = parse_classad(kJobAdText);
  auto machine = parse_classad(kMachineAdText);
  for (auto _ : state) {
    MatchResult m = symmetric_match(job.value(), machine.value());
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_SymmetricMatch);

void BM_MatchOneJobAgainstNMachines(benchmark::State& state) {
  auto job = parse_classad(kJobAdText);
  std::vector<ClassAd> machines;
  for (int i = 0; i < state.range(0); ++i) {
    auto m = parse_classad(kMachineAdText);
    m.value().set("Memory", 64 + i);
    machines.push_back(std::move(m).value());
  }
  for (auto _ : state) {
    int matched = 0;
    for (const ClassAd& m : machines) {
      if (symmetric_match(job.value(), m).matched) ++matched;
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MatchOneJobAgainstNMachines)->Arg(16)->Arg(256);

// ---- the matchmaker's ad index ----

// A tier-pinned job Requirements, shaped like pool_bench --scale's
// workload: every conjunct is index-extractable.
const char* kTieredJobAdText =
    "MyType = \"Job\"; JobId = 7; Owner = \"alice\"; ImageSizeMB = 64;"
    "Requirements = TARGET.Arch == \"INTEL\" && TARGET.OpSys == \"LINUX\" && "
    "TARGET.HasJava =?= true && TARGET.Memory >= 512;"
    "Rank = 0";

void BM_ProfileRequirements(benchmark::State& state) {
  auto job = parse_classad(kTieredJobAdText);
  for (auto _ : state) {
    RequirementsProfile profile =
        profile_requirements(job.value(), SimTime::zero());
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_ProfileRequirements);

/// A heterogeneous machine population the size of a big pool: 4 arches ×
/// 3 systems × 3 memory tiers, `n` ads round-robined across them.
std::vector<ClassAd> make_tiered_machine_ads(int n) {
  const char* arches[] = {"INTEL", "SUN4u", "PPC", "ALPHA"};
  const char* systems[] = {"LINUX", "SOLARIS28", "OSF1"};
  std::vector<ClassAd> ads;
  ads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto ad = parse_classad(kMachineAdText);
    ad.value().set("Name", "exec" + std::to_string(i));
    ad.value().set("Arch", arches[i % 4]);
    ad.value().set("OpSys", systems[(i / 4) % 3]);
    ad.value().set("Memory", static_cast<std::int64_t>(256) << (i % 3));
    ads.push_back(std::move(ad).value());
  }
  return ads;
}

void BM_AdIndexInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ClassAd> ads = make_tiered_machine_ads(n);
  for (auto _ : state) {
    AdIndex index;
    for (int i = 0; i < n; ++i) {
      index.insert(static_cast<std::uint32_t>(i), ads[static_cast<std::size_t>(i)]);
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdIndexInsert)->Arg(1'000)->Arg(10'000);

void BM_AdIndexCandidates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ClassAd> ads = make_tiered_machine_ads(n);
  AdIndex index;
  for (int i = 0; i < n; ++i) {
    index.insert(static_cast<std::uint32_t>(i), ads[static_cast<std::size_t>(i)]);
  }
  auto job = parse_classad(kTieredJobAdText);
  const RequirementsProfile profile =
      profile_requirements(job.value(), SimTime::zero());
  std::vector<std::uint32_t> out;
  std::uint64_t total = 0;
  for (auto _ : state) {
    const bool indexed = index.candidates(profile, out);
    benchmark::DoNotOptimize(indexed);
    total += out.size();
  }
  state.counters["candidates"] = benchmark::Counter(
      static_cast<double>(total) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdIndexCandidates)->Arg(1'000)->Arg(10'000);

void BM_Unparse(benchmark::State& state) {
  auto ad = parse_classad(kMachineAdText);
  for (auto _ : state) {
    std::string s = ad.value().str();
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Unparse);

}  // namespace

BENCHMARK_MAIN();
