// EXP-E2E — implicit errors and the end-to-end principle (§5).
//
// "Despite low-level error correction, implicit errors have been observed
// in increasingly uncomfortable rates in networks, memories, and CPUs...
// A process above Condor may work on behalf of the user to analyze
// outputs and replicate or resubmit jobs."
//
// One machine in the pool silently corrupts bulk reads. The grid itself
// never notices — every protocol step succeeds. Sweep replica count and
// measure how often the user ends up holding wrong bytes, and how often
// the voting layer detects/masks the corruption.
//
// --dashboard-json FILE additionally traces every round, merges the
// error-flow aggregates across all rounds (deterministically: submission
// order), and writes the dashboard JSON dump to FILE — CI uploads it as
// the endtoend dashboard artifact.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/dashboard.hpp"
#include "pool/pool.hpp"
#include "pool/reliable.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

struct Tally {
  int rounds = 0;
  int wrong_delivered = 0;   // user holds corrupt bytes, unaware
  int detected = 0;          // disagreement observed
  int masked = 0;            // detected and still delivered correctly
  int unresolved = 0;        // no majority / nothing delivered
};

Tally run_rounds(int replicas, int rounds, std::uint64_t seed,
                 obs::FlowAggregate* flow) {
  Tally tally;
  const std::string good_output(256, '\0');
  for (int round = 0; round < rounds; ++round) {
    pool::PoolConfig config;
    config.seed = seed + static_cast<std::uint64_t>(round) * 101;
    config.trace = flow != nullptr;
    config.discipline = daemons::DisciplineConfig::scoped();
    pool::MachineSpec liar = pool::MachineSpec::good("liar0");
    liar.silent_corruption_rate = 1.0;  // this machine always lies on bulk reads
    config.machines.push_back(liar);
    config.machines.push_back(pool::MachineSpec::good("honest0"));
    config.machines.push_back(pool::MachineSpec::good("honest1"));
    pool::Pool pool(config);

    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("producer")
                      .compute(SimTime::sec(5))
                      .open_write("answer.dat", 0)
                      .write(0, 256)
                      .close_stream(0)
                      .build();
    job.output_files = {"answer.dat"};
    const std::vector<JobId> ids =
        pool::submit_redundant(pool, job, replicas);
    if (!pool.run_until_done(SimTime::hours(4))) continue;
    const pool::ReliableResult r = pool::vote_outputs(pool, ids, "answer.dat");
    ++tally.rounds;
    if (r.implicit_error_detected) ++tally.detected;
    if (!r.delivered) {
      ++tally.unresolved;
    } else if (r.output != good_output) {
      ++tally.wrong_delivered;
    } else if (r.implicit_error_detected) {
      ++tally.masked;
    }
    if (flow != nullptr) flow->merge(pool.report().flow);
  }
  return tally;
}

}  // namespace

int main(int argc, char** argv) {
  const char* dashboard_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--dashboard-json") && i + 1 < argc) {
      dashboard_out = argv[++i];
    } else {
      std::printf("usage: %s [--dashboard-json FILE]\n", argv[0]);
      return 2;
    }
  }
  obs::FlowAggregate merged_flow;
  obs::FlowAggregate* flow = dashboard_out != nullptr ? &merged_flow : nullptr;

  constexpr int kRounds = 30;
  std::printf(
      "EXP-E2E (paper §5): implicit errors vs end-to-end replication\n"
      "3 machines (1 silently corrupting bulk reads), %d rounds per row;\n"
      "the grid itself reports success in every round.\n\n",
      kRounds);
  std::printf("%-9s %7s %7s %9s %8s %11s\n", "replicas", "rounds",
              "wrong!", "detected", "masked", "unresolved");

  Tally one;
  Tally three;
  for (const int replicas : {1, 3, 5}) {
    const Tally t = run_rounds(replicas, kRounds, 1000, flow);
    std::printf("%-9d %7d %7d %9d %8d %11d\n", replicas, t.rounds,
                t.wrong_delivered, t.detected, t.masked, t.unresolved);
    if (replicas == 1) one = t;
    if (replicas == 3) three = t;
  }

  std::printf(
      "\nshape check: with one replica, corruption reaches the user\n"
      "undetected whenever the liar wins the match; with three, the vote\n"
      "detects it and the user essentially never holds wrong bytes:\n");
  const bool ok = one.wrong_delivered > 0 && three.wrong_delivered == 0 &&
                  three.detected > 0;
  std::printf("  wrong results: 1 replica=%d, 3 replicas=%d (detected %d)\n",
              one.wrong_delivered, three.wrong_delivered, three.detected);
  std::printf("  verdict: %s\n",
              ok ? "REPRODUCES the end-to-end argument"
                 : "DOES NOT match the expected shape");

  if (dashboard_out != nullptr) {
    std::ofstream out(dashboard_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", dashboard_out);
      return 1;
    }
    out << obs::dashboard_json(merged_flow, "endtoend");
    std::printf("\nwrote merged error-flow dashboard (%llu spans) to %s\n",
                static_cast<unsigned long long>(merged_flow.events_seen),
                dashboard_out);
  }
  return ok ? 0 : 1;
}
