// FIG3 — regenerates Figure 3 of the paper: "Error Scopes in the Java
// Universe".
//
// One fault per scope is injected into a full running grid; the table
// shows the scope each error surfaced with, the schedd's last-line-of-
// defense action, and the job's fate — the executable form of Figure 3's
// scope map and handler assignments.
#include <cstdio>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

struct Row {
  std::string injected;
  std::string surfaced_scope;
  std::string schedd_action;
  std::string final_state;
  std::size_t attempts = 0;
};

Row run_scenario(const std::string& label, pool::PoolConfig config,
                 daemons::JobDescription job,
                 const std::function<void(pool::Pool&)>& arrange = {}) {
  pool::Pool pool(std::move(config));
  pool::stage_workload_inputs(pool);
  const JobId id = pool.submit(std::move(job));
  pool.boot();
  if (arrange) arrange(pool);
  pool.run_until_done(SimTime::hours(4));

  Row row;
  row.injected = label;
  const daemons::JobRecord* record = pool.schedd().job(id);
  row.final_state = std::string(daemons::job_state_name(record->state));
  row.attempts = record->attempts.size();
  // The scope the first failing attempt surfaced with.
  row.surfaced_scope = "program";
  for (const daemons::AttemptRecord& attempt : record->attempts) {
    if (!attempt.summary.have_program_result &&
        attempt.summary.environment_error.has_value()) {
      row.surfaced_scope = std::string(
          scope_name(attempt.summary.environment_error->scope()));
      break;
    }
    if (attempt.summary.have_program_result &&
        attempt.summary.program_result.error.has_value()) {
      row.surfaced_scope = std::string(
          scope_name(attempt.summary.program_result.error->scope()));
      break;
    }
  }
  switch (record->state) {
    case daemons::JobState::kCompleted:
      row.schedd_action =
          row.attempts > 1 ? "retried elsewhere, then completed"
                           : "returned result to user";
      break;
    case daemons::JobState::kUnexecutable:
      row.schedd_action = "returned job as unexecutable";
      break;
    default:
      row.schedd_action = "still pending";
  }
  return row;
}

pool::PoolConfig base_config(std::uint64_t seed) {
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  return config;
}

}  // namespace

int main() {
  std::vector<Row> rows;

  {  // program scope: the program's own exception
    pool::PoolConfig config = base_config(1);
    config.machines.push_back(pool::MachineSpec::good());
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("P")
                      .throw_exception(ErrorKind::kArrayIndexOutOfBounds)
                      .build();
    rows.push_back(
        run_scenario("program throws ArrayIndexOutOfBounds", config,
                     std::move(job)));
  }
  {  // virtual-machine scope: heap too small on the first machine
    pool::PoolConfig config = base_config(2);
    config.machines.push_back(pool::MachineSpec::tiny_heap("aaa_small"));
    config.machines.push_back(pool::MachineSpec::good("zzz_big"));
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("P").alloc(64 << 20).build();
    rows.push_back(run_scenario("JVM heap exhausted (OutOfMemoryError)",
                                config, std::move(job)));
  }
  {  // remote-resource scope: misconfigured Java installation
    pool::PoolConfig config = base_config(3);
    config.machines.push_back(pool::MachineSpec::misconfigured_java("aaa_bad"));
    config.machines.push_back(pool::MachineSpec::good("zzz_good"));
    rows.push_back(run_scenario("Java installation misconfigured", config,
                                pool::make_hello_job()));
  }
  {  // local-resource scope: submit-side home filesystem offline
    pool::PoolConfig config = base_config(4);
    config.machines.push_back(pool::MachineSpec::good());
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("P")
                      .open_read("/home/data/input.dat", 0)
                      .read(0, 1024)
                      .close_stream(0)
                      .build();
    rows.push_back(run_scenario(
        "home filesystem offline (recovers later)", config, std::move(job),
        [](pool::Pool& pool) {
          pool.submit_fs().set_mount_online("/home", false);
          pool.engine().schedule(SimTime::minutes(3), [&pool] {
            pool.submit_fs().set_mount_online("/home", true);
          });
        }));
  }
  {  // job scope: corrupt program image
    pool::PoolConfig config = base_config(5);
    config.machines.push_back(pool::MachineSpec::good());
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("P").corrupt_image().build();
    rows.push_back(
        run_scenario("program image corrupt", config, std::move(job)));
  }
  {  // network scope: execution host crashes mid-run
    pool::PoolConfig config = base_config(6);
    config.machines.push_back(pool::MachineSpec::good("aaa_dies"));
    config.machines.push_back(pool::MachineSpec::good("zzz_lives"));
    daemons::JobDescription job;
    job.program =
        jvm::ProgramBuilder("P").compute(SimTime::minutes(5)).build();
    rows.push_back(run_scenario(
        "execution host crashes mid-job", config, std::move(job),
        [](pool::Pool& pool) {
          pool.engine().schedule(SimTime::minutes(1), [&pool] {
            pool.fabric().crash_host("aaa_dies");
            pool.startd("aaa_dies")->shutdown();
          });
        }));
  }

  std::printf(
      "FIG3: error scopes and their handling in the Java Universe\n\n");
  std::printf("%-42s | %-16s | %-32s | %-13s | %s\n", "injected fault",
              "surfaced scope", "schedd action", "final state", "attempts");
  std::printf("%.42s-+-%.16s-+-%.32s-+-%.13s-+---------\n",
              "------------------------------------------",
              "----------------",
              "--------------------------------", "-------------");
  for (const Row& row : rows) {
    std::printf("%-42s | %-16s | %-32s | %-13s | %zu\n", row.injected.c_str(),
                row.surfaced_scope.c_str(), row.schedd_action.c_str(),
                row.final_state.c_str(), row.attempts);
  }
  std::printf(
      "\nreading: program scope completes immediately; job scope is\n"
      "unexecutable immediately; everything in between is retried at a new\n"
      "site — the schedd consumed each error at the scope it manages.\n");
  return 0;
}
