// FIG4 — regenerates Figure 4 of the paper: "JVM Result Codes".
//
// Seven execution details are run through the simulated JVM. The bare JVM
// column reproduces the paper's table: the result code collapses every
// abnormal condition to 1 and cannot distinguish error scopes. The wrapper
// columns show the §4 fix: the result file recovers the scope.
#include <cstdio>
#include <string>

#include "jvm/jvm.hpp"

using namespace esg;
using namespace esg::jvm;

namespace {

struct Scenario {
  const char* detail;          // the paper's "Execution Detail" column
  const char* paper_scope;     // the paper's "Error Scope" column
  int paper_code;              // the paper's "JVM Result Code" column
  JobProgram program;
  JvmConfig config;
  bool offline_home = false;   // take /home down before running
};

struct RunResult {
  int exit_code = 0;
  std::string wrapper_scope;   // scope recovered from the result file
  std::string wrapper_exit_by;
};

RunResult run_scenario(const Scenario& scenario, WrapMode mode,
                       std::uint64_t seed) {
  sim::Engine engine(seed);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");
  fs.add_mount("/home", 0);
  if (scenario.offline_home) fs.set_mount_online("/home", false);

  LocalJavaIo io(fs, IoDiscipline::kConcise);
  SimJvm jvm(engine, scenario.config);
  RunResult out;
  jvm.run(scenario.program, io, mode, &fs, "/scratch/.result",
          [&](const JvmOutcome& outcome) { out.exit_code = outcome.exit_code; });
  engine.run();

  if (mode == WrapMode::kWrapped) {
    Result<std::string> text = fs.read_file("/scratch/.result");
    if (text.ok()) {
      Result<ResultFile> rf = ResultFile::parse(text.value());
      if (rf.ok()) {
        out.wrapper_exit_by = std::string(exit_by_name(rf.value().exit_by));
        out.wrapper_scope =
            rf.value().error.has_value()
                ? std::string(scope_name(rf.value().error->scope()))
                : "program";
      }
    }
  }
  return out;
}

}  // namespace

int main() {
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.detail = "program exited by completing main";
    s.paper_scope = "program";
    s.paper_code = 0;
    s.program = ProgramBuilder("Main").compute(SimTime::msec(5)).build();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.detail = "program called System.exit(17)";
    s.paper_scope = "program";
    s.paper_code = 17;
    s.program = ProgramBuilder("Main").exit(17).build();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.detail = "program de-referenced a null pointer";
    s.paper_scope = "program";
    s.paper_code = 1;
    s.program =
        ProgramBuilder("Main").throw_exception(ErrorKind::kNullPointer).build();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.detail = "not enough memory for the program";
    s.paper_scope = "virtual-machine";
    s.paper_code = 1;
    s.config.heap_bytes = 1 << 10;
    s.program = ProgramBuilder("Main").alloc(64 << 20).build();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.detail = "Java installation is misconfigured";
    s.paper_scope = "remote-resource";
    s.paper_code = 1;
    s.config.classpath_ok = false;
    s.program = ProgramBuilder("Main").compute(SimTime::msec(5)).build();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.detail = "home file system was offline";
    s.paper_scope = "local-resource";
    s.paper_code = 1;
    s.offline_home = true;
    s.program = ProgramBuilder("Main")
                    .open_read("/home/input.dat", 0)
                    .read(0, 1024)
                    .build();
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.detail = "program image was corrupt";
    s.paper_scope = "job";
    s.paper_code = 1;
    s.program = ProgramBuilder("Main").corrupt_image().build();
    scenarios.push_back(std::move(s));
  }

  std::printf("FIG4: JVM result codes (paper Figure 4) vs the wrapper fix\n");
  std::printf("%-44s | %-16s | %5s | %5s | %-16s | %s\n", "execution detail",
              "paper scope", "paper", "bare", "wrapper scope", "wrapper says");
  std::printf("%-44s-+-%-16s-+-%5s-+-%5s-+-%-16s-+-%s\n",
              "--------------------------------------------",
              "----------------", "-----", "-----", "----------------",
              "------------");
  bool all_match = true;
  int distinct_bare_codes_for_errors = 0;
  std::vector<int> error_codes;
  for (const Scenario& scenario : scenarios) {
    const RunResult bare = run_scenario(scenario, WrapMode::kBare, 1);
    const RunResult wrapped = run_scenario(scenario, WrapMode::kWrapped, 1);
    std::printf("%-44s | %-16s | %5d | %5d | %-16s | %s\n", scenario.detail,
                scenario.paper_scope, scenario.paper_code, bare.exit_code,
                wrapped.wrapper_scope.c_str(),
                wrapped.wrapper_exit_by.c_str());
    if (bare.exit_code != scenario.paper_code) all_match = false;
    if (scenario.paper_code == 1) error_codes.push_back(bare.exit_code);
    if (wrapped.wrapper_scope != scenario.paper_scope) all_match = false;
  }
  // How many distinct codes did the five "code 1" scenarios produce?
  std::sort(error_codes.begin(), error_codes.end());
  error_codes.erase(std::unique(error_codes.begin(), error_codes.end()),
                    error_codes.end());
  distinct_bare_codes_for_errors = static_cast<int>(error_codes.size());

  std::printf("\nsummary:\n");
  std::printf(
      "  bare JVM: %d distinct exit code(s) across 5 different-scope "
      "failures (paper: 1)\n",
      distinct_bare_codes_for_errors);
  std::printf("  wrapper: recovers all 5 scopes from the result file\n");
  std::printf("  reproduces paper table: %s\n", all_match ? "YES" : "NO");
  return all_match ? 0 : 1;
}
