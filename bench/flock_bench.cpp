// Federation scaling: the federated chaos campaign run at increasing pool
// counts and worker-thread widths. Every width produces byte-identical
// campaign verdicts (checked here, not assumed); what changes is the wall
// clock. Also reports the cross-pool scope traffic each size generates —
// how many cluster-scope and network-scope errors the home schedd consumed
// across the campaign's plans.
//
//   $ ./flock_bench [--plans N] [--jobs N] [--json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "flock/chaos.hpp"
#include "flock/federation.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// One federation run of the campaign's first plan, returning the home
/// schedd's cross-pool scope counters (the per-size "traffic" columns).
struct ScopeTraffic {
  std::uint64_t cluster = 0;
  std::uint64_t network = 0;
  std::uint64_t flock_attempts = 0;
};

ScopeTraffic measure_traffic(const chaos::FaultPlan& plan) {
  flock::Federation federation(flock::federated_cell_config(plan));
  federation.boot();
  pool::stage_workload_inputs(*federation.submit_fs("home"));
  pool::WorkloadOptions workload;
  workload.count = plan.shape.jobs;
  workload.mean_compute = plan.shape.mean_compute;
  workload.remote_io_fraction = 0.25;
  workload.remote_write_fraction = 0.25;
  Rng rng = Rng(plan.seed).fork("chaos.workload");
  for (auto& job : pool::make_workload(workload, rng)) {
    federation.submit(0, std::move(job));
  }
  flock::FederatedInjector::arm(federation, plan);
  federation.run_until_done(plan.shape.limit);
  const auto* home = federation.schedd("home");
  ScopeTraffic traffic;
  traffic.cluster = home->cluster_errors_consumed();
  traffic.network = home->network_errors_consumed();
  traffic.flock_attempts = home->flock_attempts();
  return traffic;
}

}  // namespace

int main(int argc, char** argv) {
  int plans = 4;
  int jobs = 12;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--plans") && i + 1 < argc) {
      plans = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: flock_bench [--plans N] [--jobs N] "
                   "[--json FILE]\n");
      return 2;
    }
  }

  std::printf("federated chaos campaign: %d plan(s), %d job(s)/plan\n\n",
              plans, jobs);
  std::printf("%-6s %-8s %-10s %-10s %-8s %-8s %-8s %s\n", "pools",
              "threads", "wall_s", "verdict", "cluster", "network",
              "flockads", "bytes");

  std::string json = "{\"sizes\":[";
  bool first = true;
  bool all_identical = true;
  for (int pools : {3, 4, 5}) {
    chaos::CampaignOptions options;
    options.seed = 2026;
    options.plans = plans;
    options.shape.pools = pools;
    options.shape.machines = 2;
    options.shape.jobs = jobs;
    options.shrink = false;

    // Plan 0's seed: the runner draws plan seeds from Rng(campaign seed).
    const chaos::FaultPlan first_plan = flock::make_federated_plan(
        Rng(options.seed).next_u64(), options.shape);
    const ScopeTraffic traffic = measure_traffic(first_plan);

    std::string baseline;
    for (unsigned threads : {1u, 4u, 8u}) {
      options.threads = threads;
      chaos::CampaignResult result;
      const double wall = wall_seconds(
          [&options, &result] {
            result = flock::run_federated_campaign(options);
          });
      const std::string bytes = result.json();
      if (baseline.empty()) baseline = bytes;
      const bool identical = bytes == baseline;
      all_identical = all_identical && identical;
      std::printf("%-6d %-8u %-10.2f %-10s %-8llu %-8llu %-8llu %s\n",
                  pools, threads, wall,
                  result.failing == 0 ? "all-green" : "RED",
                  static_cast<unsigned long long>(traffic.cluster),
                  static_cast<unsigned long long>(traffic.network),
                  static_cast<unsigned long long>(traffic.flock_attempts),
                  identical ? "identical" : "DIVERGED");
      if (!first) json += ",";
      first = false;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"pools\":%d,\"threads\":%u,\"wall_s\":%.3f,"
                    "\"failing\":%d,\"identical\":%s}",
                    pools, threads, wall, result.failing,
                    identical ? "true" : "false");
      json += buf;
    }
  }
  json += "]}";

  std::printf("\nverdict bytes %s across thread widths\n",
              all_identical ? "identical" : "DIVERGED");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json << "\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return all_identical ? 0 : 1;
}
