// µ-FS — simulated filesystem throughput: namespace ops, bulk I/O, and
// the cost of mount bookkeeping and fault hooks.
#include <benchmark/benchmark.h>

#include "fs/simfs.hpp"

using namespace esg;
using namespace esg::fs;

namespace {

void BM_WriteReadSmallFiles(benchmark::State& state) {
  SimFileSystem fs("host");
  (void)fs.mkdirs("/d");
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/d/f" + std::to_string(i++ % 256);
    benchmark::DoNotOptimize(fs.write_file(path, "payload").ok());
    benchmark::DoNotOptimize(fs.read_file(path).ok());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_WriteReadSmallFiles);

void BM_BulkWrite(benchmark::State& state) {
  SimFileSystem fs("host");
  const std::string chunk(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    Result<FileHandle> h = fs.open("/bulk", OpenMode::kWrite);
    benchmark::DoNotOptimize(h.value().write(chunk).ok());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BulkWrite)->Arg(4 << 10)->Arg(1 << 20);

void BM_DeepPathResolution(benchmark::State& state) {
  SimFileSystem fs("host");
  (void)fs.mkdirs("/a/b/c/d/e/f/g/h");
  (void)fs.write_file("/a/b/c/d/e/f/g/h/leaf", "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.stat("/a/b/c/d/e/f/g/h/leaf"));
  }
}
BENCHMARK(BM_DeepPathResolution);

void BM_StatWithMountsAndAcls(benchmark::State& state) {
  SimFileSystem fs("host");
  for (int i = 0; i < 8; ++i) {
    fs.add_mount("/m" + std::to_string(i), 1 << 20);
    fs.set_access("/m" + std::to_string(i), true, i % 2 == 0);
  }
  (void)fs.write_file("/m7/f", "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.stat("/m7/f"));
  }
}
BENCHMARK(BM_StatWithMountsAndAcls);

void BM_JournalAppend(benchmark::State& state) {
  // The schedd's hot path: append a line to the spool journal.
  SimFileSystem fs("host");
  (void)fs.mkdirs("/spool");
  for (auto _ : state) {
    Result<FileHandle> h = fs.open("/spool/journal.log", OpenMode::kAppend);
    benchmark::DoNotOptimize(h.value().write("LOG event line\n").ok());
  }
}
BENCHMARK(BM_JournalAppend);

}  // namespace

BENCHMARK_MAIN();
