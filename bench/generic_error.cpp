// EXP-GEN — reproduces §3.4 "Generic Errors": a generic error interface
// (everything is an IOException) forces caller and implementor to guess;
// a concise, finite interface (Principle 4) plus escaping conversion
// (Principle 2) behaves predictably.
//
// Two conditions are injected under each discipline:
//  * DiskFull during write — *contractual* for write under the concise
//    interface; under the generic one, a real-world implementation the
//    paper cites simply blocks forever.
//  * CredentialsExpired / connection loss during I/O — outside any
//    reasonable I/O contract; generic launders it into a program result,
//    concise escapes with the true scope.
#include <cstdio>
#include <string>

#include "jvm/jvm.hpp"

using namespace esg;
using namespace esg::jvm;

namespace {

struct Cell {
  std::string program_saw;   // what surfaced inside the JVM
  std::string scope;         // scope recorded by the wrapper
  bool hung = false;
};

Cell run(IoDiscipline discipline, bool diskfull_blocks,
         ErrorKind inject, std::uint64_t seed) {
  sim::Engine engine(seed);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");

  JobProgram program;
  if (inject == ErrorKind::kDiskFull) {
    fs.add_mount("/data", 16);  // tiny quota
    (void)fs.mkdirs("/data");
    program = ProgramBuilder("Writer")
                  .open_write("/data/out", 0)
                  .write(0, 1 << 20)
                  .close_stream(0)
                  .build();
  } else {
    // Credentials expire mid-run: injected as a transient fault beneath
    // an otherwise fine open; model via an ACL flip after open.
    (void)fs.mkdirs("/remote");
    (void)fs.write_file("/remote/in", std::string(1 << 16, 'x'));
    program = ProgramBuilder("Reader")
                  .open_read("/remote/in", 0)
                  .read(0, 1024)
                  .read(0, 1024)
                  .close_stream(0)
                  .build();
  }

  // A LocalJavaIo wrapper that rewrites the second read's failure into the
  // injected kind — simulating the proxy-level condition.
  class InjectingIo final : public JavaIo {
   public:
    InjectingIo(fs::SimFileSystem& fs, IoDiscipline discipline,
                bool diskfull_blocks, ErrorKind inject)
        : inner_(fs, discipline),
          discipline_(discipline),
          diskfull_blocks_(diskfull_blocks),
          inject_(inject) {}

    void open_read(int s, const std::string& p, OpenCb cb) override {
      inner_.open_read(s, p, std::move(cb));
    }
    void open_write(int s, const std::string& p, OpenCb cb) override {
      inner_.open_write(s, p, std::move(cb));
    }
    void read(int s, std::int64_t n, ReadCb cb) override {
      ++reads_;
      if (inject_ != ErrorKind::kDiskFull && reads_ == 2) {
        // The credential expired between reads.
        cb(IoResult<std::int64_t>{classify_io_failure(
            discipline_, ChirpJavaIo::read_contract(),
            Error(inject_, "proxy: credentials expired")
                .with_label("injected", "credentials"))});
        return;
      }
      inner_.read(s, n, std::move(cb));
    }
    void write(int s, std::int64_t n, WriteCb cb) override {
      inner_.write(s, n, [this, cb = std::move(cb)](IoResult<std::int64_t> r) {
        if (auto* t = std::get_if<JavaThrowable>(&r);
            t != nullptr && t->error.kind() == ErrorKind::kDiskFull &&
            discipline_ == IoDiscipline::kGeneric && diskfull_blocks_) {
          // §3.4: "at least one Java implementation avoids this problem
          // entirely by blocking indefinitely when the disk is full."
          return;
        }
        cb(std::move(r));
      });
    }
    void close(int s, CloseCb cb) override { inner_.close(s, std::move(cb)); }

   private:
    LocalJavaIo inner_;
    IoDiscipline discipline_;
    bool diskfull_blocks_;
    ErrorKind inject_;
    int reads_ = 0;
  };

  InjectingIo io(fs, discipline, diskfull_blocks, inject);
  JvmConfig config;
  SimJvm jvm(engine, config);
  Cell cell;
  bool done = false;
  jvm.run(program, io, WrapMode::kWrapped, &fs, "/scratch/.result",
          [&](const JvmOutcome& outcome) {
            done = true;
            if (outcome.completed_main) {
              cell.program_saw = "completed";
              cell.scope = "program";
              return;
            }
            if (outcome.condition.has_value()) {
              cell.program_saw =
                  std::string(kind_name(outcome.condition->kind()));
            }
          });
  engine.run(SimTime::minutes(10));
  if (!done) {
    cell.hung = true;
    cell.program_saw = "(blocked forever)";
    cell.scope = "-";
    return cell;
  }
  Result<std::string> text = fs.read_file("/scratch/.result");
  if (text.ok()) {
    Result<ResultFile> rf = ResultFile::parse(text.value());
    if (rf.ok() && rf.value().error.has_value()) {
      cell.scope = std::string(scope_name(rf.value().error->scope()));
      cell.program_saw = std::string(kind_name(rf.value().error->kind()));
    } else if (rf.ok()) {
      cell.scope = "program";
    }
  }
  return cell;
}

}  // namespace

int main() {
  std::printf(
      "EXP-GEN (paper §3.4): the generic error interface vs Principle 4\n\n");
  std::printf("%-26s | %-28s | %-28s | %s\n", "injected condition",
              "generic (IOException)", "generic (blocking impl)",
              "concise + escaping");
  std::printf("%.26s-+-%.28s-+-%.28s-+-%.28s\n",
              "--------------------------", "----------------------------",
              "----------------------------", "----------------------------");

  auto fmt = [](const Cell& c) {
    if (c.hung) return std::string("HANGS (paper's cited impl)");
    return c.program_saw + " [" + c.scope + "]";
  };

  const Cell diskfull_generic = run(IoDiscipline::kGeneric, false,
                                    ErrorKind::kDiskFull, 1);
  const Cell diskfull_blocking = run(IoDiscipline::kGeneric, true,
                                     ErrorKind::kDiskFull, 1);
  const Cell diskfull_concise = run(IoDiscipline::kConcise, false,
                                    ErrorKind::kDiskFull, 1);
  std::printf("%-26s | %-28s | %-28s | %s\n", "DiskFull during write",
              fmt(diskfull_generic).c_str(), fmt(diskfull_blocking).c_str(),
              fmt(diskfull_concise).c_str());

  const Cell cred_generic = run(IoDiscipline::kGeneric, false,
                                ErrorKind::kCredentialsExpired, 2);
  const Cell cred_blocking = run(IoDiscipline::kGeneric, true,
                                 ErrorKind::kCredentialsExpired, 2);
  const Cell cred_concise = run(IoDiscipline::kConcise, false,
                                ErrorKind::kCredentialsExpired, 2);
  std::printf("%-26s | %-28s | %-28s | %s\n", "CredentialsExpired in read",
              fmt(cred_generic).c_str(), fmt(cred_blocking).c_str(),
              fmt(cred_concise).c_str());

  std::printf(
      "\nshape check:\n"
      "  generic: credentials-expired surfaces at program scope (laundered)"
      ": %s\n",
      cred_generic.scope == "program" ? "yes" : "no");
  std::printf("  generic blocking impl hangs on DiskFull: %s\n",
              diskfull_blocking.hung ? "yes" : "no");
  std::printf(
      "  concise: credentials-expired escapes with non-program scope: %s\n",
      cred_concise.scope == "remote-resource" ? "yes" : "no");
  std::printf(
      "  concise: DiskFull stays a program-visible (contractual) result: "
      "%s\n",
      diskfull_concise.scope == "program" ? "yes" : "no");
  const bool ok = cred_generic.scope == "program" && diskfull_blocking.hung &&
                  cred_concise.scope == "remote-resource" &&
                  diskfull_concise.scope == "program";
  std::printf("  verdict: %s\n",
              ok ? "REPRODUCES the paper's qualitative result"
                 : "DOES NOT match the expected shape");
  return ok ? 0 : 1;
}
