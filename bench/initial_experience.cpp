// EXP-INIT — reproduces §2.3 "Initial Experience": under the naive
// discipline, nearly any failure in a component bounces the job back to
// the user with an error message; under the scoped redesign users see
// their program's results (including its own exceptions) and nothing else.
//
// Pool: mixed machines (healthy, misconfigured Java, tiny heap), plus a
// mid-run home-filesystem outage. Workload: compute + remote-I/O jobs,
// a fraction with genuine program errors.
#include <cstdio>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

pool::PoolReport run(daemons::DisciplineConfig discipline, std::uint64_t seed,
                     int jobs) {
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = discipline;
  // 10 machines: 7 healthy, 2 with broken Java installs, 1 with a tiny
  // heap — the kind of heterogeneous pool §2.3 describes.
  for (int i = 0; i < 7; ++i) {
    config.machines.push_back(pool::MachineSpec::good("good" + std::to_string(i)));
  }
  config.machines.push_back(pool::MachineSpec::misconfigured_java("badjvm0"));
  config.machines.push_back(pool::MachineSpec::misconfigured_java("badjvm1"));
  config.machines.push_back(pool::MachineSpec::tiny_heap("smallheap0", 8 << 20));

  pool::Pool pool(config);
  pool::stage_workload_inputs(pool);

  Rng rng(seed ^ 0x5eed);
  pool::WorkloadOptions options;
  options.count = jobs;
  options.mean_compute = SimTime::sec(20);
  options.program_error_fraction = 0.15;  // users *want* to see these
  options.nonzero_exit_fraction = 0.05;
  options.remote_io_fraction = 0.4;
  options.big_alloc_fraction = 0.15;      // trips the small-heap machine
  options.big_alloc_bytes = 64 << 20;
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }

  pool.boot();
  // The shadow's shared filesystem becomes temporarily unavailable —
  // the exact §2.3 ConnectionTimedOut scenario.
  pool.engine().schedule(SimTime::minutes(5), [&pool] {
    pool.submit_fs().set_mount_online("/home", false);
  });
  pool.engine().schedule(SimTime::minutes(8), [&pool] {
    pool.submit_fs().set_mount_online("/home", true);
  });

  pool.run_until_done(SimTime::hours(12));
  return pool.report();
}

}  // namespace

int main() {
  constexpr int kJobs = 120;
  std::printf(
      "EXP-INIT (paper §2.3): naive vs scoped error discipline\n"
      "%d jobs, 10 machines (2 broken JVMs, 1 tiny heap), one 3-minute\n"
      "home-filesystem outage. 'incid' = jobs whose final, user-visible\n"
      "outcome was an incidental (environmental) error — the postmortem\n"
      "burden the paper complains about.\n\n",
      kJobs);

  std::printf("%s\n", pool::PoolReport::table_header().c_str());
  double naive_incid = 0;
  double scoped_incid = 0;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const pool::PoolReport naive =
        run(daemons::DisciplineConfig::naive(), seed, kJobs);
    const pool::PoolReport scoped =
        run(daemons::DisciplineConfig::scoped(), seed, kJobs);
    std::printf("%s\n",
                naive.table_row("naive  seed=" + std::to_string(seed)).c_str());
    std::printf("%s\n",
                scoped.table_row("scoped seed=" + std::to_string(seed)).c_str());
    naive_incid += naive.user_incidental_exposures;
    scoped_incid += scoped.user_incidental_exposures;
  }

  std::printf(
      "\nshape check (paper: naive exposed users to frequent incidental\n"
      "errors; the redesign abated the hailstorm while still delivering\n"
      "genuine program errors):\n");
  std::printf("  naive  mean incidental exposures: %.1f per %d jobs\n",
              naive_incid / 3, kJobs);
  std::printf("  scoped mean incidental exposures: %.1f per %d jobs\n",
              scoped_incid / 3, kJobs);
  std::printf("  verdict: %s\n",
              naive_incid > 0 && scoped_incid == 0
                  ? "REPRODUCES the paper's qualitative result"
                  : "DOES NOT match the expected shape");
  return naive_incid > 0 && scoped_incid == 0 ? 0 : 1;
}
