// µ-POOL — whole-grid simulation throughput: how much simulated grid per
// second of wall time. Exercises every module at once (matchmaker, ads,
// claims, shadows, starters, chirp, JVM).
#include <benchmark/benchmark.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

void BM_PoolRun(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const int jobs = static_cast<int>(state.range(1));
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    pool::PoolConfig config;
    config.seed = 7;
    config.discipline = daemons::DisciplineConfig::scoped();
    for (int i = 0; i < machines; ++i) {
      config.machines.push_back(
          pool::MachineSpec::good("exec" + std::to_string(i)));
    }
    pool::Pool pool(config);
    Rng rng(7);
    pool::WorkloadOptions options;
    options.count = jobs;
    options.mean_compute = SimTime::sec(20);
    for (auto& job : pool::make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
    const bool done = pool.run_until_done(SimTime::hours(12));
    benchmark::DoNotOptimize(done);
    total_events += pool.engine().executed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PoolRun)
    ->Args({4, 20})
    ->Args({16, 80})
    ->Args({50, 200})
    ->Unit(benchmark::kMillisecond);

void BM_PoolWithFaults(benchmark::State& state) {
  for (auto _ : state) {
    pool::PoolConfig config;
    config.seed = 11;
    config.discipline = daemons::DisciplineConfig::scoped();
    config.discipline.schedd_avoidance = true;
    for (int i = 0; i < 8; ++i) {
      config.machines.push_back(
          pool::MachineSpec::good("good" + std::to_string(i)));
    }
    config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
    config.machines.push_back(pool::MachineSpec::misconfigured_java("bad1"));
    pool::Pool pool(config);
    Rng rng(11);
    pool::WorkloadOptions options;
    options.count = 40;
    options.mean_compute = SimTime::sec(10);
    options.program_error_fraction = 0.2;
    for (auto& job : pool::make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
    benchmark::DoNotOptimize(pool.run_until_done(SimTime::hours(12)));
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_PoolWithFaults)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
