// µ-POOL — whole-grid simulation throughput: how much simulated grid per
// second of wall time. Exercises every module at once (matchmaker, ads,
// claims, shadows, starters, chirp, JVM).
//
// Two entry points:
//   (default)   google-benchmark microbenchmarks, as before
//   --scale     the kernel-scale run: a 10k-machine / 100k-job
//               heterogeneous pool driven to completion, reporting
//               events/sec, peak RSS, and match-evaluation counters.
//               With --budget it becomes the CI gate (ctest:
//               pool_scale_budget): nonzero exit when the run misses its
//               committed budgets. --machines=N / --jobs=N override the
//               shape; --json=PATH writes the numbers as a CI artifact.
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

void BM_PoolRun(benchmark::State& state) {
  const int machines = static_cast<int>(state.range(0));
  const int jobs = static_cast<int>(state.range(1));
  std::uint64_t total_events = 0;
  for (auto _ : state) {
    pool::PoolConfig config;
    config.seed = 7;
    config.discipline = daemons::DisciplineConfig::scoped();
    for (int i = 0; i < machines; ++i) {
      config.machines.push_back(
          pool::MachineSpec::good("exec" + std::to_string(i)));
    }
    pool::Pool pool(config);
    Rng rng(7);
    pool::WorkloadOptions options;
    options.count = jobs;
    options.mean_compute = SimTime::sec(20);
    for (auto& job : pool::make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
    const bool done = pool.run_until_done(SimTime::hours(12));
    benchmark::DoNotOptimize(done);
    total_events += pool.engine().executed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(total_events), benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_PoolRun)
    ->Args({4, 20})
    ->Args({16, 80})
    ->Args({50, 200})
    ->Unit(benchmark::kMillisecond);

void BM_PoolWithFaults(benchmark::State& state) {
  for (auto _ : state) {
    pool::PoolConfig config;
    config.seed = 11;
    config.discipline = daemons::DisciplineConfig::scoped();
    config.discipline.schedd_avoidance = true;
    for (int i = 0; i < 8; ++i) {
      config.machines.push_back(
          pool::MachineSpec::good("good" + std::to_string(i)));
    }
    config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
    config.machines.push_back(pool::MachineSpec::misconfigured_java("bad1"));
    pool::Pool pool(config);
    Rng rng(11);
    pool::WorkloadOptions options;
    options.count = 40;
    options.mean_compute = SimTime::sec(10);
    options.program_error_fraction = 0.2;
    for (auto& job : pool::make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
    benchmark::DoNotOptimize(pool.run_until_done(SimTime::hours(12)));
  }
  state.SetItemsProcessed(state.iterations() * 40);
}
BENCHMARK(BM_PoolWithFaults)->Unit(benchmark::kMillisecond);

// ---- the kernel-scale run (--scale) ----

// Sanitizer builds distort absolute timings (instrumented memory accesses
// dominate), so the scale run shrinks and its budgets loosen. GCC defines
// __SANITIZE_*; clang needs __has_feature.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

struct ScaleOptions {
  int machines = 10'000;
  int jobs = 100'000;
  bool budget = false;
  std::string json;
};

struct ScaleResult {
  bool completed = false;
  double wall_sec = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  std::uint64_t matches = 0;
  std::uint64_t match_evals = 0;
  double evals_per_match = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t attempts = 0;
  std::uint64_t claims_denied = 0;
  long peak_rss_mb = 0;
};

/// Peak resident set of this process so far, in MB (ru_maxrss is KB on
/// Linux).
long peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss / 1024;
}

/// The committed kernel-at-scale configuration: a heterogeneous pool
/// (scale_tiers: 4 arches × 3 systems × memory) with ad traffic tuned the
/// way a real large pool would be — slower advertise/negotiation periods,
/// coalesced event-driven submitter ads, a deep advertised-job window.
ScaleResult run_scale_once(const ScaleOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();

  pool::PoolConfig config;
  config.seed = 7;
  config.discipline = daemons::DisciplineConfig::scoped();
  // Claim/release transitions push ads immediately, so the periodic
  // refresh is only a liveness backstop — slow it way down and give ads a
  // matching lifetime. This is how a real big pool is tuned: the update
  // stream is event-driven, the poll is for crash detection.
  config.timeouts.matchmaker_interval = SimTime::sec(10);
  config.timeouts.advertise_interval = SimTime::sec(300);
  config.timeouts.ad_lifetime = SimTime::sec(900);
  config.timeouts.advertise_max_jobs = 1000;
  // Submitter ads carry the whole idle window (1000 job ads serialized
  // per push), so the coalesce window is the single biggest lever on ad
  // traffic: 2s keeps the matchmaker's view fresher than a negotiation
  // cycle while batching every claim burst into one push.
  config.timeouts.advertise_coalesce = SimTime::sec(2);
  config.machines = pool::make_scale_machines(opt.machines);
  pool::Pool pool(config);

  Rng rng(7);
  pool::WorkloadOptions options;
  options.count = opt.jobs;
  options.mean_compute = SimTime::minutes(5);
  for (auto& job : pool::make_scale_workload(options, rng)) {
    pool.submit(std::move(job));
  }

  ScaleResult result;
  result.completed = pool.run_until_done(SimTime::hours(48));
  const auto t1 = std::chrono::steady_clock::now();

  result.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  result.events = pool.engine().executed();
  result.events_per_sec =
      result.wall_sec > 0 ? static_cast<double>(result.events) / result.wall_sec
                          : 0;
  result.matches = pool.matchmaker().matches_made();
  result.match_evals = pool.matchmaker().match_evals();
  result.evals_per_match =
      result.matches > 0 ? static_cast<double>(result.match_evals) /
                               static_cast<double>(result.matches)
                         : 0;
  for (const auto& [id, record] : pool.schedd().jobs()) {
    if (record.state == daemons::JobState::kCompleted) ++result.jobs_completed;
  }
  result.attempts = pool.schedd().total_attempts();
  result.claims_denied = pool.schedd().claims_denied();
  result.peak_rss_mb = peak_rss_mb();
  return result;
}

void write_scale_json(const std::string& path, const ScaleOptions& opt,
                      const ScaleResult& r, bool ok) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "scale: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"machines\": %d,\n"
               "  \"jobs\": %d,\n"
               "  \"sanitized\": %s,\n"
               "  \"completed\": %s,\n"
               "  \"wall_sec\": %.3f,\n"
               "  \"events\": %llu,\n"
               "  \"events_per_sec\": %.0f,\n"
               "  \"matches\": %llu,\n"
               "  \"match_evals\": %llu,\n"
               "  \"evals_per_match\": %.2f,\n"
               "  \"jobs_completed\": %llu,\n"
               "  \"peak_rss_mb\": %ld,\n"
               "  \"budget_ok\": %s\n"
               "}\n",
               opt.machines, opt.jobs, kSanitized ? "true" : "false",
               r.completed ? "true" : "false", r.wall_sec,
               static_cast<unsigned long long>(r.events), r.events_per_sec,
               static_cast<unsigned long long>(r.matches),
               static_cast<unsigned long long>(r.match_evals),
               r.evals_per_match,
               static_cast<unsigned long long>(r.jobs_completed),
               r.peak_rss_mb, ok ? "true" : "false");
  std::fclose(f);
}

int run_scale(ScaleOptions opt) {
  if (kSanitized) {
    // A sanitized 10k×100k run would take tens of minutes; a quarter-size
    // pool still exercises every code path the gate cares about.
    opt.machines = std::min(opt.machines, 2'500);
    opt.jobs = std::min(opt.jobs, 25'000);
  }

  ScaleResult r = run_scale_once(opt);

  std::printf("pool scale run%s: %d machines, %d jobs\n",
              kSanitized ? " (sanitized)" : "", opt.machines, opt.jobs);
  std::printf("  completed        %s (%llu jobs ran to completion)\n",
              r.completed ? "yes" : "NO",
              static_cast<unsigned long long>(r.jobs_completed));
  std::printf("  wall time        %8.1f s\n", r.wall_sec);
  std::printf("  events           %8llu  (%.0f events/s)\n",
              static_cast<unsigned long long>(r.events), r.events_per_sec);
  std::printf("  matches          %8llu\n",
              static_cast<unsigned long long>(r.matches));
  std::printf("  match evals      %8llu  (%.1f per match)\n",
              static_cast<unsigned long long>(r.match_evals),
              r.evals_per_match);
  std::printf("  attempts         %8llu  (%llu claims denied)\n",
              static_cast<unsigned long long>(r.attempts),
              static_cast<unsigned long long>(r.claims_denied));
  std::printf("  peak RSS         %8ld MB\n", r.peak_rss_mb);

  bool ok = true;
  if (opt.budget) {
    // The committed budgets (generous: CI boxes are shared and slow; the
    // gate exists to catch order-of-magnitude regressions — an accidental
    // O(jobs × machines) scan, a storage leak — not 20% noise). Reference
    // measurement at 10k × 100k: 136s wall, ~18k events/s, 799 MB peak,
    // 61.6 evals/match.
    const double wall_limit = kSanitized ? 600.0 : 420.0;
    const double events_per_sec_floor = kSanitized ? 1'500.0 : 5'000.0;
    const long rss_limit_mb = kSanitized ? 4'096 : 2'048;
    // The index keeps ranking evaluations near the per-tier free-machine
    // count. Exhaustive scanning is O(advertised × machines) and blows
    // past this by orders of magnitude.
    const double evals_per_match_limit = 500.0;

    if (!r.completed) {
      std::fprintf(stderr, "budget FAIL: run did not complete in sim time\n");
      ok = false;
    }
    if (r.wall_sec > wall_limit) {
      std::fprintf(stderr, "budget FAIL: wall %.1fs over %.0fs limit\n",
                   r.wall_sec, wall_limit);
      ok = false;
    }
    if (r.events_per_sec < events_per_sec_floor) {
      std::fprintf(stderr, "budget FAIL: %.0f events/s under %.0f floor\n",
                   r.events_per_sec, events_per_sec_floor);
      ok = false;
    }
    if (r.peak_rss_mb > rss_limit_mb) {
      std::fprintf(stderr, "budget FAIL: peak RSS %ldMB over %ldMB limit\n",
                   r.peak_rss_mb, rss_limit_mb);
      ok = false;
    }
    if (r.evals_per_match > evals_per_match_limit) {
      std::fprintf(stderr,
                   "budget FAIL: %.1f match evals per match over %.0f limit "
                   "(index not prefiltering?)\n",
                   r.evals_per_match, evals_per_match_limit);
      ok = false;
    }
    if (ok) std::printf("  budget           OK\n");
  }

  if (!opt.json.empty()) write_scale_json(opt.json, opt, r, ok);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleOptions opt;
  bool scale = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--scale") {
      scale = true;
    } else if (arg == "--budget") {
      opt.budget = true;
    } else if (arg.rfind("--machines=", 0) == 0) {
      opt.machines = std::atoi(argv[i] + 11);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      opt.jobs = std::atoi(argv[i] + 7);
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json = std::string(arg.substr(7));
    }
  }
  if (scale) return run_scale(opt);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
