// µ-SIM — event-engine and RNG throughput: the substrate everything else
// stands on.
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"

using namespace esg;
using namespace esg::sim;

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine(1);
    long sum = 0;
    for (int i = 0; i < n; ++i) {
      engine.schedule(SimTime::usec(i % 1000), [&sum] { ++sum; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_CascadingEvents(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine(1);
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < depth) engine.schedule(SimTime::usec(1), tick);
    };
    engine.schedule(SimTime::usec(1), tick);
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_CascadingEvents)->Arg(10000);

void BM_CancelledTimers(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Engine engine(1);
    std::vector<TimerHandle> handles;
    handles.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      handles.push_back(engine.schedule(SimTime::sec(1), [] {}));
    }
    for (TimerHandle& h : handles) h.cancel();
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CancelledTimers)->Arg(10000);

void BM_RngU64(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_RngU64);

void BM_RngExponential(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(10.0));
  }
}
BENCHMARK(BM_RngExponential);

}  // namespace

BENCHMARK_MAIN();
