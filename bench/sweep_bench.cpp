// Sweep-runner scaling: the same seed×fault-rate grid of independent pool
// simulations executed at 1, 2, 4, and 8 worker threads. Every width
// produces byte-identical per-cell reports (checked here, not assumed);
// what changes is the wall clock.
//
//   $ ./sweep_bench [--seeds N] [--jobs N] [--json FILE]
//
// Prints a human-readable scaling table; with --json also writes
// machine-readable results ({"widths": [{"threads": 1, "wall_s": ...}]}).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "pool/sweep.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

pool::SweepCell make_cell(std::uint64_t seed, double fault_rate, int jobs) {
  pool::SweepCell cell;
  cell.config.seed = seed;
  cell.config.discipline = daemons::DisciplineConfig::scoped();
  cell.config.discipline.schedd_avoidance = true;
  cell.config.machines.push_back(
      pool::MachineSpec::misconfigured_java("bad0"));
  pool::MachineSpec flaky = pool::MachineSpec::good("good0");
  flaky.fs_fault_rate = fault_rate;
  cell.config.machines.push_back(std::move(flaky));
  cell.config.machines.push_back(pool::MachineSpec::good("good1"));
  std::ostringstream label;
  label << "seed" << seed << "/fault" << static_cast<int>(fault_rate * 100);
  cell.label = label.str();
  cell.setup = [seed, jobs](pool::Pool& p) {
    pool::stage_workload_inputs(p);
    pool::WorkloadOptions options;
    options.count = jobs;
    options.mean_compute = SimTime::sec(10);
    options.remote_io_fraction = 0.25;
    options.program_error_fraction = 0.15;
    Rng rng(seed * 7919 + 17);
    for (auto& job : pool::make_workload(options, rng)) {
      p.submit(std::move(job));
    }
  };
  return cell;
}

/// One comparable string per cell: the determinism cross-check between
/// widths rides on report bytes plus the engine-event fingerprint.
std::string fingerprint(const pool::SweepReport& sweep) {
  std::ostringstream out;
  for (const pool::CellOutcome& cell : sweep.cells) {
    out << cell.label << "|" << cell.engine_events << "|"
        << cell.report.str() << "\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 8;
  int jobs = 12;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--seeds N] [--jobs N] [--json FILE]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<double> fault_rates = {0.0, 0.05, 0.1, 0.2};
  std::vector<pool::SweepCell> grid;
  for (int s = 0; s < seeds; ++s) {
    for (const double rate : fault_rates) {
      grid.push_back(
          make_cell(100 + static_cast<std::uint64_t>(s), rate, jobs));
    }
  }
  std::printf("grid: %d seed(s) x %zu fault rate(s) = %zu cells, %d jobs each\n\n",
              seeds, fault_rates.size(), grid.size(), jobs);

  struct Row {
    unsigned threads;
    double wall_s;
  };
  std::vector<Row> rows;
  std::string reference;
  bool identical = true;
  for (const unsigned width : {1u, 2u, 4u, 8u}) {
    const pool::SweepReport sweep = pool::SweepRunner(width).run(grid);
    rows.push_back({width, sweep.wall_seconds});
    const std::string fp = fingerprint(sweep);
    if (reference.empty()) {
      reference = fp;
    } else if (fp != reference) {
      identical = false;
    }
  }

  const double base = rows.front().wall_s;
  std::printf("%8s %10s %9s %11s\n", "threads", "wall (s)", "speedup",
              "cells/sec");
  for (const Row& row : rows) {
    std::printf("%8u %10.3f %8.2fx %11.1f\n", row.threads, row.wall_s,
                base / row.wall_s,
                static_cast<double>(grid.size()) / row.wall_s);
  }
  std::printf("\ncross-width determinism: %s\n",
              identical ? "byte-identical at every width"
                        : "MISMATCH (bug!)");

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << "{\n  \"cells\": " << grid.size()
        << ",\n  \"jobs_per_cell\": " << jobs
        << ",\n  \"identical_across_widths\": "
        << (identical ? "true" : "false") << ",\n  \"widths\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out << "    {\"threads\": " << rows[i].threads
          << ", \"wall_s\": " << rows[i].wall_s
          << ", \"speedup\": " << base / rows[i].wall_s << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path);
  }
  return identical ? 0 : 1;
}
