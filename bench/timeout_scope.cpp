// EXP-TIME — reproduces the §5 indeterminate-scope discussion: time
// converts small-scope errors into large-scope ones, and the NFS
// hard/soft dichotomy serves nobody.
//
// A client reads a file from a mount that is offline for a window of
// varying length. Three policies: hard mount (hide errors, wait forever),
// soft mount (expose after 3 retries), and a per-program deadline with
// scope escalation.
#include <cstdio>
#include <string>

#include "fs/retry.hpp"

using namespace esg;

namespace {

struct RunResult {
  bool succeeded = false;
  double latency = 0;
  std::string error;
  std::string scope;
};

RunResult run(SimTime outage, const RetryPolicy& policy) {
  sim::Engine engine(3);
  fs::SimFileSystem fs("submit0");
  fs.add_mount("/home", 0);
  (void)fs.write_file("/home/data", "payload");
  fs.set_mount_online("/home", false);
  engine.schedule(outage, [&fs] { fs.set_mount_online("/home", true); });

  const ScopeEscalator escalator = ScopeEscalator::grid_defaults();
  RunResult out;
  bool done = false;
  fs::read_with_policy(engine, fs, "/home/data", policy, escalator,
                       [&](fs::PolicyOutcome outcome) {
                         out.succeeded = outcome.succeeded;
                         out.latency = outcome.latency.as_sec();
                         if (outcome.error.has_value()) {
                           out.error =
                               std::string(kind_name(outcome.error->kind()));
                           out.scope =
                               std::string(scope_name(outcome.error->scope()));
                         }
                         done = true;
                       });
  engine.run(SimTime::hours(3));
  if (!done) {
    out.error = "(still waiting)";
    out.scope = "-";
  }
  return out;
}

std::string describe(const RunResult& r) {
  if (r.succeeded) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "completed after %.0fs", r.latency);
    return buf;
  }
  if (r.error == "(still waiting)") return "HUNG (never returned)";
  char buf[128];
  std::snprintf(buf, sizeof buf, "error %s [%s scope] after %.0fs",
                r.error.c_str(), r.scope.c_str(), r.latency);
  return buf;
}

}  // namespace

int main() {
  const struct {
    const char* label;
    SimTime outage;
  } outages[] = {
      {"2 seconds", SimTime::sec(2)},
      {"20 seconds", SimTime::sec(20)},
      {"5 minutes", SimTime::minutes(5)},
      {"2 hours", SimTime::hours(2)},
  };
  const struct {
    const char* label;
    RetryPolicy policy;
  } policies[] = {
      {"hard mount", RetryPolicy::hard()},
      {"soft mount (3 retries)", RetryPolicy::soft(3, SimTime::sec(1))},
      {"deadline 60s + escalate",
       RetryPolicy::with_deadline(SimTime::sec(60), SimTime::sec(2))},
  };

  std::printf(
      "EXP-TIME (paper §5): indeterminate scope, time, and mount policy\n"
      "a read against a filesystem that is offline for the given window\n\n");
  std::printf("%-12s | %-24s | %s\n", "outage", "policy", "what the caller saw");
  std::printf("%.12s-+-%.24s-+-%.40s\n", "------------",
              "------------------------", "----------------------------------------");

  bool soft_premature = false;
  bool hard_hung_long = false;
  bool deadline_escalated = false;
  for (const auto& outage : outages) {
    for (const auto& policy : policies) {
      const RunResult r = run(outage.outage, policy.policy);
      std::printf("%-12s | %-24s | %s\n", outage.label, policy.label,
                  describe(r).c_str());
      if (std::string(policy.label).starts_with("soft") &&
          outage.outage <= SimTime::sec(20) && !r.succeeded) {
        soft_premature = true;
      }
      if (std::string(policy.label).starts_with("hard") &&
          outage.outage >= SimTime::hours(2) &&
          (r.succeeded ? r.latency >= 7000 : r.error == "(still waiting)")) {
        hard_hung_long = true;
      }
      if (std::string(policy.label).starts_with("deadline") &&
          outage.outage >= SimTime::minutes(5) && !r.succeeded &&
          r.scope == "remote-resource") {
        deadline_escalated = true;
      }
    }
    std::printf("%.12s-+-%.24s-+-%.40s\n", "------------",
                "------------------------",
                "----------------------------------------");
  }

  std::printf(
      "\nshape check (paper: hard hides errors at the cost of hanging; soft\n"
      "exposes them even when patience would have won; only a per-program\n"
      "deadline lets the caller choose, and persistence widens the scope):\n");
  std::printf("  soft fails during recoverable outages : %s\n",
              soft_premature ? "yes" : "no");
  std::printf("  hard effectively hangs for long outages: %s\n",
              hard_hung_long ? "yes" : "no");
  std::printf("  deadline escalates scope with time     : %s\n",
              deadline_escalated ? "yes" : "no");
  const bool ok = soft_premature && hard_hung_long && deadline_escalated;
  std::printf("  verdict: %s\n",
              ok ? "REPRODUCES the paper's qualitative result"
                 : "DOES NOT match the expected shape");
  return ok ? 0 : 1;
}
