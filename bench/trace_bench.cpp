// µ-TRACE — flight-recorder overhead: the same whole-grid simulation run
// with the recorder disabled (the default) and enabled. The disabled case
// must cost ~nothing (one branch per instrumentation site); the enabled
// case must stay within ~10% of it.
#include <benchmark/benchmark.h>

#include "obs/trace.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

// One faulty-pool run: mixed good/misconfigured machines so the error
// paths (where the instrumentation lives) actually execute. Tracing is a
// per-pool knob (PoolConfig::trace), so each run measures its own
// recorder — no process-wide state to arm or disarm.
std::uint64_t run_pool_once(bool trace, std::uint64_t* spans) {
  pool::PoolConfig config;
  config.seed = 11;
  config.trace = trace;
  config.trace_capacity = 8192;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.schedd_avoidance = true;
  for (int i = 0; i < 8; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad1"));
  pool::Pool pool(config);
  Rng rng(11);
  pool::WorkloadOptions options;
  options.count = 40;
  options.mean_compute = SimTime::sec(10);
  options.program_error_fraction = 0.2;
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  benchmark::DoNotOptimize(pool.run_until_done(SimTime::hours(12)));
  if (spans != nullptr) *spans += pool.recorder().total_recorded();
  return pool.engine().executed();
}

void BM_PoolTraceDisabled(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) events += run_pool_once(false, nullptr);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PoolTraceDisabled)->Unit(benchmark::kMillisecond);

void BM_PoolTraceEnabled(benchmark::State& state) {
  std::uint64_t events = 0;
  std::uint64_t spans = 0;
  for (auto _ : state) {
    events += run_pool_once(true, &spans);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["spans/iter"] = benchmark::Counter(
      static_cast<double>(spans) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PoolTraceEnabled)->Unit(benchmark::kMillisecond);

// Tightest possible loop over a disabled sink: the guard branch itself.
// The sink binds an explicit (local) recorder, as all in-sim sinks do now.
void BM_DisabledSinkCall(benchmark::State& state) {
  obs::FlightRecorder rec;
  const obs::TraceSink sink("bench", &rec);
  const Error e(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sink.raised(e, 1));
  }
}
BENCHMARK(BM_DisabledSinkCall);

void BM_EnabledSinkCall(benchmark::State& state) {
  obs::FlightRecorder rec;
  rec.set_enabled(true);
  rec.set_capacity(8192);
  const obs::TraceSink sink("bench", &rec);
  const Error e(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sink.raised(e, 1));
  }
}
BENCHMARK(BM_EnabledSinkCall);

}  // namespace

BENCHMARK_MAIN();
