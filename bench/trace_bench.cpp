// µ-TRACE — flight-recorder overhead: the same whole-grid simulation run
// with the recorder disabled (the default) and enabled. The disabled case
// must cost ~nothing (one branch per instrumentation site); the enabled
// case must stay within ~10% of it.
//
// Two entry points:
//   (default)   google-benchmark microbenchmarks, as before
//   --budget    the CI overhead gate (ctest: trace_overhead_budget): wall
//               timing with min-of-reps, nonzero exit when the enabled
//               overhead or the disabled per-call cost exceeds its budget
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string_view>

#include "obs/trace.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

// One faulty-pool run: mixed good/misconfigured machines so the error
// paths (where the instrumentation lives) actually execute. Tracing is a
// per-pool knob (PoolConfig::trace), so each run measures its own
// recorder — no process-wide state to arm or disarm.
std::uint64_t run_pool_once(bool trace, std::uint64_t* spans) {
  pool::PoolConfig config;
  config.seed = 11;
  config.trace = trace;
  config.trace_capacity = 8192;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.schedd_avoidance = true;
  for (int i = 0; i < 8; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad1"));
  pool::Pool pool(config);
  Rng rng(11);
  pool::WorkloadOptions options;
  options.count = 40;
  options.mean_compute = SimTime::sec(10);
  options.program_error_fraction = 0.2;
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  benchmark::DoNotOptimize(pool.run_until_done(SimTime::hours(12)));
  if (spans != nullptr) *spans += pool.recorder().total_recorded();
  return pool.engine().executed();
}

void BM_PoolTraceDisabled(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) events += run_pool_once(false, nullptr);
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PoolTraceDisabled)->Unit(benchmark::kMillisecond);

void BM_PoolTraceEnabled(benchmark::State& state) {
  std::uint64_t events = 0;
  std::uint64_t spans = 0;
  for (auto _ : state) {
    events += run_pool_once(true, &spans);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["spans/iter"] = benchmark::Counter(
      static_cast<double>(spans) / static_cast<double>(state.iterations()));
}
BENCHMARK(BM_PoolTraceEnabled)->Unit(benchmark::kMillisecond);

// Tightest possible loop over a disabled sink: the guard branch itself.
// The sink binds an explicit (local) recorder, as all in-sim sinks do now.
void BM_DisabledSinkCall(benchmark::State& state) {
  obs::FlightRecorder rec;
  const obs::TraceSink sink("bench", &rec);
  const Error e(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sink.raised(e, 1));
  }
}
BENCHMARK(BM_DisabledSinkCall);

void BM_EnabledSinkCall(benchmark::State& state) {
  obs::FlightRecorder rec;
  rec.set_enabled(true);
  rec.set_capacity(8192);
  const obs::TraceSink sink("bench", &rec);
  const Error e(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, "x");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sink.raised(e, 1));
  }
}
BENCHMARK(BM_EnabledSinkCall);

// ---- the CI overhead budget (--budget) ----

// Sanitizer builds distort relative timings (instrumented memory accesses
// dominate), so their budgets are looser. GCC defines __SANITIZE_*;
// clang needs __has_feature.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Minimum wall time of `reps` runs of `fn`, in seconds. Min, not mean:
/// the shortest observation is the one least polluted by scheduler noise,
/// which is what an overhead *ratio* needs on a shared CI machine.
template <typename Fn>
double min_wall_sec(Fn&& fn, int reps) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Enabled-vs-disabled whole-pool overhead ratio (0.07 == 7% slower).
double measure_overhead() {
  std::uint64_t sink = 0;
  std::uint64_t spans = 0;
  const double off = min_wall_sec([&] { sink += run_pool_once(false, nullptr); },
                                  7);
  const double on = min_wall_sec([&] { sink += run_pool_once(true, &spans); },
                                 7);
  benchmark::DoNotOptimize(sink);
  if (spans == 0) {
    std::fprintf(stderr, "budget: enabled run recorded no spans?\n");
    return 1e300;  // instrumentation vanished; fail loudly
  }
  return off > 0 ? on / off - 1.0 : 1e300;
}

/// Per-call cost of a disabled sink, in nanoseconds.
double measure_disabled_ns() {
  obs::FlightRecorder rec;  // disabled: the default
  const obs::TraceSink sink("budget", &rec);
  const Error e(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, "x");
  constexpr int kCalls = 20'000'000;
  const double sec = min_wall_sec(
      [&] {
        for (int i = 0; i < kCalls; ++i) {
          benchmark::DoNotOptimize(sink.raised(e, 1));
        }
      },
      3);
  return sec / kCalls * 1e9;
}

int run_budget() {
  // The gate ISSUE-4 pinned: tracing must stay within 10% of the untraced
  // run when enabled, and a disabled call site must stay within a few
  // branch-plus-call nanoseconds (i.e. not measurably on the profile).
  const double overhead_limit = kSanitized ? 0.25 : 0.10;
  const double disabled_ns_limit = kSanitized ? 250.0 : 25.0;

  run_pool_once(true, nullptr);  // warm allocators and code before timing

  double overhead = measure_overhead();
  // A shared CI box can lose the coin toss even on min-of-reps; believe a
  // failure only if it reproduces.
  // esg-lint: allow(naked-retry) — re-measurement, not error recovery
  for (int retry = 0; retry < 2 && overhead > overhead_limit; ++retry) {
    std::fprintf(stderr,
                 "budget: enabled overhead %.1f%% over %.0f%% limit; "
                 "re-measuring\n",
                 overhead * 100, overhead_limit * 100);
    overhead = std::min(overhead, measure_overhead());
  }

  double disabled_ns = measure_disabled_ns();
  // esg-lint: allow(naked-retry) — re-measurement, not error recovery
  for (int retry = 0; retry < 2 && disabled_ns > disabled_ns_limit; ++retry) {
    std::fprintf(stderr,
                 "budget: disabled call %.2fns over %.0fns limit; "
                 "re-measuring\n",
                 disabled_ns, disabled_ns_limit);
    disabled_ns = std::min(disabled_ns, measure_disabled_ns());
  }

  std::printf("trace overhead budget%s:\n", kSanitized ? " (sanitized)" : "");
  std::printf("  enabled whole-pool overhead  %6.1f%%   (limit %.0f%%)\n",
              overhead * 100, overhead_limit * 100);
  std::printf("  disabled sink call           %6.2fns  (limit %.0fns)\n",
              disabled_ns, disabled_ns_limit);

  bool ok = true;
  if (overhead > overhead_limit) {
    std::fprintf(stderr, "budget FAIL: enabled tracing overhead too high\n");
    ok = false;
  }
  if (disabled_ns > disabled_ns_limit) {
    std::fprintf(stderr, "budget FAIL: disabled tracing is not free\n");
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--budget") return run_budget();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
