// EXP-UNIV — the universe landscape (§2.1) under one faulty pool.
//
// The same workload runs in each universe. The Java universe has the full
// §4 machinery (wrapper + concise escaping I/O); the Standard universe has
// remote I/O and checkpointing but only exit codes for results; the
// Vanilla universe has nothing. The measurement: how many incidental
// (environmental) conditions reach the user as if they were program
// results — the §2.3 metric, per universe.
#include <cstdio>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

pool::PoolReport run(daemons::Universe universe, std::uint64_t seed) {
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  for (int i = 0; i < 4; ++i) {
    pool::MachineSpec spec =
        pool::MachineSpec::good("exec" + std::to_string(i));
    if (universe == daemons::Universe::kJava) {
      // Java jobs also face owner misconfiguration; other universes don't
      // care about the JVM, so give them the same machines minus that.
    }
    config.machines.push_back(spec);
  }
  if (universe == daemons::Universe::kJava) {
    config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  }

  pool::Pool pool(config);
  pool::stage_workload_inputs(pool);
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    daemons::JobDescription job;
    job.universe = universe;
    if (universe != daemons::Universe::kJava) job.requirements = "true";
    // Built in two steps to dodge GCC's -Wrestrict false positive on
    // "literal" + to_string (PR105651) under -Werror.
    std::string program_name = "u";
    program_name += std::to_string(i);
    jvm::ProgramBuilder builder(program_name);
    builder.compute(SimTime::sec(static_cast<std::int64_t>(
        rng.exponential(15.0)) + 1));
    if (rng.chance(0.5)) {
      builder.open_read("/home/data/input.dat", 0).read(0, 1024).close_stream(0);
    }
    if (rng.chance(0.15)) {
      builder.throw_exception(ErrorKind::kArrayIndexOutOfBounds);
    }
    job.program = builder.build();
    pool.submit(std::move(job));
  }
  pool.boot();
  // The home filesystem flaps for three minutes mid-run.
  pool.engine().schedule(SimTime::minutes(2), [&pool] {
    pool.submit_fs().set_mount_online("/home", false);
  });
  pool.engine().schedule(SimTime::minutes(5), [&pool] {
    pool.submit_fs().set_mount_online("/home", true);
  });
  pool.run_until_done(SimTime::hours(12));
  return pool.report();
}

}  // namespace

int main() {
  std::printf(
      "EXP-UNIV (paper §2.1): error visibility across universes\n"
      "40 jobs (50%% remote I/O, 15%% genuine program errors), a 3-minute\n"
      "home-filesystem outage; scoped discipline throughout.\n\n");
  std::printf("%-10s %6s %8s %8s %8s %9s\n", "universe", "ok", "prgerr",
              "incid", "unexec", "attempts");

  int java_incid = -1;
  int java_prgerr = -1;
  int standard_incid = -1;
  int vanilla_prgerr = -1;
  for (const daemons::Universe universe :
       {daemons::Universe::kJava, daemons::Universe::kStandard,
        daemons::Universe::kVanilla}) {
    const pool::PoolReport report = run(universe, 7);
    std::printf("%-10s %6d %8d %8d %8d %9llu\n",
                std::string(daemons::universe_name(universe)).c_str(),
                report.completed_genuine, report.completed_program_error,
                report.user_incidental_exposures, report.unexecutable,
                static_cast<unsigned long long>(report.total_attempts));
    if (universe == daemons::Universe::kJava) {
      java_incid = report.user_incidental_exposures;
      java_prgerr = report.completed_program_error;
    }
    if (universe == daemons::Universe::kStandard) {
      standard_incid = report.user_incidental_exposures;
    }
    if (universe == daemons::Universe::kVanilla) {
      vanilla_prgerr = report.completed_program_error;
    }
  }

  std::printf(
      "\nshape check: the Java universe's wrapper + escaping I/O shields\n"
      "the user completely; the Standard universe reaches remote data but\n"
      "launders outage-time failures into results (no wrapper to read the\n"
      "scope); the Vanilla universe cannot even reach remote data — its\n"
      "I/O jobs all die with FileNotFound *as a program result*, which is\n"
      "why its 'prgerr' column dwarfs the genuine error rate:\n");
  const bool ok = java_incid == 0 && standard_incid > 0 &&
                  vanilla_prgerr > java_prgerr * 2;
  std::printf(
      "  java: incid=%d; standard: incid=%d; vanilla prgerr=%d vs java "
      "prgerr=%d\n",
      java_incid, standard_incid, vanilla_prgerr, java_prgerr);
  std::printf("  verdict: %s\n",
              ok ? "REPRODUCES the expected universe contrast"
                 : "DOES NOT match the expected shape");
  return ok ? 0 : 1;
}
