file(REMOVE_RECURSE
  "CMakeFiles/ablation_fixes.dir/ablation_fixes.cpp.o"
  "CMakeFiles/ablation_fixes.dir/ablation_fixes.cpp.o.d"
  "ablation_fixes"
  "ablation_fixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
