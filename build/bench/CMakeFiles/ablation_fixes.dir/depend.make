# Empty dependencies file for ablation_fixes.
# This may be replaced when dependencies are built.
