file(REMOVE_RECURSE
  "CMakeFiles/blackhole.dir/blackhole.cpp.o"
  "CMakeFiles/blackhole.dir/blackhole.cpp.o.d"
  "blackhole"
  "blackhole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackhole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
