# Empty compiler generated dependencies file for blackhole.
# This may be replaced when dependencies are built.
