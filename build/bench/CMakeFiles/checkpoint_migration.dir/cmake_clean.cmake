file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_migration.dir/checkpoint_migration.cpp.o"
  "CMakeFiles/checkpoint_migration.dir/checkpoint_migration.cpp.o.d"
  "checkpoint_migration"
  "checkpoint_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
