# Empty compiler generated dependencies file for checkpoint_migration.
# This may be replaced when dependencies are built.
