file(REMOVE_RECURSE
  "CMakeFiles/chirp_bench.dir/chirp_bench.cpp.o"
  "CMakeFiles/chirp_bench.dir/chirp_bench.cpp.o.d"
  "chirp_bench"
  "chirp_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
