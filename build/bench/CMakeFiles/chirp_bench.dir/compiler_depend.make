# Empty compiler generated dependencies file for chirp_bench.
# This may be replaced when dependencies are built.
