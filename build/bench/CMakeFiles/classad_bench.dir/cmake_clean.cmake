file(REMOVE_RECURSE
  "CMakeFiles/classad_bench.dir/classad_bench.cpp.o"
  "CMakeFiles/classad_bench.dir/classad_bench.cpp.o.d"
  "classad_bench"
  "classad_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classad_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
