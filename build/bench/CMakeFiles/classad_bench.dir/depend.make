# Empty dependencies file for classad_bench.
# This may be replaced when dependencies are built.
