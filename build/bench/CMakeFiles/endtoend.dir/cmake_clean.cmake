file(REMOVE_RECURSE
  "CMakeFiles/endtoend.dir/endtoend.cpp.o"
  "CMakeFiles/endtoend.dir/endtoend.cpp.o.d"
  "endtoend"
  "endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
