# Empty dependencies file for endtoend.
# This may be replaced when dependencies are built.
