file(REMOVE_RECURSE
  "CMakeFiles/fig3_scope_routing.dir/fig3_scope_routing.cpp.o"
  "CMakeFiles/fig3_scope_routing.dir/fig3_scope_routing.cpp.o.d"
  "fig3_scope_routing"
  "fig3_scope_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_scope_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
