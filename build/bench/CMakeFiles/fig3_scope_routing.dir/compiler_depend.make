# Empty compiler generated dependencies file for fig3_scope_routing.
# This may be replaced when dependencies are built.
