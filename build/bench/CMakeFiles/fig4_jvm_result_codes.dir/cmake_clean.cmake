file(REMOVE_RECURSE
  "CMakeFiles/fig4_jvm_result_codes.dir/fig4_jvm_result_codes.cpp.o"
  "CMakeFiles/fig4_jvm_result_codes.dir/fig4_jvm_result_codes.cpp.o.d"
  "fig4_jvm_result_codes"
  "fig4_jvm_result_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_jvm_result_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
