# Empty compiler generated dependencies file for fig4_jvm_result_codes.
# This may be replaced when dependencies are built.
