file(REMOVE_RECURSE
  "CMakeFiles/fs_bench.dir/fs_bench.cpp.o"
  "CMakeFiles/fs_bench.dir/fs_bench.cpp.o.d"
  "fs_bench"
  "fs_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
