# Empty compiler generated dependencies file for fs_bench.
# This may be replaced when dependencies are built.
