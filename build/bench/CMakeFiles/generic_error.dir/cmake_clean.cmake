file(REMOVE_RECURSE
  "CMakeFiles/generic_error.dir/generic_error.cpp.o"
  "CMakeFiles/generic_error.dir/generic_error.cpp.o.d"
  "generic_error"
  "generic_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
