# Empty compiler generated dependencies file for generic_error.
# This may be replaced when dependencies are built.
