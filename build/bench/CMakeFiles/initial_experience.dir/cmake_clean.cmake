file(REMOVE_RECURSE
  "CMakeFiles/initial_experience.dir/initial_experience.cpp.o"
  "CMakeFiles/initial_experience.dir/initial_experience.cpp.o.d"
  "initial_experience"
  "initial_experience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initial_experience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
