# Empty compiler generated dependencies file for initial_experience.
# This may be replaced when dependencies are built.
