file(REMOVE_RECURSE
  "CMakeFiles/pool_bench.dir/pool_bench.cpp.o"
  "CMakeFiles/pool_bench.dir/pool_bench.cpp.o.d"
  "pool_bench"
  "pool_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pool_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
