# Empty dependencies file for pool_bench.
# This may be replaced when dependencies are built.
