file(REMOVE_RECURSE
  "CMakeFiles/sim_bench.dir/sim_bench.cpp.o"
  "CMakeFiles/sim_bench.dir/sim_bench.cpp.o.d"
  "sim_bench"
  "sim_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
