# Empty compiler generated dependencies file for sim_bench.
# This may be replaced when dependencies are built.
