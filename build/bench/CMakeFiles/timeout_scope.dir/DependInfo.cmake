
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/timeout_scope.cpp" "bench/CMakeFiles/timeout_scope.dir/timeout_scope.cpp.o" "gcc" "bench/CMakeFiles/timeout_scope.dir/timeout_scope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pool/CMakeFiles/esg_pool.dir/DependInfo.cmake"
  "/root/repo/build/src/daemons/CMakeFiles/esg_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/esg_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/esg_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/esg_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/esg_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
