file(REMOVE_RECURSE
  "CMakeFiles/timeout_scope.dir/timeout_scope.cpp.o"
  "CMakeFiles/timeout_scope.dir/timeout_scope.cpp.o.d"
  "timeout_scope"
  "timeout_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeout_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
