# Empty compiler generated dependencies file for timeout_scope.
# This may be replaced when dependencies are built.
