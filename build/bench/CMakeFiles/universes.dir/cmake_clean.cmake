file(REMOVE_RECURSE
  "CMakeFiles/universes.dir/universes.cpp.o"
  "CMakeFiles/universes.dir/universes.cpp.o.d"
  "universes"
  "universes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
