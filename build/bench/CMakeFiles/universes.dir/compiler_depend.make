# Empty compiler generated dependencies file for universes.
# This may be replaced when dependencies are built.
