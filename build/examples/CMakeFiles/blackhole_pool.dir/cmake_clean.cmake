file(REMOVE_RECURSE
  "CMakeFiles/blackhole_pool.dir/blackhole_pool.cpp.o"
  "CMakeFiles/blackhole_pool.dir/blackhole_pool.cpp.o.d"
  "blackhole_pool"
  "blackhole_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackhole_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
