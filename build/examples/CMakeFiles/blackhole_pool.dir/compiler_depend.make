# Empty compiler generated dependencies file for blackhole_pool.
# This may be replaced when dependencies are built.
