file(REMOVE_RECURSE
  "CMakeFiles/classad_eval.dir/classad_eval.cpp.o"
  "CMakeFiles/classad_eval.dir/classad_eval.cpp.o.d"
  "classad_eval"
  "classad_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classad_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
