# Empty dependencies file for classad_eval.
# This may be replaced when dependencies are built.
