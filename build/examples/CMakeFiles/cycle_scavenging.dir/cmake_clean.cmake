file(REMOVE_RECURSE
  "CMakeFiles/cycle_scavenging.dir/cycle_scavenging.cpp.o"
  "CMakeFiles/cycle_scavenging.dir/cycle_scavenging.cpp.o.d"
  "cycle_scavenging"
  "cycle_scavenging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_scavenging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
