# Empty compiler generated dependencies file for cycle_scavenging.
# This may be replaced when dependencies are built.
