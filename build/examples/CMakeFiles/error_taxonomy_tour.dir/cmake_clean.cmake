file(REMOVE_RECURSE
  "CMakeFiles/error_taxonomy_tour.dir/error_taxonomy_tour.cpp.o"
  "CMakeFiles/error_taxonomy_tour.dir/error_taxonomy_tour.cpp.o.d"
  "error_taxonomy_tour"
  "error_taxonomy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_taxonomy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
