# Empty dependencies file for error_taxonomy_tour.
# This may be replaced when dependencies are built.
