file(REMOVE_RECURSE
  "CMakeFiles/java_universe_demo.dir/java_universe_demo.cpp.o"
  "CMakeFiles/java_universe_demo.dir/java_universe_demo.cpp.o.d"
  "java_universe_demo"
  "java_universe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/java_universe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
