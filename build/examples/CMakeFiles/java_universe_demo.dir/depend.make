# Empty dependencies file for java_universe_demo.
# This may be replaced when dependencies are built.
