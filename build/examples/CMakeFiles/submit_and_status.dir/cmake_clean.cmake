file(REMOVE_RECURSE
  "CMakeFiles/submit_and_status.dir/submit_and_status.cpp.o"
  "CMakeFiles/submit_and_status.dir/submit_and_status.cpp.o.d"
  "submit_and_status"
  "submit_and_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/submit_and_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
