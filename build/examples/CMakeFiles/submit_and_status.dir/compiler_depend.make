# Empty compiler generated dependencies file for submit_and_status.
# This may be replaced when dependencies are built.
