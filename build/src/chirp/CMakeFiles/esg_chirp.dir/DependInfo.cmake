
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chirp/client.cpp" "src/chirp/CMakeFiles/esg_chirp.dir/client.cpp.o" "gcc" "src/chirp/CMakeFiles/esg_chirp.dir/client.cpp.o.d"
  "/root/repo/src/chirp/protocol.cpp" "src/chirp/CMakeFiles/esg_chirp.dir/protocol.cpp.o" "gcc" "src/chirp/CMakeFiles/esg_chirp.dir/protocol.cpp.o.d"
  "/root/repo/src/chirp/server.cpp" "src/chirp/CMakeFiles/esg_chirp.dir/server.cpp.o" "gcc" "src/chirp/CMakeFiles/esg_chirp.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/esg_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
