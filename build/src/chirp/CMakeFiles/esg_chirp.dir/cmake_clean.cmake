file(REMOVE_RECURSE
  "CMakeFiles/esg_chirp.dir/client.cpp.o"
  "CMakeFiles/esg_chirp.dir/client.cpp.o.d"
  "CMakeFiles/esg_chirp.dir/protocol.cpp.o"
  "CMakeFiles/esg_chirp.dir/protocol.cpp.o.d"
  "CMakeFiles/esg_chirp.dir/server.cpp.o"
  "CMakeFiles/esg_chirp.dir/server.cpp.o.d"
  "libesg_chirp.a"
  "libesg_chirp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_chirp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
