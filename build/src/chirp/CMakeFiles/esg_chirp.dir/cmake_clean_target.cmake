file(REMOVE_RECURSE
  "libesg_chirp.a"
)
