# Empty compiler generated dependencies file for esg_chirp.
# This may be replaced when dependencies are built.
