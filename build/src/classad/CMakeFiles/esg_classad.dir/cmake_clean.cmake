file(REMOVE_RECURSE
  "CMakeFiles/esg_classad.dir/builtins.cpp.o"
  "CMakeFiles/esg_classad.dir/builtins.cpp.o.d"
  "CMakeFiles/esg_classad.dir/classad.cpp.o"
  "CMakeFiles/esg_classad.dir/classad.cpp.o.d"
  "CMakeFiles/esg_classad.dir/expr.cpp.o"
  "CMakeFiles/esg_classad.dir/expr.cpp.o.d"
  "CMakeFiles/esg_classad.dir/lexer.cpp.o"
  "CMakeFiles/esg_classad.dir/lexer.cpp.o.d"
  "CMakeFiles/esg_classad.dir/match.cpp.o"
  "CMakeFiles/esg_classad.dir/match.cpp.o.d"
  "CMakeFiles/esg_classad.dir/parser.cpp.o"
  "CMakeFiles/esg_classad.dir/parser.cpp.o.d"
  "CMakeFiles/esg_classad.dir/value.cpp.o"
  "CMakeFiles/esg_classad.dir/value.cpp.o.d"
  "libesg_classad.a"
  "libesg_classad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_classad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
