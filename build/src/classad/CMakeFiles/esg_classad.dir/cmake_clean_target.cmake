file(REMOVE_RECURSE
  "libesg_classad.a"
)
