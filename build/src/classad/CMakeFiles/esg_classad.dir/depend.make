# Empty dependencies file for esg_classad.
# This may be replaced when dependencies are built.
