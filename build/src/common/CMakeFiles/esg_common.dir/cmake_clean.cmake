file(REMOVE_RECURSE
  "CMakeFiles/esg_common.dir/log.cpp.o"
  "CMakeFiles/esg_common.dir/log.cpp.o.d"
  "CMakeFiles/esg_common.dir/rng.cpp.o"
  "CMakeFiles/esg_common.dir/rng.cpp.o.d"
  "CMakeFiles/esg_common.dir/strings.cpp.o"
  "CMakeFiles/esg_common.dir/strings.cpp.o.d"
  "libesg_common.a"
  "libesg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
