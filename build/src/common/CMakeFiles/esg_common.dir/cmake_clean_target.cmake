file(REMOVE_RECURSE
  "libesg_common.a"
)
