# Empty dependencies file for esg_common.
# This may be replaced when dependencies are built.
