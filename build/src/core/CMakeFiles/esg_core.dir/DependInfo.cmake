
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/esg_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/error.cpp" "src/core/CMakeFiles/esg_core.dir/error.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/error.cpp.o.d"
  "/root/repo/src/core/escalate.cpp" "src/core/CMakeFiles/esg_core.dir/escalate.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/escalate.cpp.o.d"
  "/root/repo/src/core/interface.cpp" "src/core/CMakeFiles/esg_core.dir/interface.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/interface.cpp.o.d"
  "/root/repo/src/core/kinds.cpp" "src/core/CMakeFiles/esg_core.dir/kinds.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/kinds.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/core/CMakeFiles/esg_core.dir/router.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/router.cpp.o.d"
  "/root/repo/src/core/scope.cpp" "src/core/CMakeFiles/esg_core.dir/scope.cpp.o" "gcc" "src/core/CMakeFiles/esg_core.dir/scope.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
