file(REMOVE_RECURSE
  "CMakeFiles/esg_core.dir/audit.cpp.o"
  "CMakeFiles/esg_core.dir/audit.cpp.o.d"
  "CMakeFiles/esg_core.dir/error.cpp.o"
  "CMakeFiles/esg_core.dir/error.cpp.o.d"
  "CMakeFiles/esg_core.dir/escalate.cpp.o"
  "CMakeFiles/esg_core.dir/escalate.cpp.o.d"
  "CMakeFiles/esg_core.dir/interface.cpp.o"
  "CMakeFiles/esg_core.dir/interface.cpp.o.d"
  "CMakeFiles/esg_core.dir/kinds.cpp.o"
  "CMakeFiles/esg_core.dir/kinds.cpp.o.d"
  "CMakeFiles/esg_core.dir/router.cpp.o"
  "CMakeFiles/esg_core.dir/router.cpp.o.d"
  "CMakeFiles/esg_core.dir/scope.cpp.o"
  "CMakeFiles/esg_core.dir/scope.cpp.o.d"
  "libesg_core.a"
  "libesg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
