file(REMOVE_RECURSE
  "libesg_core.a"
)
