# Empty dependencies file for esg_core.
# This may be replaced when dependencies are built.
