file(REMOVE_RECURSE
  "CMakeFiles/esg_daemons.dir/job.cpp.o"
  "CMakeFiles/esg_daemons.dir/job.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/matchmaker.cpp.o"
  "CMakeFiles/esg_daemons.dir/matchmaker.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/rpc.cpp.o"
  "CMakeFiles/esg_daemons.dir/rpc.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/schedd.cpp.o"
  "CMakeFiles/esg_daemons.dir/schedd.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/shadow.cpp.o"
  "CMakeFiles/esg_daemons.dir/shadow.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/startd.cpp.o"
  "CMakeFiles/esg_daemons.dir/startd.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/starter.cpp.o"
  "CMakeFiles/esg_daemons.dir/starter.cpp.o.d"
  "CMakeFiles/esg_daemons.dir/wire.cpp.o"
  "CMakeFiles/esg_daemons.dir/wire.cpp.o.d"
  "libesg_daemons.a"
  "libesg_daemons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
