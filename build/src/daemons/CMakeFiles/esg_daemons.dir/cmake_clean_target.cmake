file(REMOVE_RECURSE
  "libesg_daemons.a"
)
