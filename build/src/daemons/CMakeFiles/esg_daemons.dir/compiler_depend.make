# Empty compiler generated dependencies file for esg_daemons.
# This may be replaced when dependencies are built.
