file(REMOVE_RECURSE
  "CMakeFiles/esg_fs.dir/retry.cpp.o"
  "CMakeFiles/esg_fs.dir/retry.cpp.o.d"
  "CMakeFiles/esg_fs.dir/simfs.cpp.o"
  "CMakeFiles/esg_fs.dir/simfs.cpp.o.d"
  "libesg_fs.a"
  "libesg_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
