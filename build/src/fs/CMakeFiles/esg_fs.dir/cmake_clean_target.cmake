file(REMOVE_RECURSE
  "libesg_fs.a"
)
