# Empty compiler generated dependencies file for esg_fs.
# This may be replaced when dependencies are built.
