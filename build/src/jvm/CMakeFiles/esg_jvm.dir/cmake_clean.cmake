file(REMOVE_RECURSE
  "CMakeFiles/esg_jvm.dir/javaio.cpp.o"
  "CMakeFiles/esg_jvm.dir/javaio.cpp.o.d"
  "CMakeFiles/esg_jvm.dir/jvm.cpp.o"
  "CMakeFiles/esg_jvm.dir/jvm.cpp.o.d"
  "CMakeFiles/esg_jvm.dir/program.cpp.o"
  "CMakeFiles/esg_jvm.dir/program.cpp.o.d"
  "CMakeFiles/esg_jvm.dir/resultfile.cpp.o"
  "CMakeFiles/esg_jvm.dir/resultfile.cpp.o.d"
  "libesg_jvm.a"
  "libesg_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
