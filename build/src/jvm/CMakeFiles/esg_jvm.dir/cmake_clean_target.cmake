file(REMOVE_RECURSE
  "libesg_jvm.a"
)
