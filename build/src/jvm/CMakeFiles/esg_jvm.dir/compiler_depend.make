# Empty compiler generated dependencies file for esg_jvm.
# This may be replaced when dependencies are built.
