file(REMOVE_RECURSE
  "CMakeFiles/esg_net.dir/fabric.cpp.o"
  "CMakeFiles/esg_net.dir/fabric.cpp.o.d"
  "libesg_net.a"
  "libesg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
