file(REMOVE_RECURSE
  "libesg_net.a"
)
