# Empty dependencies file for esg_net.
# This may be replaced when dependencies are built.
