
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pool/pool.cpp" "src/pool/CMakeFiles/esg_pool.dir/pool.cpp.o" "gcc" "src/pool/CMakeFiles/esg_pool.dir/pool.cpp.o.d"
  "/root/repo/src/pool/reliable.cpp" "src/pool/CMakeFiles/esg_pool.dir/reliable.cpp.o" "gcc" "src/pool/CMakeFiles/esg_pool.dir/reliable.cpp.o.d"
  "/root/repo/src/pool/report.cpp" "src/pool/CMakeFiles/esg_pool.dir/report.cpp.o" "gcc" "src/pool/CMakeFiles/esg_pool.dir/report.cpp.o.d"
  "/root/repo/src/pool/submit.cpp" "src/pool/CMakeFiles/esg_pool.dir/submit.cpp.o" "gcc" "src/pool/CMakeFiles/esg_pool.dir/submit.cpp.o.d"
  "/root/repo/src/pool/workload.cpp" "src/pool/CMakeFiles/esg_pool.dir/workload.cpp.o" "gcc" "src/pool/CMakeFiles/esg_pool.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/daemons/CMakeFiles/esg_daemons.dir/DependInfo.cmake"
  "/root/repo/build/src/jvm/CMakeFiles/esg_jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/esg_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/esg_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/esg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/esg_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/esg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/esg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
