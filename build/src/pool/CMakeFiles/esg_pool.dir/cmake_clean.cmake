file(REMOVE_RECURSE
  "CMakeFiles/esg_pool.dir/pool.cpp.o"
  "CMakeFiles/esg_pool.dir/pool.cpp.o.d"
  "CMakeFiles/esg_pool.dir/reliable.cpp.o"
  "CMakeFiles/esg_pool.dir/reliable.cpp.o.d"
  "CMakeFiles/esg_pool.dir/report.cpp.o"
  "CMakeFiles/esg_pool.dir/report.cpp.o.d"
  "CMakeFiles/esg_pool.dir/submit.cpp.o"
  "CMakeFiles/esg_pool.dir/submit.cpp.o.d"
  "CMakeFiles/esg_pool.dir/workload.cpp.o"
  "CMakeFiles/esg_pool.dir/workload.cpp.o.d"
  "libesg_pool.a"
  "libesg_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
