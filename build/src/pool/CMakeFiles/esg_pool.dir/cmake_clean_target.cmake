file(REMOVE_RECURSE
  "libesg_pool.a"
)
