# Empty compiler generated dependencies file for esg_pool.
# This may be replaced when dependencies are built.
