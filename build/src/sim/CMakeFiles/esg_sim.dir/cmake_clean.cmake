file(REMOVE_RECURSE
  "CMakeFiles/esg_sim.dir/engine.cpp.o"
  "CMakeFiles/esg_sim.dir/engine.cpp.o.d"
  "CMakeFiles/esg_sim.dir/metrics.cpp.o"
  "CMakeFiles/esg_sim.dir/metrics.cpp.o.d"
  "libesg_sim.a"
  "libesg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
