file(REMOVE_RECURSE
  "libesg_sim.a"
)
