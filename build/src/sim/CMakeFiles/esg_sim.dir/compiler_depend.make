# Empty compiler generated dependencies file for esg_sim.
# This may be replaced when dependencies are built.
