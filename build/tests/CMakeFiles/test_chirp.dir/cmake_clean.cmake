file(REMOVE_RECURSE
  "CMakeFiles/test_chirp.dir/test_chirp.cpp.o"
  "CMakeFiles/test_chirp.dir/test_chirp.cpp.o.d"
  "test_chirp"
  "test_chirp.pdb"
  "test_chirp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chirp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
