# Empty dependencies file for test_chirp.
# This may be replaced when dependencies are built.
