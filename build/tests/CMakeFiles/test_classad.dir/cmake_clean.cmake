file(REMOVE_RECURSE
  "CMakeFiles/test_classad.dir/test_classad.cpp.o"
  "CMakeFiles/test_classad.dir/test_classad.cpp.o.d"
  "test_classad"
  "test_classad.pdb"
  "test_classad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
