file(REMOVE_RECURSE
  "CMakeFiles/test_classad_properties.dir/test_classad_properties.cpp.o"
  "CMakeFiles/test_classad_properties.dir/test_classad_properties.cpp.o.d"
  "test_classad_properties"
  "test_classad_properties.pdb"
  "test_classad_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classad_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
