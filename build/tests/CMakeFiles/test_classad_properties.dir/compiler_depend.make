# Empty compiler generated dependencies file for test_classad_properties.
# This may be replaced when dependencies are built.
