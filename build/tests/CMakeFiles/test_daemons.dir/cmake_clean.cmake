file(REMOVE_RECURSE
  "CMakeFiles/test_daemons.dir/test_daemons.cpp.o"
  "CMakeFiles/test_daemons.dir/test_daemons.cpp.o.d"
  "test_daemons"
  "test_daemons.pdb"
  "test_daemons[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_daemons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
