# Empty compiler generated dependencies file for test_fs.
# This may be replaced when dependencies are built.
