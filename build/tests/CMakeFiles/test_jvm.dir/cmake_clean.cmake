file(REMOVE_RECURSE
  "CMakeFiles/test_jvm.dir/test_jvm.cpp.o"
  "CMakeFiles/test_jvm.dir/test_jvm.cpp.o.d"
  "test_jvm"
  "test_jvm.pdb"
  "test_jvm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
