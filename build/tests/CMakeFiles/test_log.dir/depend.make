# Empty dependencies file for test_log.
# This may be replaced when dependencies are built.
