file(REMOVE_RECURSE
  "CMakeFiles/test_matchmaking.dir/test_matchmaking.cpp.o"
  "CMakeFiles/test_matchmaking.dir/test_matchmaking.cpp.o.d"
  "test_matchmaking"
  "test_matchmaking.pdb"
  "test_matchmaking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matchmaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
