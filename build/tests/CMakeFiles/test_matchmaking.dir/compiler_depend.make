# Empty compiler generated dependencies file for test_matchmaking.
# This may be replaced when dependencies are built.
