file(REMOVE_RECURSE
  "CMakeFiles/test_multisubmit.dir/test_multisubmit.cpp.o"
  "CMakeFiles/test_multisubmit.dir/test_multisubmit.cpp.o.d"
  "test_multisubmit"
  "test_multisubmit.pdb"
  "test_multisubmit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multisubmit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
