# Empty compiler generated dependencies file for test_multisubmit.
# This may be replaced when dependencies are built.
