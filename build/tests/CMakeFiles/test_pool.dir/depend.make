# Empty dependencies file for test_pool.
# This may be replaced when dependencies are built.
