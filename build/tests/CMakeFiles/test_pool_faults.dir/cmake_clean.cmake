file(REMOVE_RECURSE
  "CMakeFiles/test_pool_faults.dir/test_pool_faults.cpp.o"
  "CMakeFiles/test_pool_faults.dir/test_pool_faults.cpp.o.d"
  "test_pool_faults"
  "test_pool_faults.pdb"
  "test_pool_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
