# Empty dependencies file for test_pool_faults.
# This may be replaced when dependencies are built.
