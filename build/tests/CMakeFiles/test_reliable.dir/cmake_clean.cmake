file(REMOVE_RECURSE
  "CMakeFiles/test_reliable.dir/test_reliable.cpp.o"
  "CMakeFiles/test_reliable.dir/test_reliable.cpp.o.d"
  "test_reliable"
  "test_reliable.pdb"
  "test_reliable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
