# Empty compiler generated dependencies file for test_reliable.
# This may be replaced when dependencies are built.
