file(REMOVE_RECURSE
  "CMakeFiles/test_retry.dir/test_retry.cpp.o"
  "CMakeFiles/test_retry.dir/test_retry.cpp.o.d"
  "test_retry"
  "test_retry.pdb"
  "test_retry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
