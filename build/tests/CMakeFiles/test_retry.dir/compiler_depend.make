# Empty compiler generated dependencies file for test_retry.
# This may be replaced when dependencies are built.
