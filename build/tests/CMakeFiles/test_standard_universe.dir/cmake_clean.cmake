file(REMOVE_RECURSE
  "CMakeFiles/test_standard_universe.dir/test_standard_universe.cpp.o"
  "CMakeFiles/test_standard_universe.dir/test_standard_universe.cpp.o.d"
  "test_standard_universe"
  "test_standard_universe.pdb"
  "test_standard_universe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_standard_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
