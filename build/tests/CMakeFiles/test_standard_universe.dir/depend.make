# Empty dependencies file for test_standard_universe.
# This may be replaced when dependencies are built.
