file(REMOVE_RECURSE
  "CMakeFiles/test_submit.dir/test_submit.cpp.o"
  "CMakeFiles/test_submit.dir/test_submit.cpp.o.d"
  "test_submit"
  "test_submit.pdb"
  "test_submit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_submit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
