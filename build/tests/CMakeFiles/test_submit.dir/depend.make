# Empty dependencies file for test_submit.
# This may be replaced when dependencies are built.
