file(REMOVE_RECURSE
  "CMakeFiles/test_watchdog.dir/test_watchdog.cpp.o"
  "CMakeFiles/test_watchdog.dir/test_watchdog.cpp.o.d"
  "test_watchdog"
  "test_watchdog.pdb"
  "test_watchdog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_watchdog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
