# Empty compiler generated dependencies file for test_watchdog.
# This may be replaced when dependencies are built.
