# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_classad[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fs[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_chirp[1]_include.cmake")
include("/root/repo/build/tests/test_jvm[1]_include.cmake")
include("/root/repo/build/tests/test_daemons[1]_include.cmake")
include("/root/repo/build/tests/test_pool[1]_include.cmake")
include("/root/repo/build/tests/test_retry[1]_include.cmake")
include("/root/repo/build/tests/test_pool_faults[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_watchdog[1]_include.cmake")
include("/root/repo/build/tests/test_multisubmit[1]_include.cmake")
include("/root/repo/build/tests/test_classad_properties[1]_include.cmake")
include("/root/repo/build/tests/test_matchmaking[1]_include.cmake")
include("/root/repo/build/tests/test_reliable[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_standard_universe[1]_include.cmake")
include("/root/repo/build/tests/test_log[1]_include.cmake")
include("/root/repo/build/tests/test_submit[1]_include.cmake")
