// The §5 black-hole scenario, interactively: a pool where some machines
// falsely advertise Java, with mitigations selectable on the command line.
//
//   $ ./blackhole_pool [--bad N] [--good N] [--jobs N] [--selftest]
//                      [--avoidance] [--seed S]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

int main(int argc, char** argv) {
  int bad = 2;
  int good = 6;
  int jobs = 40;
  std::uint64_t seed = 42;
  bool selftest = false;
  bool avoidance = false;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--bad")) {
      next_int(bad);
    } else if (!std::strcmp(argv[i], "--good")) {
      next_int(good);
    } else if (!std::strcmp(argv[i], "--jobs")) {
      next_int(jobs);
    } else if (!std::strcmp(argv[i], "--seed")) {
      int s = 42;
      next_int(s);
      seed = static_cast<std::uint64_t>(s);
    } else if (!std::strcmp(argv[i], "--selftest")) {
      selftest = true;
    } else if (!std::strcmp(argv[i], "--avoidance")) {
      avoidance = true;
    } else {
      std::printf(
          "usage: %s [--bad N] [--good N] [--jobs N] [--selftest]"
          " [--avoidance] [--seed S]\n",
          argv[0]);
      return 2;
    }
  }

  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.startd_selftest = selftest;
  config.discipline.schedd_avoidance = avoidance;
  for (int i = 0; i < bad; ++i) {
    config.machines.push_back(
        pool::MachineSpec::misconfigured_java("bad" + std::to_string(i)));
  }
  for (int i = 0; i < good; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }

  pool::Pool pool(config);
  Rng rng(seed);
  pool::WorkloadOptions options;
  options.count = jobs;
  options.mean_compute = SimTime::sec(30);
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }

  std::printf(
      "pool: %d misconfigured + %d good machines, %d jobs, discipline %s\n",
      bad, good, jobs, config.discipline.name().c_str());

  const bool finished = pool.run_until_done(SimTime::hours(8));
  const pool::PoolReport report = pool.report();
  std::printf("\n%s\n", report.str().c_str());
  if (!finished) std::printf("WARNING: some jobs never finished\n");

  std::printf("interpretation:\n");
  if (!selftest && !avoidance) {
    std::printf(
        "  without mitigations the broken machines keep attracting jobs:\n"
        "  every visit wastes network transfer and an execution attempt.\n"
        "  Compare wasted cpu / attempts after re-running with --selftest\n"
        "  or --avoidance.\n");
  } else {
    std::printf(
        "  mitigation active: broken machines either never advertise Java\n"
        "  (--selftest) or are shunned after chronic failures "
        "(--avoidance).\n");
  }
  return 0;
}
