// classad_eval: evaluate ClassAd expressions or match two ads.
//
//   $ ./classad_eval '2 + 3 * 4'
//   $ ./classad_eval --ad 'a = 1; b = a * 2' b
//   $ ./classad_eval --match 'Requirements = TARGET.Memory > 100'
//                            'Memory = 512; Requirements = true'
#include <cstdio>
#include <cstring>

#include "classad/match.hpp"

using namespace esg;
using namespace esg::classad;

int main(int argc, char** argv) {
  if (argc >= 4 && !std::strcmp(argv[1], "--match")) {
    Result<ClassAd> left = parse_classad(argv[2]);
    Result<ClassAd> right = parse_classad(argv[3]);
    if (!left.ok() || !right.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   (!left.ok() ? left.error() : right.error()).str().c_str());
      return 1;
    }
    const MatchResult m = symmetric_match(left.value(), right.value());
    std::printf("left accepts right : %s\n", m.left_accepts ? "yes" : "no");
    std::printf("right accepts left : %s\n", m.right_accepts ? "yes" : "no");
    std::printf("match              : %s\n", m.matched ? "YES" : "no");
    std::printf("ranks              : left=%g right=%g\n", m.left_rank,
                m.right_rank);
    return m.matched ? 0 : 1;
  }

  if (argc >= 4 && !std::strcmp(argv[1], "--ad")) {
    Result<ClassAd> ad = parse_classad(argv[2]);
    if (!ad.ok()) {
      std::fprintf(stderr, "parse error: %s\n", ad.error().str().c_str());
      return 1;
    }
    for (int i = 3; i < argc; ++i) {
      std::printf("%s = %s\n", argv[i],
                  ad.value().eval_attr(argv[i]).str().c_str());
    }
    return 0;
  }

  if (argc == 2) {
    Result<ExprPtr> expr = parse_expr(argv[1]);
    if (!expr.ok()) {
      std::fprintf(stderr, "parse error: %s\n", expr.error().str().c_str());
      return 1;
    }
    EvalContext ctx;
    std::printf("%s\n", expr.value()->eval(ctx).str().c_str());
    return 0;
  }

  std::printf(
      "usage:\n"
      "  %s '<expr>'                 evaluate an expression\n"
      "  %s --ad '<ad>' attr...      evaluate attributes of an ad\n"
      "  %s --match '<ad>' '<ad>'    two-way matchmaking\n",
      argv[0], argv[0], argv[0]);
  return 2;
}
