// Cycle scavenging: Condor's founding scenario (§2.1).
//
// A pool of personal workstations whose owners come and go. Visiting jobs
// are evicted whenever an owner returns; with transparent checkpointing
// they migrate and resume instead of starting over.
//
//   $ ./cycle_scavenging [--no-checkpoint] [--machines N] [--jobs N]
#include <cstdio>
#include <cstring>
#include <memory>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

struct OwnerModel {
  pool::Pool* pool;
  std::string machine;
  SimTime away;     // how long the owner stays away
  SimTime present;  // how long they sit at the keyboard
  int* evictions;

  void owner_arrives() {
    daemons::Startd* startd = pool->startd(machine);
    if (startd == nullptr) return;
    if (startd->claimed()) ++*evictions;
    startd->set_owner_active(true);
    pool->engine().schedule(present, [this] {
      if (auto* s = pool->startd(machine)) s->set_owner_active(false);
      pool->engine().schedule(away, [this] { owner_arrives(); });
    });
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool checkpoint = true;
  int machines = 8;
  int jobs = 16;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--no-checkpoint")) {
      checkpoint = false;
    } else if (!std::strcmp(argv[i], "--machines") && i + 1 < argc) {
      machines = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      std::printf("usage: %s [--no-checkpoint] [--machines N] [--jobs N]\n",
                  argv[0]);
      return 2;
    }
  }

  pool::PoolConfig config;
  config.seed = 1988;  // the year Condor went hunting for idle workstations
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = checkpoint;
  config.discipline.checkpoint_interval = SimTime::minutes(3);
  for (int i = 0; i < machines; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("ws" + std::to_string(i)));
  }
  pool::Pool pool(config);

  // One hour of compute per job, in checkpointable 3-minute slices.
  for (int i = 0; i < jobs; ++i) {
    jvm::ProgramBuilder builder("scavenge" + std::to_string(i));
    for (int s = 0; s < 20; ++s) builder.compute(SimTime::minutes(3));
    daemons::JobDescription job;
    job.program = builder.build();
    pool.submit(std::move(job));
  }
  pool.boot();

  // Owners: away ~45 minutes, present ~15 (staggered phases).
  int evictions = 0;
  std::vector<std::unique_ptr<OwnerModel>> owners;
  Rng phase_rng(7);
  for (int i = 0; i < machines; ++i) {
    auto owner = std::make_unique<OwnerModel>();
    owner->pool = &pool;
    owner->machine = "ws" + std::to_string(i);
    owner->away = SimTime::minutes(45);
    owner->present = SimTime::minutes(15);
    owner->evictions = &evictions;
    OwnerModel* raw = owner.get();
    pool.engine().schedule(
        SimTime::sec(phase_rng.uniform_int(60, 45 * 60)),
        [raw] { raw->owner_arrives(); });
    owners.push_back(std::move(owner));
  }

  std::printf(
      "scavenging %d x 60min jobs from %d workstations, checkpointing %s\n",
      jobs, machines, checkpoint ? "ON" : "OFF");
  const bool finished = pool.run_until_done(SimTime::hours(48));

  const pool::PoolReport report = pool.report();
  double burned = 0;
  for (const auto& truth : pool.ground_truth().entries()) {
    burned += truth.cpu_seconds;
  }
  const double useful = jobs * 3600.0;
  std::printf("\nevictions        %d\n", evictions);
  std::printf("jobs finished    %d/%d%s\n",
              report.jobs_total - report.unfinished, jobs,
              finished ? "" : "  (TIME RAN OUT)");
  std::printf("cpu burned       %.0fs\n", burned);
  std::printf("cpu useful       %.0fs\n", useful);
  std::printf("cpu repeated     %.0fs (%.0f%% overhead)\n", burned - useful,
              100.0 * (burned - useful) / useful);
  std::printf("makespan         %.0fs\n", report.makespan_seconds);
  std::printf(
      "\ntry the other mode (--no-checkpoint) to see what migration-with-\n"
      "resume buys in this regime.\n");
  return 0;
}
