// Per-scope dashboards on the naive-vs-scoped experiment: the same
// workload (mixed healthy jobs, program exceptions, one black-hole
// machine) run under both disciplines, rendered as the esg-top flow
// dashboard. The point of the exercise: the *shape* of the error flow —
// which column each scope's errors land in — is the observable difference
// between a grid that launders errors and one that routes them.
//
//   naive:  errors are raised and then escape (implicit exit codes, holes)
//   scoped: errors are raised, propagated to their scope's manager, then
//           consumed (delivered explicitly) or masked (rescheduled)
//
//   $ ./dashboard_demo [--jobs N] [--seed S] [--bad N] [--good N]
//                      [--selftest]
//
// --selftest asserts the divergence instead of narrating it (CI gate).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/dashboard.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

obs::FlowAggregate run_discipline(bool scoped, int bad, int good, int jobs,
                                  std::uint64_t seed) {
  pool::PoolConfig config;
  config.seed = seed;
  config.trace = true;
  config.discipline = scoped ? daemons::DisciplineConfig::scoped()
                             : daemons::DisciplineConfig::naive();
  for (int i = 0; i < bad; ++i) {
    config.machines.push_back(
        pool::MachineSpec::misconfigured_java("bad" + std::to_string(i)));
  }
  for (int i = 0; i < good; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }

  pool::Pool pool(config);
  Rng rng(seed);
  pool::WorkloadOptions options;
  options.count = jobs;
  options.mean_compute = SimTime::sec(20);
  // Some jobs legitimately throw: program-scope errors that a principled
  // grid must deliver to the user explicitly (and a naive one launders).
  options.program_error_fraction = 0.25;
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  pool.run_until_done(SimTime::hours(12));
  return pool.report().flow;
}

void print_disposition_row(const char* label, const obs::FlowAggregate& agg) {
  std::printf("  %-8s", label);
  for (obs::FlowDisposition d : obs::kAllFlowDispositions) {
    std::printf("%12llu", static_cast<unsigned long long>(agg.count(d)));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int jobs = 24;
  int bad = 1;
  int good = 3;
  std::uint64_t seed = 42;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--jobs")) {
      next_int(jobs);
    } else if (!std::strcmp(argv[i], "--bad")) {
      next_int(bad);
    } else if (!std::strcmp(argv[i], "--good")) {
      next_int(good);
    } else if (!std::strcmp(argv[i], "--seed")) {
      int s = 42;
      next_int(s);
      seed = static_cast<std::uint64_t>(s);
    } else if (!std::strcmp(argv[i], "--selftest")) {
      selftest = true;
    } else {
      std::printf(
          "usage: %s [--jobs N] [--seed S] [--bad N] [--good N]"
          " [--selftest]\n",
          argv[0]);
      return 2;
    }
  }

  const obs::FlowAggregate naive =
      run_discipline(/*scoped=*/false, bad, good, jobs, seed);
  const obs::FlowAggregate scoped =
      run_discipline(/*scoped=*/true, bad, good, jobs, seed);

  if (!selftest) {
    std::printf("%s\n",
                obs::render_dashboard(naive, {.title = "naive"}).c_str());
    std::printf("%s\n",
                obs::render_dashboard(scoped, {.title = "scoped"}).c_str());

    std::printf("disposition totals, naive vs scoped:\n  %-8s", "");
    for (obs::FlowDisposition d : obs::kAllFlowDispositions) {
      std::printf("%12s", std::string(obs::disposition_name(d)).c_str());
    }
    std::printf("\n");
    print_disposition_row("naive", naive);
    print_disposition_row("scoped", scoped);
    std::printf(
        "\nThe naive pool's errors escape the explicit structure (implicit\n"
        "exit codes, dropped conditions); the scoped pool propagates each\n"
        "error to its scope's manager, masks the recoverable ones, and\n"
        "delivers the rest explicitly. Same workload, same machines.\n");
  }

  // The acceptance checks (always evaluated; narrated unless --selftest).
  using obs::FlowDisposition;
  struct Check {
    const char* what;
    bool ok;
  } checks[] = {
      {"naive leaks: escaped > 0",
       naive.count(FlowDisposition::kEscaped) > 0},
      {"scoped seals the structure: escaped == 0",
       scoped.count(FlowDisposition::kEscaped) == 0},
      {"scoped consumes explicitly: consumed > naive",
       scoped.count(FlowDisposition::kConsumed) >
           naive.count(FlowDisposition::kConsumed)},
      {"scoped masks recoverable faults: masked > naive",
       scoped.count(FlowDisposition::kMasked) >
           naive.count(FlowDisposition::kMasked)},
      {"scoped routes by scope: propagated > naive",
       scoped.count(FlowDisposition::kPropagated) >
           naive.count(FlowDisposition::kPropagated)},
  };
  bool all_ok = true;
  for (const Check& check : checks) {
    if (selftest || !check.ok) {
      std::printf("%s: %s\n", check.ok ? "PASS" : "FAIL", check.what);
    }
    all_ok = all_ok && check.ok;
  }
  return all_ok ? 0 : 1;
}
