// A guided tour of the core error-scope library: the three ways an error
// can be communicated, the four principles, scope routing, and time-based
// escalation. No grid required — everything here is the core API.
#include <cstdio>

#include "core/core.hpp"

using namespace esg;

namespace {

void banner(const char* title) { std::printf("\n== %s ==\n", title); }

// The tour's audit ledger: mechanisms take the audit they report to as an
// explicit argument (a simulation would pass its SimContext's audit).
PrincipleAudit& tour_audit() {
  static PrincipleAudit audit;
  return audit;
}

// A toy storage layer with a concise, finite error interface (P4).
Result<std::string> storage_read(bool backing_store_up) {
  static const ErrorInterface contract("storage.read",
                                       {ErrorKind::kFileNotFound});
  Result<std::string> raw =
      backing_store_up
          ? Result<std::string>(std::string("block data"))
          : Result<std::string>(
                Error(ErrorKind::kMountOffline, "backing store unavailable"));
  // filter(): contractual errors pass; anything else escapes (P2).
  return contract.filter(std::move(raw), ErrorScope::kProcess, &tour_audit());
}

}  // namespace

int main() {
  std::printf("error-scope core library tour\n");

  banner("explicit errors: Result<T>");
  {
    Result<int> ok = 42;
    Result<int> err = Error(ErrorKind::kFileNotFound, "no such file");
    std::printf("ok result     : %d\n", ok.value());
    std::printf("error result  : %s\n", err.error().str().c_str());
  }

  banner("escaping errors: escape() / catch_escape() (Principle 2)");
  {
    // The storage layer cannot express "backing store gone" in its
    // interface, so it escapes; one level up it becomes explicit again.
    Result<std::string> r =
        catch_escape([] { return storage_read(/*backing_store_up=*/false); });
    std::printf("escaped error surfaced explicitly one level up:\n  %s\n",
                r.error().describe().c_str());
  }

  banner("implicit errors: detection by validation (end-to-end, §5)");
  {
    const OutputValidator<int> tally_check(
        "votes == ballots", [](const int& votes) { return votes == 100; });
    if (auto implicit = tally_check.check(99)) {
      std::printf("detected: %s\n", implicit->str().c_str());
    }
  }

  banner("error scope: the portion of the system an error invalidates");
  for (ErrorScope scope : kAllScopes) {
    std::printf("  %-16s rank %2d  schedd would: %s\n",
                std::string(scope_name(scope)).c_str(), scope_rank(scope),
                schedd_disposition(scope) == ScheddDisposition::kComplete
                    ? "complete the job"
                : schedd_disposition(scope) == ScheddDisposition::kUnexecutable
                    ? "return it unexecutable"
                    : "retry at a new site");
  }

  banner("Principle 3: route errors to the manager of their scope");
  {
    ScopeRouter router(&tour_audit(), nullptr);
    router.register_handler(ErrorScope::kVirtualMachine, "jvm", [](Error&) {
      std::printf("  jvm handler: cannot fix a heap this small, propagating\n");
      return Disposition::kPropagate;
    });
    router.register_handler(ErrorScope::kRemoteResource, "starter",
                            [](Error&) {
                              std::printf(
                                  "  starter: this machine is unusable, "
                                  "propagating\n");
                              return Disposition::kPropagate;
                            });
    router.register_handler(ErrorScope::kJob, "schedd", [](Error& e) {
      std::printf("  schedd: rescheduling elsewhere (%s)\n", e.str().c_str());
      return Disposition::kHandled;
    });
    const RouteOutcome out = router.route(Error(ErrorKind::kOutOfMemory));
    std::printf("  delivered=%s after %zu hops\n",
                out.delivered ? "yes" : "no", out.path.size());
  }

  banner("time widens scope (§5): the escalator");
  {
    const ScopeEscalator escalator = ScopeEscalator::grid_defaults();
    for (const SimTime persisted :
         {SimTime::sec(1), SimTime::sec(45), SimTime::minutes(15),
          SimTime::hours(7)}) {
      std::printf("  network failure persisting %-10s -> %s scope\n",
                  persisted.str().c_str(),
                  std::string(scope_name(escalator.scope_after(
                                  ErrorScope::kNetwork, persisted)))
                      .c_str());
    }
  }

  banner("the audit ledger");
  {
    const PrincipleAudit& audit = tour_audit();
    std::printf("  P2 applied %llu times, P3 applied %llu times this run\n",
                static_cast<unsigned long long>(audit.applied(Principle::kP2)),
                static_cast<unsigned long long>(audit.applied(Principle::kP3)));
  }

  std::printf("\ndone.\n");
  return 0;
}
