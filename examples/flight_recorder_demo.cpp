// The flight recorder on the §5 black-hole scenario: machines that falsely
// advertise Java eat every job sent their way. With tracing enabled, the
// moment the schedd's avoidance logic declares a machine chronically failing
// we dump the last N trace events — the "flight recorder" readout showing
// exactly how the errors travelled before the diagnosis.
//
//   $ ./flight_recorder_demo [--bad N] [--good N] [--jobs N] [--seed S]
//                            [--trace-out FILE]
//
// Pass --trace-out to also write the full journal as a Chrome trace_event
// JSON file (open in chrome://tracing or https://ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/checker.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

int main(int argc, char** argv) {
  int bad = 1;
  int good = 3;
  int jobs = 16;
  std::uint64_t seed = 42;
  const char* trace_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--bad")) {
      next_int(bad);
    } else if (!std::strcmp(argv[i], "--good")) {
      next_int(good);
    } else if (!std::strcmp(argv[i], "--jobs")) {
      next_int(jobs);
    } else if (!std::strcmp(argv[i], "--seed")) {
      int s = 42;
      next_int(s);
      seed = static_cast<std::uint64_t>(s);
    } else if (!std::strcmp(argv[i], "--trace-out")) {
      if (i + 1 < argc) trace_out = argv[++i];
    } else {
      std::printf(
          "usage: %s [--bad N] [--good N] [--jobs N] [--seed S]"
          " [--trace-out FILE]\n",
          argv[0]);
      return 2;
    }
  }

  pool::PoolConfig config;
  config.seed = seed;
  // Tracing is armed per-pool at construction, so every event is captured
  // in the pool's own recorder — no process-wide state involved.
  config.trace = true;
  config.trace_capacity = 8192;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.schedd_avoidance = true;  // the chronic-failure detector
  for (int i = 0; i < bad; ++i) {
    config.machines.push_back(
        pool::MachineSpec::misconfigured_java("bad" + std::to_string(i)));
  }
  for (int i = 0; i < good; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }

  pool::Pool pool(config);
  obs::FlightRecorder& recorder = pool.recorder();
  recorder.set_on_chronic([&](const std::string& reason) {
    // The "last N events before failure" readout, at the instant the
    // schedd diagnoses the black hole.
    std::printf("%s\n", obs::render_dump(recorder.last(25), reason).c_str());
  });
  Rng rng(seed);
  pool::WorkloadOptions options;
  options.count = jobs;
  options.mean_compute = SimTime::sec(30);
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }

  std::printf(
      "pool: %d misconfigured + %d good machines, %d jobs, tracing ON\n\n",
      bad, good, jobs);

  const bool finished = pool.run_until_done(SimTime::hours(8));
  const pool::PoolReport report = pool.report();
  std::printf("%s\n", report.str().c_str());
  if (!finished) std::printf("WARNING: some jobs never finished\n");

  // Machine-check the paper's principles over the recorded journey.
  const obs::CheckReport check =
      obs::PrincipleChecker().check(recorder);
  std::printf("\n%s\n", check.str().c_str());

  std::printf(
      "recorder: %llu events recorded (%zu retained), %zu chronic mark(s)\n",
      static_cast<unsigned long long>(recorder.total_recorded()),
      recorder.size(), recorder.chronic_marks().size());

  if (trace_out != nullptr) {
    std::ofstream out(trace_out);
    out << obs::to_chrome_trace(recorder.events());
    std::printf("wrote Chrome trace to %s (open in chrome://tracing)\n",
                trace_out);
  }

  return check.ok() ? 0 : 1;
}
