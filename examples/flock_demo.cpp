// Flocking across pool boundaries: a starved home pool overflows its jobs
// to remote pools while a cross-pool fault plan crashes a remote startd
// (cluster-scope at home) and severs an inter-pool trunk (network-scope).
// The demo prints the home schedd's cross-pool scope counters, the parent
// aggregator's per-pool feeds, and the resilience-oracle verdict.
//
//   $ ./flock_demo [--pools N] [--jobs N] [--seed S] [--naive] [--selftest]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chaos/oracle.hpp"
#include "flock/chaos.hpp"
#include "flock/federation.hpp"
#include "pool/workload.hpp"

using namespace esg;

int main(int argc, char** argv) {
  int pools = 3;
  int jobs = 12;
  std::uint64_t seed = 1234;
  bool naive = false;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    auto next_int = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--pools")) {
      next_int(pools);
    } else if (!std::strcmp(argv[i], "--jobs")) {
      next_int(jobs);
    } else if (!std::strcmp(argv[i], "--seed")) {
      int s = 1234;
      next_int(s);
      seed = static_cast<std::uint64_t>(s);
    } else if (!std::strcmp(argv[i], "--naive")) {
      naive = true;
    } else if (!std::strcmp(argv[i], "--selftest")) {
      selftest = true;
    } else {
      std::fprintf(stderr,
                   "usage: flock_demo [--pools N] [--jobs N] [--seed S]"
                   " [--naive] [--selftest]\n");
      return 2;
    }
  }
  if (pools < 2) pools = 2;

  chaos::PoolShape shape;
  shape.pools = pools;
  shape.machines = 2;
  shape.jobs = jobs;
  if (naive) shape.discipline = "naive";
  const chaos::FaultPlan plan = flock::make_federated_plan(seed, shape);
  std::printf("--- fault plan (seed %llu) ---\n%s\n",
              static_cast<unsigned long long>(seed), plan.str().c_str());

  flock::Federation federation(flock::federated_cell_config(plan));
  federation.boot();
  pool::stage_workload_inputs(*federation.submit_fs("home"));
  pool::WorkloadOptions workload;
  workload.count = plan.shape.jobs;
  workload.mean_compute = plan.shape.mean_compute;
  workload.remote_io_fraction = 0.25;
  workload.remote_write_fraction = 0.25;
  Rng rng = Rng(plan.seed).fork("chaos.workload");
  for (auto& job : pool::make_workload(workload, rng)) {
    federation.submit(0, std::move(job));
  }
  auto injector = flock::FederatedInjector::arm(federation, plan);
  const bool finished = federation.run_until_done(plan.shape.limit);

  const auto* home = federation.schedd("home");
  std::printf("--- home schedd, cross-pool scopes ---\n");
  std::printf("flock attempts:            %llu\n",
              static_cast<unsigned long long>(home->flock_attempts()));
  std::printf("cluster errors consumed:   %llu  (remote pool faults)\n",
              static_cast<unsigned long long>(
                  home->cluster_errors_consumed()));
  std::printf("network errors consumed:   %llu  (severed trunks)\n",
              static_cast<unsigned long long>(
                  home->network_errors_consumed()));

  std::printf("\n--- parent aggregator feeds ---\n");
  const flock::Aggregator* parent = federation.parent();
  for (const auto& [name, feed] : parent->feeds()) {
    std::printf("%-6s chunks=%llu dup=%llu events=%llu\n", name.c_str(),
                static_cast<unsigned long long>(feed.chunks),
                static_cast<unsigned long long>(feed.duplicates),
                static_cast<unsigned long long>(feed.events));
  }

  const pool::PoolReport report = federation.report();
  const chaos::OracleReport oracles = chaos::evaluate_oracles(
      report, finished, federation.recorder().events());
  std::printf("\n--- verdict ---\n%s\noracles: %s\n", report.str().c_str(),
              oracles.str().c_str());

  if (selftest) {
    // The acceptance bar: the scoped federation finishes every job, the
    // plan's remote faults land at cluster/network scope at home, no
    // incidental error reaches a user, and all five oracles hold.
    if (naive) {
      return oracles.ok() ? 1 : 0;  // naive must FAIL an oracle
    }
    const bool ok = finished && oracles.ok() &&
                    home->cluster_errors_consumed() >= 1 &&
                    home->network_errors_consumed() >= 1 &&
                    report.user_incidental_exposures == 0;
    return ok ? 0 : 1;
  }
  return 0;
}
