// Java Universe walkthrough: one job with remote I/O, a mid-run fault in
// the submit machine's home filesystem, and scope-correct recovery.
//
// Narrated output shows the full path of §4: the I/O library raises an
// escaping Java Error, the wrapper records local-resource scope in the
// result file, the starter forwards it, the shadow reports it, and the
// schedd retries instead of bothering the user.
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"
#include "pool/pool.hpp"

using namespace esg;

int main(int argc, char** argv) {
  const bool verbose = argc > 1 && std::string(argv[1]) == "-v";

  pool::PoolConfig config;
  config.seed = 2002;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(pool::MachineSpec::good("exec0"));
  config.machines.push_back(pool::MachineSpec::good("exec1"));
  pool::Pool pool(config);
  if (verbose) {
    // The pool's own log sink (its engine already drives the sim clock).
    pool.context().log_sink().set_level(LogLevel::kInfo);
  }

  pool.stage_input("/home/data/genome.dat", std::string(32 << 10, 'G'));

  // The job: stage one input, compute, then stream a remote file through
  // the Chirp proxy and the shadow's remote I/O channel, writing results
  // back to the submit machine.
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("GenomeScan")
                    .compute(SimTime::sec(10))
                    .open_read("/home/data/genome.dat", 0)
                    .read(0, 8192)
                    .read(0, 8192)
                    .compute(SimTime::sec(20))
                    .read(0, 8192)
                    .close_stream(0)
                    .open_write("/home/data/matches.out", 1)
                    .write(1, 2048)
                    .close_stream(1)
                    .build();
  const JobId id = pool.submit(std::move(job));
  pool.boot();

  std::printf("job %llu submitted: remote reads + remote write via proxy\n",
              static_cast<unsigned long long>(id.value()));

  // Fault injection: the home filesystem drops offline 15 simulated
  // seconds in (mid-read) and recovers two minutes later.
  pool.engine().schedule(SimTime::sec(15), [&pool] {
    std::printf("[%s] FAULT: /home on the submit machine goes offline\n",
                pool.engine().now().str().c_str());
    pool.submit_fs().set_mount_online("/home", false);
  });
  pool.engine().schedule(SimTime::minutes(2) + SimTime::sec(15), [&pool] {
    std::printf("[%s] RECOVERY: /home is back\n",
                pool.engine().now().str().c_str());
    pool.submit_fs().set_mount_online("/home", true);
  });

  if (!pool.run_until_done(SimTime::hours(2))) {
    std::printf("job did not finish!\n");
    return 1;
  }

  const daemons::JobRecord* record = pool.schedd().job(id);
  std::printf("\njob finished: state=%s after %zu attempt(s)\n",
              std::string(daemons::job_state_name(record->state)).c_str(),
              record->attempts.size());
  for (std::size_t i = 0; i < record->attempts.size(); ++i) {
    const daemons::AttemptRecord& attempt = record->attempts[i];
    std::printf("  attempt %zu on %-8s [%s .. %s]: %s\n", i + 1,
                attempt.machine.c_str(), attempt.started.str().c_str(),
                attempt.ended.str().c_str(), attempt.summary.str().c_str());
  }
  std::printf("\nnote: the failed attempt carries local-resource scope, so "
              "the schedd retried;\nthe user saw only the final result.\n");

  const Result<fs::Stat> out = pool.submit_fs().stat("/home/data/matches.out");
  if (out.ok()) {
    std::printf("output written on the submit machine: %llu bytes\n",
                static_cast<unsigned long long>(out.value().size));
  }
  return 0;
}
