// Quickstart: build a small pool, submit a handful of jobs, print results.
//
//   $ ./quickstart [seed]
//
// Demonstrates the minimum surface of the library: PoolConfig, MachineSpec,
// job submission via ProgramBuilder, and reading the results back.
#include <cstdio>
#include <cstdlib>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A pool: three healthy machines plus one with a broken Java install,
  // running the paper's fixed (scoped) error discipline.
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(pool::MachineSpec::good("exec0"));
  config.machines.push_back(pool::MachineSpec::good("exec1"));
  config.machines.push_back(pool::MachineSpec::good("exec2"));
  config.machines.push_back(pool::MachineSpec::misconfigured_java("flaky0"));
  pool::Pool pool(config);

  // A small mixed workload: compute jobs, one legitimate program error,
  // one job that does remote I/O through the Chirp proxy.
  pool::stage_workload_inputs(pool);
  std::vector<JobId> ids;
  for (int i = 0; i < 5; ++i) {
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("Compute" + std::to_string(i))
                      .compute(SimTime::sec(5 + i))
                      .build();
    ids.push_back(pool.submit(std::move(job)));
  }
  {
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("Buggy")
                      .compute(SimTime::sec(2))
                      .throw_exception(ErrorKind::kArrayIndexOutOfBounds)
                      .build();
    ids.push_back(pool.submit(std::move(job)));
  }
  {
    daemons::JobDescription job;
    job.program = jvm::ProgramBuilder("Reader")
                      .open_read("/home/data/input.dat", 0)
                      .read(0, 4096)
                      .close_stream(0)
                      .build();
    ids.push_back(pool.submit(std::move(job)));
  }

  std::printf("submitted %zu jobs to a %zu-machine pool (seed %llu)\n\n",
              ids.size(), config.machines.size(),
              static_cast<unsigned long long>(seed));

  if (!pool.run_until_done(SimTime::hours(2))) {
    std::printf("warning: some jobs did not finish in simulated time\n");
  }

  std::printf("%-6s %-14s %-9s %s\n", "job", "state", "attempts", "result");
  for (const JobId id : ids) {
    const daemons::JobRecord* record = pool.schedd().job(id);
    if (record == nullptr) continue;
    std::printf("%-6llu %-14s %-9zu %s\n",
                static_cast<unsigned long long>(id.value()),
                std::string(daemons::job_state_name(record->state)).c_str(),
                record->attempts.size(), record->final_summary.str().c_str());
  }

  std::printf("\n--- pool report ---\n%s", pool.report().str().c_str());
  return 0;
}
