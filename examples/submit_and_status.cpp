// Submit-file workflow: stage a program, write a condor_submit-style
// description, queue it, and watch the pool with condor_status-style
// snapshots while it drains.
#include <cstdio>

#include "pool/pool.hpp"
#include "pool/submit.hpp"

using namespace esg;

int main() {
  pool::PoolConfig config;
  config.seed = 7;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(pool::MachineSpec::good("exec0"));
  config.machines.push_back(pool::MachineSpec::good("exec1"));
  config.machines.push_back(pool::MachineSpec::misconfigured_java("flaky0"));
  pool::Pool pool(config);

  // The user's "executable" is a program image on the submit machine.
  const jvm::JobProgram program = jvm::ProgramBuilder("MonteCarlo")
                                      .compute(SimTime::minutes(2))
                                      .open_write("pi.dat", 0)
                                      .write(0, 64)
                                      .close_stream(0)
                                      .build();
  if (!pool::stage_program(pool.submit_fs(), "/home/user/mc.prog", program)
           .ok()) {
    std::printf("cannot stage program\n");
    return 1;
  }

  const char* submit_text = R"(
    # monte-carlo sweep
    universe              = java
    executable            = /home/user/mc.prog
    owner                 = user
    rank                  = TARGET.Memory
    transfer_output_files = pi.dat
    queue 6
  )";
  Result<std::vector<daemons::JobDescription>> jobs =
      pool::parse_submit_text(pool.submit_fs(), submit_text);
  if (!jobs.ok()) {
    std::printf("submit rejected: %s\n", jobs.error().str().c_str());
    return 1;
  }
  for (auto& job : jobs.value()) pool.submit(std::move(job));
  pool.boot();
  std::printf("queued %zu jobs\n", jobs.value().size());

  // Periodic condor_status-style snapshots while the pool drains.
  for (int tick = 1; tick <= 3; ++tick) {
    pool.engine().run(pool.engine().now() + SimTime::minutes(2));
    std::printf("\n===== status at %s =====\n%s",
                pool.engine().now().str().c_str(),
                pool.status_string().c_str());
  }
  pool.run_until_done(SimTime::hours(2));
  std::printf("\n===== final =====\n%s", pool.status_string().c_str());
  std::printf("\n%s", pool.report().str().c_str());
  return 0;
}
