#include "analysis/diff.hpp"

#include <map>
#include <sstream>

#include "analysis/topology.hpp"

namespace esg::analysis {
namespace {

std::vector<std::string> lines_of(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string_view line = text.substr(start, nl - start);
    if (!line.empty()) lines.emplace_back(line);
    start = nl + 1;
  }
  return lines;
}

}  // namespace

std::string TopologyDiff::str() const {
  std::ostringstream os;
  for (const std::string& line : removed) os << "- " << line << "\n";
  for (const std::string& line : added) os << "+ " << line << "\n";
  if (identical()) {
    os << "topologies identical (" << common << " declaration(s))\n";
  } else {
    os << removed.size() << " removed, " << added.size() << " added, "
       << common << " unchanged\n";
  }
  return os.str();
}

TopologyDiff diff_topology_dumps(std::string_view a, std::string_view b) {
  const std::vector<std::string> a_lines = lines_of(a);
  const std::vector<std::string> b_lines = lines_of(b);

  std::map<std::string, long> balance;  // (count in A) - (count in B)
  for (const std::string& line : a_lines) ++balance[line];
  for (const std::string& line : b_lines) --balance[line];

  TopologyDiff diff;
  // Walk A in order, consuming positive balance as removals.
  std::map<std::string, long> remaining = balance;
  for (const std::string& line : a_lines) {
    long& r = remaining[line];
    if (r > 0) {
      diff.removed.push_back(line);
      --r;
    }
  }
  // Walk B in order, consuming negative balance as additions.
  for (const std::string& line : b_lines) {
    long& r = remaining[line];
    if (r < 0) {
      diff.added.push_back(line);
      ++r;
    }
  }
  diff.common = a_lines.size() - diff.removed.size();
  return diff;
}

TopologyDiff diff_topologies(const TopologyModel& a, const TopologyModel& b) {
  return diff_topology_dumps(a.str(), b.str());
}

}  // namespace esg::analysis
