// Topology diffs: what changed between two declared error topologies.
//
// A TopologyModel dump (TopologyModel::str()) is one declaration per line,
// so two models diff as line sets: declarations present in A but not B
// were *removed*, lines in B but not A were *added*. That is exactly the
// right granularity for reviewing a discipline change ("what did enabling
// scope_routing add to the contract?") or a subsystem addition ("what does
// the flock layer declare beyond the base pool?") — esg-verify --diff
// prints this structure instead of making a human eyeball two dumps.
//
// The diff is multiset-aware (a line declared twice in A and once in B
// shows one removal) and order-stable: removals print in A's order,
// additions in B's, so the output is deterministic for given inputs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace esg::analysis {

class TopologyModel;

struct TopologyDiff {
  std::vector<std::string> removed;  ///< in A, not in B (A's order)
  std::vector<std::string> added;    ///< in B, not in A (B's order)
  std::size_t common = 0;            ///< lines shared by both

  [[nodiscard]] bool identical() const {
    return removed.empty() && added.empty();
  }

  /// Unified-style summary: "- " removals, "+ " additions, and a footer
  /// with counts. Deterministic.
  [[nodiscard]] std::string str() const;
};

/// Diff two dumps line by line (multiset semantics; blank lines ignored).
[[nodiscard]] TopologyDiff diff_topology_dumps(std::string_view a,
                                               std::string_view b);

/// Convenience: dump both models and diff.
[[nodiscard]] TopologyDiff diff_topologies(const TopologyModel& a,
                                           const TopologyModel& b);

}  // namespace esg::analysis
