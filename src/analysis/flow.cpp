#include "analysis/flow.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace esg::analysis {

namespace {

// One node of the error-flow graph: a detection point or an interface.
struct Node {
  std::string name;
  std::string component;
  const DetectionDecl* detection = nullptr;
  const InterfaceDecl* iface = nullptr;
  std::vector<int> out;  ///< successor node indices (resolved FlowDecls)
};

// One lattice state reached by the fixpoint. Parent links reconstruct the
// witness path; `note` says how the fact crossed into this node.
struct State {
  int node = -1;
  ErrorKind kind = ErrorKind::kUnknown;
  ErrorScope scope = ErrorScope::kProgram;
  bool laundered = false;
  std::string laundering_node;  ///< leak interface that first destroyed identity
  int parent = -1;
  std::string note;
};

// A routing obligation: scope `scope` must be managed, witnessed by the
// fact path ending at state `state` (-1 for escalation-derived scopes).
struct Obligation {
  ErrorScope scope = ErrorScope::kProgram;
  int state = -1;
  std::string origin;  ///< node or rung that raised it
};

}  // namespace

std::string FlowFinding::str() const {
  std::ostringstream os;
  os << rule << " (" << component << ") " << node;
  if (kind != ErrorKind::kUnknown) os << " [" << kind_name(kind) << "]";
  os << ": " << message;
  for (const std::string& step : witness) os << "\n    " << step;
  return os.str();
}

bool FlowReport::has(const std::string& rule) const {
  return count(rule) > 0;
}

std::size_t FlowReport::count(const std::string& rule) const {
  std::size_t n = 0;
  for (const FlowFinding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string FlowReport::str() const {
  std::ostringstream os;
  os << "flow analysis: " << facts_seeded << " fact(s) seeded, "
     << facts_propagated << " state(s), " << edges_traversed
     << " edge crossing(s), " << obligations_raised << " obligation(s)";
  if (findings.empty()) {
    os << "\nclean: every fact reaches a representable exit, every handler"
       << " and rung is live";
    return os.str();
  }
  os << "\n" << findings.size() << " finding(s):";
  for (const FlowFinding& f : findings) os << "\n  " << f.str();
  return os.str();
}

FlowReport FlowAnalyzer::analyze(const TopologyModel& model) const {
  FlowReport report;

  // ---- build the graph ----
  std::vector<Node> nodes;
  std::map<std::string, int> index;
  for (const DetectionDecl& d : model.detections()) {
    index.emplace(d.point, static_cast<int>(nodes.size()));
    nodes.push_back({d.point, d.component, &d, nullptr, {}});
  }
  for (const InterfaceDecl& i : model.interfaces()) {
    index.emplace(i.routine, static_cast<int>(nodes.size()));
    nodes.push_back({i.routine, i.component, nullptr, &i, {}});
  }
  for (const FlowDecl& f : model.flows()) {
    const auto from = index.find(f.from);
    const auto to = index.find(f.to);
    if (from == index.end() || to == index.end()) {
      const std::string& missing = from == index.end() ? f.from : f.to;
      FlowFinding finding;
      finding.rule = "esf/dangling-edge";
      finding.component = from == index.end()
                              ? (to == index.end() ? "" : nodes[to->second].component)
                              : nodes[from->second].component;
      finding.node = f.from + " -> " + f.to;
      finding.message = "flow edge names no declared detection point or "
                        "interface ('" +
                        missing + "'): the edge vanishes from every analysis";
      finding.witness = {"flow " + f.from + " -> " + f.to};
      report.findings.push_back(std::move(finding));
      continue;
    }
    nodes[from->second].out.push_back(to->second);
  }

  // ---- worklist fixpoint ----
  std::vector<State> states;
  std::map<std::tuple<int, ErrorKind, ErrorScope, bool>, int> visited;
  std::deque<int> worklist;
  std::vector<Obligation> obligations;
  std::set<int> reached_interfaces;                    ///< node indices
  std::set<std::pair<int, ErrorKind>> delivered;       ///< contract entries
  std::set<std::pair<int, ErrorKind>> landed_terminal; ///< laundering dedup

  const auto enqueue = [&](State s) {
    const auto key = std::make_tuple(s.node, s.kind, s.scope, s.laundered);
    if (visited.count(key) != 0) return;
    visited.emplace(key, static_cast<int>(states.size()));
    states.push_back(std::move(s));
    worklist.push_back(static_cast<int>(states.size()) - 1);
  };

  const auto witness_of = [&](int state, const std::string& tail) {
    std::vector<std::string> path;
    for (int s = state; s >= 0; s = states[s].parent) {
      path.push_back(states[s].note);
    }
    std::reverse(path.begin(), path.end());
    if (!tail.empty()) path.push_back(tail);
    return path;
  };

  for (const DetectionDecl& d : model.detections()) {
    const int at = index.at(d.point);
    for (const ErrorKind kind : d.kinds) {
      const ErrorScope scope = default_scope(kind);
      State seed;
      seed.node = at;
      seed.kind = kind;
      seed.scope = scope;
      seed.note = d.point + " detects " + std::string(kind_name(kind)) +
                  " (scope " + std::string(scope_name(scope)) + ")";
      ++report.facts_seeded;
      enqueue(std::move(seed));
      // Discovery itself raises the default-scope obligation: someone must
      // manage the scope this kind invalidates (P3's premise).
      obligations.push_back({scope, static_cast<int>(states.size()) - 1,
                             d.point});
    }
  }

  while (!worklist.empty()) {
    const int id = worklist.front();
    worklist.pop_front();
    const State s = states[id];  // copy: states may reallocate on enqueue
    const Node& node = nodes[s.node];

    if (node.iface != nullptr) {
      reached_interfaces.insert(s.node);

      if (s.laundered) {
        // Past the first leak the fact travels as a generic result; later
        // contracts have nothing to inspect and wave it through. A wide
        // provenance arriving at a terminal this way is the finding.
        if (node.iface->terminal) {
          const ErrorScope provenance = s.scope;
          if (scope_rank(provenance) > scope_rank(options_.laundering_floor) &&
              landed_terminal.emplace(s.node, s.kind).second) {
            FlowFinding finding;
            finding.rule = "esf/multi-hop-laundering";
            finding.component = node.component;
            finding.node = node.name;
            finding.laundering_node = s.laundering_node;
            finding.kind = s.kind;
            finding.message =
                std::string(kind_name(s.kind)) + " reaches terminal " +
                node.name + " laundered: its " +
                std::string(scope_name(provenance)) +
                "-scope provenance was destroyed upstream and the user "
                "inherits a fault the pool should have managed";
            finding.witness = witness_of(
                id, "reaches terminal " + node.name + " still owing " +
                        std::string(scope_name(provenance)) + " scope");
            report.findings.push_back(std::move(finding));
          }
          continue;
        }
        for (const int next : node.out) {
          ++report.edges_traversed;
          State n = s;
          n.node = next;
          n.parent = id;
          n.note = node.name + " forwards the generic result to " +
                   nodes[next].name;
          enqueue(std::move(n));
        }
        continue;
      }

      if (node.iface->allows(s.kind)) {
        delivered.emplace(s.node, s.kind);
        if (node.iface->terminal) continue;  // representable delivery
        for (const int next : node.out) {
          ++report.edges_traversed;
          State n = s;
          n.node = next;
          n.parent = id;
          n.note = "passes the " + node.name + " contract on to " +
                   nodes[next].name;
          enqueue(std::move(n));
        }
        continue;
      }

      if (node.iface->mode == InterfaceMode::kLeak) {
        // First leak: identity destroyed here. If this is the terminal
        // itself the defect is single-hop — esv/p1-laundering's business,
        // visible to the point verifier. Multi-hop needs more travel.
        if (node.iface->terminal) continue;
        for (const int next : node.out) {
          ++report.edges_traversed;
          State n = s;
          n.node = next;
          n.parent = id;
          n.laundered = true;
          n.laundering_node = node.name;
          n.note = "leaks through " + node.name +
                   " outside its contract into " + nodes[next].name +
                   " (identity destroyed)";
          enqueue(std::move(n));
        }
        continue;
      }

      // Filter: a disciplined escape at the widened scope. The fact stops
      // travelling as a value and becomes a routing obligation.
      const ErrorScope widened =
          scope_rank(node.iface->escape_floor) > scope_rank(s.scope)
              ? node.iface->escape_floor
              : s.scope;
      obligations.push_back({widened, id, node.name});
      continue;
    }

    // Detection node (or pass-through): facts flow onward unchanged.
    for (const int next : node.out) {
      ++report.edges_traversed;
      State n = s;
      n.node = next;
      n.parent = id;
      n.note = "flows into " + nodes[next].name;
      enqueue(std::move(n));
    }
  }

  report.facts_propagated = states.size();
  report.obligations_raised = obligations.size();

  // ---- escalation closure over obligated scopes ----
  std::set<ErrorScope> obligated;
  std::map<ErrorScope, int> obligation_witness;  ///< first witness state
  for (const Obligation& o : obligations) {
    if (obligated.insert(o.scope).second) {
      obligation_witness[o.scope] = o.state;
    }
  }
  std::set<std::size_t> fired;  ///< indices into model.escalations()
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < model.escalations().size(); ++i) {
      const EscalationDecl& rung = model.escalations()[i];
      if (scope_rank(rung.to) <= scope_rank(rung.from)) continue;
      if (obligated.count(rung.from) == 0) continue;
      if (!fired.insert(i).second) continue;
      changed = true;
      if (obligated.insert(rung.to).second) {
        obligation_witness[rung.to] = obligation_witness[rung.from];
      }
    }
  }

  // ---- handler liveness ----
  std::set<std::pair<std::string, ErrorScope>> live;
  for (const ErrorScope scope : obligated) {
    if (const auto handler = model.handler_at_or_above(scope)) {
      live.emplace(handler->component, handler->scope);
    }
  }
  for (const HandlerDecl& h : model.handlers()) {
    if (live.count({h.component, h.scope}) != 0) continue;
    FlowFinding finding;
    finding.rule = "esf/dead-handler";
    finding.component = h.component;
    finding.node = h.component + "@" + std::string(scope_name(h.scope));
    finding.message =
        "handler registered at " + std::string(scope_name(h.scope)) +
        " scope is dead: no detection, escape, or escalation ever raises "
        "an obligation that routes to it";
    finding.witness = {"handler " + h.component + " manages " +
                       std::string(scope_name(h.scope))};
    report.findings.push_back(std::move(finding));
  }

  // ---- unreachable escalation rungs ----
  for (std::size_t i = 0; i < model.escalations().size(); ++i) {
    const EscalationDecl& rung = model.escalations()[i];
    const std::string label = rung.component + ": " +
                              std::string(scope_name(rung.from)) + " -> " +
                              std::string(scope_name(rung.to));
    FlowFinding finding;
    finding.rule = "esf/unreachable-escalation";
    finding.component = rung.component;
    finding.node = label;
    if (scope_rank(rung.to) <= scope_rank(rung.from)) {
      finding.message = "rung narrows (or holds) scope, so the monotone "
                        "widening closure can never fire it";
      finding.witness = {"escalation " + label};
      report.findings.push_back(std::move(finding));
      continue;
    }
    if (fired.count(i) != 0) continue;
    finding.message = "no obligation ever reaches " +
                      std::string(scope_name(rung.from)) +
                      " scope, so this rung can never fire";
    finding.witness = {"escalation " + label};
    report.findings.push_back(std::move(finding));
  }

  // ---- redundant consumption ----
  for (const InterfaceDecl& i : model.interfaces()) {
    const int at = index.at(i.routine);
    if (reached_interfaces.count(at) == 0) {
      FlowFinding finding;
      finding.rule = "esf/redundant-consumption";
      finding.component = i.component;
      finding.node = i.routine;
      finding.message = "no declared flow delivers any error to this "
                        "boundary: the consumption vocabulary is redundant";
      finding.witness = {"interface " + i.routine + " (" +
                         std::to_string(i.allowed.size()) + " kind(s))"};
      report.findings.push_back(std::move(finding));
      continue;
    }
    for (const ErrorKind kind : i.allowed) {
      if (delivered.count({at, kind}) != 0) continue;
      FlowFinding finding;
      finding.rule = "esf/redundant-consumption";
      finding.component = i.component;
      finding.node = i.routine;
      finding.kind = kind;
      finding.message =
          std::string("contract entry ") + std::string(kind_name(kind)) +
          " is dead: no declared detection can deliver it to " + i.routine;
      finding.witness = {"interface " + i.routine + " allows " +
                         std::string(kind_name(kind))};
      report.findings.push_back(std::move(finding));
    }
  }

  // ---- masking cycles ----
  // DFS over the resolved flow graph; every directed cycle is reported
  // once, anchored at its smallest node index.
  {
    std::vector<int> color(nodes.size(), 0);  // 0 white, 1 grey, 2 black
    std::vector<int> stack;
    std::set<std::vector<int>> seen_cycles;
    const std::function<void(int)> dfs = [&](int u) {
      color[u] = 1;
      stack.push_back(u);
      for (const int v : nodes[u].out) {
        if (color[v] == 1) {
          auto it = std::find(stack.begin(), stack.end(), v);
          std::vector<int> cycle(it, stack.end());
          std::rotate(cycle.begin(),
                      std::min_element(cycle.begin(), cycle.end()),
                      cycle.end());
          if (seen_cycles.insert(cycle).second) {
            FlowFinding finding;
            finding.rule = "esf/masking-cycle";
            finding.component = nodes[cycle.front()].component;
            finding.node = nodes[cycle.front()].name;
            std::ostringstream msg;
            msg << "flow edges form a ring (";
            for (std::size_t k = 0; k < cycle.size(); ++k) {
              if (k != 0) msg << " -> ";
              msg << nodes[cycle[k]].name;
            }
            msg << " -> " << nodes[cycle.front()].name
                << "): errors entering it circulate and are re-wrapped "
                   "instead of reaching a handler or terminal";
            finding.message = msg.str();
            for (const int n : cycle) {
              finding.witness.push_back("flows through " + nodes[n].name);
            }
            report.findings.push_back(std::move(finding));
          }
        } else if (color[v] == 0) {
          dfs(v);
        }
      }
      stack.pop_back();
      color[u] = 2;
    };
    for (std::size_t u = 0; u < nodes.size(); ++u) {
      if (color[u] == 0) dfs(static_cast<int>(u));
    }
  }

  return report;
}

}  // namespace esg::analysis
