// FlowAnalyzer: path-sensitive dataflow over a declared TopologyModel.
//
// The ScopeVerifier (verify.hpp) proves the four principles as point
// checks: each declaration is judged against its immediate neighbours. That
// misses defects that are clean at every hop but wrong as a whole — a kind
// that crosses three leak boundaries and lands on the user's desk stripped
// of its local-resource provenance, a handler registered for a scope no
// error can ever be raised at, an escalation rung no obligation ever
// reaches, a ring of flow edges errors circulate in forever.
//
// This pass builds the explicit error-flow graph (detection points and
// interfaces as nodes, FlowDecls as edges) and runs a worklist fixpoint
// over facts in the lattice
//
//   (ErrorKind, ErrorScope, laundered?)
//
// seeded at every detection point with the kind's default scope. Crossing a
// filter interface outside its contract converts the fact into a routing
// obligation at max(scope, escape_floor); crossing a leak interface
// outside its contract marks the fact laundered — from then on it travels
// as a generic result no later contract can inspect, which is exactly why
// laundering is pernicious. Obligations expand through the §5 escalation
// closure; the nearest registered handler at or above each obligated scope
// is credited as live.
//
// Findings (rule ids, all path-sensitive, each with a concrete witness):
//
//   esf/multi-hop-laundering   A laundered fact whose detection scope is
//                              wider than program scope reaches a terminal
//                              boundary — the user debugs a machine fault.
//   esf/dead-handler           A registered handler no obligation routes
//                              to, even after escalation.
//   esf/unreachable-escalation A rung whose `from` scope no obligation
//                              ever reaches (or that narrows, so it can
//                              never fire at all).
//   esf/redundant-consumption  An interface no declared flow can deliver
//                              any error to, or a contract entry no
//                              declared detection can ever satisfy.
//   esf/masking-cycle          A directed cycle of flow edges: errors
//                              entering it circulate instead of reaching a
//                              handler or terminal.
//   esf/dangling-edge          A FlowDecl endpoint naming no declared
//                              detection point or interface — the edge
//                              silently vanishes from every analysis.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/topology.hpp"
#include "core/kinds.hpp"
#include "core/scope.hpp"

namespace esg::analysis {

/// One path-sensitive defect, with the concrete witness path (root first)
/// that exhibits it.
struct FlowFinding {
  std::string rule;        ///< stable rule id ("esf/multi-hop-laundering")
  std::string component;   ///< owning component of the anchor node
  std::string node;        ///< anchor: interface, handler, rung, or edge
  /// multi-hop-laundering only: the leak interface that first destroyed
  /// the error's identity — the site dynamic blame must converge on.
  std::string laundering_node;
  ErrorKind kind = ErrorKind::kUnknown;  ///< kUnknown when not kind-specific
  std::string message;
  std::vector<std::string> witness;  ///< concrete path through the graph

  [[nodiscard]] std::string str() const;
};

struct FlowReport {
  std::vector<FlowFinding> findings;
  std::size_t facts_seeded = 0;       ///< (detection, kind) seeds
  std::size_t facts_propagated = 0;   ///< distinct lattice states visited
  std::size_t edges_traversed = 0;    ///< per-fact edge crossings
  std::size_t obligations_raised = 0; ///< detection + escape obligations

  [[nodiscard]] bool ok() const { return findings.empty(); }
  [[nodiscard]] bool has(const std::string& rule) const;
  [[nodiscard]] std::size_t count(const std::string& rule) const;
  [[nodiscard]] std::string str() const;
};

class FlowAnalyzer {
 public:
  struct Options {
    /// Laundering at or below this scope is the terminal vocabulary's
    /// right: a program-scope error collapsing into an exit code loses
    /// nothing the user could not already see. Wider provenance must
    /// survive to the terminal.
    ErrorScope laundering_floor = ErrorScope::kProgram;
  };

  FlowAnalyzer() = default;
  explicit FlowAnalyzer(Options options) : options_(options) {}

  [[nodiscard]] FlowReport analyze(const TopologyModel& model) const;

 private:
  Options options_;
};

}  // namespace esg::analysis
