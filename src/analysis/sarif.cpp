#include "analysis/sarif.hpp"

#include <cstdio>
#include <sstream>

namespace esg::analysis::sarif {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Log::add_rule(Rule rule) {
  for (const Rule& r : rules_) {
    if (r.id == rule.id) return;
  }
  rules_.push_back(std::move(rule));
}

void Log::add_result(Result result) { results_.push_back(std::move(result)); }

std::string Log::str() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n    {\n"
     << "      \"tool\": {\n        \"driver\": {\n"
     << "          \"name\": \"" << json_escape(tool_) << "\",\n"
     << "          \"version\": \"" << json_escape(version_) << "\",\n"
     << "          \"informationUri\": "
        "\"https://github.com/errorscope/errorscope\",\n"
     << "          \"rules\": [";
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i) os << ",";
    os << "\n            {\"id\": \"" << json_escape(rules_[i].id)
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(rules_[i].description) << "\"}}";
  }
  if (!rules_.empty()) os << "\n          ";
  os << "]\n        }\n      },\n"
     << "      \"results\": [";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const Result& r = results_[i];
    if (i) os << ",";
    os << "\n        {\n"
       << "          \"ruleId\": \"" << json_escape(r.rule_id) << "\",\n"
       << "          \"level\": \"" << json_escape(r.level) << "\",\n"
       << "          \"message\": {\"text\": \"" << json_escape(r.message)
       << "\"}";
    const bool physical = !r.uri.empty();
    const bool logical = !r.logical.empty();
    if (physical || logical) {
      os << ",\n          \"locations\": [\n            {";
      if (physical) {
        os << "\n              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": {\"uri\": \""
           << json_escape(r.uri) << "\"}";
        if (r.line > 0) {
          os << ",\n                \"region\": {\"startLine\": " << r.line
             << "}";
        }
        os << "\n              }";
        if (logical) os << ",";
      }
      if (logical) {
        os << "\n              \"logicalLocations\": [";
        for (std::size_t j = 0; j < r.logical.size(); ++j) {
          if (j) os << ",";
          os << "\n                {\"fullyQualifiedName\": \""
             << json_escape(r.logical[j]) << "\"}";
        }
        os << "\n              ]";
      }
      os << "\n            }\n          ]";
    }
    os << "\n        }";
  }
  if (!results_.empty()) os << "\n      ";
  os << "]\n    }\n  ]\n}\n";
  return os.str();
}

}  // namespace esg::analysis::sarif
