// Minimal SARIF 2.1.0 writer (Static Analysis Results Interchange Format).
//
// Both static layers — the scope verifier's model findings and esg-lint's
// source findings — emit through this one writer so CI uploads a single
// artifact format. Only the slice of the standard we need: one run, a tool
// driver with rule metadata, and results carrying a message plus either a
// physical location (file:line, lint) or logical locations (declaration
// chain, verifier).
#pragma once

#include <string>
#include <vector>

namespace esg::analysis::sarif {

struct Rule {
  std::string id;               ///< stable rule id ("esv/p3-routing-hole")
  std::string description;      ///< one-line shortDescription
};

struct Result {
  std::string rule_id;
  std::string level = "error";  ///< "error" | "warning" | "note"
  std::string message;
  std::string uri;              ///< physical artifact (may be empty)
  int line = 0;                 ///< 1-based; 0 = no physical location
  std::vector<std::string> logical;  ///< declaration chain (may be empty)
};

class Log {
 public:
  explicit Log(std::string tool_name, std::string tool_version = "1.0.0")
      : tool_(std::move(tool_name)), version_(std::move(tool_version)) {}

  void add_rule(Rule rule);
  void add_result(Result result);

  [[nodiscard]] std::size_t result_count() const { return results_.size(); }

  /// Serialize the whole log as a SARIF 2.1.0 JSON document.
  [[nodiscard]] std::string str() const;

 private:
  std::string tool_;
  std::string version_;
  std::vector<Rule> rules_;
  std::vector<Result> results_;
};

/// JSON string escaping shared with the writer (exposed for tests).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace esg::analysis::sarif
