#include "analysis/topology.hpp"

#include <algorithm>
#include <sstream>

namespace esg::analysis {

bool InterfaceDecl::allows(ErrorKind kind) const {
  return std::find(allowed.begin(), allowed.end(), kind) != allowed.end();
}

void TopologyModel::declare_component(std::string name) {
  if (std::find(components_.begin(), components_.end(), name) ==
      components_.end()) {
    components_.push_back(std::move(name));
  }
}

void TopologyModel::declare_interface(InterfaceDecl decl) {
  declare_component(decl.component);
  interfaces_.push_back(std::move(decl));
}

void TopologyModel::declare_handler(std::string component, ErrorScope scope) {
  declare_component(component);
  // At most one handler per scope; re-registration replaces (a restarted
  // daemon taking over the scope), mirroring ScopeRouter::register_handler.
  for (HandlerDecl& h : handlers_) {
    if (h.scope == scope) {
      h.component = std::move(component);
      return;
    }
  }
  handlers_.push_back(HandlerDecl{std::move(component), scope});
}

void TopologyModel::declare_detection(DetectionDecl decl) {
  declare_component(decl.component);
  detections_.push_back(std::move(decl));
}

void TopologyModel::declare_escalation(std::string component, ErrorScope from,
                                       ErrorScope to) {
  declare_component(component);
  escalations_.push_back(EscalationDecl{std::move(component), from, to});
}

void TopologyModel::declare_flow(std::string from, std::string to) {
  flows_.push_back(FlowDecl{std::move(from), std::move(to)});
}

void TopologyModel::unregister(ErrorScope scope) {
  auto it = std::find_if(handlers_.begin(), handlers_.end(),
                         [&](const HandlerDecl& h) { return h.scope == scope; });
  if (it == handlers_.end()) return;
  unregistered_.push_back(UnregisterDecl{it->component, it->scope});
  handlers_.erase(it);
}

const InterfaceDecl* TopologyModel::find_interface(
    const std::string& routine) const {
  for (const InterfaceDecl& i : interfaces_) {
    if (i.routine == routine) return &i;
  }
  return nullptr;
}

const DetectionDecl* TopologyModel::find_detection(
    const std::string& point) const {
  for (const DetectionDecl& d : detections_) {
    if (d.point == point) return &d;
  }
  return nullptr;
}

std::optional<HandlerDecl> TopologyModel::handler_at_or_above(
    ErrorScope scope) const {
  const int rank = scope_rank(scope);
  std::optional<HandlerDecl> best;
  for (const HandlerDecl& h : handlers_) {
    const int hrank = scope_rank(h.scope);
    if (hrank < rank) continue;
    if (!best || hrank < scope_rank(best->scope)) best = h;
  }
  return best;
}

std::vector<ErrorScope> TopologyModel::escalation_closure(
    ErrorScope scope) const {
  std::vector<ErrorScope> closure{scope};
  // Fixed point over the (tiny) edge set; widening only, as the runtime
  // ScopeEscalator applies its rules.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const EscalationDecl& e : escalations_) {
      if (scope_rank(e.to) <= scope_rank(e.from)) continue;
      const bool have_from =
          std::find(closure.begin(), closure.end(), e.from) != closure.end();
      const bool have_to =
          std::find(closure.begin(), closure.end(), e.to) != closure.end();
      if (have_from && !have_to) {
        closure.push_back(e.to);
        changed = true;
      }
    }
  }
  return closure;
}

std::string TopologyModel::str() const {
  std::ostringstream os;
  os << "topology: " << components_.size() << " component(s), "
     << interfaces_.size() << " interface(s), " << handlers_.size()
     << " handler(s), " << detections_.size() << " detection point(s), "
     << flows_.size() << " flow(s), " << escalations_.size()
     << " escalation edge(s)\n";
  for (const HandlerDecl& h : handlers_) {
    os << "  handler " << h.component << " manages " << scope_name(h.scope)
       << "\n";
  }
  for (const UnregisterDecl& u : unregistered_) {
    os << "  window: " << u.component << " unregistered from "
       << scope_name(u.scope) << "\n";
  }
  for (const DetectionDecl& d : detections_) {
    os << "  detection " << d.point << " (" << d.component << "):";
    for (ErrorKind k : d.kinds) os << " " << kind_name(k);
    os << "\n";
  }
  for (const InterfaceDecl& i : interfaces_) {
    os << "  interface " << i.routine << " (" << i.component << ", "
       << (i.mode == InterfaceMode::kFilter ? "filter" : "leak")
       << (i.terminal ? ", terminal" : "") << "):";
    for (ErrorKind k : i.allowed) os << " " << kind_name(k);
    os << "\n";
  }
  for (const FlowDecl& f : flows_) {
    os << "  flow " << f.from << " -> " << f.to << "\n";
  }
  for (const EscalationDecl& e : escalations_) {
    os << "  escalation (" << e.component << ") " << scope_name(e.from)
       << " -> " << scope_name(e.to) << "\n";
  }
  return os.str();
}

}  // namespace esg::analysis
