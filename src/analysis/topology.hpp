// TopologyModel: the pool's error topology as data (the static half of the
// paper's four principles).
//
// PrincipleAudit counts what the mechanisms *did*; obs::PrincipleChecker
// judges the journeys errors *took*. Both are dynamic: a routing hole or a
// leaky interface is only found on the execution paths a scenario happens
// to exercise. But the principles are design-time properties — "an error
// must be propagated to the program that manages its scope", "error
// interfaces must be concise and finite" — so they are checkable over the
// *declared* topology without running anything. This header is that
// declaration language: components state their error interfaces, scope
// registrations, detection points, flows, and escalation edges; the
// ScopeVerifier (verify.hpp) then proves or refutes P1–P4 over the model.
//
// Each daemon exports its declarations through a describe_topology() hook
// (schedd, shadow, starter, startd, matchmaker, jvm, chirp);
// pool/topology.hpp assembles the whole-pool model for a discipline.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/kinds.hpp"
#include "core/scope.hpp"

namespace esg::analysis {

/// What an interface does with a non-contractual error reaching its
/// boundary. kFilter is ErrorInterface::filter (escape, Principle 2);
/// kLeak is ErrorInterface::leak — the naive §2.3 behaviour of delivering
/// the error to the caller as if it were contractual.
enum class InterfaceMode { kFilter, kLeak };

/// One ErrorInterface contract: a routine boundary, the explicit kinds that
/// are part of its contract, and what happens to everything else.
struct InterfaceDecl {
  std::string component;            ///< declaring daemon ("starter", ...)
  std::string routine;              ///< unique node name ("JavaIo.open")
  std::vector<ErrorKind> allowed;   ///< the finite contract (P4)
  /// Scope floor applied when a non-contractual error escapes here.
  ErrorScope escape_floor = ErrorScope::kProcess;
  InterfaceMode mode = InterfaceMode::kFilter;
  /// Terminal boundary: results cross to a human (the user / operator)
  /// and flow no further.
  bool terminal = false;

  [[nodiscard]] bool allows(ErrorKind kind) const;
};

/// A ScopeRouter registration: `component` manages `scope` (Principle 3).
struct HandlerDecl {
  std::string component;
  ErrorScope scope;
};

/// A detection point: a place where errors of the listed kinds are first
/// discovered and represented as Error values.
struct DetectionDecl {
  std::string component;
  std::string point;                ///< unique node name ("jvm.execute")
  std::vector<ErrorKind> kinds;
};

/// An escalation edge: a fault classified at `from` scope that persists is
/// reconsidered at `to` scope (§5: time widens scope). Declared from the
/// same ScopeEscalator rules the runtime applies.
struct EscalationDecl {
  std::string component;            ///< who applies the rule ("schedd")
  ErrorScope from;
  ErrorScope to;
};

/// An explicit-error flow edge: results produced at node `from` (a
/// detection point or an interface) surface at interface `to`.
struct FlowDecl {
  std::string from;
  std::string to;
};

/// A routing window: a handler that was unregistered (a restarted or
/// detached daemon). Kept in the model so a hole it opens can be reported
/// with the window that caused it.
struct UnregisterDecl {
  std::string component;
  ErrorScope scope;
};

/// The declared error topology of a whole pool. Built by daemon
/// describe_topology() hooks plus inter-component flow wiring; consumed by
/// the ScopeVerifier. Purely data — nothing here runs the simulation.
class TopologyModel {
 public:
  void declare_component(std::string name);
  void declare_interface(InterfaceDecl decl);
  void declare_handler(std::string component, ErrorScope scope);
  void declare_detection(DetectionDecl decl);
  void declare_escalation(std::string component, ErrorScope from,
                          ErrorScope to);
  /// Wire node `from` (detection point or interface) into interface `to`.
  void declare_flow(std::string from, std::string to);

  /// Remove the handler for `scope`, recording the window it opens — the
  /// static twin of ScopeRouter::unregister on a restarted daemon.
  void unregister(ErrorScope scope);

  [[nodiscard]] const std::vector<std::string>& components() const {
    return components_;
  }
  [[nodiscard]] const std::vector<InterfaceDecl>& interfaces() const {
    return interfaces_;
  }
  [[nodiscard]] const std::vector<HandlerDecl>& handlers() const {
    return handlers_;
  }
  [[nodiscard]] const std::vector<DetectionDecl>& detections() const {
    return detections_;
  }
  [[nodiscard]] const std::vector<EscalationDecl>& escalations() const {
    return escalations_;
  }
  [[nodiscard]] const std::vector<FlowDecl>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<UnregisterDecl>& unregistered() const {
    return unregistered_;
  }

  [[nodiscard]] const InterfaceDecl* find_interface(
      const std::string& routine) const;
  [[nodiscard]] const DetectionDecl* find_detection(
      const std::string& point) const;

  /// The handler managing `scope`, or the nearest registered enclosing
  /// one — the static mirror of ScopeRouter::route's upper_bound walk.
  /// nullopt when no handler exists at or above `scope` (a P3 hole).
  [[nodiscard]] std::optional<HandlerDecl> handler_at_or_above(
      ErrorScope scope) const;

  /// Scopes reachable from `scope` by following escalation edges
  /// transitively (always includes `scope` itself). Widening is monotone:
  /// an edge that would narrow is ignored, as ScopeEscalator does.
  [[nodiscard]] std::vector<ErrorScope> escalation_closure(
      ErrorScope scope) const;

  /// One-line per declaration, for dumps and debugging.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> components_;
  std::vector<InterfaceDecl> interfaces_;
  std::vector<HandlerDecl> handlers_;
  std::vector<DetectionDecl> detections_;
  std::vector<EscalationDecl> escalations_;
  std::vector<FlowDecl> flows_;
  std::vector<UnregisterDecl> unregistered_;
};

}  // namespace esg::analysis
