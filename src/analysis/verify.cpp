#include "analysis/verify.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace esg::analysis {

namespace {

std::string principle_label(Principle p) {
  switch (p) {
    case Principle::kP1: return "P1";
    case Principle::kP2: return "P2";
    case Principle::kP3: return "P3";
    case Principle::kP4: return "P4";
  }
  return "P?";
}

std::string describe_detection(const DetectionDecl& d, ErrorKind kind) {
  return "detection " + d.point + " (" + d.component + ") raises " +
         std::string(kind_name(kind)) + " at scope " +
         std::string(scope_name(default_scope(kind)));
}

std::string describe_interface(const InterfaceDecl& i, ErrorKind kind) {
  std::string verdict = i.allows(kind)
                            ? "admits"
                            : (i.mode == InterfaceMode::kFilter
                                   ? "escapes (filter)"
                                   : "leaks past");
  return "interface " + i.routine + " (" + i.component + ", " +
         (i.terminal ? "terminal, " : "") +
         std::to_string(i.allowed.size()) + " kind(s)) " + verdict + " " +
         std::string(kind_name(kind));
}

/// The walking state of one explicit kind moving along flow edges.
struct WalkState {
  std::string node;
  bool representable = false;  ///< some interface admitted it so far
  std::vector<std::string> chain;
};

/// A routing obligation: scope S must have a handler at or above it.
struct Obligation {
  ErrorScope scope;
  std::string component;           ///< where the obligation arises
  std::vector<std::string> chain;  ///< how an error reaches this scope
};

}  // namespace

std::string Finding::str() const {
  std::ostringstream os;
  os << principle_label(principle) << " [" << rule << "] " << component
     << ": " << message << "\n";
  for (const std::string& link : chain) os << "    " << link << "\n";
  return os.str();
}

bool AnalysisReport::has(Principle p) const {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.principle == p; });
}

std::string AnalysisReport::str() const {
  std::ostringstream os;
  os << "static scope verification: " << findings.size() << " finding(s), "
     << detections_checked << " detection(s), " << interfaces_checked
     << " interface(s), " << scopes_checked << " scope(s), " << paths_walked
     << " path step(s)\n";
  for (const Finding& f : findings) os << f.str();
  return os.str();
}

AnalysisReport ScopeVerifier::verify(const TopologyModel& model) const {
  AnalysisReport report;

  // ---- P4: interfaces concise and finite ----------------------------------
  for (const InterfaceDecl& i : model.interfaces()) {
    ++report.interfaces_checked;
    if (i.allows(ErrorKind::kUnknown)) {
      Finding f;
      f.principle = Principle::kP4;
      f.rule = "esv/p4-catch-all";
      f.component = i.component;
      f.message = "interface '" + i.routine +
                  "' admits the catch-all kind 'unknown' — a generic error "
                  "that widens until it means nothing (§3.4)";
      f.chain.push_back(describe_interface(i, ErrorKind::kUnknown));
      report.findings.push_back(std::move(f));
    }
    if (i.allowed.size() > options_.finiteness_budget) {
      Finding f;
      f.principle = Principle::kP4;
      f.rule = "esv/p4-budget";
      f.component = i.component;
      f.message = "interface '" + i.routine + "' enumerates " +
                  std::to_string(i.allowed.size()) +
                  " kinds, over the finiteness budget of " +
                  std::to_string(options_.finiteness_budget);
      f.chain.push_back("interface " + i.routine + " (" + i.component + ") " +
                        std::to_string(i.allowed.size()) + " kind(s) > budget " +
                        std::to_string(options_.finiteness_budget));
      report.findings.push_back(std::move(f));
    }
  }

  // ---- walk every (detection, kind) along the flow graph ------------------
  // Collect routing obligations (P3) and laundering/escape findings (P1/P2)
  // along the way. De-duplicate findings per (rule, node, kind): many
  // detections can feed one leaky boundary.
  std::vector<Obligation> obligations;
  std::set<std::pair<std::string, std::string>> reported;
  auto report_once = [&](Finding f, const std::string& node, ErrorKind kind) {
    const auto key = std::make_pair(f.rule + "@" + node,
                                    std::string(kind_name(kind)));
    if (!reported.insert(key).second) return;
    report.findings.push_back(std::move(f));
  };

  for (const DetectionDecl& d : model.detections()) {
    ++report.detections_checked;
    for (ErrorKind kind : d.kinds) {
      // Every kind, when first discovered, invalidates its default scope;
      // someone must manage that scope whether or not an explicit flow path
      // also carries the result upward.
      obligations.push_back(Obligation{
          default_scope(kind), d.component, {describe_detection(d, kind)}});

      std::vector<WalkState> frontier{
          WalkState{d.point, false, {describe_detection(d, kind)}}};
      std::set<std::string> visited{d.point};
      while (!frontier.empty()) {
        WalkState state = std::move(frontier.back());
        frontier.pop_back();
        for (const FlowDecl& flow : model.flows()) {
          if (flow.from != state.node) continue;
          ++report.paths_walked;
          const InterfaceDecl* next = model.find_interface(flow.to);
          if (next == nullptr) continue;  // dangling edge: nothing to prove
          WalkState onward = state;
          onward.node = flow.to;
          onward.chain.push_back(describe_interface(*next, kind));

          if (next->allows(kind)) {
            onward.representable = true;
          } else if (next->mode == InterfaceMode::kFilter &&
                     !next->terminal) {
            // Principle 2 applied: the kind escapes here with its scope
            // widened to at least the floor; it stops flowing explicitly
            // and becomes a routing obligation instead.
            ErrorScope escaped = default_scope(kind);
            if (scope_rank(next->escape_floor) > scope_rank(escaped)) {
              escaped = next->escape_floor;
            }
            std::vector<std::string> chain = onward.chain;
            chain.push_back("escapes at scope " +
                            std::string(scope_name(escaped)));
            obligations.push_back(
                Obligation{escaped, next->component, std::move(chain)});
            continue;
          } else {
            // A non-contractual explicit kind crosses this boundary: the
            // consumer's interface cannot represent it, so its identity is
            // laundered — the §2.3 path, found structurally.
            Finding f;
            f.principle = Principle::kP1;
            f.rule = "esv/p1-laundering";
            f.component = next->component;
            f.message = "explicit kind '" + std::string(kind_name(kind)) +
                        "' is deliverable to '" + next->routine +
                        "' whose interface does not allow it; the error's "
                        "identity is destroyed at this boundary";
            f.chain = onward.chain;
            report_once(std::move(f), next->routine, kind);
          }

          if (next->terminal) {
            if (!onward.representable) {
              // The kind reached the end of its path without ever being
              // contractual and without ever escaping: no disciplined exit.
              Finding f;
              f.principle = Principle::kP2;
              f.rule = "esv/p2-escape-gap";
              f.component = next->component;
              f.message = "kind '" + std::string(kind_name(kind)) +
                          "' is non-contractual along its whole path and "
                          "never meets an escaping conversion";
              f.chain = onward.chain;
              report_once(std::move(f), next->routine, kind);
            }
            continue;
          }
          if (visited.insert(flow.to).second) {
            frontier.push_back(std::move(onward));
          }
        }
      }
    }
  }

  // ---- P3: every raisable scope has a manager at or above it --------------
  // Expand each obligation through the escalation edges (§5: time widens
  // scope), then check the handler table once per distinct scope, keeping
  // the shortest chain that reaches it as the witness.
  std::map<int, Obligation> by_scope;
  for (const Obligation& o : obligations) {
    for (ErrorScope scope : model.escalation_closure(o.scope)) {
      Obligation widened = o;
      if (scope != o.scope) {
        widened.chain.push_back("escalates " +
                                std::string(scope_name(o.scope)) + " -> " +
                                std::string(scope_name(scope)) +
                                " (persistence rule)");
      }
      widened.scope = scope;
      auto it = by_scope.find(scope_rank(scope));
      if (it == by_scope.end() ||
          widened.chain.size() < it->second.chain.size()) {
        by_scope[scope_rank(scope)] = std::move(widened);
      }
    }
  }
  for (auto& [rank, obligation] : by_scope) {
    (void)rank;
    ++report.scopes_checked;
    if (model.handler_at_or_above(obligation.scope)) continue;
    Finding f;
    f.principle = Principle::kP3;
    f.rule = "esv/p3-routing-hole";
    f.component = obligation.component;
    f.message = "errors of scope '" +
                std::string(scope_name(obligation.scope)) +
                "' are raisable but no handler is registered at or above "
                "that scope";
    f.chain = obligation.chain;
    f.chain.push_back("no handler at or above scope " +
                      std::string(scope_name(obligation.scope)));
    // If a window (unregister) would have covered the scope, name it: the
    // hole was opened, not designed.
    for (const UnregisterDecl& u : model.unregistered()) {
      if (scope_rank(u.scope) >= scope_rank(obligation.scope)) {
        f.chain.push_back("window: handler '" + u.component +
                          "' was unregistered from scope " +
                          std::string(scope_name(u.scope)));
      }
    }
    report.findings.push_back(std::move(f));
  }

  return report;
}

}  // namespace esg::analysis
