// ScopeVerifier: whole-pool model checking of the paper's four principles
// over a declared TopologyModel — without running the simulation.
//
// What is proved (or refuted), per check:
//
//   P3  Routing holes. Every scope at which an error can be raised —
//       detection-point default scopes, escape floors of filter
//       interfaces, and everything reachable from those by escalation
//       edges — must have a handler registered at or above it. A scope
//       with none is a hole in the management structure; if an
//       unregistered handler (a restarted daemon's window) would have
//       covered it, the window is named in the finding.
//   P1  Laundering hazards. An explicit error kind deliverable to a
//       boundary whose interface does not allow it, with no escaping
//       conversion in between (a leak-mode interface or a terminal
//       consumer), will have its identity destroyed — the §2.3 path of
//       "useful explicit error becomes generic result", found
//       structurally.
//   P2  Escape gaps. A kind that is non-contractual at every interface
//       along its flow path and never meets a filter (escaping
//       conversion) has no disciplined exit: the topology offers it no
//       representation and no escape.
//   P4  Finiteness. An interface whose contract contains the catch-all
//       kUnknown, or enumerates more kinds than the finiteness budget,
//       is not "concise and finite".
//
// Every finding carries the offending declaration chain (detection ->
// interfaces -> handler/window) so the hole can be read off the report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/topology.hpp"
#include "core/audit.hpp"

namespace esg::analysis {

/// One statically proven principle violation, with the declaration chain
/// that exhibits it.
struct Finding {
  Principle principle = Principle::kP1;
  std::string rule;               ///< stable rule id ("esv/p1-laundering")
  std::string component;          ///< offending component
  std::string message;
  std::vector<std::string> chain;  ///< declaration chain, root first

  [[nodiscard]] std::string str() const;
};

struct AnalysisReport {
  std::vector<Finding> findings;
  std::size_t detections_checked = 0;
  std::size_t interfaces_checked = 0;
  std::size_t scopes_checked = 0;
  std::size_t paths_walked = 0;

  [[nodiscard]] bool ok() const { return findings.empty(); }
  [[nodiscard]] bool has(Principle p) const;
  [[nodiscard]] std::string str() const;
};

class ScopeVerifier {
 public:
  struct Options {
    /// P4 budget: an interface enumerating more explicit kinds than this
    /// is no longer "concise and finite".
    std::size_t finiteness_budget = 20;
  };

  ScopeVerifier() = default;
  explicit ScopeVerifier(Options options) : options_(options) {}

  [[nodiscard]] AnalysisReport verify(const TopologyModel& model) const;

 private:
  Options options_;
};

}  // namespace esg::analysis
