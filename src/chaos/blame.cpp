#include "chaos/blame.hpp"

#include "obs/export.hpp"

namespace esg::chaos {

obs::BlameReport blame_plan(
    const FaultPlan& plan,
    const std::function<RunResult(const FaultPlan&)>& probe) {
  FaultPlan scoped = plan;
  scoped.shape.discipline = "scoped";

  const RunResult baseline_run = probe(scoped);
  const RunResult subject_run = probe(plan);

  // A replay that produced an unparseable journal is a harness bug; blame
  // an empty journal rather than crash — the report's span counts (0) make
  // the breakage visible.
  const obs::Journal baseline =
      obs::parse_journal(baseline_run.journal).value_or(obs::Journal{});
  const obs::Journal subject =
      obs::parse_journal(subject_run.journal).value_or(obs::Journal{});

  const std::string discipline =
      plan.shape.discipline.empty() ? "scoped" : plan.shape.discipline;
  return obs::blame_journals(baseline, subject, "scoped-replay",
                             discipline + "-replay");
}

obs::BlameReport blame_plan(const FaultPlan& plan) {
  return blame_plan(plan, &CampaignRunner::replay);
}

}  // namespace esg::chaos
