// Blame for fault plans: re-run a plan under both disciplines and diff.
//
// The campaign's minimized plan says *what* to inject to reproduce a red
// cell; the blame report says *who* mishandled it. This module bridges the
// two: replay the plan twice — once with the error-scope discipline forced
// to "scoped" (the leg that behaves) and once as written (usually
// "naive") — then hand both journals to obs::blame_journals. Both legs are
// single-thread engine-isolated replays, so the pair of journals — and the
// report diffed from them — is byte-deterministic.
#pragma once

#include <functional>

#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "obs/blame.hpp"

namespace esg::chaos {

/// Replay `plan` as written (the subject leg) and with
/// shape.discipline = "scoped" (the baseline leg) through `probe`, then
/// localize the first divergence. The probe is the same replay hook the
/// campaign and ddmin use — pass flock's to blame federated plans. A plan
/// already scoped replays identically on both legs and yields the honest
/// kNoDivergence verdict.
[[nodiscard]] obs::BlameReport blame_plan(
    const FaultPlan& plan,
    const std::function<RunResult(const FaultPlan&)>& probe);

/// blame_plan with the default single-pool replay.
[[nodiscard]] obs::BlameReport blame_plan(const FaultPlan& plan);

}  // namespace esg::chaos
