#include "chaos/campaign.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "chaos/blame.hpp"
#include "chaos/inject.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "daemons/config.hpp"
#include "obs/export.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"
#include "resilience/pattern.hpp"

namespace esg::chaos {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Oracle verdict for one finished sweep cell: parse the cell's journal
/// back into events (the same round trip a saved artifact takes) and run
/// every oracle over it.
OracleReport judge(const pool::CellOutcome& outcome) {
  std::vector<obs::TraceEvent> events;
  if (std::optional<obs::Journal> journal = obs::parse_journal(outcome.journal)) {
    events = std::move(journal->events);
  }
  return evaluate_oracles(outcome.report, outcome.finished, events);
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {}

pool::SweepCell CampaignRunner::make_cell(const FaultPlan& plan,
                                          std::string label) {
  pool::SweepCell cell;
  cell.label = std::move(label);
  cell.limit = plan.shape.limit;

  pool::PoolConfig config;
  config.seed = plan.seed;
  config.discipline = plan.shape.discipline == "naive"
                          ? daemons::DisciplineConfig::naive()
                          : daemons::DisciplineConfig::scoped();
  if (plan.shape.discipline != "naive") {
    // A pattern monoculture (chaos/score.hpp) replaces the classic table
    // with one strategy bound pool-wide; otherwise the scoped cell runs
    // the classic discipline with §5 avoidance on.
    if (const std::optional<resilience::PatternKind> pattern =
            resilience::parse_pattern(plan.shape.pattern)) {
      config.discipline = daemons::DisciplineConfig::pattern_monoculture(*pattern);
    } else {
      config.discipline.schedd_avoidance = true;
    }
  }
  // All machines good: a fault-free run passes every oracle under either
  // discipline, so any red cell is attributable to the injected plan — and
  // a shrunk plan can never be empty.
  for (int i = 0; i < plan.shape.machines; ++i) {
    config.machines.push_back(pool::MachineSpec::good(strfmt("exec%d", i)));
  }
  config.trace = true;
  config.trace_capacity = 1 << 16;
  cell.config = std::move(config);

  cell.setup = [plan](pool::Pool& pool) {
    pool::stage_workload_inputs(pool);
    pool::WorkloadOptions workload;
    workload.count = plan.shape.jobs;
    workload.mean_compute = plan.shape.mean_compute;
    // Some remote IO so link and filesystem windows have live traffic to
    // hit; no workload-side errors (see the all-good-machines note above).
    workload.remote_io_fraction = 0.25;
    workload.remote_write_fraction = 0.25;
    Rng rng = Rng(plan.seed).fork("chaos.workload");
    for (auto& job : pool::make_workload(workload, rng)) {
      pool.submit(std::move(job));
    }
    Injector::arm(pool, plan);
  };
  return cell;
}

RunResult CampaignRunner::replay(const FaultPlan& plan) {
  std::vector<pool::SweepCell> cells;
  cells.push_back(make_cell(plan, "replay"));
  const pool::SweepReport sweep = pool::SweepRunner(1).run(std::move(cells));
  const pool::CellOutcome& outcome = sweep.cells.front();
  RunResult out;
  out.finished = outcome.finished;
  out.report = outcome.report;
  out.oracles = judge(outcome);
  out.engine_events = outcome.engine_events;
  out.journal = outcome.journal;
  return out;
}

FaultPlan CampaignRunner::shrink(const FaultPlan& plan, std::size_t* probes) {
  return shrink_with(plan, &CampaignRunner::replay, probes);
}

FaultPlan CampaignRunner::shrink_with(
    const FaultPlan& plan,
    const std::function<RunResult(const FaultPlan&)>& probe,
    std::size_t* probes) {
  std::size_t spent = 0;
  auto still_fails = [&](const std::vector<FaultAction>& actions) {
    FaultPlan candidate = plan;
    candidate.actions = actions;
    ++spent;
    return !probe(candidate).ok();
  };

  // ddmin over the action list. Dropping half of a crash/restart or
  // partition/heal pair is fine: an orphaned recovery is a no-op, and an
  // unrecovered crash of one of several good machines is still a plan a
  // principled pool survives.
  std::vector<FaultAction> current = plan.actions;
  std::size_t n = 2;
  while (current.size() >= 2 && n <= current.size()) {
    const auto chunk_bounds = [&](std::size_t i) {
      return std::pair<std::size_t, std::size_t>{i * current.size() / n,
                                                 (i + 1) * current.size() / n};
    };
    bool progressed = false;
    // Try each chunk alone ("reduce to subset")...
    for (std::size_t i = 0; i < n && !progressed; ++i) {
      const auto [begin, end] = chunk_bounds(i);
      std::vector<FaultAction> subset(current.begin() + begin,
                                      current.begin() + end);
      if (!subset.empty() && subset.size() < current.size() &&
          still_fails(subset)) {
        current = std::move(subset);
        n = 2;
        progressed = true;
      }
    }
    // ...then each chunk removed ("reduce to complement").
    if (!progressed && n > 2) {
      for (std::size_t i = 0; i < n && !progressed; ++i) {
        const auto [begin, end] = chunk_bounds(i);
        std::vector<FaultAction> complement;
        for (std::size_t k = 0; k < current.size(); ++k) {
          if (k < begin || k >= end) complement.push_back(current[k]);
        }
        if (complement.size() < current.size() && still_fails(complement)) {
          current = std::move(complement);
          n = std::max<std::size_t>(2, n - 1);
          progressed = true;
        }
      }
    }
    if (!progressed) {
      if (n >= current.size()) break;
      n = std::min(current.size(), 2 * n);
    }
  }

  FaultPlan minimized = plan;
  minimized.actions = std::move(current);
  if (probes != nullptr) *probes += spent;
  return minimized;
}

CampaignResult CampaignRunner::run() const { return run(CampaignHooks{}); }

CampaignResult CampaignRunner::run(const CampaignHooks& hooks) const {
  // Resolve each stage to the single-pool default when the hook is unset.
  const auto draw = hooks.draw
                        ? hooks.draw
                        : [](std::uint64_t seed, const CampaignOptions& opts) {
                            PlanShape bounds = opts.bounds;
                            bounds.hosts.clear();
                            for (int i = 0; i < opts.shape.machines; ++i) {
                              bounds.hosts.push_back(strfmt("exec%d", i));
                            }
                            return make_random_plan(seed, bounds);
                          };
  const auto cell_for =
      hooks.cell ? hooks.cell
                 : [](const FaultPlan& plan, std::string label) {
                     return make_cell(plan, std::move(label));
                   };
  const std::function<RunResult(const FaultPlan&)> probe =
      hooks.replay ? hooks.replay : &CampaignRunner::replay;

  CampaignResult result;
  result.seed = options_.seed;

  // Plan seeds come from a dedicated generator over the campaign seed —
  // never from anything the sweep's scheduling could perturb.
  Rng seeds(options_.seed);
  std::vector<FaultPlan> plans;
  plans.reserve(static_cast<std::size_t>(std::max(options_.plans, 0)));
  for (int i = 0; i < options_.plans; ++i) {
    FaultPlan plan = draw(seeds.next_u64(), options_);
    plan.shape = options_.shape;
    plans.push_back(std::move(plan));
  }

  std::vector<pool::SweepCell> cells;
  cells.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    cells.push_back(cell_for(plans[i], strfmt("plan%zu", i)));
  }
  const pool::SweepReport sweep = pool::SweepRunner(options_.threads).run(
      std::move(cells));

  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    CellVerdict verdict;
    verdict.index = i;
    verdict.plan = plans[i];
    verdict.finished = sweep.cells[i].finished;
    verdict.report = sweep.cells[i].report;
    verdict.oracles = judge(sweep.cells[i]);
    verdict.engine_events = sweep.cells[i].engine_events;
    if (!verdict.oracles.ok()) ++result.failing;
    result.cells.push_back(std::move(verdict));
  }

  if (options_.triage_reruns > 0) {
    // Flakiness triage: a verdict that does not reproduce is a determinism
    // bug in the harness — worse than the red cell itself. Fingerprint =
    // oracle verdict bytes + finished flag + engine event count; any rerun
    // divergence flags the cell flaky.
    const auto triage = [&](CellVerdict& cell) {
      const std::string baseline =
          strfmt("%s finished=%d events=%llu", cell.oracles.str().c_str(),
                 cell.finished ? 1 : 0,
                 static_cast<unsigned long long>(cell.engine_events));
      for (int r = 0; r < options_.triage_reruns; ++r) {
        const RunResult rerun = probe(cell.plan);
        const std::string fingerprint =
            strfmt("%s finished=%d events=%llu", rerun.oracles.str().c_str(),
                   rerun.finished ? 1 : 0,
                   static_cast<unsigned long long>(rerun.engine_events));
        ++cell.triage_reruns;
        if (fingerprint != baseline) {
          cell.flaky = true;
          cell.triage_note = strfmt("rerun %d diverged: [%s] vs [%s]", r + 1,
                                    fingerprint.c_str(), baseline.c_str());
          break;
        }
      }
      if (cell.flaky) ++result.flaky;
    };
    bool any_red = false;
    for (CellVerdict& cell : result.cells) {
      if (cell.oracles.ok()) continue;
      any_red = true;
      triage(cell);
    }
    // All green: re-run cell 0 as a determinism canary, so triage proves
    // something on every campaign, not only unlucky ones.
    if (!any_red && !result.cells.empty()) triage(result.cells.front());
  }

  if (result.failing > 0 && options_.shrink) {
    // Shrink the first failing cell (lowest index): the choice, and so the
    // artifact, is independent of which worker finished first.
    for (const CellVerdict& cell : result.cells) {
      if (cell.oracles.ok()) continue;
      result.minimized = shrink_with(cell.plan, probe, &result.shrink_probes);
      result.minimized_oracles = probe(*result.minimized).oracles;
      result.blame = blame_plan(*result.minimized, probe);
      break;
    }
  }
  return result;
}

std::string CellVerdict::str() const {
  std::string line = strfmt(
      "plan%-3zu seed=%llu actions=%zu makespan=%.0fs unfinished=%d %s", index,
      static_cast<unsigned long long>(plan.seed), plan.actions.size(),
      report.makespan_seconds, report.unfinished,
      oracles.ok() ? "ok" : "FAIL");
  for (const OracleFailure& failure : oracles.failures) {
    line += "\n    " + failure.str();
  }
  if (triage_reruns > 0) {
    line += strfmt("\n    triage: %d rerun(s) %s", triage_reruns,
                   flaky ? ("FLAKY — " + triage_note).c_str() : "stable");
  }
  return line;
}

std::string CampaignResult::str() const {
  std::ostringstream os;
  os << "chaos campaign: seed=" << seed << " plans=" << cells.size() << "\n";
  for (const CellVerdict& cell : cells) os << cell.str() << "\n";
  os << "verdict: " << failing << " of " << cells.size()
     << " plan(s) failed an oracle\n";
  int triaged = 0;
  for (const CellVerdict& cell : cells) {
    if (cell.triage_reruns > 0) ++triaged;
  }
  if (triaged > 0) {
    os << "triage: " << triaged << " cell(s) re-run, " << flaky
       << " flaky (non-deterministic verdicts)\n";
  }
  if (minimized.has_value()) {
    os << "minimized to " << minimized->actions.size() << " action(s) in "
       << shrink_probes << " replay probe(s); minimized replay: "
       << (minimized_oracles.ok() ? "ok (SHRINK LOST THE FAILURE)" : "FAIL")
       << "\n";
    os << minimized->str();
  }
  if (blame.has_value() && blame->found()) {
    const obs::AlignKey key = blame->blamed_key();
    os << "blame: " << key.str() << " ("
       << obs::confidence_name(blame->confidence) << ", chain "
       << blame->chain.size() << " span(s))\n";
  }
  return os.str();
}

std::string CampaignResult::json() const {
  // Hand-rolled and key-ordered: this document is diffed byte-for-byte
  // across sweep widths, so nothing non-deterministic may leak in.
  std::ostringstream os;
  os << "{\"campaign\":{\"seed\":" << seed << ",\"plans\":" << cells.size()
     << ",\"failing\":" << failing << ",\"flaky\":" << flaky
     << "},\"cells\":[";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellVerdict& cell = cells[i];
    if (i != 0) os << ",";
    os << "{\"index\":" << cell.index << ",\"seed\":" << cell.plan.seed
       << ",\"actions\":" << cell.plan.actions.size()
       << ",\"finished\":" << (cell.finished ? "true" : "false")
       << ",\"unfinished\":" << cell.report.unfinished
       << ",\"ok\":" << (cell.oracles.ok() ? "true" : "false")
       << ",\"engine_events\":" << cell.engine_events
       << ",\"triage_reruns\":" << cell.triage_reruns
       << ",\"flaky\":" << (cell.flaky ? "true" : "false")
       << ",\"failures\":[";
    for (std::size_t f = 0; f < cell.oracles.failures.size(); ++f) {
      if (f != 0) os << ",";
      os << "\"" << json_escape(cell.oracles.failures[f].str()) << "\"";
    }
    os << "]}";
  }
  os << "]";
  if (minimized.has_value()) {
    os << ",\"minimized\":{\"actions\":" << minimized->actions.size()
       << ",\"probes\":" << shrink_probes
       << ",\"replay_ok\":" << (minimized_oracles.ok() ? "true" : "false")
       << ",\"plan\":\"" << json_escape(minimized->str()) << "\"}";
  } else {
    os << ",\"minimized\":null";
  }
  if (blame.has_value() && blame->found()) {
    const obs::AlignKey key = blame->blamed_key();
    os << ",\"blame\":{\"daemon\":\"" << json_escape(key.daemon)
       << "\",\"machine\":\"" << json_escape(key.machine) << "\",\"scope\":\""
       << json_escape(scope_name(key.scope)) << "\",\"kind\":\""
       << json_escape(kind_name(key.kind)) << "\",\"job\":" << key.job
       << ",\"action\":\"" << obs::event_type_name(key.action)
       << "\",\"verdict\":\"" << obs::divergence_name(blame->divergence)
       << "\",\"confidence\":\"" << obs::confidence_name(blame->confidence)
       << "\",\"chain\":" << blame->chain.size() << "}";
  } else {
    os << ",\"blame\":null";
  }
  os << "}\n";
  return os.str();
}

}  // namespace esg::chaos
