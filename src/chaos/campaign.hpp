// The chaos campaign: seeded fault-plan fan-out, oracles, and shrinking.
//
// A campaign draws N random FaultPlans from one seed, runs each plan as an
// independent pool::SweepRunner cell (trace on, Injector armed during
// setup), and evaluates the resilience oracles over every cell's report
// and journal. Because cells are engine-isolated, the campaign's verdicts
// — and its serialized str()/json() forms — are byte-identical at any
// thread count: a red cell in an 8-way CI run is the same red cell, same
// bytes, on a 1-thread laptop.
//
// When a plan fails an oracle, the runner replays it (confirming the
// failure is the plan's, not the scheduler's) and delta-debugs it with
// ddmin (Zeller & Hildebrandt, "Simplifying and Isolating Failure-Inducing
// Input") down to a minimal failing action list, serialized as a
// self-contained esg-faultplan artifact anyone can re-run with
// tools/esg-chaos --plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/oracle.hpp"
#include "chaos/plan.hpp"
#include "obs/blame.hpp"
#include "pool/report.hpp"
#include "pool/sweep.hpp"

namespace esg::chaos {

struct CampaignOptions {
  std::uint64_t seed = 1;  ///< campaign seed; plan seeds are drawn from it
  int plans = 32;          ///< how many random plans to run
  unsigned threads = 0;    ///< SweepRunner width (0 = hardware); verdict
                           ///< bytes do not depend on this
  PoolShape shape;         ///< the pool every plan targets
  /// Generator bounds; `hosts` is filled from `shape.machines` at run time.
  PlanShape bounds;
  bool shrink = true;      ///< ddmin the first failing plan
  /// Flakiness triage: re-run every red cell's plan this many extra times
  /// and compare determinism fingerprints (oracle verdict bytes + engine
  /// event count). Any variance is flagged as `flaky` — a red cell that is
  /// not reproducible is a determinism bug in the harness, a different
  /// and worse defect than the failure itself. When the campaign is all
  /// green, cell 0 is re-run instead as a determinism canary, so triage
  /// proves something on every run. 0 disables triage.
  int triage_reruns = 0;
};

/// One campaign cell: the plan that ran and what the oracles said.
struct CellVerdict {
  std::size_t index = 0;
  FaultPlan plan;
  bool finished = false;
  pool::PoolReport report;
  OracleReport oracles;
  std::uint64_t engine_events = 0;  ///< determinism fingerprint
  /// Triage outcome (set only when CampaignOptions::triage_reruns > 0 and
  /// this cell was re-run): reruns spent, and whether any diverged.
  int triage_reruns = 0;
  bool flaky = false;
  std::string triage_note;  ///< what diverged, for the report

  /// One table line: "#<idx> seed<seed> <n> action(s): ok|FAIL ...".
  [[nodiscard]] std::string str() const;
};

/// One plan replayed in isolation (also the ddmin probe result).
struct RunResult {
  bool finished = false;
  pool::PoolReport report;
  OracleReport oracles;
  std::uint64_t engine_events = 0;
  /// The cell's esg-journal v1 document, so a probe's run can feed the
  /// blame engine without re-running the plan.
  std::string journal;

  [[nodiscard]] bool ok() const { return oracles.ok(); }
};

/// Pluggable campaign stages, for topologies beyond a single pool::Pool.
/// Every hook left unset falls back to the single-pool default
/// (make_random_plan / make_cell / replay). flock::federated_hooks()
/// swaps all three for Federation-backed cells.
struct CampaignHooks {
  /// Draw plan #i from `seed` (the per-plan seed, already derived from the
  /// campaign seed). The shape is stamped onto the plan by the runner.
  std::function<FaultPlan(std::uint64_t seed, const CampaignOptions&)> draw;
  /// Build the sweep cell that executes `plan`.
  std::function<pool::SweepCell(const FaultPlan&, std::string label)> cell;
  /// Run one plan in isolation (ddmin probes, triage reruns).
  std::function<RunResult(const FaultPlan&)> replay;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  std::vector<CellVerdict> cells;  ///< submission order (plan order)
  int failing = 0;                 ///< cells with >= 1 oracle failure
  int flaky = 0;                   ///< cells whose triage reruns diverged

  /// Shrink artifacts — set only when a cell failed and shrinking ran.
  /// The first failing cell (lowest index) is shrunk, so the artifact is
  /// deterministic too.
  std::optional<FaultPlan> minimized;
  OracleReport minimized_oracles;  ///< the minimized plan's replay verdict
  std::size_t shrink_probes = 0;   ///< ddmin replays spent
  /// Root-cause localization of the minimized plan: its journal diffed
  /// against a scoped-discipline replay of the same plan (see obs/blame).
  /// Deterministic like every other campaign artifact.
  std::optional<obs::BlameReport> blame;

  [[nodiscard]] bool all_ok() const { return failing == 0; }
  /// Human-readable campaign table. Deterministic: no wall-clock, no
  /// thread count — the 1-thread and 8-thread bytes match.
  [[nodiscard]] std::string str() const;
  /// Deterministic JSON document (same thread-independence contract).
  [[nodiscard]] std::string json() const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options);

  /// Draw, run, judge, and (if asked) shrink. Plan seeds come from a
  /// dedicated Rng over options.seed, so campaign N at seed S is the same
  /// set of plans everywhere.
  [[nodiscard]] CampaignResult run() const;

  /// Same campaign loop with pluggable stages. Unset hooks fall back to
  /// the single-pool defaults, so run() is run({}).
  [[nodiscard]] CampaignResult run(const CampaignHooks& hooks) const;

  /// Build the SweepCell that executes `plan`: a pool shaped per
  /// plan.shape (seeded by plan.seed, trace on), a plain compute+remote-IO
  /// workload drawn from the same seed, and the Injector armed in setup.
  [[nodiscard]] static pool::SweepCell make_cell(const FaultPlan& plan,
                                                 std::string label);

  /// Run one plan by itself and evaluate the oracles — the replay path
  /// behind tools/esg-chaos --plan and every ddmin probe.
  [[nodiscard]] static RunResult replay(const FaultPlan& plan);

  /// ddmin: shrink `plan` (which must fail some oracle) to a minimal
  /// action list that still fails. Pair-preserving on nothing — orphaned
  /// recoveries are harmless no-ops — so the minimum really is minimal.
  /// `probes`, if given, accumulates the number of replays spent.
  [[nodiscard]] static FaultPlan shrink(const FaultPlan& plan,
                                        std::size_t* probes = nullptr);

  /// shrink() with a caller-supplied replay (federated cells ddmin too).
  [[nodiscard]] static FaultPlan shrink_with(
      const FaultPlan& plan,
      const std::function<RunResult(const FaultPlan&)>& probe,
      std::size_t* probes = nullptr);

 private:
  CampaignOptions options_;
};

}  // namespace esg::chaos
