#include "chaos/inject.hpp"

#include <utility>

#include "common/strings.hpp"

namespace esg::chaos {
namespace {

/// The machine's configured base rate, for restoring when a window closes.
double base_fs_rate(const pool::Pool& pool, const std::string& host,
                    bool corruption) {
  for (const pool::MachineSpec& spec : pool.config().machines) {
    if (spec.name == host) {
      return corruption ? spec.silent_corruption_rate : spec.fs_fault_rate;
    }
  }
  return 0;
}

}  // namespace

Injector::Injector(pool::Pool& pool, FaultPlan plan)
    : pool_(pool), plan_(std::move(plan)) {}

std::shared_ptr<Injector> Injector::arm(pool::Pool& pool, FaultPlan plan) {
  std::shared_ptr<Injector> injector(new Injector(pool, std::move(plan)));
  // Fork the injection streams now, in plan order, before any event runs:
  // the draws an armed window will consume are fixed at arm time, not at
  // whatever state the engine RNG has reached when the window opens.
  for (const FaultAction& action : injector->plan_.actions) {
    switch (action.type) {
      case FaultActionType::kFsFaults:
      case FaultActionType::kChronic:
        injector->fs_rng(action.host);
        break;
      case FaultActionType::kCorrupt:
        injector->corrupt_rng(action.host);
        break;
      default:
        break;
    }
  }
  injector->schedule_all(injector);
  return injector;
}

Rng& Injector::fs_rng(const std::string& host) {
  for (auto& [name, rng] : fs_rngs_) {
    if (name == host) return rng;
  }
  fs_rngs_.emplace_back(host,
                        pool_.engine().rng().fork(rng_streams::chaos_fs(host)));
  return fs_rngs_.back().second;
}

Rng& Injector::corrupt_rng(const std::string& host) {
  for (auto& [name, rng] : corrupt_rngs_) {
    if (name == host) return rng;
  }
  corrupt_rngs_.emplace_back(
      host, pool_.engine().rng().fork(rng_streams::chaos_corruption(host)));
  return corrupt_rngs_.back().second;
}

void Injector::schedule_all(const std::shared_ptr<Injector>& self) {
  // The timers hold the only strong references the injector needs: once
  // armed, it lives exactly as long as unfired actions remain (or until
  // the engine is torn down with its queue).
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    pool_.engine().schedule_at(plan_.actions[i].at, [self, i] {
      self->apply(self->plan_.actions[i]);
    });
    const FaultAction& action = plan_.actions[i];
    const bool windowed = action.type == FaultActionType::kLink ||
                          action.type == FaultActionType::kFsFaults ||
                          action.type == FaultActionType::kCorrupt;
    if (windowed) {
      pool_.engine().schedule_at(action.at + action.duration, [self, i] {
        self->restore(self->plan_.actions[i]);
      });
    }
  }
}

void Injector::note(const FaultAction& action, const char* phase) {
  ++fired_;
  log_.push_back(strfmt("%s %s", phase, action.str().c_str()));
}

void Injector::apply(const FaultAction& action) {
  net::NetworkFabric& fabric = pool_.fabric();
  switch (action.type) {
    case FaultActionType::kCrash: {
      // The daemon dies first (its starter aborts the shadow connection —
      // an escaping error, §3.2), then the host drops off the network.
      if (daemons::Startd* startd = pool_.startd(action.host)) {
        startd->shutdown();
      }
      fabric.crash_host(action.host);
      break;
    }
    case FaultActionType::kRestart:
      if (daemons::Startd* startd = pool_.startd(action.host)) {
        startd->boot();
      }
      break;
    case FaultActionType::kPartition:
      fabric.set_partitioned(action.host, true);
      break;
    case FaultActionType::kHeal:
      fabric.set_partitioned(action.host, false);
      break;
    case FaultActionType::kLink: {
      net::HostFaults faults = fabric.faults_for(action.host);
      faults.drop_msg_prob = action.rate;
      faults.latency += action.extra_latency;
      fabric.set_host_faults(action.host, faults);
      break;
    }
    case FaultActionType::kFsFaults:
      if (fs::SimFileSystem* fs = pool_.machine_fs(action.host)) {
        fs->set_transient_fault_rate(action.rate, fs_rng(action.host));
      }
      break;
    case FaultActionType::kCorrupt:
      if (fs::SimFileSystem* fs = pool_.machine_fs(action.host)) {
        fs->set_silent_corruption_rate(action.rate, corrupt_rng(action.host));
      }
      break;
    case FaultActionType::kChronic:
      if (fs::SimFileSystem* fs = pool_.machine_fs(action.host)) {
        fs->set_transient_fault_rate(action.rate, fs_rng(action.host));
      }
      pool_.recorder().chronic_failure("chaos: chronic " + action.host);
      break;
    case FaultActionType::kSever:
      fabric.set_link_severed(action.host, action.peer, true);
      break;
    case FaultActionType::kReconnect:
      fabric.set_link_severed(action.host, action.peer, false);
      break;
  }
  note(action, "apply");
}

void Injector::restore(const FaultAction& action) {
  net::NetworkFabric& fabric = pool_.fabric();
  switch (action.type) {
    case FaultActionType::kLink: {
      net::HostFaults faults = fabric.faults_for(action.host);
      double base_drop = 0;
      for (const pool::MachineSpec& spec : pool_.config().machines) {
        if (spec.name == action.host) base_drop = spec.net_faults.drop_msg_prob;
      }
      faults.drop_msg_prob = base_drop;
      faults.latency -= action.extra_latency;
      fabric.set_host_faults(action.host, faults);
      break;
    }
    case FaultActionType::kFsFaults:
      if (fs::SimFileSystem* fs = pool_.machine_fs(action.host)) {
        fs->set_transient_fault_rate(base_fs_rate(pool_, action.host, false),
                                     fs_rng(action.host));
      }
      break;
    case FaultActionType::kCorrupt:
      if (fs::SimFileSystem* fs = pool_.machine_fs(action.host)) {
        fs->set_silent_corruption_rate(base_fs_rate(pool_, action.host, true),
                                       corrupt_rng(action.host));
      }
      break;
    default:
      break;  // non-windowed actions have nothing to restore
  }
  note(action, "restore");
}

}  // namespace esg::chaos
