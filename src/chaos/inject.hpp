// The Injector: applies a FaultPlan to a running Pool.
//
// Every FaultAction becomes a scheduled SimContext timer on the pool's own
// engine, so fault arrival is part of the deterministic event order: the
// same plan against the same pool replays the exact same execution,
// byte for byte, on any machine and at any pool::SweepRunner width.
//
// Hook points, one per action type:
//   crash/restart -> daemons::Startd::shutdown()/boot() + crash_host
//   partition/heal -> net::NetworkFabric::set_partitioned
//   link          -> net::HostFaults drop/latency window (restored after)
//   fsfaults      -> fs::SimFileSystem::set_transient_fault_rate window
//   corrupt       -> fs::SimFileSystem::set_silent_corruption_rate window
//   chronic       -> persistent fs faults + a flight-recorder chronic mark
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "chaos/plan.hpp"
#include "pool/pool.hpp"

namespace esg::chaos {

class Injector {
 public:
  /// Schedule every action of `plan` onto `pool`'s engine. Call during
  /// cell setup (after the Pool is constructed, before it runs); the
  /// injection RNG streams (rng_streams::chaos_*) are forked here, before
  /// the first event fires, so arming is part of the deterministic replay.
  ///
  /// The returned handle owns the window bookkeeping; the scheduled timers
  /// keep it alive, so the caller is free to drop it.
  static std::shared_ptr<Injector> arm(pool::Pool& pool, FaultPlan plan);

  /// Actions fired so far (recoveries and window closings included).
  [[nodiscard]] std::size_t fired() const { return fired_; }
  /// One line per fired action, in firing order — the injection log a
  /// failing artifact prints alongside the plan.
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  Injector(pool::Pool& pool, FaultPlan plan);

  void schedule_all(const std::shared_ptr<Injector>& self);
  void apply(const FaultAction& action);
  void restore(const FaultAction& action);
  void note(const FaultAction& action, const char* phase);

  pool::Pool& pool_;
  FaultPlan plan_;
  /// Forked per victim host at arm() time, in plan order.
  std::vector<std::pair<std::string, Rng>> fs_rngs_;
  std::vector<std::pair<std::string, Rng>> corrupt_rngs_;
  std::size_t fired_ = 0;
  std::vector<std::string> log_;

  Rng& fs_rng(const std::string& host);
  Rng& corrupt_rng(const std::string& host);
};

}  // namespace esg::chaos
