#include "chaos/oracle.hpp"

#include <set>
#include <sstream>

#include "common/strings.hpp"
#include "core/error.hpp"
#include "obs/checker.hpp"

namespace esg::chaos {
namespace {

constexpr std::string_view kOracleNames[kNumOracles] = {
    "principles",
    "escapes-consumed",
    "no-lost-job",
    "attribution",
    "conservation",
};

/// Keep failure lists bounded: the first few concrete witnesses plus a
/// count beat five hundred near-identical lines in a CI log.
constexpr std::size_t kMaxWitnesses = 5;

std::string_view principle_name(Principle p) {
  switch (p) {
    case Principle::kP1: return "P1";
    case Principle::kP2: return "P2";
    case Principle::kP3: return "P3";
    case Principle::kP4: return "P4";
  }
  return "?";
}

void add_bounded(OracleReport& out, OracleId id,
                 const std::vector<std::string>& witnesses) {
  for (std::size_t i = 0; i < witnesses.size() && i < kMaxWitnesses; ++i) {
    out.failures.push_back({id, witnesses[i]});
  }
  if (witnesses.size() > kMaxWitnesses) {
    out.failures.push_back(
        {id, strfmt("... and %zu more", witnesses.size() - kMaxWitnesses)});
  }
}

}  // namespace

std::string_view oracle_name(OracleId id) {
  return kOracleNames[static_cast<std::size_t>(id)];
}

std::string OracleFailure::str() const {
  return std::string(oracle_name(oracle)) + ": " + message;
}

bool OracleReport::failed(OracleId id) const {
  for (const OracleFailure& failure : failures) {
    if (failure.oracle == id) return true;
  }
  return false;
}

std::string OracleReport::str() const {
  if (ok()) return "ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    if (i != 0) os << "\n";
    os << failures[i].str();
  }
  return os.str();
}

OracleReport evaluate_oracles(const pool::PoolReport& report, bool finished,
                              const std::vector<obs::TraceEvent>& journal) {
  OracleReport out;
  out.events_checked = journal.size();

  // principles: P1-P4 over the recorded causal history.
  {
    const obs::CheckReport check = obs::PrincipleChecker().check(journal);
    std::vector<std::string> witnesses;
    for (const obs::Violation& violation : check.violations) {
      witnesses.push_back(std::string(principle_name(violation.principle)) +
                          ": " + violation.message);
    }
    add_bounded(out, OracleId::kPrinciples, witnesses);
  }

  // escapes-consumed: every escaping-form span must have a causal
  // descendant — an escaping error nobody caught evaporated at its
  // manager's doorstep.
  {
    std::set<std::uint64_t> parents;
    for (const obs::TraceEvent& event : journal) {
      if (event.parent != 0) parents.insert(event.parent);
    }
    std::vector<std::string> witnesses;
    for (const obs::TraceEvent& event : journal) {
      if (event.form != obs::ErrorForm::kEscaping) continue;
      if (parents.count(event.id) != 0) continue;
      witnesses.push_back(strfmt(
          "escaping span %llu (%s at %s, job %llu) has no consumer",
          static_cast<unsigned long long>(event.id),
          std::string(kind_name(event.kind)).c_str(), event.component.c_str(),
          static_cast<unsigned long long>(event.job)));
    }
    add_bounded(out, OracleId::kEscapesConsumed, witnesses);
  }

  // no-lost-job: the run must have drained — every job terminal, with an
  // explicit program result, an explicit job-scope verdict, or an explicit
  // give-up. Unfinished jobs at the budget are silent losses.
  if (!finished || report.unfinished > 0) {
    out.failures.push_back(
        {OracleId::kNoLostJob,
         strfmt("%d of %d job(s) never reached a terminal state",
                report.unfinished, report.jobs_total)});
  }

  // attribution: a job result reflecting an incidental condition means an
  // escaping error leaked past every scope manager to the user's lap —
  // the pool billed its own environment's failure to the job.
  if (report.user_incidental_exposures > 0) {
    out.failures.push_back(
        {OracleId::kAttribution,
         strfmt("%d job(s) handed an incidental (environmental) error as "
                "their result",
                report.user_incidental_exposures)});
  }

  // conservation: the terminal categories must partition jobs_total.
  {
    const int accounted = report.completed_genuine +
                          report.completed_program_error +
                          report.user_incidental_exposures +
                          report.unexecutable + report.unfinished;
    if (accounted != report.jobs_total) {
      out.failures.push_back(
          {OracleId::kConservation,
           strfmt("categories sum to %d but jobs_total is %d", accounted,
                  report.jobs_total)});
    }
  }

  return out;
}

}  // namespace esg::chaos
