// Resilience oracles: what "degraded gracefully" means, as predicates.
//
// A chaos run proves nothing by itself — the paper's claim is that a pool
// designed per P1-P4 survives *any* fault with its error structure intact.
// These oracles state that claim as machine-checked invariants over one
// finished run's PoolReport and flight-recorder journal:
//
//   principles        The recorded causal history obeys P1-P4
//                     (obs::PrincipleChecker over the journal).
//   escapes-consumed  No escaping error evaporated: every escaping-form
//                     span has a causal descendant — some layer caught the
//                     broken connection / thrown error and carried on.
//   no-lost-job       Every submitted job reached a terminal state with an
//                     explicit result or an explicit give-up inside the
//                     run's time budget: no job silently lost.
//   attribution       No incidental (environmental) error was exposed to
//                     the user as the job's own result — the ground-truth
//                     form of "consumed at its manager scope": a crashed
//                     machine is the pool's error to absorb, not the
//                     user's to debug (§6's misattribution failure).
//   conservation      The report's terminal categories partition
//                     jobs_total — the bookkeeping itself cannot leak.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"
#include "pool/report.hpp"

namespace esg::chaos {

enum class OracleId {
  kPrinciples,
  kEscapesConsumed,
  kNoLostJob,
  kAttribution,
  kConservation,
};

inline constexpr std::size_t kNumOracles = 5;

std::string_view oracle_name(OracleId id);

struct OracleFailure {
  OracleId oracle = OracleId::kPrinciples;
  std::string message;

  [[nodiscard]] std::string str() const;
};

struct OracleReport {
  std::vector<OracleFailure> failures;
  std::size_t events_checked = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// True if any failure came from `id`.
  [[nodiscard]] bool failed(OracleId id) const;
  /// "ok" or one line per failure — deterministic, for fingerprints.
  [[nodiscard]] std::string str() const;
};

/// Evaluate every oracle over one finished run. `finished` is
/// run_until_done's verdict; `journal` is the run's recorded span history
/// (live recorder events or a parsed esg-journal file — the verdict is the
/// same, which is what makes CI campaign cells replayable on a laptop).
OracleReport evaluate_oracles(const pool::PoolReport& report, bool finished,
                              const std::vector<obs::TraceEvent>& journal);

}  // namespace esg::chaos
