#include "chaos/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "resilience/pattern.hpp"

namespace esg::chaos {
namespace {

constexpr std::string_view kPlanHeader = "# esg-faultplan v1";

constexpr std::string_view kActionNames[kNumFaultActionTypes] = {
    "crash", "restart",  "partition", "heal",  "link",
    "fsfaults", "corrupt", "chronic", "sever", "reconnect",
};

template <typename Int>
bool parse_int(std::string_view s, Int& out) {
  if (s.empty()) return false;
  Int value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  out = value;
  return true;
}

bool parse_rate(std::string_view s, double& out) {
  const std::string copy(s);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  if (value < 0 || value > 1) return false;
  out = value;
  return true;
}

/// Rates are always drawn in whole percent, so "%.2f" round-trips exactly:
/// both k/100.0 and strtod("0.0k") are the correctly rounded double.
std::string rate_str(double rate) { return strfmt("%.2f", rate); }

}  // namespace

std::string_view action_name(FaultActionType type) {
  return kActionNames[static_cast<std::size_t>(type)];
}

std::optional<FaultActionType> parse_action(std::string_view name) {
  for (std::size_t i = 0; i < kNumFaultActionTypes; ++i) {
    if (kActionNames[i] == name) return static_cast<FaultActionType>(i);
  }
  return std::nullopt;
}

std::string FaultAction::str() const {
  std::string out = strfmt("%lld %s %s", static_cast<long long>(at.as_usec()),
                           std::string(action_name(type)).c_str(),
                           host.c_str());
  switch (type) {
    case FaultActionType::kCrash:
    case FaultActionType::kRestart:
    case FaultActionType::kPartition:
    case FaultActionType::kHeal:
      break;
    case FaultActionType::kLink:
      out += strfmt(" rate=%s duration-usec=%lld latency-usec=%lld",
                    rate_str(rate).c_str(),
                    static_cast<long long>(duration.as_usec()),
                    static_cast<long long>(extra_latency.as_usec()));
      break;
    case FaultActionType::kFsFaults:
    case FaultActionType::kCorrupt:
      out += strfmt(" rate=%s duration-usec=%lld", rate_str(rate).c_str(),
                    static_cast<long long>(duration.as_usec()));
      break;
    case FaultActionType::kChronic:
      out += strfmt(" rate=%s", rate_str(rate).c_str());
      break;
    case FaultActionType::kSever:
    case FaultActionType::kReconnect:
      out += strfmt(" peer=%s", peer.c_str());
      break;
  }
  return out;
}

std::string FaultPlan::str() const {
  std::ostringstream os;
  os << kPlanHeader << "\n";
  os << "# seed " << seed << "\n";
  os << "# pool discipline=" << shape.discipline
     << " machines=" << shape.machines << " jobs=" << shape.jobs
     << " mean-compute-usec=" << shape.mean_compute.as_usec()
     << " limit-usec=" << shape.limit.as_usec();
  if (shape.pools != 1) os << " pools=" << shape.pools;
  if (!shape.pattern.empty()) os << " pattern=" << shape.pattern;
  os << "\n";
  for (const FaultAction& action : actions) os << action.str() << "\n";
  return os.str();
}

std::optional<FaultPlan> parse_plan(std::string_view text) {
  FaultPlan plan;
  bool saw_header = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line =
        text.substr(start, nl == std::string_view::npos ? nl : nl - start);
    start = nl == std::string_view::npos ? text.size() : nl + 1;
    if (line.empty()) continue;

    if (!saw_header) {
      if (line != kPlanHeader) return std::nullopt;
      saw_header = true;
      continue;
    }

    if (line.starts_with("# seed ")) {
      if (!parse_int(line.substr(7), plan.seed)) return std::nullopt;
      continue;
    }
    if (line.starts_with("# pool ")) {
      for (const std::string& field : split(line.substr(7), ' ')) {
        if (field.empty()) continue;
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) return std::nullopt;
        const std::string_view key = std::string_view(field).substr(0, eq);
        const std::string_view value = std::string_view(field).substr(eq + 1);
        std::int64_t usec = 0;
        if (key == "discipline") {
          if (value != "scoped" && value != "naive") return std::nullopt;
          plan.shape.discipline = std::string(value);
        } else if (key == "machines") {
          if (!parse_int(value, plan.shape.machines)) return std::nullopt;
        } else if (key == "jobs") {
          if (!parse_int(value, plan.shape.jobs)) return std::nullopt;
        } else if (key == "mean-compute-usec") {
          if (!parse_int(value, usec)) return std::nullopt;
          plan.shape.mean_compute = SimTime::usec(usec);
        } else if (key == "limit-usec") {
          if (!parse_int(value, usec)) return std::nullopt;
          plan.shape.limit = SimTime::usec(usec);
        } else if (key == "pools") {
          if (!parse_int(value, plan.shape.pools)) return std::nullopt;
        } else if (key == "pattern") {
          if (!resilience::parse_pattern(value)) return std::nullopt;
          plan.shape.pattern = std::string(value);
        } else {
          return std::nullopt;
        }
      }
      continue;
    }
    if (line.starts_with('#')) continue;  // future header extensions

    const std::vector<std::string> fields = split(line, ' ');
    if (fields.size() < 3) return std::nullopt;
    FaultAction action;
    std::int64_t usec = 0;
    if (!parse_int(fields[0], usec)) return std::nullopt;
    action.at = SimTime::usec(usec);
    const std::optional<FaultActionType> type = parse_action(fields[1]);
    if (!type) return std::nullopt;
    action.type = *type;
    action.host = fields[2];
    for (std::size_t i = 3; i < fields.size(); ++i) {
      const std::size_t eq = fields[i].find('=');
      if (eq == std::string::npos) return std::nullopt;
      const std::string_view key = std::string_view(fields[i]).substr(0, eq);
      const std::string_view value =
          std::string_view(fields[i]).substr(eq + 1);
      if (key == "rate") {
        if (!parse_rate(value, action.rate)) return std::nullopt;
      } else if (key == "duration-usec") {
        if (!parse_int(value, usec)) return std::nullopt;
        action.duration = SimTime::usec(usec);
      } else if (key == "latency-usec") {
        if (!parse_int(value, usec)) return std::nullopt;
        action.extra_latency = SimTime::usec(usec);
      } else if (key == "peer") {
        if (value.empty()) return std::nullopt;
        action.peer = std::string(value);
      } else {
        return std::nullopt;
      }
    }
    plan.actions.push_back(std::move(action));
  }
  if (!saw_header) return std::nullopt;
  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultPlan make_random_plan(std::uint64_t seed, const PlanShape& shape) {
  FaultPlan plan;
  plan.seed = seed;
  if (shape.hosts.empty() || shape.max_actions < 1) return plan;
  Rng rng(seed);

  // Destructive actions stay disjoint per host: overlapping a restart with
  // a second crash of the same machine would make the plan's meaning (and
  // the injector's bookkeeping) ambiguous.
  struct Interval {
    std::int64_t lo, hi;
  };
  std::vector<std::vector<Interval>> busy(shape.hosts.size());
  bool chronic_used = false;

  const std::int64_t floor_usec = SimTime::sec(1).as_usec();
  const std::int64_t horizon_usec =
      std::max(shape.horizon.as_usec(), floor_usec + 1);

  const int primaries = static_cast<int>(rng.uniform_int(
      std::max(shape.min_actions, 1), std::max(shape.max_actions, 1)));
  for (int i = 0; i < primaries; ++i) {
    // Bounded, deterministic retries: a draw that would overlap (or a
    // second chronic) is discarded and redrawn; persistent bad luck skips
    // the primary rather than looping forever. This redraws a random
    // sample — nothing failed, nothing recovers — so no Strategy applies.
    for (int attempt = 0; attempt < 8; ++attempt) {  // esg-lint: allow(naked-retry)
      static constexpr FaultActionType kKinds[] = {
          FaultActionType::kCrash,    FaultActionType::kPartition,
          FaultActionType::kLink,     FaultActionType::kFsFaults,
          FaultActionType::kCorrupt,  FaultActionType::kChronic,
      };
      static const std::vector<double> kWeights = {2, 2, 3, 3, 1, 1};
      const FaultActionType type = kKinds[rng.weighted_index(kWeights)];
      const std::size_t victim = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shape.hosts.size()) - 1));
      const std::int64_t at =
          rng.uniform_int(floor_usec, horizon_usec);
      const std::int64_t outage = rng.uniform_int(
          std::max<std::int64_t>(shape.min_outage.as_usec(), 1),
          std::max(shape.max_outage.as_usec(), shape.min_outage.as_usec()));

      // At most one chronic host per plan, and only with a spare machine
      // left healthy — the generator's survivability contract.
      if (type == FaultActionType::kChronic &&
          (chronic_used || shape.hosts.size() < 2)) {
        continue;
      }
      const std::int64_t hi = type == FaultActionType::kChronic
                                  ? SimTime::max().as_usec()
                                  : at + outage;
      bool overlaps = false;
      for (const Interval& iv : busy[victim]) {
        if (at <= iv.hi && iv.lo <= hi) {
          overlaps = true;
          break;
        }
      }
      if (overlaps) continue;
      busy[victim].push_back({at, hi});

      FaultAction action;
      action.at = SimTime::usec(at);
      action.host = shape.hosts[victim];
      action.type = type;
      switch (type) {
        case FaultActionType::kCrash: {
          plan.actions.push_back(action);
          FaultAction recover = action;
          recover.type = FaultActionType::kRestart;
          recover.at = SimTime::usec(at + outage);
          plan.actions.push_back(std::move(recover));
          break;
        }
        case FaultActionType::kPartition: {
          plan.actions.push_back(action);
          FaultAction recover = action;
          recover.type = FaultActionType::kHeal;
          recover.at = SimTime::usec(at + outage);
          plan.actions.push_back(std::move(recover));
          break;
        }
        case FaultActionType::kLink:
          action.rate = static_cast<double>(rng.uniform_int(5, 50)) / 100.0;
          action.duration = SimTime::usec(outage);
          action.extra_latency = SimTime::msec(rng.uniform_int(1, 50));
          plan.actions.push_back(std::move(action));
          break;
        case FaultActionType::kFsFaults:
          action.rate = static_cast<double>(rng.uniform_int(10, 80)) / 100.0;
          action.duration = SimTime::usec(outage);
          plan.actions.push_back(std::move(action));
          break;
        case FaultActionType::kCorrupt:
          action.rate = static_cast<double>(rng.uniform_int(5, 30)) / 100.0;
          action.duration = SimTime::usec(outage);
          plan.actions.push_back(std::move(action));
          break;
        case FaultActionType::kChronic:
          action.rate = static_cast<double>(rng.uniform_int(50, 90)) / 100.0;
          chronic_used = true;
          plan.actions.push_back(std::move(action));
          break;
        case FaultActionType::kRestart:
        case FaultActionType::kHeal:
        case FaultActionType::kSever:
        case FaultActionType::kReconnect:
          break;  // never drawn by the single-pool generator
      }
      break;
    }
  }

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace esg::chaos
