// Declarative fault plans: the chaos harness's schedule language.
//
// The resilience-pattern literature (Hukerikar & Engelmann's pattern
// language for HPC resilience) argues faults should come from declarative,
// replayable schedules rather than hand-sprinkled knobs. A FaultPlan is
// exactly that: a deterministic, serializable list of typed fault actions
// (crash/restart a host's daemon, partition/heal, degrade a link, arm
// filesystem IoError/corruption windows, mark a machine chronically bad)
// stamped with the seed that produced it and the pool shape it targets, so
// a failing cell from a CI campaign reproduces byte-identically anywhere
// from the plan file alone (see tools/esg-chaos --plan).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/simtime.hpp"

namespace esg::chaos {

/// One typed fault. Destructive actions are paired with their recovery by
/// the generator (kCrash with kRestart, kPartition with kHeal, windows
/// carry a duration) so that a pool designed per P1-P4 can always finish.
enum class FaultActionType {
  kCrash,      ///< crash the host: break its connections, kill its daemon
  kRestart,    ///< boot the crashed host's daemon again
  kPartition,  ///< network-partition the host (in-flight conns break lazily)
  kHeal,       ///< heal the host's partition
  kLink,       ///< degrade the host's links: drop rate + added latency window
  kFsFaults,   ///< transient-IoError window on the host's filesystem
  kCorrupt,    ///< silent-corruption window on the host's filesystem (§5)
  kChronic,    ///< mark the machine chronically bad: persistent fs faults
  kSever,      ///< cut the link between host and peer (inter-pool trunk)
  kReconnect,  ///< restore the severed host<->peer link
};

inline constexpr std::size_t kNumFaultActionTypes = 10;

std::string_view action_name(FaultActionType type);
/// Parse names produced by action_name(). Plan files cross a trust
/// boundary, so unknown names yield nullopt rather than a default.
std::optional<FaultActionType> parse_action(std::string_view name);

struct FaultAction {
  SimTime at{};                    ///< when the fault fires (simulated time)
  FaultActionType type = FaultActionType::kLink;
  std::string host;                ///< the victim machine
  std::string peer;                ///< the link's other end (kSever/kReconnect)
  double rate = 0;                 ///< drop / fault / corruption probability
  SimTime duration{};              ///< window length (kLink/kFsFaults/kCorrupt)
  SimTime extra_latency{};         ///< added link latency (kLink only)

  /// One plan line: "<at-usec> <action> <host> [k=v ...]".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const FaultAction&, const FaultAction&) = default;
};

/// The pool the plan was drawn against — embedded in the plan file so a
/// saved artifact is a self-contained repro (same discipline, machines,
/// workload, and time limit on any host).
struct PoolShape {
  std::string discipline = "scoped";  ///< "scoped" (with avoidance) or "naive"
  int machines = 4;                   ///< good execution machines exec0..N-1
  int jobs = 24;                      ///< make_workload batch size
  SimTime mean_compute = SimTime::sec(30);
  SimTime limit = SimTime::hours(8);  ///< run_until_done budget
  /// Pools in the topology. 1 = a plain pool::Pool cell; >= 2 = a
  /// flock::Federation cell (pool 0 is "home" with one machine, the rest
  /// get `machines` each — see flock::make_federated_cell). Serialized in
  /// the "# pool" header only when != 1, so single-pool plan artifacts
  /// keep their bytes.
  int pools = 1;
  /// Resilience-pattern monoculture for scoped cells: when non-empty the
  /// cell's schedd binds this resilience::PatternKind pool-wide instead of
  /// the classic table (see DisciplineConfig::pattern_monoculture and
  /// chaos/score.hpp's pattern scorecards). Serialized in the "# pool"
  /// header only when non-empty, so existing plan artifacts keep their
  /// bytes. Ignored for naive cells — naive means no scope routing at all.
  std::string pattern;

  friend bool operator==(const PoolShape&, const PoolShape&) = default;
};

struct FaultPlan {
  /// The seed this plan was drawn from; also seeds the cell's pool and
  /// workload, so plan identity pins the whole run.
  std::uint64_t seed = 0;
  PoolShape shape;
  std::vector<FaultAction> actions;  ///< sorted by (at, insertion order)

  [[nodiscard]] bool empty() const { return actions.empty(); }

  /// The esg-faultplan v1 document (see parse_plan for the grammar).
  [[nodiscard]] std::string str() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Parse an esg-faultplan v1 document:
///
///   # esg-faultplan v1
///   # seed <u64>
///   # pool discipline=<name> machines=<n> jobs=<n> mean-compute-usec=<i64>
///       limit-usec=<i64> [pools=<n>] [pattern=<name>]
///   <at-usec> <action> <host> [rate=<f>] [duration-usec=<i64>]
///       [latency-usec=<i64>]
///
/// Strict: a missing header, malformed line, or unknown action/key yields
/// nullopt rather than a half-parsed plan.
std::optional<FaultPlan> parse_plan(std::string_view text);

/// Bounds for the seeded plan generator.
struct PlanShape {
  std::vector<std::string> hosts;  ///< candidate victims (execution machines)
  int min_actions = 1;             ///< primary actions (recoveries add more)
  int max_actions = 4;
  /// Last primary action fires before this; every recovery lands within
  /// horizon + max_outage, leaving the rest of the run to drain cleanly.
  /// The default sits inside the default PoolShape's busy period (~3-4
  /// simulated minutes), so faults hit live work, not a drained pool.
  SimTime horizon = SimTime::minutes(2);
  SimTime min_outage = SimTime::sec(5);   ///< shortest window / downtime
  SimTime max_outage = SimTime::minutes(2);
};

/// Draw a deterministic random plan: same seed, same shape -> the same
/// plan, bit for bit. Destructive actions never overlap on one host, every
/// crash is restarted, every partition healed, every window closed, and at
/// least one host is never marked chronic — the generator's survivability
/// contract (the resilience oracles then check the pool held up its end).
FaultPlan make_random_plan(std::uint64_t seed, const PlanShape& shape);

}  // namespace esg::chaos
