#include "chaos/score.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "chaos/inject.hpp"
#include "chaos/plan.hpp"
#include "common/strings.hpp"
#include "daemons/config.hpp"
#include "daemons/groundtruth.hpp"
#include "pool/pool.hpp"
#include "pool/reliable.hpp"
#include "pool/sweep.hpp"

namespace esg::chaos {
namespace {

constexpr int kMachines = 4;
constexpr int kLogicalJobs = 8;
constexpr int kReplicas = 3;
/// Every scoring job writes this via the wrapper: 256 zero bytes, the same
/// ground truth pool/reliable.hpp votes over. Anything else delivered as
/// success is a lie.
const std::string& expected_output() {
  static const std::string bytes(256, '\0');
  return bytes;
}

/// One scope family: a fixed-compute workload under one fault schedule.
/// Compute times are fixed (not exponential) so the ideal CPU cost of the
/// surviving jobs is known exactly and "wasted" is total minus ideal.
struct Family {
  const char* name;
  SimTime compute;
  bool program_error;  ///< jobs throw (program scope) instead of writing
  int jobs = kLogicalJobs;
  /// Open the output stream before computing instead of after. An open
  /// stream pins the JVM (connections cannot migrate, so no checkpoints):
  /// a failure anywhere in the attempt then destroys the whole compute,
  /// for every pattern alike — which is what makes *not visiting* a bad
  /// machine, rather than recovering cleverly on it, the winning move.
  bool hold_output_open = false;
};

const std::vector<Family>& families() {
  static const std::vector<Family> all = {
      // Chronic-host runs a longer queue: the point of Avoid's pool-wide
      // quarantine is that it pays the bad host a *constant* number of
      // visits while per-job exclusion pays one per job, and that gap only
      // shows once the queue is long relative to the quarantine threshold.
      {"chronic-host", SimTime::sec(30), false, 24, true},
      {"eviction-storm", SimTime::sec(120), false},
      {"exec-fs", SimTime::sec(30), false},
      {"network-flap", SimTime::sec(30), false},
      {"silent-corruption", SimTime::sec(30), false},
      {"program-error", SimTime::sec(10), true},
  };
  return all;
}

FaultAction act(int at_sec, FaultActionType type, const char* host) {
  FaultAction action;
  action.at = SimTime::sec(at_sec);
  action.type = type;
  action.host = host;
  return action;
}

FaultAction window(int at_sec, FaultActionType type, const char* host,
                   double rate, int duration_sec) {
  FaultAction action = act(at_sec, type, host);
  action.rate = rate;
  action.duration = SimTime::sec(duration_sec);
  return action;
}

/// The family's fault schedule. Every destructive action recovers (the
/// plan generator's survivability contract, kept by hand here) so any
/// pattern *can* finish — the scorecard measures how well, not whether.
std::vector<FaultAction> family_actions(std::string_view family) {
  std::vector<FaultAction> out;
  if (family == "chronic-host") {
    // One machine of four goes chronically bad just as work starts: its
    // filesystem fails most operations (attempts die fast, at staging, with
    // nothing for a checkpoint to rescue) and its network turns treacly, so
    // every visit to the host costs real wall-clock time before failing.
    // The patterns then differ in how many visits they pay for: Avoid's
    // pool-wide quarantine stops after a few, per-job exclusion pays once
    // per job, and plain Retry keeps coming back.
    out.push_back(window(1, FaultActionType::kChronic, "exec0", 0.05, 0));
    FaultAction slow = window(1, FaultActionType::kLink, "exec0", 0.0, 7200);
    slow.extra_latency = SimTime::msec(500);
    out.push_back(std::move(slow));
  } else if (family == "eviction-storm") {
    // Staggered crash/restart waves roll over every machine while 120s
    // jobs are mid-compute: the checkpointing patterns get to resume, the
    // rest recompute from scratch.
    const char* hosts[] = {"exec0", "exec1", "exec2", "exec3",
                           "exec0", "exec1"};
    const int crash_at[] = {40, 80, 120, 160, 240, 280};
    for (std::size_t i = 0; i < std::size(hosts); ++i) {
      out.push_back(act(crash_at[i], FaultActionType::kCrash, hosts[i]));
      out.push_back(act(crash_at[i] + 60, FaultActionType::kRestart, hosts[i]));
    }
  } else if (family == "exec-fs") {
    out.push_back(window(5, FaultActionType::kFsFaults, "exec0", 0.60, 180));
    out.push_back(window(10, FaultActionType::kFsFaults, "exec1", 0.60, 180));
  } else if (family == "network-flap") {
    out.push_back(act(20, FaultActionType::kPartition, "exec0"));
    out.push_back(act(80, FaultActionType::kHeal, "exec0"));
    out.push_back(act(90, FaultActionType::kPartition, "exec1"));
    out.push_back(act(150, FaultActionType::kHeal, "exec1"));
    FaultAction link = window(30, FaultActionType::kLink, "exec2", 0.30, 120);
    link.extra_latency = SimTime::msec(20);
    out.push_back(std::move(link));
  } else if (family == "silent-corruption") {
    // One machine lies on nearly every bulk read for the whole run: output
    // transfers ship wrong bytes with no component ever seeing an error.
    // Only end-to-end redundancy can outvote it — any pattern that trusts
    // a single execution delivers whatever the bad host read back.
    out.push_back(window(1, FaultActionType::kCorrupt, "exec0", 0.95, 7200));
  }
  // "program-error": no faults — the jobs' own exceptions are the storm.
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return out;
}

FaultPlan family_plan(const Family& family, std::uint64_t seed,
                      resilience::PatternKind pattern) {
  FaultPlan plan;
  plan.seed = seed;
  plan.shape.discipline = "scoped";
  plan.shape.pattern = std::string(resilience::pattern_name(pattern));
  plan.shape.machines = kMachines;
  plan.shape.jobs = family.jobs;
  plan.shape.mean_compute = family.compute;
  plan.shape.limit = SimTime::hours(8);
  plan.actions = family_actions(family.name);
  return plan;
}

daemons::JobDescription score_job(int index, const Family& family) {
  jvm::ProgramBuilder builder("Score" + std::to_string(index));
  daemons::JobDescription job;
  job.owner = "user";
  if (!family.program_error && family.hold_output_open) {
    builder.open_write("answer.dat", 0);
  }
  // Compute in 10s slices: the JVM checkpoints only at op boundaries, so a
  // single monolithic compute op would make the CheckpointRestart pattern
  // vacuously useless — no real checkpointable program is one basic block.
  std::int64_t remaining = family.compute.as_usec();
  const std::int64_t slice = SimTime::sec(10).as_usec();
  while (remaining > 0) {
    const std::int64_t step = std::min(slice, remaining);
    builder.compute(SimTime::usec(step));
    remaining -= step;
  }
  if (family.program_error) {
    builder.throw_exception(ErrorKind::kArrayIndexOutOfBounds);
  } else if (family.hold_output_open) {
    // A long result-flush phase: many small writes after the compute. On a
    // host whose filesystem drops a few percent of operations, this is
    // where attempts die — *after* burning their CPU — so the cost of each
    // visit to the bad machine is real and uncheckpointable.
    for (int chunk = 0; chunk < 64; ++chunk) builder.write(0, 4);
    builder.close_stream(0);
    job.output_files = {"answer.dat"};
  } else {
    builder.open_write("answer.dat", 0).write(0, 256).close_stream(0);
    job.output_files = {"answer.dat"};
  }
  job.program = builder.build();
  return job;
}

/// Run one (family × pattern) cell and score it into `slot`. Everything
/// touched is owned by this call's Pool, so the cell is thread-safe and
/// byte-deterministic under any SweepRunner width; `slot` is this cell's
/// pre-indexed element of the scorecard, written by no one else.
pool::CellOutcome run_score_cell(const FaultPlan& plan, const Family& family,
                                 resilience::PatternKind pattern,
                                 PatternScore* slot) {
  pool::PoolConfig config;
  config.seed = plan.seed;
  config.discipline = daemons::DisciplineConfig::pattern_monoculture(pattern);
  for (int i = 0; i < plan.shape.machines; ++i) {
    config.machines.push_back(pool::MachineSpec::good(strfmt("exec%d", i)));
  }
  pool::Pool pool(config);

  // One group of schedd jobs per logical job: a single submission, or
  // kReplicas redundant clones voted by the end-to-end layer.
  std::vector<std::vector<JobId>> groups;
  groups.reserve(static_cast<std::size_t>(plan.shape.jobs));
  for (int i = 0; i < plan.shape.jobs; ++i) {
    daemons::JobDescription job = score_job(i, family);
    if (pattern == resilience::PatternKind::kReplicate) {
      groups.push_back(pool::submit_redundant(pool, job, kReplicas));
    } else {
      groups.push_back({pool.submit(std::move(job))});
    }
  }
  Injector::arm(pool, plan);
  const bool finished = pool.run_until_done(plan.shape.limit);
  pool::PoolReport report = pool.report();

  const double compute_seconds =
      static_cast<double>(family.compute.as_usec()) / 1e6;
  int survived = 0;
  int lied = 0;
  double ideal_cpu = 0;
  for (const std::vector<JobId>& group : groups) {
    if (family.program_error) {
      // Truthful resolution: some replica's own exception delivered as the
      // job's result — the §2.3 delivery users *wanted*.
      bool truthful = false;
      for (const JobId id : group) {
        const daemons::JobRecord* record = pool.schedd().job(id);
        if (record != nullptr &&
            record->state == daemons::JobState::kCompleted &&
            record->final_summary.have_program_result &&
            record->final_summary.program_result.error.has_value()) {
          truthful = true;
          break;
        }
      }
      if (truthful) {
        ++survived;
        ideal_cpu += compute_seconds;
      }
    } else {
      // Majority vote over the group's declared outputs (a group of one
      // degenerates to "read the output"): correct bytes survived, wrong
      // bytes delivered as success lied, an honest no-majority is neither.
      const pool::ReliableResult vote =
          pool::vote_outputs(pool, group, "answer.dat");
      if (vote.delivered && vote.output == expected_output()) {
        ++survived;
        ideal_cpu += compute_seconds;
      } else if (vote.delivered) {
        ++lied;
      }
    }
  }

  // Pool-wide truth checks: CPU actually burned, genuine program results
  // withheld behind an "unexecutable" verdict, and incidental conditions
  // pinned on the program (the report's misattribution count). Burned CPU
  // comes from the ground-truth log, not the protocol: a crashed machine
  // never reports the compute its evicted job consumed, but the harness's
  // omniscient log still has it (Starter::kill records the death).
  double total_cpu = 0;
  for (const daemons::AttemptGroundTruth& truth :
       pool.ground_truth().entries()) {
    total_cpu += truth.cpu_seconds;
  }
  for (const auto& [id, record] : pool.schedd().jobs()) {
    bool had_program_result = false;
    for (const daemons::AttemptRecord& attempt : record.attempts) {
      if (attempt.summary.have_program_result) had_program_result = true;
    }
    if (record.state == daemons::JobState::kUnexecutable && had_program_result) {
      ++lied;
    }
  }
  lied += report.user_incidental_exposures;

  slot->pattern = std::string(resilience::pattern_name(pattern));
  slot->jobs = plan.shape.jobs;
  slot->survived = survived;
  slot->lied = lied;
  slot->wasted_cpu_seconds = std::max(0.0, total_cpu - ideal_cpu);
  slot->time_to_result_seconds = report.makespan_seconds;
  slot->finished = finished;

  pool::CellOutcome out;
  out.seed = plan.seed;
  out.finished = finished;
  out.report = std::move(report);
  out.engine_events = pool.engine().executed();
  return out;
}

/// Winner ordering: survive more, lie less, waste less, finish sooner;
/// catalog order breaks exact ties. Deterministic, hence pinnable.
bool better(const PatternScore& a, const PatternScore& b) {
  if (a.survived != b.survived) return a.survived > b.survived;
  if (a.lied != b.lied) return a.lied < b.lied;
  if (a.wasted_cpu_seconds != b.wasted_cpu_seconds) {
    return a.wasted_cpu_seconds < b.wasted_cpu_seconds;
  }
  if (a.time_to_result_seconds != b.time_to_result_seconds) {
    return a.time_to_result_seconds < b.time_to_result_seconds;
  }
  return false;
}

}  // namespace

std::vector<std::string> score_family_names() {
  std::vector<std::string> names;
  names.reserve(families().size());
  for (const Family& family : families()) names.emplace_back(family.name);
  return names;
}

Scorecard score_patterns(const ScoreOptions& options) {
  const std::vector<Family>& all = families();
  std::vector<PatternScore> slots(all.size() * resilience::kNumPatternKinds);

  std::vector<pool::SweepCell> cells;
  cells.reserve(slots.size());
  for (std::size_t f = 0; f < all.size(); ++f) {
    for (std::size_t p = 0; p < resilience::kNumPatternKinds; ++p) {
      const resilience::PatternKind pattern = resilience::kAllPatterns[p];
      const std::size_t slot = f * resilience::kNumPatternKinds + p;
      const Family family = all[f];
      FaultPlan plan = family_plan(family, options.seed, pattern);
      pool::SweepCell cell;
      cell.label = std::string(family.name) + "/" +
                   std::string(resilience::pattern_name(pattern));
      cell.limit = plan.shape.limit;
      cell.run = [plan = std::move(plan), family, pattern, &slots, slot] {
        return run_score_cell(plan, family, pattern, &slots[slot]);
      };
      cells.push_back(std::move(cell));
    }
  }
  (void)pool::SweepRunner(options.threads).run(std::move(cells));

  Scorecard card;
  card.seed = options.seed;
  card.families.reserve(all.size());
  for (std::size_t f = 0; f < all.size(); ++f) {
    FamilyScore family_score;
    family_score.family = all[f].name;
    std::size_t best = 0;
    for (std::size_t p = 0; p < resilience::kNumPatternKinds; ++p) {
      PatternScore& score = slots[f * resilience::kNumPatternKinds + p];
      if (p != 0 && better(score, family_score.patterns[best])) best = p;
      family_score.patterns.push_back(std::move(score));
    }
    family_score.winner = family_score.patterns[best].pattern;
    card.families.push_back(std::move(family_score));
  }
  return card;
}

const FamilyScore* Scorecard::family(std::string_view name) const {
  for (const FamilyScore& f : families) {
    if (f.family == name) return &f;
  }
  return nullptr;
}

std::string Scorecard::json() const {
  // Hand-rolled and key-ordered, floats pinned to "%.3f": this document is
  // the CI artifact diffed byte-for-byte across sweep widths.
  std::ostringstream os;
  os << "{\"scorecard\":{\"seed\":" << seed
     << ",\"families\":" << families.size()
     << ",\"patterns\":" << resilience::kNumPatternKinds
     << "},\"families\":[";
  for (std::size_t f = 0; f < families.size(); ++f) {
    const FamilyScore& family = families[f];
    if (f != 0) os << ",";
    os << "{\"family\":\"" << family.family << "\",\"winner\":\""
       << family.winner << "\",\"patterns\":[";
    for (std::size_t p = 0; p < family.patterns.size(); ++p) {
      const PatternScore& s = family.patterns[p];
      if (p != 0) os << ",";
      os << "{\"pattern\":\"" << s.pattern << "\",\"jobs\":" << s.jobs
         << ",\"survived\":" << s.survived << ",\"lied\":" << s.lied
         << ",\"wasted_cpu_seconds\":"
         << strfmt("%.3f", s.wasted_cpu_seconds)
         << ",\"time_to_result_seconds\":"
         << strfmt("%.3f", s.time_to_result_seconds)
         << ",\"finished\":" << (s.finished ? "true" : "false") << "}";
    }
    os << "]}";
  }
  os << "]}\n";
  return os.str();
}

std::string Scorecard::table() const {
  constexpr const char* kGreen = "\x1b[32m";
  constexpr const char* kBold = "\x1b[1m";
  constexpr const char* kReset = "\x1b[0m";
  std::ostringstream os;
  os << kBold
     << strfmt("%-18s %-20s %9s %6s %12s %12s", "family", "pattern",
               "survived", "lied", "wasted-cpu", "makespan")
     << kReset << "\n";
  for (const FamilyScore& family : families) {
    for (const PatternScore& s : family.patterns) {
      const bool winner = s.pattern == family.winner;
      if (winner) os << kGreen;
      os << strfmt("%-18s %-20s %5d/%-3d %6d %11.1fs %11.1fs",
                   family.family.c_str(), s.pattern.c_str(), s.survived,
                   s.jobs, s.lied, s.wasted_cpu_seconds,
                   s.time_to_result_seconds);
      if (!s.finished) os << "  UNFINISHED";
      if (winner) os << "  <- winner" << kReset;
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace esg::chaos
