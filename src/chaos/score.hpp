// Pattern scorecards: which resilience pattern wins which error scope.
//
// The catalog (resilience/pattern.hpp) claims each pattern has a home
// turf: Avoid for chronic hosts, CheckpointRestart for eviction storms,
// Replicate for silent corruption, Surface as the only honest answer to a
// program's own errors. This module turns that claim into a measurement:
// a (scope family × pattern) grid of chaos cells, each running a pattern
// monoculture pool (DisciplineConfig::pattern_monoculture) under one
// family's fault schedule, scored on
//
//   survived   logical jobs truthfully resolved with correct results
//   lied       wrong bytes delivered as success, incidental conditions
//              pinned on the program, or genuine program results withheld
//              behind an "unexecutable" verdict
//   wasted     CPU burned beyond the ideal cost of the surviving jobs
//   ttr        time to result (the cell's makespan)
//
// Cells run over pool::SweepRunner with pre-indexed result slots, so the
// scorecard — including its JSON serialization — is byte-identical at any
// --threads (the CI cmp gate), and the per-family winners are pinned by a
// CTest gate (tools/esg-chaos --score-patterns --expect-winner ...).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "resilience/pattern.hpp"

namespace esg::chaos {

/// One cell of the grid: one pattern monoculture under one scope family.
struct PatternScore {
  std::string pattern;          ///< resilience::pattern_name
  int jobs = 0;                 ///< logical jobs submitted
  int survived = 0;             ///< truthful, correct resolutions
  int lied = 0;                 ///< wrong or misattributed deliveries
  double wasted_cpu_seconds = 0;       ///< attempt CPU beyond the ideal
  double time_to_result_seconds = 0;   ///< cell makespan
  bool finished = false;        ///< every job terminal within the limit
};

/// One scope family's row: every pattern scored, best pattern named.
/// Winner ordering: survived desc, lied asc, wasted asc, ttr asc, catalog
/// order — fully deterministic, so the winner is a pinnable artifact.
struct FamilyScore {
  std::string family;
  std::string winner;
  std::vector<PatternScore> patterns;  ///< catalog order
};

struct ScoreOptions {
  std::uint64_t seed = 1;
  /// SweepRunner width (0 = hardware). The scorecard bytes do not depend
  /// on this — that invariant is itself under test in CI.
  unsigned threads = 0;
};

struct Scorecard {
  std::uint64_t seed = 0;
  std::vector<FamilyScore> families;

  [[nodiscard]] const FamilyScore* family(std::string_view name) const;
  /// Deterministic key-ordered JSON ("%.3f" floats) — the CI artifact
  /// diffed byte-for-byte across sweep widths.
  [[nodiscard]] std::string json() const;
  /// ANSI table for terminals: one row per cell, winners highlighted.
  [[nodiscard]] std::string table() const;
};

/// The fault-schedule families the scorecard measures, in fixed order:
/// chronic-host, eviction-storm, exec-fs, network-flap, silent-corruption,
/// program-error.
std::vector<std::string> score_family_names();

/// Run the full (family × pattern) grid and score it.
Scorecard score_patterns(const ScoreOptions& options);

}  // namespace esg::chaos
