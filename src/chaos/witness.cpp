#include "chaos/witness.hpp"

#include <sstream>

#include "common/simtime.hpp"
#include "core/kinds.hpp"
#include "core/scope.hpp"

namespace esg::chaos {

namespace {

// Every witness targets the same machine at the same point of the busy
// period (the default PoolShape keeps the pool saturated for the first few
// simulated minutes), so witness artifacts are deterministic and diffable.
constexpr const char* kVictim = "exec0";

FaultPlan plan_shell(ErrorKind kind) {
  FaultPlan plan;
  // Kind pins the seed, so each finding's witness is a distinct, stable
  // artifact (the seed also seeds the cell's pool and workload).
  plan.seed = 1000 + static_cast<std::uint64_t>(kind);
  plan.shape.discipline = "naive";
  return plan;
}

FaultAction act(FaultActionType type, SimTime at) {
  FaultAction action;
  action.type = type;
  action.at = at;
  action.host = kVictim;
  return action;
}

}  // namespace

std::string WitnessPlan::str() const {
  return rationale + "\n" + plan.str();
}

std::optional<WitnessPlan> compile_witness(
    const analysis::FlowFinding& finding) {
  if (finding.kind == ErrorKind::kUnknown) return std::nullopt;

  const ErrorKind kind = finding.kind;
  const ErrorScope scope = default_scope(kind);
  WitnessPlan witness;
  witness.plan = plan_shell(kind);

  switch (scope) {
    case ErrorScope::kNetwork: {
      // Partition the victim mid-claim: connections break, the shadow
      // classifies a network-scope loss.
      FaultAction cut = act(FaultActionType::kPartition, SimTime::sec(20));
      FaultAction heal = act(FaultActionType::kHeal, SimTime::sec(110));
      witness.plan.actions = {cut, heal};
      witness.rationale =
          std::string(kind_name(kind)) +
          " is network scope: partition " + kVictim +
          " during the busy period, heal 90s later";
      break;
    }
    case ErrorScope::kProcess: {
      // kDaemonCrashed and friends: kill the victim's daemon, boot it
      // back, and let the pool observe the crash.
      FaultAction crash = act(FaultActionType::kCrash, SimTime::sec(20));
      FaultAction boot = act(FaultActionType::kRestart, SimTime::sec(110));
      witness.plan.actions = {crash, boot};
      witness.rationale = std::string(kind_name(kind)) +
                          " is process scope: crash " + kVictim +
                          "'s daemon, restart 90s later";
      break;
    }
    case ErrorScope::kFile:
    case ErrorScope::kLocalResource: {
      // Submit-side / filesystem family: arm a transient-fault window on
      // the victim's filesystem.
      FaultAction faults = act(FaultActionType::kFsFaults, SimTime::sec(20));
      faults.rate = 0.9;
      faults.duration = SimTime::sec(90);
      witness.plan.actions = {faults};
      witness.rationale = std::string(kind_name(kind)) + " is " +
                          std::string(scope_name(scope)) +
                          " scope: arm a 90s transient fs-fault window on " +
                          kVictim;
      break;
    }
    case ErrorScope::kVirtualMachine:
    case ErrorScope::kRemoteResource:
    case ErrorScope::kJob:
    case ErrorScope::kCluster:
    case ErrorScope::kPool: {
      // Environmental family: mark the victim chronically bad. Under the
      // naive discipline its persistent failures are billed to whichever
      // job lands there (§6 misattribution); under the scoped discipline
      // avoidance steers work away and the pool absorbs the fault.
      FaultAction chronic = act(FaultActionType::kChronic, SimTime::sec(20));
      chronic.rate = 0.95;
      witness.plan.actions = {chronic};
      witness.rationale = std::string(kind_name(kind)) + " is " +
                          std::string(scope_name(scope)) +
                          " scope: mark " + kVictim + " chronically bad";
      break;
    }
    case ErrorScope::kFunction:
    case ErrorScope::kProgram:
      // The job's own doing — there is nothing environmental to inject
      // that would make this the pool's fault.
      return std::nullopt;
  }
  return witness;
}

std::string WitnessVerdict::str() const {
  std::ostringstream os;
  os << "naive:  " << (naive.finished ? "finished" : "DID NOT FINISH")
     << ", oracles " << naive.oracles.str() << "\n"
     << "scoped: " << (scoped.finished ? "finished" : "DID NOT FINISH")
     << ", oracles " << scoped.oracles.str() << "\n"
     << (confirmed()
             ? "CONFIRMED: the fault bites naive and scoped absorbs it"
             : "not confirmed");
  return os.str();
}

WitnessVerdict confirm_witness(const FaultPlan& plan) {
  WitnessVerdict verdict;
  FaultPlan leg = plan;
  leg.shape.discipline = "naive";
  verdict.naive = CampaignRunner::replay(leg);
  leg.shape.discipline = "scoped";
  verdict.scoped = CampaignRunner::replay(leg);
  return verdict;
}

}  // namespace esg::chaos
