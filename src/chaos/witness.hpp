// Witness compiler: lower a static flow finding to a replayable fault plan.
//
// The FlowAnalyzer's multi-hop-laundering findings are claims about the
// world: "a fault of this scope family, raised on an execution machine,
// reaches the user stripped of its provenance under the naive discipline".
// Because the chaos harness can provoke exactly those families on demand
// (crash a daemon, partition a host, arm an fs-fault window, mark a machine
// chronic), every such claim is mechanically checkable. compile_witness
// maps the finding's detected kind to the Injector action that provokes its
// scope family; confirm_witness replays the compiled plan under both
// disciplines and cross-checks the static verdict against the five dynamic
// oracles:
//
//   confirmed  =  the naive replay fails >= 1 oracle (the laundering is
//                 real — typically `attribution`, the user inheriting an
//                 environmental fault)  AND  the scoped replay of the very
//                 same plan finishes with every oracle green (the defect is
//                 the discipline's, not the fault's).
//
// This is the "scored by chaos" loop closed over the analyzer itself: a
// static finding ships with the experiment that demonstrates it.
#pragma once

#include <optional>
#include <string>

#include "analysis/flow.hpp"
#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"

namespace esg::chaos {

/// A compiled witness: the minimal plan plus the mapping rationale.
struct WitnessPlan {
  FaultPlan plan;         ///< naive-discipline plan provoking the family
  std::string rationale;  ///< how the injected fault maps onto the finding

  [[nodiscard]] std::string str() const;
};

/// Lower `finding` to a minimal fault plan. Only kind-bearing laundering
/// findings compile; program-scope kinds (the job's own doing — nothing
/// environmental to inject) and kind-less structural findings yield
/// nullopt.
[[nodiscard]] std::optional<WitnessPlan> compile_witness(
    const analysis::FlowFinding& finding);

/// Both replays of one witness plan, and the cross-checked verdict.
struct WitnessVerdict {
  RunResult naive;
  RunResult scoped;

  [[nodiscard]] bool naive_bitten() const { return !naive.oracles.ok(); }
  [[nodiscard]] bool scoped_clean() const {
    return scoped.finished && scoped.oracles.ok();
  }
  [[nodiscard]] bool confirmed() const {
    return naive_bitten() && scoped_clean();
  }
  [[nodiscard]] std::string str() const;
};

/// Replay `plan` under the naive and scoped disciplines (the plan's own
/// discipline field is overridden for each leg) and judge both runs with
/// the resilience oracles.
[[nodiscard]] WitnessVerdict confirm_witness(const FaultPlan& plan);

}  // namespace esg::chaos
