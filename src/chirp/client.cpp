#include "chirp/client.hpp"

#include "common/strings.hpp"
#include "obs/trace.hpp"

namespace esg::chirp {

ChirpClient::ChirpClient(sim::Engine& engine, net::Endpoint endpoint,
                         SimTime timeout, std::string component)
    : engine_(engine),
      endpoint_(std::move(endpoint)),
      trace_(engine.context().trace(std::move(component))),
      timeout_(timeout) {
  std::shared_ptr<bool> alive = alive_;
  endpoint_.set_on_message([this, alive](const std::string& wire) {
    if (*alive) on_response(wire);
  });
  endpoint_.set_on_close([this, alive](const std::optional<Error>& error) {
    if (*alive) on_close(error);
  });
}

ChirpClient::~ChirpClient() {
  *alive_ = false;
  for (auto& [cb, timer] : pending_) timer.cancel();
}

Error ChirpClient::response_error(const Response& resp) {
  return resp.to_error();
}

void ChirpClient::send(Request req, RawCb done) {
  if (conn_error_.has_value()) {
    done(Error(*conn_error_));
    return;
  }
  if (!endpoint_.is_open()) {
    done(Error(ErrorKind::kConnectionLost, "chirp connection closed"));
    return;
  }
  Result<void> sent = endpoint_.send(req.encode());
  if (!sent.ok()) {
    done(std::move(sent).error());
    return;
  }
  sim::TimerHandle timer;
  if (timeout_ > SimTime::zero()) {
    std::shared_ptr<bool> alive = alive_;
    timer = engine_.schedule(timeout_, [this, alive] {
      if (!*alive) return;
      // The proxy stopped answering: the RPC mechanism itself is no longer
      // trustworthy. Break the connection (escaping error, §3.2); on_close
      // fails every outstanding operation.
      Error timed_out(ErrorKind::kConnectionTimedOut,
                      "chirp response timed out");
      const std::uint64_t silence = trace_.implicit(
          ErrorKind::kConnectionTimedOut, ErrorScope::kNetwork, 0,
          "proxy silent past chirp timeout");
      trace_.converted_to_escaping(timed_out, 0,
                                   "aborting the chirp connection", silence);
      endpoint_.abort(std::move(timed_out));
    });
  }
  pending_.emplace_back(std::move(done), timer);
}

void ChirpClient::on_response(const std::string& wire) {
  if (pending_.empty()) {
    // Unsolicited response: protocol violation by the peer; the function
    // call mechanism is invalid. Escape by breaking the connection.
    Error unsolicited(ErrorKind::kProtocolError, "unsolicited chirp response");
    trace_.converted_to_escaping(unsolicited, 0,
                                 "aborting the chirp connection");
    endpoint_.abort(std::move(unsolicited));
    return;
  }
  auto [cb, timer] = std::move(pending_.front());
  pending_.pop_front();
  timer.cancel();
  Result<Response> parsed = parse_response(wire);
  cb(std::move(parsed));
}

void ChirpClient::on_close(const std::optional<Error>& error) {
  conn_error_ = error.has_value()
                    ? *error
                    : Error(ErrorKind::kConnectionLost,
                            "chirp connection closed by peer");
  // The escaping break surfaces here as an explicit error: handed to every
  // caller still waiting, and latched as conn_error_ for every future call
  // (Principle 2's catch half).
  trace_.converted_to_explicit(
      *conn_error_, 0,
      "failing " + std::to_string(pending_.size()) +
          " outstanding chirp ops; latched for future calls");
  fail_all(*conn_error_);
}

void ChirpClient::fail_all(const Error& error) {
  while (!pending_.empty()) {
    auto [cb, timer] = std::move(pending_.front());
    pending_.pop_front();
    timer.cancel();
    cb(Error(error));
  }
}

void ChirpClient::authenticate(const std::string& secret, VoidCb done) {
  Request req;
  req.command = "cookie";
  req.args = {secret};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

void ChirpClient::open(const std::string& path, const std::string& mode,
                       IntCb done) {
  Request req;
  req.command = "open";
  req.args = {path, mode};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(r.value().value);
  });
}

void ChirpClient::close_fd(std::int64_t fd, VoidCb done) {
  Request req;
  req.command = "close";
  req.args = {std::to_string(fd)};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

void ChirpClient::read(std::int64_t fd, std::int64_t length, DataCb done) {
  Request req;
  req.command = "read";
  req.args = {std::to_string(fd), std::to_string(length)};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(std::move(r.value().data));
  });
}

void ChirpClient::write(std::int64_t fd, std::string data, IntCb done) {
  Request req;
  req.command = "write";
  req.args = {std::to_string(fd)};
  req.data = std::move(data);
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(r.value().value);
  });
}

void ChirpClient::lseek(std::int64_t fd, std::int64_t offset, VoidCb done) {
  Request req;
  req.command = "lseek";
  req.args = {std::to_string(fd), std::to_string(offset)};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

void ChirpClient::stat(const std::string& path, IntCb done) {
  Request req;
  req.command = "stat";
  req.args = {path};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(r.value().value);
  });
}

void ChirpClient::unlink(const std::string& path, VoidCb done) {
  Request req;
  req.command = "unlink";
  req.args = {path};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

void ChirpClient::rmdir(const std::string& path, VoidCb done) {
  Request req;
  req.command = "rmdir";
  req.args = {path};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

void ChirpClient::rename(const std::string& from, const std::string& to,
                         VoidCb done) {
  Request req;
  req.command = "rename";
  req.args = {from, to};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

void ChirpClient::getdir(
    const std::string& path,
    std::function<void(Result<std::vector<std::string>>)> done) {
  Request req;
  req.command = "getdir";
  req.args = {path};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    std::vector<std::string> names;
    for (const std::string& line : split(r.value().data, '\n')) {
      if (!line.empty()) names.push_back(line);
    }
    done(std::move(names));
  });
}

void ChirpClient::mkdir(const std::string& path, VoidCb done) {
  Request req;
  req.command = "mkdir";
  req.args = {path};
  send(std::move(req), [done = std::move(done)](Result<Response> r) {
    if (!r.ok()) {
      done(std::move(r).error());
      return;
    }
    if (r.value().code != Code::kOk) {
      done(response_error(r.value()));
      return;
    }
    done(Ok());
  });
}

}  // namespace esg::chirp
