// ChirpClient: the job-side half of the I/O protocol.
//
// The Java I/O library calls through this client. All operations are
// asynchronous (the simulation never blocks); completions arrive in FIFO
// order. A broken connection — the network's escaping error — fails every
// outstanding and future operation with the connection error, exactly the
// condition the fixed I/O library must convert into a Java Error rather
// than an IOException (§4).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chirp/protocol.hpp"
#include "common/simtime.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace esg::chirp {

class ChirpClient {
 public:
  /// `timeout`: if a response takes longer, the connection is aborted with
  /// kConnectionTimedOut (zero disables). `component` labels trace spans;
  /// launchers host-qualify it ("chirp-client@exec3") for dashboard
  /// machine attribution.
  ChirpClient(sim::Engine& engine, net::Endpoint endpoint,
              SimTime timeout = SimTime::sec(30),
              std::string component = "chirp-client");
  ~ChirpClient();

  ChirpClient(const ChirpClient&) = delete;
  ChirpClient& operator=(const ChirpClient&) = delete;

  using IntCb = std::function<void(Result<std::int64_t>)>;
  using DataCb = std::function<void(Result<std::string>)>;
  using VoidCb = std::function<void(Result<void>)>;

  /// Authenticate with the shared secret. Must complete before other ops.
  void authenticate(const std::string& secret, VoidCb done);

  /// mode: "r" | "w" | "a"; yields a remote fd.
  void open(const std::string& path, const std::string& mode, IntCb done);
  void close_fd(std::int64_t fd, VoidCb done);
  /// Short reads mean EOF (empty string at EOF).
  void read(std::int64_t fd, std::int64_t length, DataCb done);
  void write(std::int64_t fd, std::string data, IntCb done);
  void lseek(std::int64_t fd, std::int64_t offset, VoidCb done);
  /// Yields the file size.
  void stat(const std::string& path, IntCb done);
  void unlink(const std::string& path, VoidCb done);
  void mkdir(const std::string& path, VoidCb done);
  void rmdir(const std::string& path, VoidCb done);
  void rename(const std::string& from, const std::string& to, VoidCb done);
  /// Yields the directory entries (the server sends one name per line).
  void getdir(const std::string& path,
              std::function<void(Result<std::vector<std::string>>)> done);

  [[nodiscard]] bool connected() const { return endpoint_.is_open(); }

  /// The engine this client runs on; layers above (the Java I/O library)
  /// use it to bind to the same simulation context.
  [[nodiscard]] sim::Engine& engine() const { return engine_; }

  /// The error that killed the connection, if any.
  [[nodiscard]] const std::optional<Error>& connection_error() const {
    return conn_error_;
  }

 private:
  using RawCb = std::function<void(Result<Response>)>;
  void send(Request req, RawCb done);
  void on_response(const std::string& wire);
  void on_close(const std::optional<Error>& error);
  void fail_all(const Error& error);

  static Error response_error(const Response& resp);

  sim::Engine& engine_;
  net::Endpoint endpoint_;
  obs::TraceSink trace_;
  SimTime timeout_;
  std::deque<std::pair<RawCb, sim::TimerHandle>> pending_;
  std::optional<Error> conn_error_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace esg::chirp
