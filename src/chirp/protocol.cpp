#include "chirp/protocol.hpp"

#include "common/strings.hpp"

namespace esg::chirp {

ErrorKind code_to_kind(Code code) {
  switch (code) {
    case Code::kOk: return ErrorKind::kUnknown;  // not an error
    case Code::kNotAuthenticated: return ErrorKind::kAuthenticationFailed;
    case Code::kNotFound: return ErrorKind::kFileNotFound;
    case Code::kNotAllowed: return ErrorKind::kAccessDenied;
    case Code::kTooBig: return ErrorKind::kQuotaExceeded;
    case Code::kDiskFull: return ErrorKind::kDiskFull;
    case Code::kBadFd: return ErrorKind::kBadFileDescriptor;
    case Code::kIsDirectory: return ErrorKind::kIsDirectory;
    case Code::kNotDirectory: return ErrorKind::kNotDirectory;
    case Code::kExists: return ErrorKind::kFileExists;
    case Code::kOffline: return ErrorKind::kMountOffline;
    case Code::kTransient: return ErrorKind::kIoError;
    case Code::kMalformed: return ErrorKind::kRequestMalformed;
    case Code::kUnknownCommand: return ErrorKind::kRequestMalformed;
    case Code::kEndOfFile: return ErrorKind::kEndOfFile;
    case Code::kTimedOut: return ErrorKind::kConnectionTimedOut;
    case Code::kDisconnected: return ErrorKind::kConnectionLost;
  }
  return ErrorKind::kUnknown;
}

Code kind_to_code(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kAuthenticationFailed:
    case ErrorKind::kCredentialsExpired:
    case ErrorKind::kNotAuthorized:
      return Code::kNotAuthenticated;
    case ErrorKind::kFileNotFound: return Code::kNotFound;
    case ErrorKind::kAccessDenied: return Code::kNotAllowed;
    case ErrorKind::kQuotaExceeded: return Code::kTooBig;
    case ErrorKind::kDiskFull: return Code::kDiskFull;
    case ErrorKind::kBadFileDescriptor: return Code::kBadFd;
    case ErrorKind::kIsDirectory: return Code::kIsDirectory;
    case ErrorKind::kNotDirectory: return Code::kNotDirectory;
    case ErrorKind::kFileExists: return Code::kExists;
    case ErrorKind::kMountOffline: return Code::kOffline;
    case ErrorKind::kIoError: return Code::kTransient;
    case ErrorKind::kRequestMalformed: return Code::kMalformed;
    case ErrorKind::kEndOfFile: return Code::kEndOfFile;
    case ErrorKind::kConnectionTimedOut: return Code::kTimedOut;
    case ErrorKind::kConnectionLost:
    case ErrorKind::kConnectionRefused:
    case ErrorKind::kHostUnreachable:
      return Code::kDisconnected;
    // Everything else has no wire code of its own and degrades to
    // TRANSIENT. Exhaustive on purpose: a new kind must choose its code
    // here rather than silently falling into a default.
    case ErrorKind::kNameTooLong:
    case ErrorKind::kProtocolError:
    case ErrorKind::kNullPointer:
    case ErrorKind::kArrayIndexOutOfBounds:
    case ErrorKind::kArithmeticError:
    case ErrorKind::kUncaughtException:
    case ErrorKind::kExitNonZero:
    case ErrorKind::kOutOfMemory:
    case ErrorKind::kStackOverflow:
    case ErrorKind::kInternalVmError:
    case ErrorKind::kJvmMisconfigured:
    case ErrorKind::kJvmMissing:
    case ErrorKind::kScratchUnavailable:
    case ErrorKind::kCorruptImage:
    case ErrorKind::kClassNotFound:
    case ErrorKind::kBadJobDescription:
    case ErrorKind::kInputUnavailable:
    case ErrorKind::kClaimRejected:
    case ErrorKind::kPolicyRefused:
    case ErrorKind::kMatchExpired:
    case ErrorKind::kDaemonCrashed:
    case ErrorKind::kUnknown:
      return Code::kTransient;
  }
  return Code::kTransient;
}

std::string_view code_name(Code code) {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kNotAuthenticated: return "NOT_AUTHENTICATED";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kNotAllowed: return "NOT_ALLOWED";
    case Code::kTooBig: return "TOO_BIG";
    case Code::kDiskFull: return "DISK_FULL";
    case Code::kBadFd: return "BAD_FD";
    case Code::kIsDirectory: return "IS_DIRECTORY";
    case Code::kNotDirectory: return "NOT_DIRECTORY";
    case Code::kExists: return "EXISTS";
    case Code::kOffline: return "OFFLINE";
    case Code::kTransient: return "TRANSIENT";
    case Code::kMalformed: return "MALFORMED";
    case Code::kUnknownCommand: return "UNKNOWN_COMMAND";
    case Code::kEndOfFile: return "END_OF_FILE";
    case Code::kTimedOut: return "TIMED_OUT";
    case Code::kDisconnected: return "DISCONNECTED";
  }
  return "?";
}

std::string Request::encode() const {
  std::string out = command;
  for (const std::string& a : args) {
    out += ' ';
    out += a;
  }
  if (!data.empty()) {
    out += '\n';
    out += data;
  }
  return out;
}

std::string Response::encode() const {
  std::string out = std::to_string(static_cast<int>(code));
  out += ' ';
  out += std::to_string(value);
  out += ' ';
  out += scope.has_value() ? std::string(scope_name(*scope)) : "-";
  if (!data.empty()) {
    out += '\n';
    out += data;
  }
  return out;
}

Response Response::ok(std::int64_t value, std::string data) {
  Response r;
  r.code = Code::kOk;
  r.value = value;
  r.data = std::move(data);
  return r;
}

Response Response::fail(Code code) {
  Response r;
  r.code = code;
  return r;
}

Response Response::fail_scoped(Code code, ErrorScope scope) {
  Response r;
  r.code = code;
  r.scope = scope;
  return r;
}

Error Response::to_error() const {
  const ErrorKind kind = code_to_kind(code);
  // A carried scope *overrides* the kind's default — the server knows
  // which resource failed better than the code's generic mapping does
  // (e.g. a scratch outage is remote-resource even though mount-offline
  // defaults to local-resource).
  return Error(kind, scope.value_or(default_scope(kind)),
               std::string("chirp: ") + std::string(code_name(code)));
}

Result<Request> parse_request(const std::string& wire) {
  const std::size_t nl = wire.find('\n');
  const std::string head = wire.substr(0, nl);
  Request req;
  if (nl != std::string::npos) req.data = wire.substr(nl + 1);
  std::vector<std::string> fields;
  for (const std::string& f : split(head, ' ')) {
    if (!f.empty()) fields.push_back(f);
  }
  if (fields.empty()) {
    return Error(ErrorKind::kRequestMalformed, "empty chirp request");
  }
  req.command = fields.front();
  req.args.assign(fields.begin() + 1, fields.end());
  return req;
}

Result<Response> parse_response(const std::string& wire) {
  const std::size_t nl = wire.find('\n');
  const std::string head = wire.substr(0, nl);
  Response resp;
  if (nl != std::string::npos) resp.data = wire.substr(nl + 1);
  std::vector<std::string> fields;
  for (const std::string& f : split(head, ' ')) {
    if (!f.empty()) fields.push_back(f);
  }
  if (fields.empty()) {
    return Error(ErrorKind::kProtocolError, "empty chirp response");
  }
  char* end = nullptr;
  const long code = std::strtol(fields[0].c_str(), &end, 10);
  if (end == fields[0].c_str()) {
    return Error(ErrorKind::kProtocolError,
                 "bad chirp response code: " + fields[0]);
  }
  resp.code = static_cast<Code>(code);
  if (fields.size() > 1) {
    resp.value = std::strtoll(fields[1].c_str(), nullptr, 10);
  }
  if (fields.size() > 2 && fields[2] != "-") {
    // Scope is advisory; unknown names are ignored rather than fatal (a
    // newer peer may know scopes we do not).
    resp.scope = parse_scope(fields[2]);
    if (!resp.scope.has_value()) resp.scope.reset();
  }
  return resp;
}

std::string cookie_path(const std::string& scratch_dir) {
  return scratch_dir + "/.chirp.cookie";
}

}  // namespace esg::chirp
