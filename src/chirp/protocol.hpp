// The Chirp protocol (§2.2).
//
// The Java I/O library does not talk to storage directly; it speaks a
// simple request/response protocol to a proxy in the starter over the
// loopback interface, authenticating with a shared secret revealed through
// the local filesystem. Our transport is message-based, so one request or
// response occupies exactly one message:
//
//   request : "<command> <args...>" ["\n" <data>]          (write carries data)
//   response: "<code> [<args...>]"  ["\n" <data>]          (read returns data)
//
// Response codes are a concise, finite set (Principle 4). Codes map
// losslessly to core ErrorKinds, and each kind keeps its scope, so the
// Java library on the far side can tell a contractual error (NOT_FOUND on
// open) from one that must escape (OFFLINE during write).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/kinds.hpp"
#include "core/result.hpp"
#include "core/scope.hpp"

namespace esg::chirp {

enum class Code : int {
  kOk = 0,
  kNotAuthenticated = -1,
  kNotFound = -2,
  kNotAllowed = -3,
  kTooBig = -4,
  kDiskFull = -5,
  kBadFd = -6,
  kIsDirectory = -7,
  kNotDirectory = -8,
  kExists = -9,
  kOffline = -10,     ///< backing filesystem unavailable
  kTransient = -11,   ///< transient device error
  kMalformed = -12,
  kUnknownCommand = -13,
  kEndOfFile = -14,
  kTimedOut = -15,      ///< backend did not answer in time
  kDisconnected = -16,  ///< backend's own connection is gone
};

/// Map a response code to the canonical error kind (identity-preserving
/// round trip with kind_to_code for every supported kind).
ErrorKind code_to_kind(Code code);

/// Map an error kind to the closest response code; kinds outside the
/// protocol's vocabulary collapse to kTransient (the catch-all that
/// callers must treat as non-contractual).
Code kind_to_code(ErrorKind kind);

std::string_view code_name(Code code);

struct Request {
  std::string command;             // "open", "read", ...
  std::vector<std::string> args;   // tokenized arguments
  std::string data;                // payload (write)

  [[nodiscard]] std::string encode() const;
};

struct Response {
  Code code = Code::kOk;
  std::int64_t value = 0;          // fd, byte count, size, ...
  std::string data;                // payload (read, stat)

  /// The scope the error invalidates, when the server knows better than
  /// the code's default (e.g. a mount outage on the execution machine is
  /// remote-resource scope; the same outage behind the shadow is
  /// local-resource scope). This field is the protocol-level embodiment of
  /// the paper's thesis: the scope, not the detail, is what the two sides
  /// must agree on.
  std::optional<ErrorScope> scope;

  [[nodiscard]] std::string encode() const;

  static Response ok(std::int64_t value = 0, std::string data = {});
  static Response fail(Code code);
  static Response fail_scoped(Code code, ErrorScope scope);

  /// The error this response denotes (code must not be kOk): kind from
  /// the code, scope from the carried scope or the kind's default.
  [[nodiscard]] Error to_error() const;
};

Result<Request> parse_request(const std::string& wire);
Result<Response> parse_response(const std::string& wire);

/// The cookie file path convention: the starter writes the shared secret
/// here, the job reads it through the local filesystem (§2.2).
std::string cookie_path(const std::string& scratch_dir);

}  // namespace esg::chirp
