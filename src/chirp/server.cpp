#include "chirp/server.hpp"

#include "analysis/topology.hpp"

namespace esg::chirp {

// ---- FsBackend ----

FsBackend::FsBackend(fs::SimFileSystem& fs, std::string sandbox,
                     std::optional<ErrorScope> resource_scope)
    : fs_(fs),
      sandbox_(std::move(sandbox)),
      resource_scope_(resource_scope) {}

Response FsBackend::error_response(const Error& e) const {
  // A mount outage invalidates the whole backing resource; the backend is
  // the one component that knows *which* resource, so it stamps the scope
  // into the response (Principle 3 needs the scope to travel).
  if (e.kind() == ErrorKind::kMountOffline && resource_scope_.has_value()) {
    return Response::fail_scoped(kind_to_code(e.kind()), *resource_scope_);
  }
  return Response::fail(kind_to_code(e.kind()));
}

std::string FsBackend::map_path(const std::string& path) const {
  if (sandbox_.empty()) return path;
  if (path.empty() || path[0] != '/') return sandbox_ + "/" + path;
  return sandbox_ + path;
}

void FsBackend::op_open(const std::string& path, const std::string& mode,
                        Reply reply) {
  fs::OpenMode m;
  if (mode == "r") {
    m = fs::OpenMode::kRead;
  } else if (mode == "w") {
    m = fs::OpenMode::kWrite;
  } else if (mode == "a") {
    m = fs::OpenMode::kAppend;
  } else {
    reply(Response::fail(Code::kMalformed));
    return;
  }
  Result<fs::FileHandle> h = fs_.open(map_path(path), m);
  if (!h.ok()) {
    reply(error_response(h.error()));
    return;
  }
  const std::int64_t fd = next_fd_++;
  handles_[fd] = std::move(h).value();
  reply(Response::ok(fd));
}

void FsBackend::op_close(std::int64_t fd, Reply reply) {
  auto it = handles_.find(fd);
  if (it == handles_.end()) {
    reply(Response::fail(Code::kBadFd));
    return;
  }
  it->second.close();
  handles_.erase(it);
  reply(Response::ok());
}

void FsBackend::op_read(std::int64_t fd, std::int64_t length, Reply reply) {
  auto it = handles_.find(fd);
  if (it == handles_.end()) {
    reply(Response::fail(Code::kBadFd));
    return;
  }
  if (length < 0) {
    reply(Response::fail(Code::kMalformed));
    return;
  }
  Result<std::string> data =
      it->second.read(static_cast<std::size_t>(length));
  if (!data.ok()) {
    reply(error_response(data.error()));
    return;
  }
  const std::int64_t n = static_cast<std::int64_t>(data.value().size());
  reply(Response::ok(n, std::move(data).value()));
}

void FsBackend::op_write(std::int64_t fd, const std::string& data,
                         Reply reply) {
  auto it = handles_.find(fd);
  if (it == handles_.end()) {
    reply(Response::fail(Code::kBadFd));
    return;
  }
  Result<void> r = it->second.write(data);
  if (!r.ok()) {
    reply(error_response(r.error()));
    return;
  }
  reply(Response::ok(static_cast<std::int64_t>(data.size())));
}

void FsBackend::op_lseek(std::int64_t fd, std::int64_t offset, Reply reply) {
  auto it = handles_.find(fd);
  if (it == handles_.end()) {
    reply(Response::fail(Code::kBadFd));
    return;
  }
  if (offset < 0) {
    reply(Response::fail(Code::kMalformed));
    return;
  }
  Result<void> r = it->second.seek(static_cast<std::uint64_t>(offset));
  if (!r.ok()) {
    reply(error_response(r.error()));
    return;
  }
  reply(Response::ok(offset));
}

void FsBackend::op_stat(const std::string& path, Reply reply) {
  Result<fs::Stat> s = fs_.stat(map_path(path));
  if (!s.ok()) {
    reply(error_response(s.error()));
    return;
  }
  std::string data = std::string(s.value().is_dir ? "dir" : "file") + " " +
                     std::to_string(s.value().size);
  reply(Response::ok(static_cast<std::int64_t>(s.value().size),
                     std::move(data)));
}

void FsBackend::op_unlink(const std::string& path, Reply reply) {
  Result<void> r = fs_.unlink(map_path(path));
  if (!r.ok()) {
    reply(error_response(r.error()));
    return;
  }
  reply(Response::ok());
}

void FsBackend::op_mkdir(const std::string& path, Reply reply) {
  Result<void> r = fs_.mkdir(map_path(path));
  if (!r.ok()) {
    reply(error_response(r.error()));
    return;
  }
  reply(Response::ok());
}

void FsBackend::op_rmdir(const std::string& path, Reply reply) {
  Result<void> r = fs_.rmdir(map_path(path));
  if (!r.ok()) {
    reply(error_response(r.error()));
    return;
  }
  reply(Response::ok());
}

void FsBackend::op_rename(const std::string& from, const std::string& to,
                          Reply reply) {
  Result<void> r = fs_.rename(map_path(from), map_path(to));
  if (!r.ok()) {
    reply(error_response(r.error()));
    return;
  }
  reply(Response::ok());
}

void FsBackend::op_getdir(const std::string& path, Reply reply) {
  Result<std::vector<std::string>> names = fs_.list(map_path(path));
  if (!names.ok()) {
    reply(error_response(names.error()));
    return;
  }
  std::string payload;
  for (const std::string& name : names.value()) {
    payload += name;
    payload += '\n';
  }
  reply(Response::ok(static_cast<std::int64_t>(names.value().size()),
                     std::move(payload)));
}

// ---- ChirpServer ----

ChirpServer::ChirpServer(net::Endpoint endpoint, Backend& backend,
                         std::string secret)
    : endpoint_(std::move(endpoint)),
      backend_(backend),
      secret_(std::move(secret)) {
  std::shared_ptr<bool> alive = alive_;
  endpoint_.set_on_message([this, alive](const std::string& wire) {
    if (*alive) on_request(wire);
  });
}

void ChirpServer::on_request(const std::string& wire) {
  Result<Request> parsed = parse_request(wire);
  const std::size_t slot = slots_.size() + base_;
  slots_.push_back(Slot{});
  if (!parsed.ok()) {
    complete(slot, Response::fail(Code::kMalformed));
    return;
  }
  const Request& req = parsed.value();

  if (req.command == "cookie") {
    if (req.args.size() == 1 && req.args[0] == secret_) {
      authenticated_ = true;
      complete(slot, Response::ok());
    } else {
      complete(slot, Response::fail(Code::kNotAuthenticated));
    }
    return;
  }
  if (!authenticated_) {
    complete(slot, Response::fail(Code::kNotAuthenticated));
    return;
  }
  std::shared_ptr<bool> alive = alive_;
  dispatch(req, [this, alive, slot](Response resp) {
    if (*alive) complete(slot, std::move(resp));
  });
}

void ChirpServer::dispatch(const Request& req, Backend::Reply reply) {
  auto int_arg = [&](std::size_t i) -> std::int64_t {
    return i < req.args.size()
               ? std::strtoll(req.args[i].c_str(), nullptr, 10)
               : -1;
  };
  if (req.command == "open" && req.args.size() == 2) {
    backend_.op_open(req.args[0], req.args[1], std::move(reply));
  } else if (req.command == "close" && req.args.size() == 1) {
    backend_.op_close(int_arg(0), std::move(reply));
  } else if (req.command == "read" && req.args.size() == 2) {
    backend_.op_read(int_arg(0), int_arg(1), std::move(reply));
  } else if (req.command == "write" && req.args.size() == 1) {
    backend_.op_write(int_arg(0), req.data, std::move(reply));
  } else if (req.command == "lseek" && req.args.size() == 2) {
    backend_.op_lseek(int_arg(0), int_arg(1), std::move(reply));
  } else if (req.command == "stat" && req.args.size() == 1) {
    backend_.op_stat(req.args[0], std::move(reply));
  } else if (req.command == "unlink" && req.args.size() == 1) {
    backend_.op_unlink(req.args[0], std::move(reply));
  } else if (req.command == "mkdir" && req.args.size() == 1) {
    backend_.op_mkdir(req.args[0], std::move(reply));
  } else if (req.command == "rmdir" && req.args.size() == 1) {
    backend_.op_rmdir(req.args[0], std::move(reply));
  } else if (req.command == "rename" && req.args.size() == 2) {
    backend_.op_rename(req.args[0], req.args[1], std::move(reply));
  } else if (req.command == "getdir" && req.args.size() == 1) {
    backend_.op_getdir(req.args[0], std::move(reply));
  } else {
    reply(Response::fail(Code::kUnknownCommand));
  }
}

void ChirpServer::complete(std::size_t slot, Response resp) {
  const std::size_t index = slot - base_;
  if (index >= slots_.size()) return;  // connection already torn down
  slots_[index].done = true;
  slots_[index].response = std::move(resp);
  flush();
}

void ChirpServer::flush() {
  while (!slots_.empty() && slots_.front().done) {
    if (!endpoint_.is_open()) {
      // Peer is gone; drop the remaining responses.
      slots_.clear();
      return;
    }
    (void)endpoint_.send(slots_.front().response.encode());
    ++served_;
    slots_.pop_front();
    ++base_;
  }
}

void describe_topology(analysis::TopologyModel& model) {
  model.declare_component("chirp");

  // What the transport layer can discover on its own: connection faults
  // (network scope), malformed traffic, and authentication refusals.
  model.declare_detection(
      {"chirp",
       "chirp.transport",
       {ErrorKind::kConnectionRefused, ErrorKind::kConnectionLost,
        ErrorKind::kConnectionTimedOut, ErrorKind::kHostUnreachable,
        ErrorKind::kProtocolError, ErrorKind::kRequestMalformed,
        ErrorKind::kAuthenticationFailed}});

  // The RPC result contract: the error codes the wire protocol can carry
  // back (protocol.cpp kind_to_code) that some server-side detection can
  // actually produce. kQuotaExceeded and kNotAuthorized have wire codes
  // but no producer — SimFileSystem has no quota or ACL layer, and auth
  // refusals surface at the transport as kAuthenticationFailed — so
  // declaring them would be dead vocabulary (esf/redundant-consumption).
  analysis::InterfaceDecl rpc;
  rpc.component = "chirp";
  rpc.routine = "chirp.rpc";
  rpc.allowed = {ErrorKind::kFileNotFound,      ErrorKind::kAccessDenied,
                 ErrorKind::kFileExists,        ErrorKind::kNotDirectory,
                 ErrorKind::kIsDirectory,       ErrorKind::kEndOfFile,
                 ErrorKind::kDiskFull,          ErrorKind::kIoError,
                 ErrorKind::kBadFileDescriptor, ErrorKind::kMountOffline};
  rpc.escape_floor = ErrorScope::kNetwork;
  model.declare_interface(std::move(rpc));
  model.declare_flow("chirp.transport", "chirp.rpc");
}

}  // namespace esg::chirp
