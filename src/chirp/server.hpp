// ChirpServer: the I/O proxy that lives in the starter (§2.2).
//
// The proxy lets the starter transparently add functionality to the job's
// I/O without burdening the user: path routing, security, and (in the full
// grid) forwarding to the shadow's remote I/O channel. The server is
// backend-agnostic: a ChirpBackend answers each operation asynchronously,
// so a backend may be a local filesystem or another RPC hop.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "chirp/protocol.hpp"
#include "fs/simfs.hpp"
#include "net/fabric.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::chirp {

/// Asynchronous backend interface. Implementations call `reply` exactly
/// once per operation (possibly reentrantly).
class Backend {
 public:
  using Reply = std::function<void(Response)>;
  virtual ~Backend() = default;

  virtual void op_open(const std::string& path, const std::string& mode,
                       Reply reply) = 0;
  virtual void op_close(std::int64_t fd, Reply reply) = 0;
  virtual void op_read(std::int64_t fd, std::int64_t length, Reply reply) = 0;
  virtual void op_write(std::int64_t fd, const std::string& data,
                        Reply reply) = 0;
  virtual void op_lseek(std::int64_t fd, std::int64_t offset, Reply reply) = 0;
  virtual void op_stat(const std::string& path, Reply reply) = 0;
  virtual void op_unlink(const std::string& path, Reply reply) = 0;
  virtual void op_mkdir(const std::string& path, Reply reply) = 0;
  virtual void op_rmdir(const std::string& path, Reply reply) = 0;
  virtual void op_rename(const std::string& from, const std::string& to,
                         Reply reply) = 0;
  /// Directory listing: names in the payload, one per line.
  virtual void op_getdir(const std::string& path, Reply reply) = 0;
};

/// A backend serving a SimFileSystem directly (used for scratch space and
/// in tests). Paths may be confined to a sandbox prefix.
class FsBackend final : public Backend {
 public:
  /// Paths are interpreted relative to `sandbox` ("" = whole filesystem).
  /// `resource_scope`, when set, is stamped on responses for errors that
  /// invalidate the whole backing resource (kMountOffline): a scratch disk
  /// on the execution machine is remote-resource scope, the shadow's home
  /// filesystem is local-resource scope — same error code, different scope.
  FsBackend(fs::SimFileSystem& fs, std::string sandbox = {},
            std::optional<ErrorScope> resource_scope = std::nullopt);

  void op_open(const std::string& path, const std::string& mode,
               Reply reply) override;
  void op_close(std::int64_t fd, Reply reply) override;
  void op_read(std::int64_t fd, std::int64_t length, Reply reply) override;
  void op_write(std::int64_t fd, const std::string& data,
                Reply reply) override;
  void op_lseek(std::int64_t fd, std::int64_t offset, Reply reply) override;
  void op_stat(const std::string& path, Reply reply) override;
  void op_unlink(const std::string& path, Reply reply) override;
  void op_mkdir(const std::string& path, Reply reply) override;
  void op_rmdir(const std::string& path, Reply reply) override;
  void op_rename(const std::string& from, const std::string& to,
                 Reply reply) override;
  void op_getdir(const std::string& path, Reply reply) override;

 private:
  std::string map_path(const std::string& path) const;
  Response error_response(const Error& e) const;
  fs::SimFileSystem& fs_;
  std::string sandbox_;
  std::optional<ErrorScope> resource_scope_;
  std::map<std::int64_t, fs::FileHandle> handles_;
  std::int64_t next_fd_ = 3;
};

/// One server handles one connection. Requests are answered in FIFO order
/// even when the backend answers out of order. The first request must be
/// `cookie <secret>`; everything before successful authentication fails
/// with NOT_AUTHENTICATED (the connection's trust equals the local
/// system's: the secret was revealed through the local filesystem).
class ChirpServer {
 public:
  ChirpServer(net::Endpoint endpoint, Backend& backend, std::string secret);
  ~ChirpServer() { *alive_ = false; }

  ChirpServer(const ChirpServer&) = delete;
  ChirpServer& operator=(const ChirpServer&) = delete;

  [[nodiscard]] bool authenticated() const { return authenticated_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  void on_request(const std::string& wire);
  void dispatch(const Request& req, Backend::Reply reply);
  void enqueue_reply_slot();
  void complete(std::size_t slot, Response resp);
  void flush();

  net::Endpoint endpoint_;
  Backend& backend_;
  std::string secret_;
  bool authenticated_ = false;
  std::uint64_t served_ = 0;

  // FIFO response ordering: slot i must be sent before slot i+1.
  struct Slot {
    bool done = false;
    Response response;
  };
  std::deque<Slot> slots_;
  std::size_t base_ = 0;  ///< index of the first unsent slot
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Static error-topology declaration for the chirp layer (the analysis/
/// model-checker hook). The protocol's error vocabulary is fixed by the
/// wire codes, so this is discipline-independent: the transport detection
/// point ("chirp.transport") and the RPC result contract ("chirp.rpc").
void describe_topology(analysis::TopologyModel& model);

}  // namespace esg::chirp
