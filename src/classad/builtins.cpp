// ClassAd builtin functions.
//
// The function set is deliberately concise and finite — the library's own
// application of Principle 4. Unknown names are rejected at parse time.
#include <algorithm>
#include <cmath>
#include <map>
#include <regex>

#include "classad/expr.hpp"
#include "common/strings.hpp"

namespace esg::classad {
namespace {

using Args = std::vector<Value>;

Value need_args(const Args& args, std::size_t n, const char* name) {
  return Value::error(std::string(name) + " expects " + std::to_string(n) +
                      " argument(s), got " + std::to_string(args.size()));
}

/// Strict helper: propagate error, then undefined, from any argument.
const Value* strict(const Args& args, Value& storage) {
  for (const Value& v : args) {
    if (v.is_error()) {
      storage = v;
      return &storage;
    }
  }
  for (const Value& v : args) {
    if (v.is_undefined()) {
      storage = Value::undefined();
      return &storage;
    }
  }
  return nullptr;
}

Value fn_is_undefined(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isUndefined");
  return Value::boolean(a[0].is_undefined());
}
Value fn_is_error(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isError");
  return Value::boolean(a[0].is_error());
}
Value fn_is_string(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isString");
  return Value::boolean(a[0].is_string());
}
Value fn_is_integer(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isInteger");
  return Value::boolean(a[0].is_int());
}
Value fn_is_real(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isReal");
  return Value::boolean(a[0].is_real());
}
Value fn_is_boolean(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isBoolean");
  return Value::boolean(a[0].is_bool());
}
Value fn_is_list(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "isList");
  return Value::boolean(a[0].is_list());
}

Value fn_int(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "int");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  const Value& v = a[0];
  if (v.is_int()) return v;
  if (v.is_real()) return Value::integer(static_cast<std::int64_t>(v.as_real()));
  if (v.is_bool()) return Value::integer(v.as_bool() ? 1 : 0);
  if (v.is_string()) {
    char* end = nullptr;
    const long long n = std::strtoll(v.as_string().c_str(), &end, 10);
    if (end == v.as_string().c_str()) return Value::error("int() of non-numeric string");
    return Value::integer(n);
  }
  return Value::error("int() of non-scalar");
}

Value fn_real(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "real");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  const Value& v = a[0];
  if (v.is_real()) return v;
  if (v.is_int()) return Value::real(static_cast<double>(v.as_int()));
  if (v.is_bool()) return Value::real(v.as_bool() ? 1.0 : 0.0);
  if (v.is_string()) {
    char* end = nullptr;
    const double d = std::strtod(v.as_string().c_str(), &end);
    if (end == v.as_string().c_str()) return Value::error("real() of non-numeric string");
    return Value::real(d);
  }
  return Value::error("real() of non-scalar");
}

Value fn_string(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "string");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  const Value& v = a[0];
  if (v.is_string()) return v;
  // Render without quotes for scalars.
  if (v.is_int() || v.is_real() || v.is_bool()) {
    std::string text = v.str();
    return Value::string(std::move(text));
  }
  return Value::error("string() of non-scalar");
}

Value fn_floor(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "floor");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_number()) return Value::error("floor() of non-number");
  return Value::integer(static_cast<std::int64_t>(std::floor(a[0].number())));
}
Value fn_ceiling(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "ceiling");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_number()) return Value::error("ceiling() of non-number");
  return Value::integer(static_cast<std::int64_t>(std::ceil(a[0].number())));
}
Value fn_round(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "round");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_number()) return Value::error("round() of non-number");
  return Value::integer(static_cast<std::int64_t>(std::llround(a[0].number())));
}
Value fn_abs(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "abs");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (a[0].is_int()) return Value::integer(std::llabs(a[0].as_int()));
  if (a[0].is_real()) return Value::real(std::fabs(a[0].as_real()));
  return Value::error("abs() of non-number");
}

Value fn_minmax(const Args& a, bool want_min, const char* name) {
  if (a.empty()) return need_args(a, 1, name);
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  // Accept either a single list or N scalars.
  const std::vector<Value>* items = nullptr;
  std::vector<Value> flat;
  if (a.size() == 1 && a[0].is_list()) {
    items = &a[0].as_list();
  } else {
    flat = a;
    items = &flat;
  }
  if (items->empty()) return Value::undefined();
  bool all_int = true;
  double best = 0;
  bool first = true;
  for (const Value& v : *items) {
    if (!v.is_number()) return Value::error(std::string(name) + "() of non-number");
    if (!v.is_int()) all_int = false;
    const double x = v.number();
    if (first || (want_min ? x < best : x > best)) best = x;
    first = false;
  }
  if (all_int) return Value::integer(static_cast<std::int64_t>(best));
  return Value::real(best);
}

Value fn_strcat(const Args& a) {
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  std::string out;
  for (const Value& v : a) {
    if (v.is_string()) {
      out += v.as_string();
    } else if (v.is_int() || v.is_real() || v.is_bool()) {
      out += v.str();
    } else {
      return Value::error("strcat() of non-scalar");
    }
  }
  return Value::string(std::move(out));
}

Value fn_substr(const Args& a) {
  if (a.size() != 2 && a.size() != 3) return need_args(a, 2, "substr");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string() || !a[1].is_int()) {
    return Value::error("substr(string, int[, int])");
  }
  const std::string& str = a[0].as_string();
  std::int64_t offset = a[1].as_int();
  if (offset < 0) offset = std::max<std::int64_t>(0, static_cast<std::int64_t>(str.size()) + offset);
  if (offset >= static_cast<std::int64_t>(str.size())) return Value::string("");
  std::int64_t len = static_cast<std::int64_t>(str.size()) - offset;
  if (a.size() == 3) {
    if (!a[2].is_int()) return Value::error("substr length must be int");
    len = std::min(len, std::max<std::int64_t>(0, a[2].as_int()));
  }
  return Value::string(str.substr(static_cast<std::size_t>(offset),
                                  static_cast<std::size_t>(len)));
}

Value fn_size(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "size");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (a[0].is_string()) {
    return Value::integer(static_cast<std::int64_t>(a[0].as_string().size()));
  }
  if (a[0].is_list()) {
    return Value::integer(static_cast<std::int64_t>(a[0].as_list().size()));
  }
  return Value::error("size() of non-string, non-list");
}

Value fn_tolower(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "toLower");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string()) return Value::error("toLower() of non-string");
  return Value::string(to_lower(a[0].as_string()));
}
Value fn_toupper(const Args& a) {
  if (a.size() != 1) return need_args(a, 1, "toUpper");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string()) return Value::error("toUpper() of non-string");
  std::string out = a[0].as_string();
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return Value::string(std::move(out));
}

Value fn_member(const Args& a) {
  if (a.size() != 2) return need_args(a, 2, "member");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[1].is_list()) return Value::error("member(x, list)");
  for (const Value& v : a[1].as_list()) {
    // ClassAd member() uses == semantics: numbers with promotion,
    // strings case-insensitively.
    if (v.is_number() && a[0].is_number() && v.number() == a[0].number()) {
      return Value::boolean(true);
    }
    if (v.is_string() && a[0].is_string() &&
        iequals(v.as_string(), a[0].as_string())) {
      return Value::boolean(true);
    }
    if (v.is_bool() && a[0].is_bool() && v.as_bool() == a[0].as_bool()) {
      return Value::boolean(true);
    }
  }
  return Value::boolean(false);
}

Value fn_string_list_member(const Args& a) {
  if (a.size() != 2 && a.size() != 3) return need_args(a, 2, "stringListMember");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string() || !a[1].is_string()) {
    return Value::error("stringListMember(string, string[, delims])");
  }
  std::string delims = a.size() == 3 && a[2].is_string() ? a[2].as_string() : ",";
  if (delims.empty()) delims = ",";
  const std::string& hay = a[1].as_string();
  std::string piece;
  auto flush = [&]() {
    const std::string_view t = trim(piece);
    const bool hit = iequals(t, a[0].as_string());
    piece.clear();
    return hit;
  };
  for (char c : hay) {
    if (delims.find(c) != std::string::npos) {
      if (flush()) return Value::boolean(true);
    } else {
      piece += c;
    }
  }
  if (flush()) return Value::boolean(true);
  return Value::boolean(false);
}

Value fn_regexp(const Args& a) {
  // regexp(pattern, target [, options]): true if the pattern matches
  // anywhere in the target (PCRE-style partial match, like real ClassAds).
  // Options: "i" = case insensitive, "f" = full match required.
  if (a.size() != 2 && a.size() != 3) return need_args(a, 2, "regexp");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string() || !a[1].is_string()) {
    return Value::error("regexp(string, string[, string])");
  }
  bool insensitive = false;
  bool full = false;
  if (a.size() == 3) {
    if (!a[2].is_string()) return Value::error("regexp options must be string");
    for (char c : a[2].as_string()) {
      if (c == 'i' || c == 'I') insensitive = true;
      if (c == 'f' || c == 'F') full = true;
    }
  }
  try {
    auto flags = std::regex::ECMAScript;
    if (insensitive) flags |= std::regex::icase;
    const std::regex re(a[0].as_string(), flags);
    const bool hit = full ? std::regex_match(a[1].as_string(), re)
                          : std::regex_search(a[1].as_string(), re);
    return Value::boolean(hit);
  } catch (const std::regex_error&) {
    return Value::error("regexp: bad pattern '" + a[0].as_string() + "'");
  }
}

/// Tokenize a classad string list ("a, b, c") with optional delimiters.
std::vector<std::string> string_list_items(const std::string& text,
                                           const std::string& delims) {
  std::vector<std::string> out;
  std::string piece;
  auto flush = [&] {
    const std::string_view t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
    piece.clear();
  };
  for (char c : text) {
    if (delims.find(c) != std::string::npos) {
      flush();
    } else {
      piece += c;
    }
  }
  flush();
  return out;
}

Value fn_string_list_numeric(const Args& a, const char* name,
                             const std::function<Value(const std::vector<double>&)>& fold) {
  if (a.size() != 1 && a.size() != 2) return need_args(a, 1, name);
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string()) return Value::error(std::string(name) + "(string[, delims])");
  std::string delims = a.size() == 2 && a[1].is_string() ? a[1].as_string() : ",";
  if (delims.empty()) delims = ",";
  std::vector<double> values;
  for (const std::string& item : string_list_items(a[0].as_string(), delims)) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    if (end == item.c_str()) {
      return Value::error(std::string(name) + ": non-numeric item '" + item + "'");
    }
    values.push_back(v);
  }
  return fold(values);
}

Value fn_string_list_size(const Args& a) {
  if (a.size() != 1 && a.size() != 2) return need_args(a, 1, "stringListSize");
  Value storage;
  if (const Value* s = strict(a, storage)) return *s;
  if (!a[0].is_string()) return Value::error("stringListSize(string[, delims])");
  std::string delims = a.size() == 2 && a[1].is_string() ? a[1].as_string() : ",";
  if (delims.empty()) delims = ",";
  return Value::integer(static_cast<std::int64_t>(
      string_list_items(a[0].as_string(), delims).size()));
}

Value fn_if_then_else(const Args& a) {
  if (a.size() != 3) return need_args(a, 3, "ifThenElse");
  const Value& c = a[0];
  if (c.is_error()) return c;
  if (c.is_undefined()) return Value::undefined();
  if (!c.is_bool()) return Value::error("ifThenElse condition not boolean");
  return c.as_bool() ? a[1] : a[2];
}

}  // namespace

bool is_builtin(const std::string& name) {
  static const char* kNames[] = {
      "isundefined", "iserror",  "isstring", "isinteger", "isreal",
      "isboolean",   "islist",   "int",      "real",      "string",
      "floor",       "ceiling",  "round",    "abs",       "min",
      "max",         "strcat",   "substr",   "size",      "tolower",
      "toupper",     "member",   "stringlistmember",      "ifthenelse",
      "random",      "time",   "regexp",
      "stringlistsize", "stringlistsum", "stringlistavg",
      "stringlistmin", "stringlistmax",
  };
  const std::string key = to_lower(name);
  for (const char* n : kNames) {
    if (key == n) return true;
  }
  return false;
}

Value call_builtin(const std::string& name, const std::vector<Value>& args,
                   EvalContext& ctx) {
  const std::string key = to_lower(name);
  if (key == "isundefined") return fn_is_undefined(args);
  if (key == "iserror") return fn_is_error(args);
  if (key == "isstring") return fn_is_string(args);
  if (key == "isinteger") return fn_is_integer(args);
  if (key == "isreal") return fn_is_real(args);
  if (key == "isboolean") return fn_is_boolean(args);
  if (key == "islist") return fn_is_list(args);
  if (key == "int") return fn_int(args);
  if (key == "real") return fn_real(args);
  if (key == "string") return fn_string(args);
  if (key == "floor") return fn_floor(args);
  if (key == "ceiling") return fn_ceiling(args);
  if (key == "round") return fn_round(args);
  if (key == "abs") return fn_abs(args);
  if (key == "min") return fn_minmax(args, true, "min");
  if (key == "max") return fn_minmax(args, false, "max");
  if (key == "strcat") return fn_strcat(args);
  if (key == "substr") return fn_substr(args);
  if (key == "size") return fn_size(args);
  if (key == "tolower") return fn_tolower(args);
  if (key == "toupper") return fn_toupper(args);
  if (key == "member") return fn_member(args);
  if (key == "stringlistmember") return fn_string_list_member(args);
  if (key == "ifthenelse") return fn_if_then_else(args);
  if (key == "regexp") return fn_regexp(args);
  if (key == "stringlistsize") return fn_string_list_size(args);
  if (key == "stringlistsum") {
    return fn_string_list_numeric(args, "stringListSum",
                                  [](const std::vector<double>& v) {
                                    double sum = 0;
                                    for (double x : v) sum += x;
                                    return Value::real(sum);
                                  });
  }
  if (key == "stringlistavg") {
    return fn_string_list_numeric(
        args, "stringListAvg", [](const std::vector<double>& v) {
          if (v.empty()) return Value::real(0);
          double sum = 0;
          for (double x : v) sum += x;
          return Value::real(sum / static_cast<double>(v.size()));
        });
  }
  if (key == "stringlistmin") {
    return fn_string_list_numeric(
        args, "stringListMin", [](const std::vector<double>& v) {
          if (v.empty()) return Value::undefined();
          return Value::real(*std::min_element(v.begin(), v.end()));
        });
  }
  if (key == "stringlistmax") {
    return fn_string_list_numeric(
        args, "stringListMax", [](const std::vector<double>& v) {
          if (v.empty()) return Value::undefined();
          return Value::real(*std::max_element(v.begin(), v.end()));
        });
  }
  if (key == "time") {
    return Value::integer(ctx.now.as_usec() / 1000000);
  }
  if (key == "random") {
    if (ctx.rng == nullptr) return Value::error("random() has no rng source");
    std::int64_t bound = 2;  // random() in [0,1]... default bound
    if (!args.empty()) {
      if (!args[0].is_int() || args[0].as_int() <= 0) {
        return Value::error("random(n) requires positive int");
      }
      bound = args[0].as_int();
    }
    return Value::integer(ctx.rng->uniform_int(0, bound - 1));
  }
  return Value::error("unknown function '" + name + "'");
}

}  // namespace esg::classad
