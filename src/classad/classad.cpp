#include "classad/classad.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace esg::classad {

ClassAd::ClassAd(const ClassAd& other) { *this = other; }

ClassAd& ClassAd::operator=(const ClassAd& other) {
  if (this == &other) return *this;
  attrs_.clear();
  attrs_.reserve(other.attrs_.size());
  for (const Attr& a : other.attrs_) {
    attrs_.push_back(Attr{a.name, a.key, a.expr->clone()});
  }
  return *this;
}

const ClassAd::Attr* ClassAd::find(const std::string& name) const {
  const std::string key = to_lower(name);
  for (const Attr& a : attrs_) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

void ClassAd::insert(const std::string& name, ExprPtr expr) {
  const std::string key = to_lower(name);
  for (Attr& a : attrs_) {
    if (a.key == key) {
      a.expr = std::move(expr);
      a.name = name;
      return;
    }
  }
  attrs_.push_back(Attr{name, key, std::move(expr)});
}

Result<void> ClassAd::insert_expr(const std::string& name,
                                  const std::string& expr_text) {
  Result<ExprPtr> parsed = parse_expr(expr_text);
  if (!parsed.ok()) return std::move(parsed).error();
  insert(name, std::move(parsed).value());
  return Ok();
}

void ClassAd::set(const std::string& name, bool v) {
  insert(name, std::make_unique<Literal>(Value::boolean(v)));
}
void ClassAd::set(const std::string& name, std::int64_t v) {
  insert(name, std::make_unique<Literal>(Value::integer(v)));
}
void ClassAd::set(const std::string& name, double v) {
  insert(name, std::make_unique<Literal>(Value::real(v)));
}
void ClassAd::set(const std::string& name, const std::string& v) {
  insert(name, std::make_unique<Literal>(Value::string(v)));
}

bool ClassAd::contains(const std::string& name) const {
  return find(name) != nullptr;
}

bool ClassAd::erase(const std::string& name) {
  const std::string key = to_lower(name);
  for (auto it = attrs_.begin(); it != attrs_.end(); ++it) {
    if (it->key == key) {
      attrs_.erase(it);
      return true;
    }
  }
  return false;
}

const ExprTree* ClassAd::lookup(const std::string& name) const {
  const Attr* a = find(name);
  return a ? a->expr.get() : nullptr;
}

Value ClassAd::eval_attr(const std::string& name) const {
  EvalContext ctx;
  ctx.my = this;
  return eval_attr_in(name, ctx);
}

Value ClassAd::eval_attr_in(const std::string& name, EvalContext& ctx) const {
  const Attr* a = find(name);
  if (a == nullptr) return Value::undefined();
  return a->expr->eval(ctx);
}

std::int64_t ClassAd::eval_int(const std::string& name,
                               std::int64_t fallback) const {
  const Value v = eval_attr(name);
  if (v.is_int()) return v.as_int();
  if (v.is_real()) return static_cast<std::int64_t>(v.as_real());
  return fallback;
}

double ClassAd::eval_real(const std::string& name, double fallback) const {
  const Value v = eval_attr(name);
  return v.is_number() ? v.number() : fallback;
}

bool ClassAd::eval_bool(const std::string& name, bool fallback) const {
  const Value v = eval_attr(name);
  return v.is_bool() ? v.as_bool() : fallback;
}

std::string ClassAd::eval_string(const std::string& name,
                                 std::string fallback) const {
  const Value v = eval_attr(name);
  return v.is_string() ? v.as_string() : fallback;
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const Attr& a : attrs_) out.push_back(a.name);
  return out;
}

void ClassAd::update(const ClassAd& other) {
  for (const Attr& a : other.attrs_) {
    insert(a.name, a.expr->clone());
  }
}

std::string ClassAd::str() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i) os << "; ";
    os << attrs_[i].name << " = ";
    attrs_[i].expr->unparse(os);
  }
  os << "]";
  return os.str();
}

std::string ClassAd::str_multiline() const {
  std::ostringstream os;
  for (const Attr& a : attrs_) {
    os << a.name << " = ";
    a.expr->unparse(os);
    os << "\n";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ClassAd& ad) {
  return os << ad.str();
}

}  // namespace esg::classad
