// The ClassAd: an ordered, case-insensitive attribute map.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "classad/expr.hpp"
#include "classad/value.hpp"
#include "core/result.hpp"

namespace esg::classad {

class ClassAd {
 public:
  ClassAd() = default;
  ClassAd(const ClassAd& other);
  ClassAd& operator=(const ClassAd& other);
  ClassAd(ClassAd&&) = default;
  ClassAd& operator=(ClassAd&&) = default;

  /// Insert or replace an attribute with a parsed expression tree.
  void insert(const std::string& name, ExprPtr expr);

  /// Parse `expr_text` as a ClassAd expression and insert it.
  Result<void> insert_expr(const std::string& name,
                           const std::string& expr_text);

  // Typed conveniences (stored as literals).
  void set(const std::string& name, bool v);
  void set(const std::string& name, std::int64_t v);
  void set(const std::string& name, int v) { set(name, std::int64_t{v}); }
  void set(const std::string& name, double v);
  void set(const std::string& name, const std::string& v);
  void set(const std::string& name, const char* v) {
    set(name, std::string(v));
  }

  [[nodiscard]] bool contains(const std::string& name) const;
  bool erase(const std::string& name);
  [[nodiscard]] std::size_t size() const { return attrs_.size(); }

  /// The raw expression, or nullptr.
  [[nodiscard]] const ExprTree* lookup(const std::string& name) const;

  /// Evaluate an attribute with this ad as MY and no TARGET.
  [[nodiscard]] Value eval_attr(const std::string& name) const;

  /// Evaluate with an explicit context (used during matching). The context
  /// `my` need not be this ad (nested-ad selection overrides it).
  [[nodiscard]] Value eval_attr_in(const std::string& name,
                                   EvalContext& ctx) const;

  // Typed evaluation helpers: value if the attribute evaluates to the
  // requested type, `fallback` otherwise (including undefined/error).
  [[nodiscard]] std::int64_t eval_int(const std::string& name,
                                      std::int64_t fallback = 0) const;
  [[nodiscard]] double eval_real(const std::string& name,
                                 double fallback = 0) const;
  [[nodiscard]] bool eval_bool(const std::string& name,
                               bool fallback = false) const;
  [[nodiscard]] std::string eval_string(const std::string& name,
                                        std::string fallback = {}) const;

  /// Attribute names in insertion order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Visit every attribute in insertion order as (name, expression).
  /// Cheaper than names()+lookup() for whole-ad passes (the ad index).
  template <typename Fn>
  void for_each_attr(Fn&& fn) const {
    for (const Attr& attr : attrs_) fn(attr.name, *attr.expr);
  }

  /// Copy all attributes of `other` into this ad (replacing collisions).
  void update(const ClassAd& other);

  /// Single-line rendering: [a = 1; b = "x"].
  [[nodiscard]] std::string str() const;

  /// Multi-line rendering: one `name = expr` per line (submit-file style).
  [[nodiscard]] std::string str_multiline() const;

 private:
  struct Attr {
    std::string name;      // original capitalization
    std::string key;       // lowercase lookup key
    ExprPtr expr;
  };
  [[nodiscard]] const Attr* find(const std::string& name) const;
  std::vector<Attr> attrs_;  // small-N: linear scan beats a map in practice
};

/// Parse a full ad in either `[a = 1; b = 2]` or line-per-attribute form.
Result<ClassAd> parse_classad(const std::string& text);

/// Parse a single expression.
Result<ExprPtr> parse_expr(const std::string& text);

std::ostream& operator<<(std::ostream& os, const ClassAd& ad);

}  // namespace esg::classad
