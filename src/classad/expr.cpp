#include "classad/expr.hpp"

#include <cmath>
#include <sstream>

#include "classad/classad.hpp"
#include "common/strings.hpp"

namespace esg::classad {

std::string ExprTree::str() const {
  std::ostringstream os;
  unparse(os);
  return os.str();
}

void Literal::unparse(std::ostream& os) const { os << value_.str(); }

// ---- AttrRef ----

Value AttrRef::eval(EvalContext& ctx) const {
  if (ctx.depth >= EvalContext::kMaxDepth) {
    return Value::error("attribute recursion limit reached at " + name_);
  }
  ++ctx.depth;
  Value out = Value::undefined();
  switch (scope_) {
    case Scope::kMy:
      out = ctx.my ? ctx.my->eval_attr_in(name_, ctx) : Value::undefined();
      break;
    case Scope::kTarget:
      out = ctx.target ? ctx.target->eval_attr_in(name_, ctx)
                       : Value::undefined();
      break;
    case Scope::kAuto: {
      // Unqualified: own ad first, then the match candidate.
      if (ctx.my && ctx.my->contains(name_)) {
        out = ctx.my->eval_attr_in(name_, ctx);
      } else if (ctx.target && ctx.target->contains(name_)) {
        // Attribute scopes flip: inside the target ad, its own attributes
        // are "my".
        EvalContext flipped = ctx;
        flipped.my = ctx.target;
        flipped.target = ctx.my;
        out = ctx.target->eval_attr_in(name_, flipped);
      }
      break;
    }
  }
  --ctx.depth;
  return out;
}

void AttrRef::unparse(std::ostream& os) const {
  switch (scope_) {
    case Scope::kMy: os << "MY."; break;
    case Scope::kTarget: os << "TARGET."; break;
    case Scope::kAuto: break;
  }
  os << name_;
}

// ---- UnaryOp ----

Value UnaryOp::eval(EvalContext& ctx) const {
  const Value v = operand_->eval(ctx);
  if (v.is_error()) return v;
  if (v.is_undefined()) return v;
  switch (op_) {
    case UnaryOpKind::kNegate:
      if (v.is_int()) return Value::integer(-v.as_int());
      if (v.is_real()) return Value::real(-v.as_real());
      return Value::error("operand of unary '-' is not numeric");
    case UnaryOpKind::kNot:
      if (v.is_bool()) return Value::boolean(!v.as_bool());
      return Value::error("operand of '!' is not boolean");
  }
  return Value::error("bad unary operator");
}

void UnaryOp::unparse(std::ostream& os) const {
  os << (op_ == UnaryOpKind::kNegate ? "-" : "!");
  os << "(";
  operand_->unparse(os);
  os << ")";
}

// ---- BinaryOp ----

namespace {

/// Strict propagation for arithmetic and ordering: error dominates
/// undefined dominates values.
const Value* strict_short_circuit(const Value& a, const Value& b,
                                  Value& storage) {
  if (a.is_error()) {
    storage = a;
    return &storage;
  }
  if (b.is_error()) {
    storage = b;
    return &storage;
  }
  if (a.is_undefined() || b.is_undefined()) {
    storage = Value::undefined();
    return &storage;
  }
  return nullptr;
}

Value arith(BinaryOpKind op, const Value& a, const Value& b) {
  if (!a.is_number() || !b.is_number()) {
    if (op == BinaryOpKind::kAdd && a.is_string() && b.is_string()) {
      return Value::string(a.as_string() + b.as_string());
    }
    return Value::error("arithmetic on non-numeric value");
  }
  const bool as_int = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOpKind::kAdd:
      return as_int ? Value::integer(a.as_int() + b.as_int())
                    : Value::real(a.number() + b.number());
    case BinaryOpKind::kSub:
      return as_int ? Value::integer(a.as_int() - b.as_int())
                    : Value::real(a.number() - b.number());
    case BinaryOpKind::kMul:
      return as_int ? Value::integer(a.as_int() * b.as_int())
                    : Value::real(a.number() * b.number());
    case BinaryOpKind::kDiv:
      if (as_int) {
        if (b.as_int() == 0) return Value::error("division by zero");
        return Value::integer(a.as_int() / b.as_int());
      }
      if (b.number() == 0.0) return Value::error("division by zero");
      return Value::real(a.number() / b.number());
    case BinaryOpKind::kMod:
      if (!as_int) return Value::error("'%' requires integers");
      if (b.as_int() == 0) return Value::error("modulo by zero");
      return Value::integer(a.as_int() % b.as_int());
    default:
      return Value::error("bad arithmetic operator");
  }
}

Value compare(BinaryOpKind op, const Value& a, const Value& b) {
  // Numbers compare with promotion; strings compare case-insensitively
  // (classic ClassAd semantics); booleans support ==/!= only.
  int cmp;  // -1, 0, 1
  if (a.is_number() && b.is_number()) {
    const double x = a.number();
    const double y = b.number();
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.is_string() && b.is_string()) {
    const std::string x = to_lower(a.as_string());
    const std::string y = to_lower(b.as_string());
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.is_bool() && b.is_bool() &&
             (op == BinaryOpKind::kEq || op == BinaryOpKind::kNe)) {
    cmp = a.as_bool() == b.as_bool() ? 0 : 1;
  } else {
    return Value::error("comparison between incompatible types");
  }
  switch (op) {
    case BinaryOpKind::kLt: return Value::boolean(cmp < 0);
    case BinaryOpKind::kLe: return Value::boolean(cmp <= 0);
    case BinaryOpKind::kGt: return Value::boolean(cmp > 0);
    case BinaryOpKind::kGe: return Value::boolean(cmp >= 0);
    case BinaryOpKind::kEq: return Value::boolean(cmp == 0);
    case BinaryOpKind::kNe: return Value::boolean(cmp != 0);
    default: return Value::error("bad comparison operator");
  }
}

/// Meta-equality (`is`): never undefined or error; compares identity
/// including the non-value states. Strings compare case-SENSITIVELY here.
bool meta_equal(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case Value::Type::kUndefined:
    case Value::Type::kError:
      return true;
    case Value::Type::kBool: return a.as_bool() == b.as_bool();
    case Value::Type::kInt: return a.as_int() == b.as_int();
    case Value::Type::kReal: return a.as_real() == b.as_real();
    case Value::Type::kString: return a.as_string() == b.as_string();
    default: return a.same_as(b);
  }
}

}  // namespace

Value BinaryOp::eval(EvalContext& ctx) const {
  // Boolean connectives: three-valued, short-circuiting on a determining
  // left operand.
  if (op_ == BinaryOpKind::kAnd || op_ == BinaryOpKind::kOr) {
    const Value a = lhs_->eval(ctx);
    const bool is_and = op_ == BinaryOpKind::kAnd;
    if (a.is_bool()) {
      if (is_and && !a.as_bool()) return Value::boolean(false);
      if (!is_and && a.as_bool()) return Value::boolean(true);
    } else if (!a.is_undefined() && !a.is_error()) {
      return Value::error("boolean operator on non-boolean value");
    }
    const Value b = rhs_->eval(ctx);
    // Right operand may determine the result even if left was undefined:
    // undefined && false == false; undefined || true == true.
    if (b.is_bool()) {
      if (is_and && !b.as_bool()) return Value::boolean(false);
      if (!is_and && b.as_bool()) return Value::boolean(true);
    } else if (!b.is_undefined() && !b.is_error()) {
      return Value::error("boolean operator on non-boolean value");
    }
    if (a.is_error()) return a;
    if (b.is_error()) return b;
    if (a.is_undefined() || b.is_undefined()) return Value::undefined();
    // Both are bools and neither determined the result.
    return Value::boolean(is_and ? (a.as_bool() && b.as_bool())
                                 : (a.as_bool() || b.as_bool()));
  }

  const Value a = lhs_->eval(ctx);
  const Value b = rhs_->eval(ctx);

  if (op_ == BinaryOpKind::kMetaEq) return Value::boolean(meta_equal(a, b));
  if (op_ == BinaryOpKind::kMetaNe) return Value::boolean(!meta_equal(a, b));

  Value storage;
  if (const Value* s = strict_short_circuit(a, b, storage)) return *s;

  switch (op_) {
    case BinaryOpKind::kAdd:
    case BinaryOpKind::kSub:
    case BinaryOpKind::kMul:
    case BinaryOpKind::kDiv:
    case BinaryOpKind::kMod:
      return arith(op_, a, b);
    default:
      return compare(op_, a, b);
  }
}

void BinaryOp::unparse(std::ostream& os) const {
  const char* sym = "?";
  switch (op_) {
    case BinaryOpKind::kAdd: sym = "+"; break;
    case BinaryOpKind::kSub: sym = "-"; break;
    case BinaryOpKind::kMul: sym = "*"; break;
    case BinaryOpKind::kDiv: sym = "/"; break;
    case BinaryOpKind::kMod: sym = "%"; break;
    case BinaryOpKind::kLt: sym = "<"; break;
    case BinaryOpKind::kLe: sym = "<="; break;
    case BinaryOpKind::kGt: sym = ">"; break;
    case BinaryOpKind::kGe: sym = ">="; break;
    case BinaryOpKind::kEq: sym = "=="; break;
    case BinaryOpKind::kNe: sym = "!="; break;
    case BinaryOpKind::kMetaEq: sym = "=?="; break;
    case BinaryOpKind::kMetaNe: sym = "=!="; break;
    case BinaryOpKind::kAnd: sym = "&&"; break;
    case BinaryOpKind::kOr: sym = "||"; break;
  }
  os << "(";
  lhs_->unparse(os);
  os << " " << sym << " ";
  rhs_->unparse(os);
  os << ")";
}

// ---- Conditional ----

Value Conditional::eval(EvalContext& ctx) const {
  const Value c = cond_->eval(ctx);
  if (c.is_error()) return c;
  if (c.is_undefined()) return Value::undefined();
  if (!c.is_bool()) return Value::error("condition is not boolean");
  return c.as_bool() ? then_->eval(ctx) : otherwise_->eval(ctx);
}

void Conditional::unparse(std::ostream& os) const {
  os << "(";
  cond_->unparse(os);
  os << " ? ";
  then_->unparse(os);
  os << " : ";
  otherwise_->unparse(os);
  os << ")";
}

// ---- FnCall ----

Value FnCall::eval(EvalContext& ctx) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->eval(ctx));
  return call_builtin(name_, args, ctx);
}

void FnCall::unparse(std::ostream& os) const {
  os << name_ << "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) os << ", ";
    args_[i]->unparse(os);
  }
  os << ")";
}

ExprPtr FnCall::clone() const {
  std::vector<ExprPtr> args;
  args.reserve(args_.size());
  for (const ExprPtr& a : args_) args.push_back(a->clone());
  return std::make_unique<FnCall>(name_, std::move(args));
}

// ---- ListExpr ----

Value ListExpr::eval(EvalContext& ctx) const {
  std::vector<Value> items;
  items.reserve(items_.size());
  for (const ExprPtr& e : items_) items.push_back(e->eval(ctx));
  return Value::list(std::move(items));
}

void ListExpr::unparse(std::ostream& os) const {
  os << "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i) os << ", ";
    items_[i]->unparse(os);
  }
  os << "}";
}

ExprPtr ListExpr::clone() const {
  std::vector<ExprPtr> items;
  items.reserve(items_.size());
  for (const ExprPtr& e : items_) items.push_back(e->clone());
  return std::make_unique<ListExpr>(std::move(items));
}

// ---- Subscript ----

Value Subscript::eval(EvalContext& ctx) const {
  const Value base = base_->eval(ctx);
  const Value index = index_->eval(ctx);
  if (base.is_error()) return base;
  if (index.is_error()) return index;
  if (base.is_undefined() || index.is_undefined()) return Value::undefined();
  if (base.is_list() && index.is_int()) {
    const auto& items = base.as_list();
    const std::int64_t i = index.as_int();
    if (i < 0 || static_cast<std::size_t>(i) >= items.size()) {
      return Value::error("list index out of range");
    }
    return items[static_cast<std::size_t>(i)];
  }
  if (base.is_ad() && index.is_string()) {
    EvalContext sub = ctx;
    sub.my = base.as_ad().get();
    AttrRef ref(AttrRef::Scope::kMy, index.as_string());
    return ref.eval(sub);
  }
  return Value::error("subscript on non-list value");
}

void Subscript::unparse(std::ostream& os) const {
  base_->unparse(os);
  os << "[";
  index_->unparse(os);
  os << "]";
}

// ---- AttrSelect ----

Value AttrSelect::eval(EvalContext& ctx) const {
  const Value base = base_->eval(ctx);
  if (base.is_error()) return base;
  if (base.is_undefined()) return Value::undefined();
  if (!base.is_ad()) return Value::error("'.' selection on non-ad value");
  EvalContext sub = ctx;
  sub.my = base.as_ad().get();
  AttrRef ref(AttrRef::Scope::kMy, attr_);
  return ref.eval(sub);
}

void AttrSelect::unparse(std::ostream& os) const {
  base_->unparse(os);
  os << "." << attr_;
}

}  // namespace esg::classad
