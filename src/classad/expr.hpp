// ClassAd expression trees and evaluation.
//
// Evaluation follows the classic ClassAd semantics: strict operators
// propagate Error over Undefined over values; the boolean connectives are
// three-valued (false && undefined == false, true || error == true when
// determined by the left operand); `=?=`/`is` and `=!=`/`isnt` are the
// meta-comparisons that never yield undefined.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "classad/value.hpp"
#include "common/rng.hpp"
#include "common/simtime.hpp"

namespace esg::classad {

class ClassAd;

/// Everything evaluation may consult. `my` is the ad an expression lives
/// in; `target` the ad it is being matched against (may be null).
struct EvalContext {
  const ClassAd* my = nullptr;
  const ClassAd* target = nullptr;
  SimTime now{};          ///< value of the time() builtin
  Rng* rng = nullptr;     ///< source for random(); null -> error value
  int depth = 0;          ///< recursion guard against cyclic attributes
  static constexpr int kMaxDepth = 64;
};

class ExprTree {
 public:
  virtual ~ExprTree() = default;
  [[nodiscard]] virtual Value eval(EvalContext& ctx) const = 0;
  virtual void unparse(std::ostream& os) const = 0;
  [[nodiscard]] virtual std::unique_ptr<ExprTree> clone() const = 0;

  [[nodiscard]] std::string str() const;
};

using ExprPtr = std::unique_ptr<ExprTree>;

// ---- Node types ----

class Literal final : public ExprTree {
 public:
  explicit Literal(Value v) : value_(std::move(v)) {}
  [[nodiscard]] Value eval(EvalContext&) const override { return value_; }
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<Literal>(value_);
  }
  [[nodiscard]] const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Attribute reference, optionally scoped: `X`, `MY.X`, `TARGET.X`.
class AttrRef final : public ExprTree {
 public:
  enum class Scope { kAuto, kMy, kTarget };
  AttrRef(Scope scope, std::string name)
      : scope_(scope), name_(std::move(name)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<AttrRef>(scope_, name_);
  }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Scope scope() const { return scope_; }

 private:
  Scope scope_;
  std::string name_;
};

enum class UnaryOpKind { kNegate, kNot };

class UnaryOp final : public ExprTree {
 public:
  UnaryOp(UnaryOpKind op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<UnaryOp>(op_, operand_->clone());
  }
  [[nodiscard]] UnaryOpKind op() const { return op_; }
  [[nodiscard]] const ExprTree& operand() const { return *operand_; }

 private:
  UnaryOpKind op_;
  ExprPtr operand_;
};

enum class BinaryOpKind {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kMetaEq, kMetaNe,
  kAnd, kOr,
};

class BinaryOp final : public ExprTree {
 public:
  BinaryOp(BinaryOpKind op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<BinaryOp>(op_, lhs_->clone(), rhs_->clone());
  }
  [[nodiscard]] BinaryOpKind op() const { return op_; }
  [[nodiscard]] const ExprTree& lhs() const { return *lhs_; }
  [[nodiscard]] const ExprTree& rhs() const { return *rhs_; }

 private:
  BinaryOpKind op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// cond ? then : otherwise
class Conditional final : public ExprTree {
 public:
  Conditional(ExprPtr cond, ExprPtr then, ExprPtr otherwise)
      : cond_(std::move(cond)),
        then_(std::move(then)),
        otherwise_(std::move(otherwise)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<Conditional>(cond_->clone(), then_->clone(),
                                         otherwise_->clone());
  }

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr otherwise_;
};

class FnCall final : public ExprTree {
 public:
  FnCall(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class ListExpr final : public ExprTree {
 public:
  explicit ListExpr(std::vector<ExprPtr> items) : items_(std::move(items)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override;

 private:
  std::vector<ExprPtr> items_;
};

/// list[index] or ad["attr"]-style selection via expr.attr chains is
/// handled by AttrSelect; numeric subscripts by Subscript.
class Subscript final : public ExprTree {
 public:
  Subscript(ExprPtr base, ExprPtr index)
      : base_(std::move(base)), index_(std::move(index)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<Subscript>(base_->clone(), index_->clone());
  }

 private:
  ExprPtr base_;
  ExprPtr index_;
};

/// expr.attr — selection from a nested ad value.
class AttrSelect final : public ExprTree {
 public:
  AttrSelect(ExprPtr base, std::string attr)
      : base_(std::move(base)), attr_(std::move(attr)) {}
  [[nodiscard]] Value eval(EvalContext& ctx) const override;
  void unparse(std::ostream& os) const override;
  [[nodiscard]] ExprPtr clone() const override {
    return std::make_unique<AttrSelect>(base_->clone(), attr_);
  }

 private:
  ExprPtr base_;
  std::string attr_;
};

/// Builtin function dispatch, shared with FnCall::eval (builtins.cpp).
Value call_builtin(const std::string& name, const std::vector<Value>& args,
                   EvalContext& ctx);
bool is_builtin(const std::string& name);

}  // namespace esg::classad
