#include "classad/index.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "classad/expr.hpp"

namespace esg::classad {
namespace {

std::string to_lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// The reference, if this expression names a TARGET attribute: an explicit
/// `TARGET.` scope, or an unqualified name the job ad does not define
/// (ClassAd auto-scope resolves MY-first, then falls through to TARGET).
const AttrRef* target_ref(const ExprTree& expr, const ClassAd& job_ad) {
  const auto* ref = dynamic_cast<const AttrRef*>(&expr);
  if (ref == nullptr) return nullptr;
  if (ref->scope() == AttrRef::Scope::kTarget) return ref;
  if (ref->scope() == AttrRef::Scope::kAuto && !job_ad.contains(ref->name())) {
    return ref;
  }
  return nullptr;
}

/// Evaluate the non-reference side against the job ad alone. Only a
/// concrete constant is usable: undefined means the side itself needs the
/// TARGET, error means the conjunct can never hold anyway — in both cases
/// extracting nothing is the sound move.
std::optional<Value> constant_side(const ExprTree& expr, const ClassAd& job_ad,
                                   SimTime now) {
  EvalContext ctx;
  ctx.my = &job_ad;
  ctx.now = now;
  Value v = expr.eval(ctx);
  switch (v.type()) {
    case Value::Type::kBool:
    case Value::Type::kInt:
    case Value::Type::kReal:
    case Value::Type::kString:
      return v;
    default:
      return std::nullopt;
  }
}

/// `const OP ref` is `ref mirror(OP) const`.
AttrPredicate::Op mirror(AttrPredicate::Op op) {
  switch (op) {
    case AttrPredicate::Op::kLt: return AttrPredicate::Op::kGt;
    case AttrPredicate::Op::kLe: return AttrPredicate::Op::kGe;
    case AttrPredicate::Op::kGt: return AttrPredicate::Op::kLt;
    case AttrPredicate::Op::kGe: return AttrPredicate::Op::kLe;
    case AttrPredicate::Op::kEq:
    case AttrPredicate::Op::kIs: return op;
  }
  return op;
}

std::optional<AttrPredicate::Op> predicate_op(BinaryOpKind kind) {
  switch (kind) {
    case BinaryOpKind::kEq: return AttrPredicate::Op::kEq;
    case BinaryOpKind::kMetaEq: return AttrPredicate::Op::kIs;
    case BinaryOpKind::kLt: return AttrPredicate::Op::kLt;
    case BinaryOpKind::kLe: return AttrPredicate::Op::kLe;
    case BinaryOpKind::kGt: return AttrPredicate::Op::kGt;
    case BinaryOpKind::kGe: return AttrPredicate::Op::kGe;
    // != and =!= are true on undefined/type-mismatch, so a machine lacking
    // the attribute still satisfies them — no exclusion power, skip.
    default: return std::nullopt;
  }
}

void collect(const ExprTree& expr, const ClassAd& job_ad, SimTime now,
             std::vector<AttrPredicate>& out) {
  const auto* bin = dynamic_cast<const BinaryOp*>(&expr);
  if (bin == nullptr) return;
  if (bin->op() == BinaryOpKind::kAnd) {
    // Both conjuncts must independently hold for the AND to be true
    // (three-valued logic: true && true is the only true case).
    collect(bin->lhs(), job_ad, now, out);
    collect(bin->rhs(), job_ad, now, out);
    return;
  }
  const std::optional<AttrPredicate::Op> op = predicate_op(bin->op());
  if (!op.has_value()) return;
  if (const AttrRef* ref = target_ref(bin->lhs(), job_ad)) {
    if (std::optional<Value> v = constant_side(bin->rhs(), job_ad, now)) {
      out.push_back({to_lower(ref->name()), *op, std::move(*v)});
    }
    return;
  }
  if (const AttrRef* ref = target_ref(bin->rhs(), job_ad)) {
    if (std::optional<Value> v = constant_side(bin->lhs(), job_ad, now)) {
      out.push_back({to_lower(ref->name()), mirror(*op), std::move(*v)});
    }
  }
}

const char* op_symbol(AttrPredicate::Op op) {
  switch (op) {
    case AttrPredicate::Op::kEq: return "==";
    case AttrPredicate::Op::kIs: return "=?=";
    case AttrPredicate::Op::kLt: return "<";
    case AttrPredicate::Op::kLe: return "<=";
    case AttrPredicate::Op::kGt: return ">";
    case AttrPredicate::Op::kGe: return ">=";
  }
  return "?";
}

}  // namespace

std::string AttrPredicate::str() const {
  return attr + " " + op_symbol(op) + " " + value.str();
}

RequirementsProfile profile_requirements(const ClassAd& job_ad, SimTime now) {
  RequirementsProfile profile;
  const ExprTree* requirements = job_ad.lookup("Requirements");
  if (requirements == nullptr) return profile;
  collect(*requirements, job_ad, now, profile.predicates);
  return profile;
}

std::optional<AdIndex::Key> AdIndex::canonical(const Value& v) {
  Key key;
  switch (v.type()) {
    case Value::Type::kBool:
      key.tag = Key::Tag::kBool;
      key.number = v.as_bool() ? 1 : 0;
      return key;
    case Value::Type::kInt:
    case Value::Type::kReal:
      key.tag = Key::Tag::kNumber;
      key.number = v.number();
      return key;
    case Value::Type::kString:
      key.tag = Key::Tag::kString;
      key.text = to_lower(v.as_string());
      return key;
    default:
      return std::nullopt;
  }
}

bool AdIndex::key_satisfies(const Key& key, const AttrPredicate& p,
                            const Key& want) {
  switch (p.op) {
    case AttrPredicate::Op::kEq:
    case AttrPredicate::Op::kIs:
      // `=?=` is type-strict and case-sensitive at full evaluation;
      // treating it as `==` here only widens the candidate set.
      return key == want;
    default:
      break;
  }
  // Ordering comparisons: ClassAd yields error on mixed types and on
  // booleans — never true, so such buckets are excluded.
  if (key.tag != want.tag || key.tag == Key::Tag::kBool) return false;
  const bool by_number = key.tag == Key::Tag::kNumber;
  const auto cmp = [&](auto&& less) {
    return by_number ? less(key.number, want.number) : less(key.text, want.text);
  };
  switch (p.op) {
    case AttrPredicate::Op::kLt:
      return cmp([](const auto& a, const auto& b) { return a < b; });
    case AttrPredicate::Op::kLe:
      return cmp([](const auto& a, const auto& b) { return a <= b; });
    case AttrPredicate::Op::kGt:
      return cmp([](const auto& a, const auto& b) { return a > b; });
    case AttrPredicate::Op::kGe:
      return cmp([](const auto& a, const auto& b) { return a >= b; });
    default:
      return false;
  }
}

void AdIndex::insert(std::uint32_t slot, const ClassAd& ad) {
  if (slot >= slot_postings_.size()) {
    slot_postings_.resize(slot + 1);
    slot_live_.resize(slot + 1, 0);
  }
  std::vector<Posting>& postings = slot_postings_[slot];
  ad.for_each_attr([&](const std::string& name, const ExprTree& expr) {
    Posting post;
    post.attr = to_lower(name);
    const auto* literal = dynamic_cast<const Literal*>(&expr);
    std::optional<Key> key =
        literal != nullptr ? canonical(literal->value()) : std::nullopt;
    AttrIndex& ai = attrs_[post.attr];
    if (key.has_value()) {
      post.literal = true;
      post.key = *key;
      std::vector<std::uint32_t>& bucket = ai.buckets[*key];
      bucket.push_back(slot);
      post.pos = static_cast<std::uint32_t>(bucket.size() - 1);
    } else {
      ai.unindexed.push_back(slot);
      post.pos = static_cast<std::uint32_t>(ai.unindexed.size() - 1);
    }
    postings.push_back(std::move(post));
  });
  slot_live_[slot] = 1;
  ++live_slots_;
}

void AdIndex::erase(std::uint32_t slot) {
  if (slot >= slot_postings_.size() || slot_live_[slot] == 0) return;
  for (const Posting& post : slot_postings_[slot]) {
    auto it = attrs_.find(post.attr);
    if (it == attrs_.end()) continue;
    AttrIndex& ai = it->second;
    // Swap-and-pop at the recorded position; the slot that moved into the
    // hole (same attr, same bucket by construction) gets its posting's
    // position patched so the invariant survives.
    const auto swap_out = [&](std::vector<std::uint32_t>& vec) {
      const std::uint32_t moved = vec.back();
      vec[post.pos] = moved;
      vec.pop_back();
      if (moved == slot) return;
      for (Posting& theirs : slot_postings_[moved]) {
        if (theirs.attr == post.attr) {
          theirs.pos = post.pos;
          break;
        }
      }
    };
    if (post.literal) {
      auto bucket = ai.buckets.find(post.key);
      if (bucket != ai.buckets.end()) {
        swap_out(bucket->second);
        if (bucket->second.empty()) ai.buckets.erase(bucket);
      }
    } else {
      swap_out(ai.unindexed);
    }
    if (ai.buckets.empty() && ai.unindexed.empty()) attrs_.erase(it);
  }
  slot_postings_[slot].clear();
  slot_live_[slot] = 0;
  --live_slots_;
}

std::size_t AdIndex::estimate(const AttrIndex& ai, const AttrPredicate& p,
                              const Key& want) const {
  switch (p.op) {
    case AttrPredicate::Op::kEq:
    case AttrPredicate::Op::kIs: {
      auto bucket = ai.buckets.find(want);
      return bucket != ai.buckets.end() ? bucket->second.size() : 0;
    }
    default:
      break;
  }
  std::size_t total = 0;
  for (const auto& [key, bucket] : ai.buckets) {
    if (key_satisfies(key, p, want)) total += bucket.size();
  }
  return total;
}

bool AdIndex::candidates(const RequirementsProfile& profile,
                         std::vector<std::uint32_t>& out) const {
  out.clear();
  const AttrIndex* best = nullptr;
  const AttrPredicate* best_pred = nullptr;
  Key best_key;
  std::size_t best_cost = std::numeric_limits<std::size_t>::max();
  struct Filter {
    const AttrPredicate* pred;
    Key want;
  };
  std::vector<Filter> filters;
  for (const AttrPredicate& p : profile.predicates) {
    std::optional<Key> want = canonical(p.value);
    if (!want.has_value()) continue;
    auto it = attrs_.find(p.attr);
    if (it == attrs_.end()) {
      // No live ad carries this attribute at all, not even as an
      // un-indexable expression: the conjunct is undefined everywhere,
      // so nothing can match.
      return true;
    }
    filters.push_back({&p, *want});
    const std::size_t cost =
        estimate(it->second, p, *want) + it->second.unindexed.size();
    if (cost < best_cost) {
      best_cost = cost;
      best = &it->second;
      best_pred = &p;
      best_key = *want;
    }
  }
  if (filters.empty()) return false;
  if (best_pred->op == AttrPredicate::Op::kEq ||
      best_pred->op == AttrPredicate::Op::kIs) {
    auto bucket = best->buckets.find(best_key);
    if (bucket != best->buckets.end()) {
      out.insert(out.end(), bucket->second.begin(), bucket->second.end());
    }
  } else {
    for (const auto& [key, bucket] : best->buckets) {
      if (key_satisfies(key, *best_pred, best_key)) {
        out.insert(out.end(), bucket.begin(), bucket.end());
      }
    }
  }
  out.insert(out.end(), best->unindexed.begin(), best->unindexed.end());
  // Intersect with the remaining predicates via each slot's postings: a
  // slot whose literal key fails a predicate would fail that conjunct at
  // full evaluation; one with no posting for the attribute evaluates it to
  // undefined (never true for these operators). Non-literal postings stay
  // candidates — only the full match can decide them.
  std::erase_if(out, [&](std::uint32_t slot) {
    for (const Filter& f : filters) {
      if (f.pred == best_pred) continue;
      const Posting* found = nullptr;
      for (const Posting& post : slot_postings_[slot]) {
        if (post.attr == f.pred->attr) {
          found = &post;
          break;
        }
      }
      if (found == nullptr) return true;
      if (found->literal && !key_satisfies(found->key, *f.pred, f.want)) {
        return true;
      }
    }
    return false;
  });
  std::sort(out.begin(), out.end());
  return true;
}

}  // namespace esg::classad
