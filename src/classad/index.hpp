// Attribute-indexed candidate selection for matchmaking.
//
// The matchmaker's inner loop is O(jobs × machines) full two-way
// `symmetric_match` evaluations per negotiation cycle. Almost every real
// job Requirements expression, though, is a conjunction whose leaves pin
// a TARGET attribute to a constant — `TARGET.Arch == "INTEL"`,
// `TARGET.Memory >= 512`, `TARGET.HasJava =?= true`. Any machine whose ad
// carries a *literal* value failing such a conjunct can never satisfy the
// whole expression (ClassAd three-valued logic: an AND is true only if
// every conjunct is true, and a comparison against an absent attribute is
// undefined, never true). So we can bucket machine ads by their literal
// attribute values and hand the matchmaker a small candidate set to run
// the full — authoritative — evaluation on.
//
// Soundness contract (the index is a prefilter, never a judge):
//  - candidates() must return a SUPERSET of the machines whose full
//    evaluation could succeed. Machines whose indexed attribute is a
//    non-literal expression are kept in per-attribute "unindexed" lists
//    and always included; machines lacking the attribute entirely are
//    excluded (undefined comparison can't be true; `=?=` against a
//    defined constant is false on undefined).
//  - Only conjuncts that *must* hold are extracted: `&&` descends both
//    sides, `||` and negations extract nothing, `!=`/`=!=` are skipped
//    (true on undefined), and a predicate is used only when its
//    constant side evaluates to a concrete bool/int/real/string against
//    the job ad alone.
//  - Equality buckets canonicalize the way ClassAd `==` compares:
//    numbers by double value, strings case-insensitively. `=?=` is
//    type-strict at full evaluation; bucketing it like `==` only widens
//    the candidate set.
//
// The full `symmetric_match` still runs on every candidate, so match
// *outcomes* are byte-identical to the exhaustive scan as long as the
// caller visits candidates in the same order the scan would have.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "classad/classad.hpp"
#include "classad/value.hpp"
#include "common/flatmap.hpp"
#include "common/simtime.hpp"

namespace esg::classad {

/// One conjunct of a Requirements expression usable as an index prefilter:
/// "the TARGET's `attr` must compare OP against this constant, or the
/// whole expression cannot evaluate to true".
struct AttrPredicate {
  enum class Op { kEq, kIs, kLt, kLe, kGt, kGe };
  std::string attr;  ///< lowercased target attribute name
  Op op = Op::kEq;
  Value value;  ///< concrete constant: bool, int, real, or string

  [[nodiscard]] std::string str() const;
};

/// The indexable skeleton of one job's Requirements.
struct RequirementsProfile {
  std::vector<AttrPredicate> predicates;
  [[nodiscard]] bool indexable() const { return !predicates.empty(); }
};

/// Extract index predicates from `job_ad`'s Requirements. `now` feeds the
/// time() builtin so constant-side evaluation agrees with match time.
/// An empty profile means "nothing extractable: scan exhaustively".
[[nodiscard]] RequirementsProfile profile_requirements(const ClassAd& job_ad,
                                                       SimTime now);

/// Machine-ad index: literal attribute values bucketed for candidate
/// lookup. Entries are addressed by caller-assigned dense slots (the
/// matchmaker reuses freed slots), so lookups return integer slot ids.
class AdIndex {
 public:
  /// Index `ad`'s literal attributes under `slot`. The slot must be empty
  /// (never inserted, or erased since).
  void insert(std::uint32_t slot, const ClassAd& ad);

  /// Drop every posting for `slot`. Safe on never-inserted slots.
  void erase(std::uint32_t slot);

  /// Fill `out` (ascending slot order) with every slot that could satisfy
  /// `profile`: the most selective predicate's buckets, intersected with
  /// every other indexable predicate through the per-slot postings.
  /// Returns false when the profile has no usable predicate — caller must
  /// scan exhaustively. Returns true with an empty `out` when the index
  /// proves no machine can match.
  [[nodiscard]] bool candidates(const RequirementsProfile& profile,
                                std::vector<std::uint32_t>& out) const;

  /// Number of slots currently indexed.
  [[nodiscard]] std::size_t size() const { return live_slots_; }
  /// Distinct attribute names seen across live ads.
  [[nodiscard]] std::size_t attr_count() const { return attrs_.size(); }

 private:
  /// Canonical bucket key, ordered by (tag, number, text) — numbers
  /// collapse int/real the way ClassAd `==` does, strings are lowercased.
  struct Key {
    enum class Tag : std::uint8_t { kBool, kNumber, kString };
    Tag tag = Tag::kBool;
    double number = 0;
    std::string text;

    friend bool operator<(const Key& a, const Key& b) {
      if (a.tag != b.tag) return a.tag < b.tag;
      if (a.number != b.number) return a.number < b.number;
      return a.text < b.text;
    }
    friend bool operator==(const Key& a, const Key& b) {
      return a.tag == b.tag && a.number == b.number && a.text == b.text;
    }
  };

  struct AttrIndex {
    FlatMap<Key, std::vector<std::uint32_t>> buckets;
    std::vector<std::uint32_t> unindexed;  ///< attr present, not a literal
  };

  /// Undo log entry: where slot was filed for one attribute. `pos` is the
  /// slot's position inside its bucket (or unindexed list), kept exact so
  /// erase() is a swap-and-pop instead of an O(bucket) scan — bucket
  /// internal order is free, candidates() sorts its output. At pool scale
  /// this is the difference between ad updates costing O(attrs) and
  /// O(attrs × machines-per-bucket).
  struct Posting {
    std::string attr;  // lowercased
    bool literal = false;
    Key key;  // valid when literal
    std::uint32_t pos = 0;
  };

  static std::optional<Key> canonical(const Value& v);
  static bool key_satisfies(const Key& key, const AttrPredicate& p,
                            const Key& want);
  [[nodiscard]] std::size_t estimate(const AttrIndex& ai,
                                     const AttrPredicate& p,
                                     const Key& want) const;

  FlatMap<std::string, AttrIndex> attrs_;
  std::vector<std::vector<Posting>> slot_postings_;
  std::vector<std::uint8_t> slot_live_;
  std::size_t live_slots_ = 0;
};

}  // namespace esg::classad
