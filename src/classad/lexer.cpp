#include "classad/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "common/strings.hpp"

namespace esg::classad {
namespace {

Error lex_error(std::string message, std::size_t offset) {
  return Error(ErrorKind::kRequestMalformed,
               message + " at offset " + std::to_string(offset));
}

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::string_view tok_kind_name(TokKind kind) {
  switch (kind) {
    case TokKind::kEnd: return "end of input";
    case TokKind::kInt: return "integer";
    case TokKind::kReal: return "real";
    case TokKind::kString: return "string";
    case TokKind::kIdent: return "identifier";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kSemicolon: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kQuestion: return "'?'";
    case TokKind::kDot: return "'.'";
    case TokKind::kAssign: return "'='";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kMetaEq: return "'=?='";
    case TokKind::kMetaNe: return "'=!='";
    case TokKind::kAnd: return "'&&'";
    case TokKind::kOr: return "'||'";
    case TokKind::kNot: return "'!'";
  }
  return "?";
}

Result<std::vector<Token>> lex(std::string_view in) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto push = [&](TokKind kind, std::size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      while (i < n && in[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      const std::size_t start = i;
      i += 2;
      while (i + 1 < n && !(in[i] == '*' && in[i + 1] == '/')) ++i;
      if (i + 1 >= n) return lex_error("unterminated comment", start);
      i += 2;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      const std::size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      if (i < n && in[i] == '.' &&
          // A dot followed by an identifier is attribute selection, not a
          // real literal (e.g. `other.Memory` after an int would be odd,
          // but `3.foo` must not parse as a real).
          (i + 1 >= n || !ident_start(in[i + 1]))) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
      }
      if (i < n && (in[i] == 'e' || in[i] == 'E')) {
        std::size_t j = i + 1;
        if (j < n && (in[j] == '+' || in[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(in[j]))) {
          is_real = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(in[i]))) ++i;
        }
      }
      Token t;
      t.offset = start;
      const std::string text(in.substr(start, i - start));
      if (is_real) {
        t.kind = TokKind::kReal;
        t.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.kind = TokKind::kInt;
        t.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      out.push_back(std::move(t));
      continue;
    }
    // Strings.
    if (c == '"') {
      const std::size_t start = i;
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        const char d = in[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\\') {
          if (i + 1 >= n) return lex_error("dangling escape", i);
          const char e = in[i + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case 'r': text += '\r'; break;
            case '"': text += '"'; break;
            case '\\': text += '\\'; break;
            default: text += e;
          }
          i += 2;
          continue;
        }
        text += d;
        ++i;
      }
      if (!closed) return lex_error("unterminated string", start);
      Token t;
      t.kind = TokKind::kString;
      t.text = std::move(text);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    // Identifiers (dots inside identifiers are handled by the parser via
    // the kDot token so that scope prefixes compose: we lex bare idents).
    if (ident_start(c)) {
      const std::size_t start = i;
      ++i;
      while (i < n && ident_char(in[i]) && in[i] != '.') ++i;
      Token t;
      t.kind = TokKind::kIdent;
      t.text = std::string(in.substr(start, i - start));
      t.offset = start;
      // `is` / `isnt` are operator keywords.
      if (iequals(t.text, "is")) {
        t.kind = TokKind::kMetaEq;
      } else if (iequals(t.text, "isnt")) {
        t.kind = TokKind::kMetaNe;
      }
      out.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    const std::size_t start = i;
    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && in[i + 1] == b;
    };
    if (c == '=' && i + 2 < n && in[i + 1] == '?' && in[i + 2] == '=') {
      push(TokKind::kMetaEq, start);
      i += 3;
    } else if (c == '=' && i + 2 < n && in[i + 1] == '!' && in[i + 2] == '=') {
      push(TokKind::kMetaNe, start);
      i += 3;
    } else if (two('=', '=')) {
      push(TokKind::kEq, start);
      i += 2;
    } else if (two('!', '=')) {
      push(TokKind::kNe, start);
      i += 2;
    } else if (two('<', '=')) {
      push(TokKind::kLe, start);
      i += 2;
    } else if (two('>', '=')) {
      push(TokKind::kGe, start);
      i += 2;
    } else if (two('&', '&')) {
      push(TokKind::kAnd, start);
      i += 2;
    } else if (two('|', '|')) {
      push(TokKind::kOr, start);
      i += 2;
    } else {
      TokKind kind;
      switch (c) {
        case '(': kind = TokKind::kLParen; break;
        case ')': kind = TokKind::kRParen; break;
        case '{': kind = TokKind::kLBrace; break;
        case '}': kind = TokKind::kRBrace; break;
        case '[': kind = TokKind::kLBracket; break;
        case ']': kind = TokKind::kRBracket; break;
        case ',': kind = TokKind::kComma; break;
        case ';': kind = TokKind::kSemicolon; break;
        case ':': kind = TokKind::kColon; break;
        case '?': kind = TokKind::kQuestion; break;
        case '.': kind = TokKind::kDot; break;
        case '=': kind = TokKind::kAssign; break;
        case '+': kind = TokKind::kPlus; break;
        case '-': kind = TokKind::kMinus; break;
        case '*': kind = TokKind::kStar; break;
        case '/': kind = TokKind::kSlash; break;
        case '%': kind = TokKind::kPercent; break;
        case '<': kind = TokKind::kLt; break;
        case '>': kind = TokKind::kGt; break;
        case '!': kind = TokKind::kNot; break;
        default:
          return lex_error(std::string("unexpected character '") + c + "'", i);
      }
      push(kind, start);
      ++i;
    }
  }
  push(TokKind::kEnd, n);
  return out;
}

}  // namespace esg::classad
