// ClassAd lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.hpp"

namespace esg::classad {

enum class TokKind {
  kEnd,
  kInt,        // 42
  kReal,       // 3.5, 1e9
  kString,     // "hello"
  kIdent,      // Memory, MY, TARGET (keywords resolved by parser)
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kColon, kQuestion, kDot,
  kAssign,      // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kLt, kLe, kGt, kGe,
  kEq,          // ==
  kNe,          // !=
  kMetaEq,      // =?= (also keyword `is`)
  kMetaNe,      // =!= (also keyword `isnt`)
  kAnd,         // &&
  kOr,          // ||
  kNot,         // !
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;        // identifier or string contents
  std::int64_t int_value = 0;
  double real_value = 0;
  std::size_t offset = 0;  // position in input, for error messages
};

/// Tokenize a ClassAd expression. Comments (// and /* */) are skipped.
/// Returns kRequestMalformed errors with a character offset on bad input.
Result<std::vector<Token>> lex(std::string_view input);

std::string_view tok_kind_name(TokKind kind);

}  // namespace esg::classad
