#include "classad/match.hpp"

namespace esg::classad {

Value eval_with_target(const ClassAd& my, const ClassAd& target,
                       const std::string& attr, SimTime now) {
  EvalContext ctx;
  ctx.my = &my;
  ctx.target = &target;
  ctx.now = now;
  return my.eval_attr_in(attr, ctx);
}

MatchResult symmetric_match(const ClassAd& left, const ClassAd& right,
                            SimTime now) {
  MatchResult out;
  const Value lv = eval_with_target(left, right, "Requirements", now);
  const Value rv = eval_with_target(right, left, "Requirements", now);
  out.left_accepts = lv.is_bool() && lv.as_bool();
  out.right_accepts = rv.is_bool() && rv.as_bool();
  out.matched = out.left_accepts && out.right_accepts;
  const Value lr = eval_with_target(left, right, "Rank", now);
  const Value rr = eval_with_target(right, left, "Rank", now);
  out.left_rank = lr.is_number() ? lr.number() : 0;
  out.right_rank = rr.is_number() ? rr.number() : 0;
  return out;
}

}  // namespace esg::classad
