// Matchmaking: the two-way evaluation at the heart of the Condor kernel.
//
// Two ads match when each one's Requirements expression evaluates to true
// with itself as MY and the other as TARGET. Rank is a numeric preference
// evaluated the same way; undefined ranks count as zero.
#pragma once

#include "classad/classad.hpp"
#include "common/simtime.hpp"

namespace esg::classad {

struct MatchResult {
  bool matched = false;
  /// Each side's Requirements verdict (undefined/error count as false —
  /// an absent or broken policy must never admit a match).
  bool left_accepts = false;
  bool right_accepts = false;
  double left_rank = 0;   ///< left's Rank of right
  double right_rank = 0;  ///< right's Rank of left
};

/// Evaluate `ad`'s attribute `attr` with a MY/TARGET pair.
Value eval_with_target(const ClassAd& my, const ClassAd& target,
                       const std::string& attr, SimTime now = {});

/// Symmetric match of `left` and `right` per their Requirements, with
/// Ranks evaluated for both sides.
MatchResult symmetric_match(const ClassAd& left, const ClassAd& right,
                            SimTime now = {});

}  // namespace esg::classad
