#include "classad/parser.hpp"

#include <utility>

#include "classad/lexer.hpp"
#include "common/strings.hpp"

namespace esg::classad {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> parse_full_expr() {
    Result<ExprPtr> e = expr();
    if (!e.ok()) return e;
    if (!at(TokKind::kEnd)) {
      return fail("trailing input after expression");
    }
    return e;
  }

  Result<ClassAd> parse_ad_body() {
    // Either a bracketed ad or a bare attribute list.
    if (at(TokKind::kLBracket)) {
      Result<ExprPtr> e = primary();  // reuses the [..] production
      if (!e.ok()) return std::move(e).error();
      if (!at(TokKind::kEnd)) return fail_ad("trailing input after ad");
      EvalContext ctx;
      const Value v = e.value()->eval(ctx);
      if (!v.is_ad()) return fail_ad("input is not a classad");
      return ClassAd(*v.as_ad());
    }
    ClassAd ad;
    while (!at(TokKind::kEnd)) {
      if (!at(TokKind::kIdent)) return fail_ad("expected attribute name");
      const std::string name = cur().text;
      advance();
      if (!at(TokKind::kAssign)) return fail_ad("expected '='");
      advance();
      Result<ExprPtr> e = expr();
      if (!e.ok()) return std::move(e).error();
      ad.insert(name, std::move(e).value());
      if (at(TokKind::kSemicolon)) advance();
    }
    return ad;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at(TokKind kind) const { return cur().kind == kind; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool accept(TokKind kind) {
    if (at(kind)) {
      advance();
      return true;
    }
    return false;
  }

  Error make_error(const std::string& message) const {
    return Error(ErrorKind::kRequestMalformed,
                 message + " near offset " + std::to_string(cur().offset) +
                     " (" + std::string(tok_kind_name(cur().kind)) + ")");
  }
  Result<ExprPtr> fail(const std::string& message) const {
    return make_error(message);
  }
  Result<ClassAd> fail_ad(const std::string& message) const {
    return make_error(message);
  }

  Result<ExprPtr> expr() {
    Result<ExprPtr> c = or_expr();
    if (!c.ok()) return c;
    if (accept(TokKind::kQuestion)) {
      Result<ExprPtr> t = expr();
      if (!t.ok()) return t;
      if (!accept(TokKind::kColon)) return fail("expected ':'");
      Result<ExprPtr> f = expr();
      if (!f.ok()) return f;
      return ExprPtr{std::make_unique<Conditional>(
          std::move(c).value(), std::move(t).value(), std::move(f).value())};
    }
    return c;
  }

  template <class Next>
  Result<ExprPtr> binary_chain(Next next,
                               std::initializer_list<std::pair<TokKind, BinaryOpKind>> ops) {
    Result<ExprPtr> lhs = (this->*next)();
    if (!lhs.ok()) return lhs;
    for (;;) {
      bool matched = false;
      for (const auto& [tok, op] : ops) {
        if (at(tok)) {
          advance();
          Result<ExprPtr> rhs = (this->*next)();
          if (!rhs.ok()) return rhs;
          lhs = ExprPtr{std::make_unique<BinaryOp>(op, std::move(lhs).value(),
                                                   std::move(rhs).value())};
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  Result<ExprPtr> or_expr() {
    return binary_chain(&Parser::and_expr,
                        {{TokKind::kOr, BinaryOpKind::kOr}});
  }
  Result<ExprPtr> and_expr() {
    return binary_chain(&Parser::meta_expr,
                        {{TokKind::kAnd, BinaryOpKind::kAnd}});
  }
  Result<ExprPtr> meta_expr() {
    return binary_chain(&Parser::cmp_expr,
                        {{TokKind::kMetaEq, BinaryOpKind::kMetaEq},
                         {TokKind::kMetaNe, BinaryOpKind::kMetaNe}});
  }
  Result<ExprPtr> cmp_expr() {
    return binary_chain(&Parser::add_expr,
                        {{TokKind::kLt, BinaryOpKind::kLt},
                         {TokKind::kLe, BinaryOpKind::kLe},
                         {TokKind::kGt, BinaryOpKind::kGt},
                         {TokKind::kGe, BinaryOpKind::kGe},
                         {TokKind::kEq, BinaryOpKind::kEq},
                         {TokKind::kNe, BinaryOpKind::kNe}});
  }
  Result<ExprPtr> add_expr() {
    return binary_chain(&Parser::mul_expr,
                        {{TokKind::kPlus, BinaryOpKind::kAdd},
                         {TokKind::kMinus, BinaryOpKind::kSub}});
  }
  Result<ExprPtr> mul_expr() {
    return binary_chain(&Parser::unary_expr,
                        {{TokKind::kStar, BinaryOpKind::kMul},
                         {TokKind::kSlash, BinaryOpKind::kDiv},
                         {TokKind::kPercent, BinaryOpKind::kMod}});
  }

  Result<ExprPtr> unary_expr() {
    if (accept(TokKind::kMinus)) {
      Result<ExprPtr> e = unary_expr();
      if (!e.ok()) return e;
      return ExprPtr{std::make_unique<UnaryOp>(UnaryOpKind::kNegate,
                                               std::move(e).value())};
    }
    if (accept(TokKind::kNot)) {
      Result<ExprPtr> e = unary_expr();
      if (!e.ok()) return e;
      return ExprPtr{
          std::make_unique<UnaryOp>(UnaryOpKind::kNot, std::move(e).value())};
    }
    if (accept(TokKind::kPlus)) {
      return unary_expr();
    }
    return postfix_expr();
  }

  Result<ExprPtr> postfix_expr() {
    Result<ExprPtr> base = primary();
    if (!base.ok()) return base;
    for (;;) {
      if (accept(TokKind::kDot)) {
        if (!at(TokKind::kIdent)) return fail("expected attribute after '.'");
        const std::string attr = cur().text;
        advance();
        base = ExprPtr{
            std::make_unique<AttrSelect>(std::move(base).value(), attr)};
        continue;
      }
      if (accept(TokKind::kLBracket)) {
        Result<ExprPtr> index = expr();
        if (!index.ok()) return index;
        if (!accept(TokKind::kRBracket)) return fail("expected ']'");
        base = ExprPtr{std::make_unique<Subscript>(std::move(base).value(),
                                                   std::move(index).value())};
        continue;
      }
      return base;
    }
  }

  Result<ExprPtr> primary() {
    switch (cur().kind) {
      case TokKind::kInt: {
        const std::int64_t v = cur().int_value;
        advance();
        return ExprPtr{std::make_unique<Literal>(Value::integer(v))};
      }
      case TokKind::kReal: {
        const double v = cur().real_value;
        advance();
        return ExprPtr{std::make_unique<Literal>(Value::real(v))};
      }
      case TokKind::kString: {
        std::string v = cur().text;
        advance();
        return ExprPtr{std::make_unique<Literal>(Value::string(std::move(v)))};
      }
      case TokKind::kLParen: {
        advance();
        Result<ExprPtr> e = expr();
        if (!e.ok()) return e;
        if (!accept(TokKind::kRParen)) return fail("expected ')'");
        return e;
      }
      case TokKind::kLBrace: {
        advance();
        std::vector<ExprPtr> items;
        if (!at(TokKind::kRBrace)) {
          for (;;) {
            Result<ExprPtr> e = expr();
            if (!e.ok()) return e;
            items.push_back(std::move(e).value());
            if (!accept(TokKind::kComma)) break;
          }
        }
        if (!accept(TokKind::kRBrace)) return fail("expected '}'");
        return ExprPtr{std::make_unique<ListExpr>(std::move(items))};
      }
      case TokKind::kLBracket: {
        // Nested ad literal. Evaluated eagerly into a Value: ad literals
        // in expressions are records of literals in practice.
        advance();
        auto ad = std::make_shared<ClassAd>();
        while (!at(TokKind::kRBracket)) {
          if (!at(TokKind::kIdent)) return fail("expected attribute name");
          const std::string name = cur().text;
          advance();
          if (!accept(TokKind::kAssign)) return fail("expected '='");
          Result<ExprPtr> e = expr();
          if (!e.ok()) return e;
          ad->insert(name, std::move(e).value());
          if (!accept(TokKind::kSemicolon)) break;
        }
        if (!accept(TokKind::kRBracket)) return fail("expected ']'");
        return ExprPtr{std::make_unique<Literal>(
            Value::ad(std::shared_ptr<const ClassAd>(std::move(ad))))};
      }
      case TokKind::kIdent: {
        const std::string name = cur().text;
        advance();
        // Keyword literals.
        if (iequals(name, "true")) {
          return ExprPtr{std::make_unique<Literal>(Value::boolean(true))};
        }
        if (iequals(name, "false")) {
          return ExprPtr{std::make_unique<Literal>(Value::boolean(false))};
        }
        if (iequals(name, "undefined")) {
          return ExprPtr{std::make_unique<Literal>(Value::undefined())};
        }
        if (iequals(name, "error")) {
          return ExprPtr{std::make_unique<Literal>(Value::error())};
        }
        // Scope prefixes MY.x / TARGET.x (also accepted: self, other).
        if (iequals(name, "my") || iequals(name, "self")) {
          if (accept(TokKind::kDot)) {
            if (!at(TokKind::kIdent)) return fail("expected attribute");
            const std::string attr = cur().text;
            advance();
            return ExprPtr{
                std::make_unique<AttrRef>(AttrRef::Scope::kMy, attr)};
          }
        }
        if (iequals(name, "target") || iequals(name, "other")) {
          if (accept(TokKind::kDot)) {
            if (!at(TokKind::kIdent)) return fail("expected attribute");
            const std::string attr = cur().text;
            advance();
            return ExprPtr{
                std::make_unique<AttrRef>(AttrRef::Scope::kTarget, attr)};
          }
        }
        // Function call.
        if (at(TokKind::kLParen)) {
          if (!is_builtin(name)) {
            return fail("unknown function '" + name + "'");
          }
          advance();
          std::vector<ExprPtr> args;
          if (!at(TokKind::kRParen)) {
            for (;;) {
              Result<ExprPtr> e = expr();
              if (!e.ok()) return e;
              args.push_back(std::move(e).value());
              if (!accept(TokKind::kComma)) break;
            }
          }
          if (!accept(TokKind::kRParen)) return fail("expected ')'");
          return ExprPtr{std::make_unique<FnCall>(name, std::move(args))};
        }
        return ExprPtr{
            std::make_unique<AttrRef>(AttrRef::Scope::kAuto, name)};
      }
      default:
        return fail("expected expression");
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> parse_expr(const std::string& text) {
  Result<std::vector<Token>> tokens = lex(text);
  if (!tokens.ok()) return std::move(tokens).error();
  Parser p(std::move(tokens).value());
  return p.parse_full_expr();
}

Result<ClassAd> parse_classad(const std::string& text) {
  Result<std::vector<Token>> tokens = lex(text);
  if (!tokens.ok()) return std::move(tokens).error();
  Parser p(std::move(tokens).value());
  return p.parse_ad_body();
}

}  // namespace esg::classad
