// Recursive-descent parser for ClassAd expressions and ads.
//
// Grammar (precedence low to high):
//   expr     := or ( '?' expr ':' expr )?
//   or       := and ( '||' and )*
//   and      := meta ( '&&' meta )*
//   meta     := cmp ( ('=?='|'=!=') cmp )*
//   cmp      := add ( ('<'|'<='|'>'|'>='|'=='|'!=') add )*
//   add      := mul ( ('+'|'-') mul )*
//   mul      := unary ( ('*'|'/'|'%') unary )*
//   unary    := ('-'|'!'|'+')* postfix
//   postfix  := primary ( '.' IDENT | '[' expr ']' )*
//   primary  := INT | REAL | STRING | 'true' | 'false' | 'undefined'
//             | 'error' | IDENT | IDENT '(' args ')' | 'MY' '.' IDENT
//             | 'TARGET' '.' IDENT | '(' expr ')' | '{' items '}'
//             | '[' attr_list ']'
//   attr_list:= ( IDENT '=' expr ( ';' IDENT '=' expr )* ';'? )?
#pragma once

#include "classad/classad.hpp"
#include "classad/expr.hpp"
#include "core/result.hpp"

namespace esg::classad {

// parse_expr / parse_classad are declared in classad.hpp; this header only
// documents the grammar.

}  // namespace esg::classad
