#include "classad/value.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "classad/classad.hpp"

namespace esg::classad {

Value Value::error(std::string why) {
  Value v;
  v.type_ = Type::kError;
  v.string_ = std::move(why);
  return v;
}

Value Value::boolean(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::integer(std::int64_t i) {
  Value v;
  v.type_ = Type::kInt;
  v.int_ = i;
  return v;
}

Value Value::real(double r) {
  Value v;
  v.type_ = Type::kReal;
  v.real_ = r;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::list(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kList;
  v.list_ = std::move(items);
  return v;
}

Value Value::ad(std::shared_ptr<const ClassAd> ad) {
  Value v;
  v.type_ = Type::kAd;
  v.ad_ = std::move(ad);
  return v;
}

bool Value::same_as(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kUndefined:
    case Type::kError:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kInt:
      return int_ == other.int_;
    case Type::kReal:
      return real_ == other.real_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kList: {
      if (list_.size() != other.list_.size()) return false;
      for (std::size_t i = 0; i < list_.size(); ++i) {
        if (!list_[i].same_as(other.list_[i])) return false;
      }
      return true;
    }
    case Type::kAd:
      // Structural comparison via rendering; ads are small.
      return str() == other.str();
  }
  return false;
}

std::string quote_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string Value::str() const {
  switch (type_) {
    case Type::kUndefined:
      return "undefined";
    case Type::kError:
      return "error";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      return buf;
    }
    case Type::kReal: {
      char buf[48];
      // %.15g round-trips doubles in practice and stays human readable.
      std::snprintf(buf, sizeof buf, "%.15g", real_);
      std::string out = buf;
      // Ensure a real parses back as a real, not an int.
      if (out.find_first_of(".eEnN") == std::string::npos) out += ".0";
      return out;
    }
    case Type::kString:
      return quote_string(string_);
    case Type::kList: {
      std::string out = "{";
      for (std::size_t i = 0; i < list_.size(); ++i) {
        if (i) out += ", ";
        out += list_[i].str();
      }
      out += "}";
      return out;
    }
    case Type::kAd:
      return ad_ ? ad_->str() : "[]";
  }
  return "undefined";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.str();
}

}  // namespace esg::classad
