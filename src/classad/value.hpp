// ClassAd values.
//
// The ClassAd language (Raman, Livny & Solomon) is the lingua franca of the
// Condor kernel: machines and jobs describe themselves as ads, and the
// matchmaker evaluates each ad's Requirements against the other. Values are
// dynamically typed and include two non-value states central to
// matchmaking semantics: Undefined (an attribute is absent) and Error (an
// expression is meaningless). Note the kinship with the paper: Undefined
// and Error are *explicit* in-band error states with precise propagation
// rules — a tiny worked example of Principle 4.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace esg::classad {

class ClassAd;

class Value {
 public:
  enum class Type {
    kUndefined,
    kError,
    kBool,
    kInt,
    kReal,
    kString,
    kList,
    kAd,
  };

  /// Default: Undefined.
  Value() = default;

  static Value undefined() { return Value(); }
  static Value error(std::string why = {});
  static Value boolean(bool b);
  static Value integer(std::int64_t i);
  static Value real(double r);
  static Value string(std::string s);
  static Value list(std::vector<Value> items);
  static Value ad(std::shared_ptr<const ClassAd> ad);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_undefined() const { return type_ == Type::kUndefined; }
  [[nodiscard]] bool is_error() const { return type_ == Type::kError; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }
  [[nodiscard]] bool is_real() const { return type_ == Type::kReal; }
  [[nodiscard]] bool is_number() const { return is_int() || is_real(); }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_list() const { return type_ == Type::kList; }
  [[nodiscard]] bool is_ad() const { return type_ == Type::kAd; }

  /// Accessors; only valid for the matching type.
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] std::int64_t as_int() const { return int_; }
  [[nodiscard]] double as_real() const { return real_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Value>& as_list() const { return list_; }
  [[nodiscard]] const std::shared_ptr<const ClassAd>& as_ad() const {
    return ad_;
  }
  [[nodiscard]] const std::string& error_reason() const { return string_; }

  /// Numeric coercion: int or real as double. Only valid if is_number().
  [[nodiscard]] double number() const {
    return is_int() ? static_cast<double>(int_) : real_;
  }

  /// Strict structural equality (used by tests; distinct from the ClassAd
  /// `==` operator, which has its own 3-valued semantics).
  [[nodiscard]] bool same_as(const Value& other) const;

  /// ClassAd-syntax rendering: undefined, error, true, 42, 3.5, "s",
  /// {a, b}, [k = v].
  [[nodiscard]] std::string str() const;

 private:
  Type type_ = Type::kUndefined;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double real_ = 0;
  std::string string_;  // also holds the error reason for kError
  std::vector<Value> list_;
  std::shared_ptr<const ClassAd> ad_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Quote and escape a string in ClassAd literal syntax.
std::string quote_string(const std::string& s);

}  // namespace esg::classad
