// A sorted-vector map for the kernel's hot per-job/per-host state.
//
// The simulation's daemon state tables (schedd job records, fabric
// listeners and fault entries, rpc pending calls, recorder span cursors)
// are iterated far more often than they are mutated, and the iteration
// order is part of the determinism contract: every replay of a seed must
// walk them in the same order. `std::map` gives that order but pays one
// heap node per entry and chases pointers on every walk. FlatMap keeps
// the entries in one contiguous, key-sorted vector: iteration is linear
// memory, lookup is binary search, and the order is byte-for-byte the
// same as the `std::map` it replaces (strict weak order on the key).
//
// The interface is the subset of `std::map` the kernel actually uses.
// Two deliberate deviations:
//  - `value_type` is `std::pair<Key, T>` (non-const key) so entries can
//    be moved during insertion; callers must not modify keys in place.
//  - insertion/erase invalidate iterators and references (vector
//    semantics). Call sites that held `std::map` references across
//    mutations were fixed when they migrated.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace esg {

template <typename Key, typename T, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;
  using size_type = std::size_t;

  FlatMap() = default;

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] size_type size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  void reserve(size_type n) { entries_.reserve(n); }

  [[nodiscard]] iterator begin() { return entries_.begin(); }
  [[nodiscard]] iterator end() { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }
  [[nodiscard]] const_iterator cbegin() const { return entries_.cbegin(); }
  [[nodiscard]] const_iterator cend() const { return entries_.cend(); }

  template <typename K>
  [[nodiscard]] iterator lower_bound(const K& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key, KeyLess{});
  }
  template <typename K>
  [[nodiscard]] const_iterator lower_bound(const K& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key, KeyLess{});
  }
  template <typename K>
  [[nodiscard]] iterator upper_bound(const K& key) {
    return std::upper_bound(entries_.begin(), entries_.end(), key, KeyGreater{});
  }

  template <typename K>
  [[nodiscard]] iterator find(const K& key) {
    iterator it = lower_bound(key);
    return (it != entries_.end() && equal(it->first, key)) ? it
                                                           : entries_.end();
  }
  template <typename K>
  [[nodiscard]] const_iterator find(const K& key) const {
    const_iterator it = lower_bound(key);
    return (it != entries_.end() && equal(it->first, key)) ? it
                                                           : entries_.end();
  }
  template <typename K>
  [[nodiscard]] bool contains(const K& key) const {
    return find(key) != entries_.end();
  }
  template <typename K>
  [[nodiscard]] size_type count(const K& key) const {
    return contains(key) ? 1 : 0;
  }

  [[nodiscard]] T& at(const Key& key) { return find(key)->second; }
  [[nodiscard]] const T& at(const Key& key) const { return find(key)->second; }

  /// Insert-or-find with default construction, `std::map` style. Entries
  /// appended in key order (the common case: monotonically increasing job
  /// ids, boot-time host registration) cost amortized O(1).
  T& operator[](const Key& key) {
    iterator it = lower_bound(key);
    if (it != entries_.end() && equal(it->first, key)) return it->second;
    it = entries_.insert(it, value_type(key, T{}));
    return it->second;
  }
  T& operator[](Key&& key) {
    iterator it = lower_bound(key);
    if (it != entries_.end() && equal(it->first, key)) return it->second;
    it = entries_.insert(it, value_type(std::move(key), T{}));
    return it->second;
  }

  std::pair<iterator, bool> insert(value_type entry) {
    iterator it = lower_bound(entry.first);
    if (it != entries_.end() && equal(it->first, entry.first)) {
      return {it, false};
    }
    it = entries_.insert(it, std::move(entry));
    return {it, true};
  }

  template <typename... Args>
  std::pair<iterator, bool> emplace(const Key& key, Args&&... args) {
    iterator it = lower_bound(key);
    if (it != entries_.end() && equal(it->first, key)) return {it, false};
    it = entries_.emplace(it, std::piecewise_construct,
                          std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  template <typename K>
  size_type erase(const K& key) {
    iterator it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator it) { return entries_.erase(it); }
  iterator erase(const_iterator it) { return entries_.erase(it); }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  struct KeyLess {
    template <typename K>
    bool operator()(const value_type& entry, const K& key) const {
      return Compare{}(entry.first, key);
    }
  };
  struct KeyGreater {
    template <typename K>
    bool operator()(const K& key, const value_type& entry) const {
      return Compare{}(key, entry.first);
    }
  };
  template <typename A, typename B>
  static bool equal(const A& a, const B& b) {
    return !Compare{}(a, b) && !Compare{}(b, a);
  }

  storage_type entries_;
};

}  // namespace esg
