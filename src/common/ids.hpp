// Strongly typed integer identifiers.
//
// Every entity in the simulated grid (jobs, matches, claims, connections,
// file handles, ...) is named by a StrongId with its own tag type so that a
// JobId cannot be accidentally passed where a ClaimId is expected.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace esg {

/// A type-safe wrapper around a 64-bit identifier.
///
/// `Tag` is any (possibly incomplete) type used only to distinguish one id
/// family from another at compile time.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

 private:
  std::uint64_t value_ = kInvalid;
};

/// Monotonic generator for a StrongId family. Not thread safe; each
/// simulation owns its generators (see IdGenerators / sim::SimContext), so
/// id sequences are deterministic per run and independent across
/// concurrently running simulations.
template <class Tag>
class IdGenerator {
 public:
  IdGenerator() = default;
  /// Start counting at `base` + 1 (distinct bases keep id families from
  /// different generators disjoint, e.g. per-schedd job ids).
  explicit IdGenerator(std::uint64_t base) : next_(base + 1) {}

  StrongId<Tag> next() { return StrongId<Tag>{next_++}; }

 private:
  std::uint64_t next_ = 1;
};

struct JobTag {};
struct MatchTag {};
struct ClaimTag {};
struct ConnTag {};
struct FdTag {};
struct AttemptTag {};

using JobId = StrongId<JobTag>;
using MatchId = StrongId<MatchTag>;
using ClaimId = StrongId<ClaimTag>;
using ConnId = StrongId<ConnTag>;
using FdId = StrongId<FdTag>;
using AttemptId = StrongId<AttemptTag>;

/// The id families a simulation mints centrally, bundled so a simulation
/// context can own all of them in one place. Job ids are the exception:
/// each schedd keeps its own generator because multi-submitter pools give
/// every schedd a disjoint base range (see Schedd::set_job_id_base).
struct IdGenerators {
  IdGenerator<MatchTag> match;
  IdGenerator<ClaimTag> claim;
  IdGenerator<ConnTag> conn;
  IdGenerator<FdTag> fd;
  IdGenerator<AttemptTag> attempt;
};

}  // namespace esg

namespace std {
template <class Tag>
struct hash<esg::StrongId<Tag>> {
  size_t operator()(esg::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
