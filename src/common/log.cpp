#include "common/log.hpp"

#include <cstdio>

namespace esg {
namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogSink& LogSink::instance() {
  // The compat shim's one sanctioned definition site.
  static LogSink sink;
  return sink;
}

LogSink::LogSink() {
  writer_ = [](const std::string& line) {
    std::fputs(line.c_str(), stderr);
    std::fputc('\n', stderr);
  };
}

void LogSink::set_writer(std::function<void(const std::string&)> writer) {
  writer_ = std::move(writer);
}

void LogSink::write(LogLevel level, const std::string& component,
                    const std::string& message) {
  std::string line;
  if (clock_) {
    line += "[";
    line += clock_().str();
    line += "] ";
  }
  line += level_name(level);
  line += " ";
  line += component;
  line += ": ";
  line += message;
  writer_(line);
}

}  // namespace esg
