// Component-tagged leveled logging.
//
// Every daemon in the simulated grid logs through a Logger bound to a
// component name ("schedd@submit0", "starter@exec3", ...) and to a LogSink.
// A LogSink is an ordinary object: each simulation owns one (via
// sim::SimContext), so several simulations can log concurrently without
// sharing any state. Sinks are quiet by default so tests and benches stay
// clean; examples turn them up.
//
// `LogSink::instance()` survives only as a compatibility shim for code that
// runs outside a simulation (tools, ad-hoc scripts). New simulation code
// must bind a Logger to its context's sink; esg-lint enforces this.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/simtime.hpp"

namespace esg {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Log configuration and output. Instantiable: one per simulation context.
/// A single LogSink is not thread safe; concurrent simulations each use
/// their own.
class LogSink {
 public:
  LogSink();

  /// Compatibility shim: the process-wide default sink used by loggers that
  /// were never bound to a context. Do not introduce new callers.
  static LogSink& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the output callback (default: stderr). Used by tests to
  /// capture output.
  void set_writer(std::function<void(const std::string&)> writer);

  /// Provide the current simulated time for log prefixes.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  void clear_clock() { clock_ = nullptr; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  LogLevel level_ = LogLevel::kOff;
  std::function<void(const std::string&)> writer_;
  std::function<SimTime()> clock_;
};

/// A cheap handle that prefixes messages with a component name. When bound
/// to a sink it writes there; a default-constructed or name-only Logger
/// falls back to the process-wide shim sink.
class Logger {
 public:
  Logger() = default;
  explicit Logger(std::string component) : component_(std::move(component)) {}
  Logger(std::string component, LogSink* sink)
      : component_(std::move(component)), sink_(sink) {}

  [[nodiscard]] const std::string& component() const { return component_; }
  [[nodiscard]] LogSink& sink() const {
    // Compat fallback for unbound loggers.  esg-lint: allow(lint/global-singleton)
    return sink_ != nullptr ? *sink_ : LogSink::instance();
  }

  template <class... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <class... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <class... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <class... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <class... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

 private:
  template <class... Args>
  void log(LogLevel level, const Args&... args) const {
    LogSink& s = sink();
    if (level < s.level()) return;
    std::ostringstream os;
    (os << ... << args);
    s.write(level, component_, os.str());
  }

  std::string component_;
  LogSink* sink_ = nullptr;
};

}  // namespace esg
