// Component-tagged leveled logging.
//
// Every daemon in the simulated grid logs through a Logger bound to a
// component name ("schedd@submit0", "starter@exec3", ...). The global sink
// is quiet by default so tests and benches stay clean; examples turn it up.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/simtime.hpp"

namespace esg {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. Single threaded by design.
class LogSink {
 public:
  static LogSink& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Replace the output callback (default: stderr). Used by tests to
  /// capture output.
  void set_writer(std::function<void(const std::string&)> writer);

  /// Provide the current simulated time for log prefixes.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  void clear_clock() { clock_ = nullptr; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  LogSink();
  LogLevel level_ = LogLevel::kOff;
  std::function<void(const std::string&)> writer_;
  std::function<SimTime()> clock_;
};

/// A cheap handle that prefixes messages with a component name.
class Logger {
 public:
  Logger() = default;
  explicit Logger(std::string component) : component_(std::move(component)) {}

  [[nodiscard]] const std::string& component() const { return component_; }

  template <class... Args>
  void trace(const Args&... args) const {
    log(LogLevel::kTrace, args...);
  }
  template <class... Args>
  void debug(const Args&... args) const {
    log(LogLevel::kDebug, args...);
  }
  template <class... Args>
  void info(const Args&... args) const {
    log(LogLevel::kInfo, args...);
  }
  template <class... Args>
  void warn(const Args&... args) const {
    log(LogLevel::kWarn, args...);
  }
  template <class... Args>
  void error(const Args&... args) const {
    log(LogLevel::kError, args...);
  }

 private:
  template <class... Args>
  void log(LogLevel level, const Args&... args) const {
    if (level < LogSink::instance().level()) return;
    std::ostringstream os;
    (os << ... << args);
    LogSink::instance().write(level, component_, os.str());
  }

  std::string component_;
};

}  // namespace esg
