#include "common/rng.hpp"

#include <cmath>

namespace esg {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a, for stable label-keyed forking.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  // Irwin-Hall sum of 12 uniforms: mean 6, variance 1.
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += uniform();
  return mean + stddev * (sum - 6.0);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0 || weights.empty()) return 0;
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next_u64()); }

Rng Rng::fork(const std::string& label) {
  return Rng(next_u64() ^ fnv1a(label));
}

}  // namespace esg
