// Deterministic pseudo-random number generation.
//
// The simulation must replay identically for a given seed, so we carry our
// own small, fast generators instead of depending on the (implementation
// defined) distributions in <random>. SplitMix64 seeds Xoshiro256**.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esg {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high quality, tiny state; the single RNG used by
/// the whole simulation (fault injection, latency jitter, workload shapes).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Approximately normal value (sum of uniforms), for latency jitter.
  double normal(double mean, double stddev);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Returns 0 if all weights are zero or the list is empty-safe (size>=1).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator; used so each component owns a
  /// stream whose draws do not perturb its siblings.
  Rng fork();

  /// Derive a child keyed by a label, so the stream assignment is stable
  /// under reordering of component construction.
  Rng fork(const std::string& label);

 private:
  std::uint64_t s_[4];
};

}  // namespace esg
