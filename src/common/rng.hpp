// Deterministic pseudo-random number generation.
//
// The simulation must replay identically for a given seed, so we carry our
// own small, fast generators instead of depending on the (implementation
// defined) distributions in <random>. SplitMix64 seeds Xoshiro256**.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace esg {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high quality, tiny state; the single RNG used by
/// the whole simulation (fault injection, latency jitter, workload shapes).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Approximately normal value (sum of uniforms), for latency jitter.
  double normal(double mean, double stddev);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  /// Returns 0 if all weights are zero or the list is empty-safe (size>=1).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator; used so each component owns a
  /// stream whose draws do not perturb its siblings.
  Rng fork();

  /// Derive a child keyed by a label, so the stream assignment is stable
  /// under reordering of component construction.
  Rng fork(const std::string& label);

 private:
  std::uint64_t s_[4];
};

/// Pinned fork labels for every fault-injection stream in the simulation.
///
/// Fault injection must replay identically for a given seed no matter who
/// else is running: a chaos::FaultPlan replayed on a laptop, inside a
/// 1-thread sweep, or on an 8-thread pool::SweepRunner must consume the
/// exact same random draws. Two rules make that hold:
///
///   1. Every injection stream is forked by one of these labels from its
///      own engine's RNG — never from process-wide state — so sibling
///      simulations cannot perturb each other.
///   2. The labels are pinned here, in one place, so a renamed component
///      cannot silently re-key a stream and change every replay.
///
/// tests/test_chaos.cpp carries the regression test: the same seed yields
/// identical fault draws at any SweepRunner thread count.
namespace rng_streams {

/// NetworkFabric's connect/latency/drop draws (net/fabric.cpp).
inline constexpr const char* kNetworkFabric = "network-fabric";

/// Per-host transient-IoError injection (PoolConfig fs_fault_rate).
inline std::string fs_faults(const std::string& host) { return "fs@" + host; }

/// Per-host silent-corruption injection (silent_corruption_rate).
inline std::string fs_corruption(const std::string& host) {
  return "corrupt@" + host;
}

/// chaos::Injector's IoError windows — distinct from fs_faults so an armed
/// window never steals draws from a pool-configured base rate.
inline std::string chaos_fs(const std::string& host) {
  return "chaos.fs@" + host;
}

/// chaos::Injector's corruption windows.
inline std::string chaos_corruption(const std::string& host) {
  return "chaos.corrupt@" + host;
}

/// The schedd's retry-backoff jitter (DisciplineConfig::retry_jitter).
/// Forked only when jitter is enabled, so classic pools draw nothing.
inline std::string retry_jitter(const std::string& host) {
  return "retry-jitter@" + host;
}

}  // namespace rng_streams

}  // namespace esg
