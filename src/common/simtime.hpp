// Simulated time.
//
// All timestamps inside the grid simulation are SimTime values: a fixed
// point count of microseconds since the start of the run. Using an integer
// representation keeps the discrete-event engine exactly deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace esg {

/// A duration or instant in simulated time, in microseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t usec) : usec_(usec) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime usec(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime msec(std::int64_t v) { return SimTime{v * 1000}; }
  static constexpr SimTime sec(std::int64_t v) { return SimTime{v * 1000000}; }
  static constexpr SimTime sec_f(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr SimTime minutes(std::int64_t v) { return sec(v * 60); }
  static constexpr SimTime hours(std::int64_t v) { return sec(v * 3600); }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t as_usec() const { return usec_; }
  [[nodiscard]] constexpr double as_sec() const { return usec_ / 1e6; }

  friend constexpr bool operator==(SimTime a, SimTime b) = default;
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.usec_ + b.usec_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.usec_ - b.usec_};
  }
  constexpr SimTime& operator+=(SimTime o) {
    usec_ += o.usec_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    usec_ -= o.usec_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.usec_ * k};
  }
  friend constexpr SimTime operator*(SimTime a, double k) {
    return SimTime{static_cast<std::int64_t>(static_cast<double>(a.usec_) * k)};
  }

  /// Human readable rendering, e.g. "3.250s".
  [[nodiscard]] std::string str() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3fs", as_sec());
    return buf;
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.str();
  }

 private:
  std::int64_t usec_ = 0;
};

}  // namespace esg
