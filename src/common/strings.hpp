// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace esg {

/// Split `s` on `sep`; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Split into at most `max_fields` pieces; the final piece keeps the rest.
std::vector<std::string> split_n(std::string_view s, char sep,
                                 std::size_t max_fields);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Case-insensitive ASCII equality (ClassAd identifiers and keywords are
/// case insensitive).
bool iequals(std::string_view a, std::string_view b);

/// Lowercase an ASCII string.
std::string to_lower(std::string_view s);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace esg
