#include "core/audit.hpp"

namespace esg {

PrincipleAudit& PrincipleAudit::global() {
  static PrincipleAudit audit;
  return audit;
}

void PrincipleAudit::record(Principle p, AuditOutcome outcome,
                            std::string site) {
  if (outcome == AuditOutcome::kApplied) {
    ++applied_[kIndex(p)];
  } else {
    ++violated_[kIndex(p)];
  }
  if (events_.size() >= capacity_) {
    events_.erase(events_.begin(),
                  events_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2));
  }
  events_.push_back(AuditEvent{p, outcome, std::move(site)});
}

std::uint64_t PrincipleAudit::applied(Principle p) const {
  return applied_[kIndex(p)];
}

std::uint64_t PrincipleAudit::violated(Principle p) const {
  return violated_[kIndex(p)];
}

void PrincipleAudit::reset() {
  applied_ = {};
  violated_ = {};
  events_.clear();
}

void PrincipleAudit::set_event_capacity(std::size_t capacity) {
  capacity_ = capacity == 0 ? 1 : capacity;
}

}  // namespace esg
