// PrincipleAudit: a ledger of principle applications and violations.
//
// The paper's four principles are enforced by mechanism (ErrorInterface,
// escape, ScopeRouter), but experiments also need to *count* how often each
// principle fired or was deliberately violated (the naive discipline).
// PrincipleAudit is that counter. It is observational only — no component
// changes behaviour based on it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace esg {

enum class Principle {
  kP1,  ///< no implicit error from an explicit error
  kP2,  ///< escaping error converts potential implicit -> explicit higher up
  kP3,  ///< error propagated to the manager of its scope
  kP4,  ///< error interfaces concise and finite
};

enum class AuditOutcome { kApplied, kViolated };

struct AuditEvent {
  Principle principle;
  AuditOutcome outcome;
  std::string site;  ///< routine or component name
};

class PrincipleAudit {
 public:
  /// Instantiable: each simulation context owns its own ledger, so
  /// concurrent simulations never share counters.
  PrincipleAudit() = default;

  /// Compatibility shim: the process-wide ledger used by code that was
  /// never bound to a context. Do not introduce new callers (esg-lint's
  /// lint/global-singleton rule rejects them).
  static PrincipleAudit& global();

  void record(Principle p, AuditOutcome outcome, std::string site);

  [[nodiscard]] std::uint64_t applied(Principle p) const;
  [[nodiscard]] std::uint64_t violated(Principle p) const;

  /// Recent events, newest last (bounded; old events are dropped).
  [[nodiscard]] const std::vector<AuditEvent>& events() const {
    return events_;
  }

  void reset();

  /// Keep at most this many events (counters are unaffected).
  void set_event_capacity(std::size_t capacity);

 private:
  static constexpr std::size_t kIndex(Principle p) {
    return static_cast<std::size_t>(p);
  }
  std::array<std::uint64_t, 4> applied_{};
  std::array<std::uint64_t, 4> violated_{};
  std::vector<AuditEvent> events_;
  std::size_t capacity_ = 4096;
};

}  // namespace esg
