// Umbrella header for the error-scope core library — the public API of the
// paper's primary contribution.
//
// Quick tour:
//   ErrorScope / scope_rank / schedd_disposition   (scope.hpp)
//   ErrorKind / default_scope                      (kinds.hpp)
//   Error                                          (error.hpp)
//   Result<T>            explicit errors           (result.hpp)
//   escape/catch_escape  escaping errors           (escape.hpp)
//   ErrorInterface       P4 contracts, P2 filter   (interface.hpp)
//   ScopeRouter          P3 delivery               (router.hpp)
//   ScopeEscalator       time widens scope         (escalate.hpp)
//   OutputValidator      implicit-error detection  (detect.hpp)
//   PrincipleAudit       observational ledger      (audit.hpp)
#pragma once

#include "core/audit.hpp"
#include "core/detect.hpp"
#include "core/error.hpp"
#include "core/escalate.hpp"
#include "core/escape.hpp"
#include "core/interface.hpp"
#include "core/kinds.hpp"
#include "core/result.hpp"
#include "core/router.hpp"
#include "core/scope.hpp"
