// Implicit-error detection (end-to-end validation, §5).
//
// "An implicit error is a result that a routine presents as valid, but is
// otherwise determined to be false." Detecting one requires duplicating
// all or part of a computation, or validating outputs against a priori
// structure. Condor itself has little recourse; a process *above* the grid
// must do this on the user's behalf. These helpers are that process.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/result.hpp"

namespace esg {

/// Validates an output against a priori structure known to the user
/// (e.g. "the tally must equal the number of ballots"). A failed check is
/// the *detection* of an implicit error: the value claimed to be valid but
/// is determined to be false.
template <class T>
class OutputValidator {
 public:
  using Predicate = std::function<bool(const T&)>;

  OutputValidator(std::string name, Predicate predicate)
      : name_(std::move(name)), predicate_(std::move(predicate)) {}

  /// nullopt if the value passes; otherwise the implicit error made
  /// explicit (kind kUnknown — the detector knows the value is wrong, not
  /// why), with program scope: it is the user's own criterion that failed.
  std::optional<Error> check(const T& value) const {
    if (predicate_(value)) return std::nullopt;
    return Error(ErrorKind::kUnknown, ErrorScope::kProgram,
                 "output failed validation '" + name_ + "'");
  }

 private:
  std::string name_;
  Predicate predicate_;
};

/// Detect implicit errors by duplicating a computation N times and
/// majority-voting the results — the classic redundancy technique from the
/// fault-tolerance literature the paper builds on. T must be
/// equality-comparable. Simulation callers pass their context's audit
/// ledger; unbound callers fall back to the process-wide shim.
template <class T>
Result<T> redundant_vote(const std::function<Result<T>()>& run, int copies,
                         PrincipleAudit* audit = nullptr) {
  std::vector<T> values;
  std::optional<Error> last_error;
  for (int i = 0; i < copies; ++i) {
    Result<T> r = run();
    if (r.ok()) {
      values.push_back(std::move(r).value());
    } else {
      last_error = std::move(r).error();
    }
  }
  if (values.empty()) {
    return last_error.value_or(
        Error(ErrorKind::kUnknown, "all redundant copies failed"));
  }
  // Majority vote over successful copies.
  std::size_t best_count = 0;
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::size_t count = 0;
    for (const T& v : values) {
      if (v == values[i]) ++count;
    }
    if (count > best_count) {
      best_count = count;
      best_index = i;
    }
  }
  if (best_count * 2 <= values.size()) {
    // No majority: at least one copy returned a silently wrong value and we
    // cannot tell which. This *is* the detection of an implicit error.
    return Error(ErrorKind::kUnknown, ErrorScope::kProgram,
                 "redundant copies disagree with no majority");
  }
  if (best_count < values.size()) {
    // A minority of copies were silently wrong; the vote masked them.
    PrincipleAudit& ledger =
        // Compat fallback for unbound callers.  esg-lint: allow(lint/global-singleton)
        audit != nullptr ? *audit : PrincipleAudit::global();
    ledger.record(Principle::kP1, AuditOutcome::kApplied, "redundant_vote");
  }
  return values[best_index];
}

}  // namespace esg
