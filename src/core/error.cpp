#include "core/error.hpp"

#include <sstream>

namespace esg {

Error Error::widen_scope(ErrorScope scope) && {
  widen_scope_in_place(scope);
  return std::move(*this);
}

void Error::widen_scope_in_place(ErrorScope scope) {
  if (scope_rank(scope) > scope_rank(scope_)) scope_ = scope;
}

Error Error::caused_by(Error cause) && {
  // Carry ground-truth labels upward so the harness can still classify the
  // surfaced error even after layers re-wrap it.
  for (const auto& [k, v] : cause.labels_) {
    if (label(k) == nullptr) labels_.emplace_back(k, v);
  }
  cause_ = std::make_shared<const Error>(std::move(cause));
  return std::move(*this);
}

Error Error::with_label(std::string key, std::string value) && {
  labels_.emplace_back(std::move(key), std::move(value));
  return std::move(*this);
}

const std::string* Error::label(const std::string& key) const {
  for (const auto& [k, v] : labels_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Error::str() const {
  std::ostringstream os;
  os << kind_name(kind_) << "/" << scope_name(scope_);
  if (!message_.empty()) os << ": " << message_;
  if (!origin_.empty()) os << " (from " << origin_ << ")";
  return os.str();
}

std::string Error::describe() const {
  std::ostringstream os;
  const Error* e = this;
  std::shared_ptr<const Error> hold;
  int depth = 0;
  while (e != nullptr) {
    for (int i = 0; i < depth; ++i) os << "  ";
    if (depth > 0) os << "caused by: ";
    os << e->str() << "\n";
    hold = e->cause_;
    e = hold.get();
    ++depth;
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Error& e) {
  return os << e.str();
}

}  // namespace esg
