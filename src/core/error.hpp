// The Error value: kind + scope + provenance.
//
// An error is "an internal data state that reflects a fault" (§3.1,
// paraphrasing Avizienis & Laprie). Our Error carries the canonical kind,
// the scope it currently invalidates (which layers may widen on the way
// up), a human message, the component that discovered it, and a cause
// chain, so that diagnostic detail is preserved even as scope is
// reconsidered at every layer (§3.3).
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/simtime.hpp"
#include "core/kinds.hpp"
#include "core/scope.hpp"

namespace esg {

class Error {
 public:
  Error() = default;

  /// Construct with the kind's default scope.
  explicit Error(ErrorKind kind, std::string message = {})
      : kind_(kind), scope_(default_scope(kind)), message_(std::move(message)) {}

  Error(ErrorKind kind, ErrorScope scope, std::string message = {})
      : kind_(kind), scope_(scope), message_(std::move(message)) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }
  [[nodiscard]] ErrorScope scope() const { return scope_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] const std::string& origin() const { return origin_; }
  [[nodiscard]] SimTime when() const { return when_; }
  [[nodiscard]] const std::shared_ptr<const Error>& cause() const {
    return cause_;
  }

  /// Builder-style modifiers (value semantics; each returns a copy).
  [[nodiscard]] Error with_message(std::string m) && {
    message_ = std::move(m);
    return std::move(*this);
  }
  [[nodiscard]] Error with_origin(std::string o) && {
    origin_ = std::move(o);
    return std::move(*this);
  }
  [[nodiscard]] Error at_time(SimTime t) && {
    when_ = t;
    return std::move(*this);
  }

  /// Widen the scope as the error gains significance travelling up
  /// (§3.3: "It may gain significance, or expand its scope, as it travels
  /// up through layers of software"). Never narrows: if `scope` is smaller
  /// than the current scope, the current scope is kept.
  [[nodiscard]] Error widen_scope(ErrorScope scope) &&;
  void widen_scope_in_place(ErrorScope scope);

  /// Chain a lower-layer cause.
  [[nodiscard]] Error caused_by(Error cause) &&;

  /// Attach a free-form label ("injected=blackhole"). Labels are ground
  /// truth carried for the experiment harness; production code never reads
  /// them for decisions.
  [[nodiscard]] Error with_label(std::string key, std::string value) &&;
  [[nodiscard]] const std::string* label(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  labels() const {
    return labels_;
  }

  /// One-line rendering: "kind/scope: message (from origin)".
  [[nodiscard]] std::string str() const;

  /// Multi-line rendering including the full cause chain.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Error& a, const Error& b) {
    return a.kind_ == b.kind_ && a.scope_ == b.scope_ &&
           a.message_ == b.message_;
  }

 private:
  ErrorKind kind_ = ErrorKind::kUnknown;
  ErrorScope scope_ = ErrorScope::kProcess;
  std::string message_;
  std::string origin_;
  SimTime when_{};
  std::shared_ptr<const Error> cause_;
  std::vector<std::pair<std::string, std::string>> labels_;
};

std::ostream& operator<<(std::ostream& os, const Error& e);

}  // namespace esg
