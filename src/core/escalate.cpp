#include "core/escalate.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace esg {

void ScopeEscalator::add_rule(EscalationRule rule) {
  rules_.push_back(rule);
  // Keep rules ordered by threshold so transitive application is a single
  // forward pass.
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const EscalationRule& a, const EscalationRule& b) {
                     return a.after < b.after;
                   });
}

ScopeEscalator ScopeEscalator::grid_defaults() {
  ScopeEscalator e;
  // A brief communication failure is just the network...
  e.add_rule({ErrorScope::kNetwork, SimTime::sec(30),
              ErrorScope::kRemoteResource});
  // ...a persistent one means the machine is effectively gone...
  e.add_rule({ErrorScope::kRemoteResource, SimTime::minutes(10),
              ErrorScope::kCluster});
  // ...and an outage of hours invalidates the pool's view of the world.
  e.add_rule({ErrorScope::kCluster, SimTime::hours(6), ErrorScope::kPool});
  return e;
}

ScopeEscalator ScopeEscalator::schedd_defaults() {
  ScopeEscalator e;
  e.add_rule({ErrorScope::kNetwork, SimTime::minutes(2),
              ErrorScope::kRemoteResource});
  e.add_rule({ErrorScope::kRemoteResource, SimTime::minutes(45),
              ErrorScope::kCluster});
  e.add_rule({ErrorScope::kLocalResource, SimTime::hours(2),
              ErrorScope::kCluster});
  e.add_rule({ErrorScope::kVirtualMachine, SimTime::minutes(45),
              ErrorScope::kCluster});
  return e;
}

ErrorScope ScopeEscalator::scope_after(ErrorScope initial,
                                       SimTime persisted) const {
  ErrorScope scope = initial;
  bool changed = true;
  // Transitive: network(30s)->remote-resource(10m)->cluster. Each rule may
  // fire at most once; monotone widening guarantees termination.
  while (changed) {
    changed = false;
    for (const EscalationRule& r : rules_) {
      if (r.from == scope && persisted >= r.after &&
          scope_rank(r.to) > scope_rank(scope)) {
        scope = r.to;
        changed = true;
      }
    }
  }
  return scope;
}

Error ScopeEscalator::escalate(Error e, SimTime first_seen, SimTime now,
                               const obs::TraceSink* trace) const {
  const SimTime persisted = now - first_seen;
  const ErrorScope initial = e.scope();
  const ErrorScope widened = scope_after(initial, persisted);
  e.widen_scope_in_place(widened);
  if (widened != initial) {
    if (trace != nullptr) {
      trace->escalated(e, initial, 0, "persisted " + persisted.str());
    } else {
      // Unbound callers (tools, examples) fall back to the shim recorder.
      static const obs::TraceSink sink("escalator");
      sink.escalated(e, initial, 0, "persisted " + persisted.str());
    }
  }
  return e;
}

}  // namespace esg
