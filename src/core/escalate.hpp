// ScopeEscalator: time widens an error's scope (§5).
//
// "A failure to communicate for one second may be of network scope, but a
// failure to communicate for a year likely has larger scope." When an
// error's scope is indeterminate, the system must be given guidance in the
// form of timeouts. An escalator holds per-scope rules: after a fault of
// scope S has persisted for duration D, treat it as scope S'. It also
// models the NFS mount policies the paper contrasts: hard (never escalate,
// retry forever), soft (fail after a fixed retry budget), and deadline
// (each caller chooses its own failure criterion — the option the paper
// laments NFS lacks).
#pragma once

#include <optional>
#include <vector>

#include "common/simtime.hpp"
#include "core/error.hpp"

namespace esg::obs {
class TraceSink;
}  // namespace esg::obs

namespace esg {

struct EscalationRule {
  ErrorScope from;    ///< scope at which the fault was first classified
  SimTime after;      ///< persistence threshold
  ErrorScope to;      ///< scope it is escalated to past the threshold
};

class ScopeEscalator {
 public:
  /// An escalator with no rules never widens anything.
  ScopeEscalator() = default;

  void add_rule(EscalationRule rule);

  /// The paper's worked example: a short communication failure is network
  /// scope; a persistent one invalidates the remote resource; a very long
  /// one the whole cluster.
  static ScopeEscalator grid_defaults();

  /// Conservative thresholds for the schedd's give-up judgement: a job
  /// whose environment failures persist this long stops being "retry
  /// elsewhere" and becomes a condition the user must hear about.
  static ScopeEscalator schedd_defaults();

  /// Scope of a fault first seen at `initial` scope that has now persisted
  /// for `persisted`. Applies the matching rules transitively (network ->
  /// remote-resource -> cluster), always monotonically widening.
  [[nodiscard]] ErrorScope scope_after(ErrorScope initial,
                                       SimTime persisted) const;

  /// Apply to an error given the time it was first observed and now. When
  /// the caller runs inside a simulation it passes its context-bound trace
  /// sink so the escalation span lands in that simulation's journal; with
  /// no sink the span goes to the process-wide shim recorder. Escalators
  /// themselves stay stateless (they are often shared, even `static
  /// const`), which is why the sink is a parameter and not a member.
  [[nodiscard]] Error escalate(Error e, SimTime first_seen, SimTime now,
                               const obs::TraceSink* trace = nullptr) const;

  [[nodiscard]] const std::vector<EscalationRule>& rules() const {
    return rules_;
  }

 private:
  std::vector<EscalationRule> rules_;
};

/// Retry policy for an operation against a possibly-faulty resource —
/// the NFS hard/soft/deadline triad from §5.
struct RetryPolicy {
  enum class Mode {
    kHard,      ///< retry forever; the caller never sees the error
    kSoft,      ///< fail with an explicit timeout error after max_retries
    kDeadline,  ///< caller-chosen deadline; escalate scope when it expires
  };
  Mode mode = Mode::kSoft;
  int max_retries = 3;          ///< for kSoft
  SimTime retry_interval = SimTime::sec(1);
  SimTime deadline = SimTime::sec(30);  ///< for kDeadline

  static RetryPolicy hard() { return {Mode::kHard, 0, SimTime::sec(1), {}}; }
  static RetryPolicy soft(int retries, SimTime interval) {
    return {Mode::kSoft, retries, interval, {}};
  }
  static RetryPolicy with_deadline(SimTime d, SimTime interval) {
    return {Mode::kDeadline, 0, interval, d};
  }
};

}  // namespace esg
