// The escaping-error channel.
//
// "An escaping error is a result accompanied by a change in control flow...
// necessary when a routine is unable to perform its action and is also
// unable to represent the error in the range of its results." (§3.1.)
//
// Within one simulated process, an escaping error is a C++ exception
// carrying an Error. At a process boundary it becomes a unique exit code or
// a broken connection; those conversions live in jvm/ and net/. The
// essential discipline is Principle 2: an escaping error is a *disciplined*
// exit that surfaces as an explicit error one level up — catch_escape() is
// that conversion point.
#pragma once

#include <exception>
#include <string>
#include <type_traits>
#include <utility>

#include "core/result.hpp"

namespace esg {

/// The in-process escaping error. Deliberately not derived from
/// std::runtime_error: it should be caught only at designated scope
/// boundaries, not by blanket catch(std::exception&) handlers.
class EscapingError : public std::exception {
 public:
  explicit EscapingError(Error error)
      : error_(std::move(error)), rendered_(error_.str()) {}

  [[nodiscard]] const Error& error() const { return error_; }
  [[nodiscard]] Error take_error() && { return std::move(error_); }
  [[nodiscard]] const char* what() const noexcept override {
    return rendered_.c_str();
  }

 private:
  Error error_;
  std::string rendered_;
};

/// Raise an escaping error. Marked noreturn: callers use this exactly when
/// they cannot satisfy their interface (Principle 2), never for errors the
/// interface can express.
[[noreturn]] inline void escape(Error error) {
  throw EscapingError(std::move(error));
}

namespace detail {
template <class T>
struct IsResult : std::false_type {};
template <class T>
struct IsResult<Result<T>> : std::true_type {};
}  // namespace detail

/// Run `f`, converting any escaping error into an explicit error at this
/// (higher) level — the second half of Principle 2.
///  - f returns void       -> Result<void>
///  - f returns Result<T>  -> Result<T> (escape unifies into the error arm)
///  - f returns T          -> Result<T>
template <class F>
auto catch_escape(F&& f) {
  using Raw = std::invoke_result_t<F>;
  if constexpr (std::is_void_v<Raw>) {
    try {
      std::forward<F>(f)();
      return Result<void>{};
    } catch (EscapingError& e) {
      return Result<void>{std::move(e).take_error()};
    }
  } else if constexpr (detail::IsResult<Raw>::value) {
    try {
      return std::forward<F>(f)();
    } catch (EscapingError& e) {
      return Raw{std::move(e).take_error()};
    }
  } else {
    try {
      return Result<Raw>{std::forward<F>(f)()};
    } catch (EscapingError& e) {
      return Result<Raw>{std::move(e).take_error()};
    }
  }
}

}  // namespace esg
