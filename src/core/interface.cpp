#include "core/interface.hpp"

#include <algorithm>

namespace esg {

bool ErrorInterface::allows(ErrorKind kind) const {
  return std::find(allowed_.begin(), allowed_.end(), kind) != allowed_.end();
}

}  // namespace esg
