// ErrorInterface: concise, finite error contracts (Principle 4) with
// automatic escaping conversion (Principle 2).
//
// An ErrorInterface names a routine and enumerates the explicit error kinds
// that are part of its contract. filter() is applied at the routine's
// boundary: contractual errors pass through as ordinary explicit results;
// anything else — the mismatch between interface and implementation — is
// converted into an escaping error addressed to the enclosing scope.
//
// This is the antidote to the generic error (§3.4): instead of widening
// IOException until it means nothing, a routine states exactly what it may
// return, and everything else escapes.
#pragma once

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "core/audit.hpp"
#include "core/escape.hpp"
#include "core/result.hpp"

namespace esg {

class ErrorInterface {
 public:
  ErrorInterface(std::string routine, std::initializer_list<ErrorKind> kinds)
      : routine_(std::move(routine)), allowed_(kinds) {}
  ErrorInterface(std::string routine, std::vector<ErrorKind> kinds)
      : routine_(std::move(routine)), allowed_(std::move(kinds)) {}

  [[nodiscard]] const std::string& routine() const { return routine_; }
  [[nodiscard]] const std::vector<ErrorKind>& allowed() const {
    return allowed_;
  }

  [[nodiscard]] bool allows(ErrorKind kind) const;

  /// Enforce the contract on an outgoing result (Principle 4 + 2):
  ///  - success or contractual error: returned unchanged;
  ///  - non-contractual error: raised as an escaping error, its scope
  ///    widened to at least `escape_floor` so the enclosing system can
  ///    route it (never delivered to the caller as an explicit result).
  ///
  /// Contracts are immutable and freely shared (often `static const`), so
  /// the audit ledger is a parameter, not a member: simulation code passes
  /// `&context.audit()`; unbound callers fall back to the shim ledger.
  template <class T>
  Result<T> filter(Result<T> r, ErrorScope escape_floor = ErrorScope::kProcess,
                   PrincipleAudit* audit = nullptr) const {
    PrincipleAudit& ledger = resolve(audit);
    if (r.ok()) return r;
    if (allows(r.error().kind())) {
      ledger.record(Principle::kP4, AuditOutcome::kApplied, routine_);
      return r;
    }
    ledger.record(Principle::kP2, AuditOutcome::kApplied, routine_);
    Error e = std::move(r).error();
    e.widen_scope_in_place(escape_floor);
    escape(Error(e.kind(), e.scope(),
                 "escapes interface '" + routine_ + "': " + e.message())
               .caused_by(std::move(e)));
  }

  /// Deliberately violate the contract (used by the *naive* discipline to
  /// reproduce the paper's §2.3 behaviour): a non-contractual error is
  /// passed to the caller as if it were an ordinary explicit result, and
  /// the violation of Principle 4 is recorded.
  template <class T>
  Result<T> leak(Result<T> r, PrincipleAudit* audit = nullptr) const {
    if (!r.ok() && !allows(r.error().kind())) {
      resolve(audit).record(Principle::kP4, AuditOutcome::kViolated, routine_);
    }
    return r;
  }

 private:
  static PrincipleAudit& resolve(PrincipleAudit* audit) {
    // Compat fallback for unbound callers.  esg-lint: allow(lint/global-singleton)
    return audit != nullptr ? *audit : PrincipleAudit::global();
  }

  std::string routine_;
  std::vector<ErrorKind> allowed_;
};

}  // namespace esg
