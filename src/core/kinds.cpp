#include "core/kinds.hpp"

namespace esg {

std::string_view kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kFileNotFound: return "file-not-found";
    case ErrorKind::kAccessDenied: return "access-denied";
    case ErrorKind::kFileExists: return "file-exists";
    case ErrorKind::kNotDirectory: return "not-directory";
    case ErrorKind::kIsDirectory: return "is-directory";
    case ErrorKind::kNameTooLong: return "name-too-long";
    case ErrorKind::kEndOfFile: return "end-of-file";
    case ErrorKind::kDiskFull: return "disk-full";
    case ErrorKind::kIoError: return "io-error";
    case ErrorKind::kBadFileDescriptor: return "bad-file-descriptor";
    case ErrorKind::kMountOffline: return "mount-offline";
    case ErrorKind::kQuotaExceeded: return "quota-exceeded";
    case ErrorKind::kConnectionRefused: return "connection-refused";
    case ErrorKind::kConnectionLost: return "connection-lost";
    case ErrorKind::kConnectionTimedOut: return "connection-timed-out";
    case ErrorKind::kHostUnreachable: return "host-unreachable";
    case ErrorKind::kProtocolError: return "protocol-error";
    case ErrorKind::kAuthenticationFailed: return "authentication-failed";
    case ErrorKind::kCredentialsExpired: return "credentials-expired";
    case ErrorKind::kNotAuthorized: return "not-authorized";
    case ErrorKind::kNullPointer: return "null-pointer";
    case ErrorKind::kArrayIndexOutOfBounds: return "array-index-out-of-bounds";
    case ErrorKind::kArithmeticError: return "arithmetic-error";
    case ErrorKind::kUncaughtException: return "uncaught-exception";
    case ErrorKind::kExitNonZero: return "exit-non-zero";
    case ErrorKind::kOutOfMemory: return "out-of-memory";
    case ErrorKind::kStackOverflow: return "stack-overflow";
    case ErrorKind::kInternalVmError: return "internal-vm-error";
    case ErrorKind::kJvmMisconfigured: return "jvm-misconfigured";
    case ErrorKind::kJvmMissing: return "jvm-missing";
    case ErrorKind::kScratchUnavailable: return "scratch-unavailable";
    case ErrorKind::kCorruptImage: return "corrupt-image";
    case ErrorKind::kClassNotFound: return "class-not-found";
    case ErrorKind::kBadJobDescription: return "bad-job-description";
    case ErrorKind::kInputUnavailable: return "input-unavailable";
    case ErrorKind::kClaimRejected: return "claim-rejected";
    case ErrorKind::kPolicyRefused: return "policy-refused";
    case ErrorKind::kMatchExpired: return "match-expired";
    case ErrorKind::kDaemonCrashed: return "daemon-crashed";
    case ErrorKind::kRequestMalformed: return "request-malformed";
    case ErrorKind::kUnknown: return "unknown";
  }
  return "unknown";
}

std::optional<ErrorKind> parse_kind(std::string_view name) {
  for (ErrorKind k : kAllKinds) {
    if (kind_name(k) == name) return k;
  }
  return std::nullopt;
}

ErrorScope default_scope(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kFileNotFound:
    case ErrorKind::kAccessDenied:
    case ErrorKind::kFileExists:
    case ErrorKind::kNotDirectory:
    case ErrorKind::kIsDirectory:
    case ErrorKind::kNameTooLong:
    case ErrorKind::kEndOfFile:
    case ErrorKind::kDiskFull:
    case ErrorKind::kIoError:
    case ErrorKind::kBadFileDescriptor:
    case ErrorKind::kQuotaExceeded:
      return ErrorScope::kFile;

    case ErrorKind::kMountOffline:
      return ErrorScope::kLocalResource;

    case ErrorKind::kConnectionRefused:
    case ErrorKind::kConnectionLost:
    case ErrorKind::kConnectionTimedOut:
    case ErrorKind::kHostUnreachable:
      return ErrorScope::kNetwork;

    case ErrorKind::kProtocolError:
    case ErrorKind::kRequestMalformed:
      return ErrorScope::kProcess;

    case ErrorKind::kAuthenticationFailed:
    case ErrorKind::kCredentialsExpired:
    case ErrorKind::kNotAuthorized:
      return ErrorScope::kRemoteResource;

    case ErrorKind::kNullPointer:
    case ErrorKind::kArrayIndexOutOfBounds:
    case ErrorKind::kArithmeticError:
    case ErrorKind::kUncaughtException:
    case ErrorKind::kExitNonZero:
      return ErrorScope::kProgram;

    case ErrorKind::kOutOfMemory:
    case ErrorKind::kStackOverflow:
    case ErrorKind::kInternalVmError:
      return ErrorScope::kVirtualMachine;

    case ErrorKind::kJvmMisconfigured:
    case ErrorKind::kJvmMissing:
    case ErrorKind::kScratchUnavailable:
      return ErrorScope::kRemoteResource;

    case ErrorKind::kCorruptImage:
    case ErrorKind::kClassNotFound:
    case ErrorKind::kBadJobDescription:
      return ErrorScope::kJob;

    case ErrorKind::kInputUnavailable:
      return ErrorScope::kLocalResource;

    case ErrorKind::kClaimRejected:
    case ErrorKind::kPolicyRefused:
    case ErrorKind::kMatchExpired:
      return ErrorScope::kRemoteResource;

    case ErrorKind::kDaemonCrashed:
      return ErrorScope::kProcess;

    case ErrorKind::kUnknown:
      return ErrorScope::kProcess;
  }
  return ErrorScope::kProcess;
}

std::ostream& operator<<(std::ostream& os, ErrorKind kind) {
  return os << kind_name(kind);
}

}  // namespace esg
