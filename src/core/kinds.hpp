// Canonical error kinds.
//
// Principle 4 demands that error interfaces be concise and finite, so the
// whole grid shares one closed vocabulary of error kinds. Each kind carries
// a default scope — the portion of the system it invalidates when first
// discovered — which higher layers may widen (never narrow) as the error
// gains significance travelling upward (§3.3).
#pragma once

#include <optional>
#include <ostream>
#include <string_view>

#include "core/scope.hpp"

namespace esg {

enum class ErrorKind {
  // -- File namespace errors (file scope) --
  kFileNotFound,
  kAccessDenied,
  kFileExists,
  kNotDirectory,
  kIsDirectory,
  kNameTooLong,
  // -- File data errors --
  kEndOfFile,
  kDiskFull,
  kIoError,           ///< transient device error
  kBadFileDescriptor,
  // -- Resource / mount errors --
  kMountOffline,      ///< a whole filesystem is unavailable
  kQuotaExceeded,
  // -- Network errors --
  kConnectionRefused,
  kConnectionLost,
  kConnectionTimedOut,
  kHostUnreachable,
  kProtocolError,
  // -- Security errors --
  kAuthenticationFailed,
  kCredentialsExpired,
  kNotAuthorized,
  // -- Program errors (the job's own doing) --
  kNullPointer,
  kArrayIndexOutOfBounds,
  kArithmeticError,
  kUncaughtException,
  kExitNonZero,
  // -- Virtual machine errors --
  kOutOfMemory,
  kStackOverflow,
  kInternalVmError,
  // -- Execution-site errors --
  kJvmMisconfigured,   ///< bad JAVA path / standard library location
  kJvmMissing,
  kScratchUnavailable,
  // -- Job errors --
  kCorruptImage,       ///< the program image fails verification
  kClassNotFound,      ///< the named entry class does not exist
  kBadJobDescription,
  // -- Submit-side errors --
  kInputUnavailable,   ///< the submit-side (home) filesystem is offline
  // -- Grid plumbing errors --
  kClaimRejected,
  kPolicyRefused,
  kMatchExpired,
  kDaemonCrashed,
  kRequestMalformed,
  // -- Catch-all for foreign errors crossing a boundary --
  kUnknown,
};

/// Short stable name for wire formats and result files.
std::string_view kind_name(ErrorKind kind);

/// Parse a name produced by kind_name(); nullopt on unknown input.
std::optional<ErrorKind> parse_kind(std::string_view name);

/// The scope this kind invalidates when first discovered, before any layer
/// widens it. E.g. kFileNotFound -> file, kOutOfMemory -> virtual-machine,
/// kJvmMisconfigured -> remote-resource, kCorruptImage -> job.
ErrorScope default_scope(ErrorKind kind);

std::ostream& operator<<(std::ostream& os, ErrorKind kind);

/// All kinds; used by sweeps and parameterized tests.
inline constexpr ErrorKind kAllKinds[] = {
    ErrorKind::kFileNotFound,      ErrorKind::kAccessDenied,
    ErrorKind::kFileExists,        ErrorKind::kNotDirectory,
    ErrorKind::kIsDirectory,       ErrorKind::kNameTooLong,
    ErrorKind::kEndOfFile,         ErrorKind::kDiskFull,
    ErrorKind::kIoError,           ErrorKind::kBadFileDescriptor,
    ErrorKind::kMountOffline,      ErrorKind::kQuotaExceeded,
    ErrorKind::kConnectionRefused, ErrorKind::kConnectionLost,
    ErrorKind::kConnectionTimedOut, ErrorKind::kHostUnreachable,
    ErrorKind::kProtocolError,     ErrorKind::kAuthenticationFailed,
    ErrorKind::kCredentialsExpired, ErrorKind::kNotAuthorized,
    ErrorKind::kNullPointer,       ErrorKind::kArrayIndexOutOfBounds,
    ErrorKind::kArithmeticError,   ErrorKind::kUncaughtException,
    ErrorKind::kExitNonZero,       ErrorKind::kOutOfMemory,
    ErrorKind::kStackOverflow,     ErrorKind::kInternalVmError,
    ErrorKind::kJvmMisconfigured,  ErrorKind::kJvmMissing,
    ErrorKind::kScratchUnavailable, ErrorKind::kCorruptImage,
    ErrorKind::kClassNotFound,     ErrorKind::kBadJobDescription,
    ErrorKind::kInputUnavailable,  ErrorKind::kClaimRejected,
    ErrorKind::kPolicyRefused,     ErrorKind::kMatchExpired,
    ErrorKind::kDaemonCrashed,     ErrorKind::kRequestMalformed,
    ErrorKind::kUnknown,
};

}  // namespace esg
