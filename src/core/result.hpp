// Result<T>: the explicit-error channel.
//
// "An explicit error is a result that describes an inability to carry out
// the requested action." (§3.1.) Result<T> is the vocabulary type for every
// fallible routine in the grid: it either holds a T or an Error, and the
// caller must decide which. The escaping-error channel (escape.hpp) handles
// everything a routine's interface cannot express.
#pragma once

#include <cassert>
#include <optional>
#include <type_traits>
#include <utility>
#include <variant>

#include "core/error.hpp"

namespace esg {

template <class T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or an Error keeps call sites terse:
  //   return 42;            return Error(ErrorKind::kDiskFull);
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : state_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  [[nodiscard]] Error& error() & {
    assert(!ok());
    return std::get<Error>(state_);
  }
  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return std::get<Error>(state_);
  }
  [[nodiscard]] Error&& error() && {
    assert(!ok());
    return std::get<Error>(std::move(state_));
  }

  /// Transform the value; errors pass through untouched.
  template <class F>
  auto map(F&& f) && -> Result<std::invoke_result_t<F, T&&>> {
    if (ok()) return std::forward<F>(f)(std::get<T>(std::move(state_)));
    return std::get<Error>(std::move(state_));
  }

  /// Chain another fallible step; errors pass through untouched.
  template <class F>
  auto and_then(F&& f) && -> std::invoke_result_t<F, T&&> {
    if (ok()) return std::forward<F>(f)(std::get<T>(std::move(state_)));
    return std::get<Error>(std::move(state_));
  }

  /// Transform the error; values pass through untouched.
  template <class F>
  Result<T> map_error(F&& f) && {
    if (ok()) return std::get<T>(std::move(state_));
    return std::forward<F>(f)(std::get<Error>(std::move(state_)));
  }

 private:
  std::variant<T, Error> state_;
};

/// Result<void>: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Error& error() & {
    assert(!ok());
    return *error_;
  }
  [[nodiscard]] const Error& error() const& {
    assert(!ok());
    return *error_;
  }
  [[nodiscard]] Error&& error() && {
    assert(!ok());
    return std::move(*error_);
  }

  template <class F>
  auto and_then(F&& f) && -> std::invoke_result_t<F> {
    if (ok()) return std::forward<F>(f)();
    return std::move(*error_);
  }

  template <class F>
  Result<void> map_error(F&& f) && {
    if (ok()) return {};
    return std::forward<F>(f)(std::move(*error_));
  }

  static Result<void> success() { return {}; }

 private:
  std::optional<Error> error_;
};

/// Convenience: Ok() for Result<void>.
inline Result<void> Ok() { return {}; }

}  // namespace esg
