#include "core/router.hpp"

namespace esg {

void ScopeRouter::register_handler(ErrorScope scope, std::string handler_name,
                                   Handler handler) {
  const int rank = scope_rank(scope);
  by_rank_[rank] = Entry{std::move(handler_name), std::move(handler)};
  scope_by_rank_[rank] = scope;
}

void ScopeRouter::unregister(ErrorScope scope) {
  by_rank_.erase(scope_rank(scope));
  scope_by_rank_.erase(scope_rank(scope));
}

bool ScopeRouter::has_handler(ErrorScope scope) const {
  return by_rank_.count(scope_rank(scope)) != 0;
}

const std::string* ScopeRouter::handler_name(ErrorScope scope) const {
  auto it = by_rank_.find(scope_rank(scope));
  return it == by_rank_.end() ? nullptr : &it->second.name;
}

RouteOutcome ScopeRouter::route(Error error) {
  RouteOutcome outcome;
  int rank = scope_rank(error.scope());
  // Find the manager of the error's scope, or the nearest enclosing one.
  auto it = by_rank_.lower_bound(rank);
  while (it != by_rank_.end()) {
    const ErrorScope handler_scope = scope_by_rank_.at(it->first);
    // Delivering to a handler whose scope encloses the error's is a correct
    // application of Principle 3.
    audit().record(Principle::kP3, AuditOutcome::kApplied, it->second.name);
    trace_.routed(error, it->second.name);
    const Disposition d = it->second.handler(error);
    outcome.path.push_back(RouteStep{handler_scope, it->second.name, d});
    if (d != Disposition::kPropagate) {
      if (d == Disposition::kHandled) {
        trace_.consumed(error, 0, "by " + it->second.name);
      } else {
        trace_.masked(error, 0, "by " + it->second.name);
      }
      outcome.delivered = true;
      outcome.final_error = std::move(error);
      return outcome;
    }
    // The handler reconsidered the error: it now belongs, at minimum, to
    // the scope *above* this handler. Widening below the handler's scope
    // would loop; widening is monotone by construction.
    auto next = std::next(it);
    if (next != by_rank_.end()) {
      error.widen_scope_in_place(scope_by_rank_.at(next->first));
    }
    it = next;
  }
  // No handler manages a scope this large: a hole in the management
  // structure. Record the P3 violation and report non-delivery.
  audit().record(Principle::kP3, AuditOutcome::kViolated,
                 "unrouted:" + std::string(scope_name(error.scope())));
  trace_.dropped(error, 0, "no handler manages this scope");
  outcome.delivered = false;
  outcome.final_error = std::move(error);
  return outcome;
}

}  // namespace esg
