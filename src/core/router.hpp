// ScopeRouter: deliver an error to the program that manages its scope
// (Principle 3).
//
// Each process in the grid registers itself as the handler for the scopes
// it manages (Figure 3: the JVM manages virtual-machine scope, the starter
// manages remote-resource scope, the shadow local-resource scope, the
// schedd job and program scope). route() finds the handler for an error's
// scope; if no handler manages that exact scope, the error escalates to the
// nearest registered enclosing scope — never to a smaller one.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/error.hpp"
#include "obs/trace.hpp"

namespace esg {

/// What a handler did with an error it manages.
enum class Disposition {
  kHandled,    ///< consumed; the condition is resolved at this scope
  kMasked,     ///< hidden by a fault-tolerance technique (retry/replica)
  kPropagate,  ///< reconsidered and passed to the next enclosing scope
};

struct RouteStep {
  ErrorScope scope;
  std::string handler;
  Disposition disposition;
};

struct RouteOutcome {
  bool delivered = false;          ///< some handler consumed the error
  std::vector<RouteStep> path;     ///< every handler visited, in order
  Error final_error;               ///< the error as last seen
};

class ScopeRouter {
 public:
  /// A handler receives the error (possibly widened since discovery) and
  /// reports what it did. Handlers that propagate may mutate the error
  /// (widen scope, wrap with context) via the reference.
  using Handler = std::function<Disposition(Error&)>;

  /// An unbound router records into the process-wide shim audit/recorder;
  /// a router constructed inside a simulation binds to that simulation's
  /// ledger and journal (sim code passes `&context.audit(),
  /// &context.recorder()`).
  ScopeRouter() : trace_("router") {}
  ScopeRouter(PrincipleAudit* audit, obs::FlightRecorder* recorder)
      : audit_(audit), trace_("router", recorder) {}

  /// Register `handler_name` as the manager of `scope`. At most one
  /// handler per scope; re-registration replaces (a restarted daemon).
  void register_handler(ErrorScope scope, std::string handler_name,
                        Handler handler);

  void unregister(ErrorScope scope);

  [[nodiscard]] bool has_handler(ErrorScope scope) const;
  [[nodiscard]] const std::string* handler_name(ErrorScope scope) const;

  /// Deliver the error to the manager of its scope. If that handler
  /// propagates, the error moves to the nearest registered enclosing scope,
  /// and so on. Returns the full route. If no handler exists at or above
  /// the error's scope, delivered=false — the caller has detected a hole in
  /// the management structure (a P3 violation) and must treat the error as
  /// having pool scope.
  RouteOutcome route(Error error);

 private:
  struct Entry {
    std::string name;
    Handler handler;
  };

  [[nodiscard]] PrincipleAudit& audit() const {
    // Compat fallback for unbound routers.  esg-lint: allow(lint/global-singleton)
    return audit_ != nullptr ? *audit_ : PrincipleAudit::global();
  }

  // Keyed by rank so "nearest enclosing" is a simple upper_bound walk.
  std::map<int, Entry> by_rank_;
  std::map<int, ErrorScope> scope_by_rank_;
  PrincipleAudit* audit_ = nullptr;
  obs::TraceSink trace_;
};

}  // namespace esg
