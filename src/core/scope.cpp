#include "core/scope.hpp"

namespace esg {

std::string_view scope_name(ErrorScope scope) {
  switch (scope) {
    case ErrorScope::kProgram: return "program";
    case ErrorScope::kVirtualMachine: return "virtual-machine";
    case ErrorScope::kRemoteResource: return "remote-resource";
    case ErrorScope::kLocalResource: return "local-resource";
    case ErrorScope::kJob: return "job";
    case ErrorScope::kFunction: return "function";
    case ErrorScope::kFile: return "file";
    case ErrorScope::kProcess: return "process";
    case ErrorScope::kNetwork: return "network";
    case ErrorScope::kCluster: return "cluster";
    case ErrorScope::kPool: return "pool";
  }
  return "unknown";
}

std::optional<ErrorScope> parse_scope(std::string_view name) {
  for (ErrorScope s : kAllScopes) {
    if (scope_name(s) == name) return s;
  }
  return std::nullopt;
}

int scope_rank(ErrorScope scope) {
  switch (scope) {
    case ErrorScope::kFunction: return 0;
    case ErrorScope::kFile: return 1;
    case ErrorScope::kProgram: return 2;
    case ErrorScope::kProcess: return 3;
    case ErrorScope::kVirtualMachine: return 4;
    // A network error invalidates a link; persistence escalates it to the
    // machine behind the link (§5), so network sits *below*
    // remote-resource in extent.
    case ErrorScope::kNetwork: return 5;
    case ErrorScope::kRemoteResource: return 6;
    case ErrorScope::kLocalResource: return 7;
    case ErrorScope::kJob: return 8;
    case ErrorScope::kCluster: return 9;
    case ErrorScope::kPool: return 10;
  }
  return -1;
}

bool scope_contains(ErrorScope outer, ErrorScope inner) {
  return scope_rank(outer) >= scope_rank(inner);
}

ScheddDisposition schedd_disposition(ErrorScope scope) {
  if (scope == ErrorScope::kProgram) return ScheddDisposition::kComplete;
  if (scope_rank(scope) >= scope_rank(ErrorScope::kJob)) {
    return ScheddDisposition::kUnexecutable;
  }
  return ScheddDisposition::kRetryElsewhere;
}

std::ostream& operator<<(std::ostream& os, ErrorScope scope) {
  return os << scope_name(scope);
}

}  // namespace esg
