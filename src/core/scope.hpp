// Error scope — the central abstraction of the paper.
//
// "The scope of an error is the portion of a system which it invalidates."
// (Thain & Livny, HPDC 2002, §3.3.) An error must be propagated to the
// program that manages its scope (Principle 3). This header defines the
// scope taxonomy used throughout the grid, an ordering that captures how
// much of the system each scope invalidates, and the classification rules
// the schedd applies as the last line of defense.
#pragma once

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace esg {

/// The portion of the system an error invalidates.
///
/// The first group mirrors Figure 3 of the paper (the Java Universe
/// scopes); the second group covers the generic scopes discussed in §3.3
/// (function call, RPC/process, PVM cluster, network, whole pool).
enum class ErrorScope {
  // -- Java Universe scopes (Figure 3) --
  kProgram,          ///< The running user program (e.g. a thrown exception).
  kVirtualMachine,   ///< The JVM instance (e.g. OutOfMemoryError).
  kRemoteResource,   ///< The execution machine (e.g. misconfigured JVM).
  kLocalResource,    ///< The submit-side resources (e.g. home FS offline).
  kJob,              ///< The job itself (e.g. corrupt program image).
  // -- Generic scopes (§3.3) --
  kFunction,         ///< A single function call.
  kFile,             ///< A single named file (e.g. FileNotFound).
  kProcess,          ///< A whole process (e.g. RPC mechanism broken).
  kNetwork,          ///< A network link or connection.
  kCluster,          ///< A cluster of cooperating nodes (e.g. PVM).
  kPool,             ///< The entire pool / grid.
};

/// Short stable name ("program", "virtual-machine", ...).
std::string_view scope_name(ErrorScope scope);

/// Parse a scope name produced by scope_name(). Returns nullopt on unknown
/// input — callers at trust boundaries (result files, wire messages) must
/// handle garbage without asserting.
std::optional<ErrorScope> parse_scope(std::string_view name);

/// A total "extent" ordering: how much of the system the scope invalidates.
/// Larger rank invalidates more. The ordering embeds the paper's chain for
/// the Java Universe: program < virtual-machine < remote-resource <
/// local-resource < job, with the generic scopes interleaved where they
/// naturally sit (function/file below program; network between resources;
/// cluster and pool above job).
int scope_rank(ErrorScope scope);

/// True if an error of scope `outer` invalidates everything an error of
/// scope `inner` does (rank comparison).
bool scope_contains(ErrorScope outer, ErrorScope inner);

/// The schedd's last-line-of-defense classification (§4):
///  - program scope  -> the job completed; return the result to the user;
///  - job scope      -> the job is unexecutable; return it to the user;
///  - anything else  -> log and attempt execution at a new site.
enum class ScheddDisposition { kComplete, kUnexecutable, kRetryElsewhere };
ScheddDisposition schedd_disposition(ErrorScope scope);

std::ostream& operator<<(std::ostream& os, ErrorScope scope);

/// Number of ErrorScope enumerators; arrays indexed by
/// static_cast<std::size_t>(scope) use this bound.
inline constexpr std::size_t kNumErrorScopes = 11;

/// All scopes, in rank order; used by sweeps and parameterized tests.
inline constexpr ErrorScope kAllScopes[] = {
    ErrorScope::kFunction,      ErrorScope::kFile,
    ErrorScope::kProgram,       ErrorScope::kProcess,
    ErrorScope::kVirtualMachine, ErrorScope::kNetwork,
    ErrorScope::kRemoteResource, ErrorScope::kLocalResource,
    ErrorScope::kJob,           ErrorScope::kCluster,
    ErrorScope::kPool,
};

}  // namespace esg
