// Grid-wide configuration: ports, timeouts, and the error discipline.
//
// DisciplineConfig is the experiment's main independent variable: kNaive
// reproduces the paper's §2.3 first design (trust the JVM exit code,
// generic I/O exceptions, every outcome returned to the user); kScoped is
// the §4 redesign (wrapper result file, concise I/O contracts with
// escaping conversion, scope routing in the schedd). The two operational
// mitigations from §5 are independent toggles.
#pragma once

#include <string>

#include "common/simtime.hpp"
#include "jvm/javaio.hpp"
#include "jvm/jvm.hpp"
#include "resilience/pattern.hpp"
#include "resilience/policy.hpp"

namespace esg::daemons {

struct Ports {
  int matchmaker = 9618;
  int schedd = 9615;
  int startd = 9614;
  int starter_proxy_base = 9800;  ///< + per-starter offset
};

struct DisciplineConfig {
  /// Starter interposes the result-file wrapper (§4 fix #1).
  jvm::WrapMode wrap = jvm::WrapMode::kWrapped;
  /// I/O library contract style (§4 fix #2).
  jvm::IoDiscipline io = jvm::IoDiscipline::kConcise;
  /// Schedd routes outcomes by scope (Principle 3); false = every outcome
  /// goes straight back to the user (§2.3 behaviour).
  bool scope_routing = true;
  /// §5 mitigation: startd tests the Java installation at startup and
  /// declines to advertise a broken one.
  bool startd_selftest = false;
  /// §5 complementary mitigation: schedd detects and avoids hosts with
  /// chronic failures.
  bool schedd_avoidance = false;
  /// §3.4 quirk: generic-discipline DiskFull blocks forever.
  bool generic_diskfull_blocks = false;
  /// §5: time widens scope — a job whose environment failures persist past
  /// the ScopeEscalator::schedd_defaults() thresholds is given up on with
  /// the escalated scope rather than retried blindly until max_attempts.
  bool use_escalation = true;

  /// Transparent checkpointing for Java-universe jobs (§2.1): the starter
  /// streams periodic checkpoints to the shadow's stable storage, and a
  /// later attempt resumes instead of restarting. Vanilla jobs never
  /// checkpoint (they cannot, §2.1).
  bool checkpointing = false;
  SimTime checkpoint_interval = SimTime::minutes(5);

  /// Resilience policy: which catalog pattern handles which (scope × kind)
  /// at the schedd's error disposition. An empty table means the classic
  /// discipline (PolicyTable::classic() — program/job surface to the user,
  /// everything else retries elsewhere), which is byte-identical to the
  /// pre-catalog hardcoded behavior.
  resilience::PolicyTable policy;
  /// Decorrelate retry backoff with a deterministic U[0.5, 1.5) factor
  /// drawn from the pinned rng_streams::retry_jitter stream. Off by
  /// default: the classic schedule stays draw-free and byte-identical.
  bool retry_jitter = false;

  /// Retry safety valve: after this many execution attempts the schedd
  /// gives up and returns the job with its last error.
  int max_attempts = 20;
  /// Backoff before rescheduling a non-program failure; doubles per
  /// consecutive incidental failure, capped at max_backoff.
  SimTime reschedule_delay = SimTime::sec(2);
  SimTime max_backoff = SimTime::minutes(5);
  /// Shadow *inactivity* watchdog: aborted if the starter sends nothing
  /// (keepalives included) for this long. Healthy long-running jobs are
  /// safe — the starter keepalives every Timeouts::keepalive_interval.
  SimTime job_watchdog = SimTime::minutes(30);
  /// A failing attempt that nevertheless ran at least this long made real
  /// progress: the environment mostly worked, so the §5 escalation streak
  /// restarts rather than treating churn as one persistent fault.
  SimTime escalation_progress_reset = SimTime::minutes(5);

  // Avoidance tuning.
  int avoidance_threshold = 3;
  SimTime avoidance_cooldown = SimTime::minutes(30);

  // Flocking (multi-pool federation) tuning. A job still idle this long
  // after submission has overflowed its home pool and is advertised to the
  // schedd's flock targets. Under the scoped discipline, remote-pool
  // failures are consumed at the home schedd's flock layer as
  // cluster-scope conditions; flock_avoidance_threshold of them in a row
  // suspends flocking to that pool for flock_cooldown (the cross-pool twin
  // of §5 machine avoidance).
  SimTime flock_delay = SimTime::sec(15);
  int flock_avoidance_threshold = 3;
  SimTime flock_cooldown = SimTime::minutes(10);

  static DisciplineConfig naive() {
    DisciplineConfig d;
    d.wrap = jvm::WrapMode::kBare;
    d.io = jvm::IoDiscipline::kGeneric;
    d.scope_routing = false;
    return d;
  }
  static DisciplineConfig scoped() { return DisciplineConfig{}; }

  /// Scoped pool with every error handled by one catalog pattern — the
  /// chaos scorecard's monoculture cells. Pattern-specific machinery
  /// (avoidance tracker, checkpoint streaming, jitter) lights up only for
  /// the pattern that needs it, so each column measures one strategy.
  static DisciplineConfig pattern_monoculture(resilience::PatternKind p) {
    DisciplineConfig d;
    d.policy = resilience::PolicyTable::monoculture(p);
    d.schedd_avoidance = p == resilience::PatternKind::kAvoid;
    if (p == resilience::PatternKind::kCheckpointRestart ||
        p == resilience::PatternKind::kMigrate) {
      d.checkpointing = true;
      d.checkpoint_interval = SimTime::sec(20);
    }
    d.retry_jitter = p == resilience::PatternKind::kRetry;
    return d;
  }

  [[nodiscard]] std::string name() const {
    std::string out = scope_routing ? "scoped" : "naive";
    if (startd_selftest) out += "+selftest";
    if (schedd_avoidance) out += "+avoidance";
    return out;
  }
};

struct Timeouts {
  SimTime matchmaker_interval = SimTime::sec(5);
  SimTime advertise_interval = SimTime::sec(5);
  SimTime ad_lifetime = SimTime::sec(15);
  SimTime rpc_timeout = SimTime::sec(30);
  SimTime chirp_timeout = SimTime::sec(30);
  /// Starter -> shadow heartbeat; feeds the shadow's inactivity watchdog.
  SimTime keepalive_interval = SimTime::minutes(5);
  /// Most idle jobs attached to one submitter ad. The matchmaker can only
  /// place what it sees; the rest wait for the next ad once the head of
  /// the queue drains.
  std::size_t advertise_max_jobs = 64;
  /// Event-driven submitter ads (job went idle, claim bounced) are
  /// coalesced into one ad per window; zero keeps the historical
  /// one-ad-per-event behavior. The periodic advertise loop is unaffected.
  /// Large pools want ~hundreds of ms: a negotiation cycle that just
  /// bounced 1000 claims triggers one re-advertise, not 1000.
  SimTime advertise_coalesce = SimTime::zero();
};

}  // namespace esg::daemons
