// Ground truth for the experiment harness.
//
// The whole point of the naive discipline is that information is *lost* on
// its way to the user, so experiments cannot measure that loss from the
// protocol alone. The GroundTruthLog is the harness's omniscient side
// channel: the starter records what actually happened in each execution
// attempt, bypassing the protocol entirely. No daemon ever reads it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "core/error.hpp"

namespace esg::daemons {

struct AttemptGroundTruth {
  std::uint64_t job_id = 0;
  std::string machine;
  bool completed_main = false;
  std::optional<int> system_exit;
  /// The true terminal condition with its true scope, when abnormal.
  std::optional<Error> condition;
  double cpu_seconds = 0;  ///< compute burned by this attempt

  /// True when the attempt ended for reasons that are not the program's
  /// own doing. The *surfaced* scope may have been laundered to program
  /// scope (an uncaught generic IOException, §2.3), so the judgement walks
  /// the cause chain: if anything underneath invalidated more than the
  /// program, the condition was incidental.
  [[nodiscard]] bool incidental() const {
    if (!condition.has_value()) return false;
    const Error* e = &*condition;
    while (e != nullptr) {
      if (scope_rank(e->scope()) > scope_rank(ErrorScope::kProgram)) {
        return true;
      }
      e = e->cause().get();
    }
    return false;
  }
};

class GroundTruthLog {
 public:
  void record(AttemptGroundTruth truth) {
    entries_.push_back(std::move(truth));
  }
  [[nodiscard]] const std::vector<AttemptGroundTruth>& entries() const {
    return entries_;
  }
  void clear() { entries_.clear(); }

 private:
  std::vector<AttemptGroundTruth> entries_;
};

}  // namespace esg::daemons
