#include "daemons/job.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace esg::daemons {

namespace {

void put_string_list(classad::ClassAd& ad, const std::string& name,
                     const std::vector<std::string>& items) {
  std::vector<classad::Value> values;
  values.reserve(items.size());
  for (const std::string& s : items) values.push_back(classad::Value::string(s));
  ad.insert(name, std::make_unique<classad::Literal>(
                      classad::Value::list(std::move(values))));
}

std::vector<std::string> get_string_list(const classad::ClassAd& ad,
                                         const std::string& name) {
  std::vector<std::string> out;
  const classad::Value v = ad.eval_attr(name);
  if (!v.is_list()) return out;
  for (const classad::Value& item : v.as_list()) {
    if (item.is_string()) out.push_back(item.as_string());
  }
  return out;
}

}  // namespace

std::string_view universe_name(Universe u) {
  switch (u) {
    case Universe::kJava: return "java";
    case Universe::kStandard: return "standard";
    case Universe::kVanilla: return "vanilla";
  }
  return "?";
}

std::optional<Universe> parse_universe(std::string_view name) {
  if (name == "java") return Universe::kJava;
  if (name == "standard") return Universe::kStandard;
  if (name == "vanilla") return Universe::kVanilla;
  return std::nullopt;
}

Result<classad::ClassAd> JobDescription::to_summary_ad() const {
  classad::ClassAd ad;
  ad.set("MyType", "Job");
  ad.set("JobId", static_cast<std::int64_t>(id.value()));
  ad.set("Owner", owner);
  ad.set("Cmd", program.main_class);
  ad.set("ImageSizeMB", image_size_mb);
  ad.set("JobUniverse", std::string(universe_name(universe)));
  if (Result<void> r = ad.insert_expr("Requirements", requirements); !r.ok()) {
    return Error(ErrorKind::kBadJobDescription,
                 "bad Requirements: " + r.error().message());
  }
  if (Result<void> r = ad.insert_expr("Rank", rank); !r.ok()) {
    return Error(ErrorKind::kBadJobDescription,
                 "bad Rank: " + r.error().message());
  }
  return ad;
}

Result<classad::ClassAd> JobDescription::to_full_ad() const {
  Result<classad::ClassAd> ad = to_summary_ad();
  if (!ad.ok()) return ad;
  ad.value().set("ProgramImage", jvm::serialize_program(program));
  put_string_list(ad.value(), "InputFiles", input_files);
  put_string_list(ad.value(), "OutputFiles", output_files);
  return ad;
}

Result<JobDescription> JobDescription::from_ad(const classad::ClassAd& ad) {
  JobDescription out;
  out.id = JobId{static_cast<std::uint64_t>(ad.eval_int("JobId"))};
  out.owner = ad.eval_string("Owner", "user");
  const std::optional<Universe> universe =
      parse_universe(ad.eval_string("JobUniverse", "java"));
  if (!universe.has_value()) {
    return Error(ErrorKind::kBadJobDescription,
                 "unknown universe '" + ad.eval_string("JobUniverse") + "'");
  }
  out.universe = *universe;
  out.image_size_mb = ad.eval_int("ImageSizeMB", 16);
  const classad::ExprTree* req = ad.lookup("Requirements");
  out.requirements = req != nullptr ? req->str() : "true";
  const classad::ExprTree* rank = ad.lookup("Rank");
  out.rank = rank != nullptr ? rank->str() : "0";
  out.input_files = get_string_list(ad, "InputFiles");
  out.output_files = get_string_list(ad, "OutputFiles");
  const std::string image = ad.eval_string("ProgramImage");
  if (image.empty()) {
    return Error(ErrorKind::kBadJobDescription, "job ad has no ProgramImage");
  }
  Result<jvm::JobProgram> program = jvm::deserialize_program(image);
  if (!program.ok()) {
    return Error(ErrorKind::kBadJobDescription,
                 "unloadable program image: " + program.error().message());
  }
  out.program = std::move(program).value();
  return out;
}

// ---- error <-> ad ----

void error_to_ad(const Error& e, const std::string& prefix,
                 classad::ClassAd& ad) {
  ad.set(prefix + "Kind", std::string(kind_name(e.kind())));
  ad.set(prefix + "Scope", std::string(scope_name(e.scope())));
  ad.set(prefix + "Message", e.message());
  for (const auto& [k, v] : e.labels()) {
    ad.set(prefix + "Label_" + k, v);
  }
}

std::optional<Error> error_from_ad(const classad::ClassAd& ad,
                                   const std::string& prefix) {
  const std::string kind_text = ad.eval_string(prefix + "Kind");
  if (kind_text.empty()) return std::nullopt;
  const std::optional<ErrorKind> kind = parse_kind(kind_text);
  const std::optional<ErrorScope> scope =
      parse_scope(ad.eval_string(prefix + "Scope"));
  if (!kind.has_value()) return std::nullopt;
  Error e(*kind, scope.value_or(default_scope(*kind)),
          ad.eval_string(prefix + "Message"));
  const std::string label_prefix = prefix + "Label_";
  for (const std::string& name : ad.names()) {
    if (name.size() > label_prefix.size() &&
        iequals(name.substr(0, label_prefix.size()), label_prefix)) {
      e = std::move(e).with_label(name.substr(label_prefix.size()),
                                  ad.eval_string(name));
    }
  }
  return e;
}

// ---- ExecutionSummary ----

ExecutionSummary ExecutionSummary::program(jvm::ResultFile result,
                                           std::string machine,
                                           double cpu_seconds) {
  ExecutionSummary s;
  s.have_program_result = true;
  s.program_result = std::move(result);
  s.machine = std::move(machine);
  s.cpu_seconds = cpu_seconds;
  return s;
}

ExecutionSummary ExecutionSummary::environment(Error error,
                                               std::string machine,
                                               double cpu_seconds) {
  ExecutionSummary s;
  s.have_program_result = false;
  s.environment_error = std::move(error);
  s.machine = std::move(machine);
  s.cpu_seconds = cpu_seconds;
  return s;
}

classad::ClassAd ExecutionSummary::to_ad() const {
  classad::ClassAd ad;
  ad.set("MyType", "ExecutionSummary");
  ad.set("Machine", machine);
  ad.set("CpuSeconds", cpu_seconds);
  ad.set("HaveProgramResult", have_program_result);
  if (have_program_result) {
    ad.set("ResultFile", program_result.encode());
  } else if (environment_error.has_value()) {
    error_to_ad(*environment_error, "Error", ad);
  }
  return ad;
}

Result<ExecutionSummary> ExecutionSummary::from_ad(const classad::ClassAd& ad) {
  ExecutionSummary out;
  out.machine = ad.eval_string("Machine");
  out.cpu_seconds = ad.eval_real("CpuSeconds");
  out.have_program_result = ad.eval_bool("HaveProgramResult");
  if (out.have_program_result) {
    Result<jvm::ResultFile> rf =
        jvm::ResultFile::parse(ad.eval_string("ResultFile"));
    if (!rf.ok()) {
      return Error(ErrorKind::kRequestMalformed,
                   "summary with bad result file: " + rf.error().message());
    }
    out.program_result = std::move(rf).value();
  } else {
    std::optional<Error> e = error_from_ad(ad, "Error");
    if (!e.has_value()) {
      return Error(ErrorKind::kRequestMalformed,
                   "summary with neither result nor error");
    }
    out.environment_error = std::move(e);
  }
  return out;
}

std::string ExecutionSummary::str() const {
  std::ostringstream os;
  if (have_program_result) {
    os << "program " << exit_by_name(program_result.exit_by);
    if (program_result.exit_by == jvm::ResultFile::ExitBy::kException &&
        program_result.error.has_value()) {
      os << " (" << program_result.error->str() << ")";
    } else {
      os << " code=" << program_result.exit_code;
    }
  } else if (environment_error.has_value()) {
    os << "environment error: " << environment_error->str();
  } else {
    os << "(empty summary)";
  }
  os << " on " << machine;
  return os.str();
}

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::kIdle: return "idle";
    case JobState::kClaiming: return "claiming";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kUnexecutable: return "unexecutable";
  }
  return "?";
}

}  // namespace esg::daemons
