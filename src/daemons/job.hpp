// Job descriptions, attempt records, and execution summaries.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classad/classad.hpp"
#include "common/ids.hpp"
#include "common/simtime.hpp"
#include "core/error.hpp"
#include "core/result.hpp"
#include "jvm/program.hpp"
#include "jvm/resultfile.hpp"

namespace esg::daemons {

/// Which execution environment the job wants (§2.1: Condor provides
/// several universes, each a package of environmental features).
enum class Universe {
  kJava,      ///< JVM + wrapper + Chirp proxy I/O (the paper's subject)
  kStandard,  ///< re-linked binary: remote I/O + transparent checkpointing,
              ///< but only an exit code for results (no wrapper exists)
  kVanilla,   ///< plain binary: no wrapper, no proxy, exit codes only
};

std::string_view universe_name(Universe u);
std::optional<Universe> parse_universe(std::string_view name);

/// What the user submits.
struct JobDescription {
  JobId id;
  std::string owner = "user";
  Universe universe = Universe::kJava;
  jvm::JobProgram program;
  /// ClassAd expressions, evaluated against candidate machine ads.
  std::string requirements = "TARGET.HasJava =?= true";
  std::string rank = "0";
  std::int64_t image_size_mb = 16;
  std::vector<std::string> input_files;   ///< absolute submit-host paths
  std::vector<std::string> output_files;  ///< scratch-relative names

  /// The summary ad used for matchmaking (no program image).
  [[nodiscard]] Result<classad::ClassAd> to_summary_ad() const;
  /// The full ad shipped at activation (includes the program image).
  [[nodiscard]] Result<classad::ClassAd> to_full_ad() const;
  static Result<JobDescription> from_ad(const classad::ClassAd& ad);
};

/// What the starter reports to the shadow, and the shadow to the schedd.
/// Exactly one of the two arms is populated:
///  - a program result (completion, System.exit, or a program-scope
///    exception) — the environment did its job, this is what main did;
///  - an environment error with its scope — the environment could not
///    provide what the job needed.
struct ExecutionSummary {
  bool have_program_result = false;
  jvm::ResultFile program_result;
  std::optional<Error> environment_error;
  std::string machine;
  double cpu_seconds = 0;

  [[nodiscard]] classad::ClassAd to_ad() const;
  static Result<ExecutionSummary> from_ad(const classad::ClassAd& ad);

  static ExecutionSummary program(jvm::ResultFile result, std::string machine,
                                  double cpu_seconds);
  static ExecutionSummary environment(Error error, std::string machine,
                                      double cpu_seconds = 0);

  [[nodiscard]] std::string str() const;
};

enum class JobState {
  kIdle,
  kClaiming,
  kRunning,
  kCompleted,      ///< program result delivered to the user
  kUnexecutable,   ///< job-scope error: returned to the user unrun
};

std::string_view job_state_name(JobState s);

struct AttemptRecord {
  std::string machine;
  SimTime started{};
  SimTime ended{};
  ExecutionSummary summary;
};

/// The schedd's persistent record of one job.
struct JobRecord {
  JobDescription description;
  JobState state = JobState::kIdle;
  std::vector<AttemptRecord> attempts;
  /// Final result delivered to the user (valid once state is kCompleted
  /// or kUnexecutable).
  ExecutionSummary final_summary;
  SimTime submitted{};
  SimTime finished{};
  /// Retry backoff: the job is not advertised for matching before this
  /// instant (§4: a local-resource error means "the job cannot run right
  /// now" — waiting, not machine-hopping, is the remedy).
  SimTime not_before{};
  /// Start of the current streak of environment failures (zero when the
  /// last attempt produced a program result); input to scope escalation.
  SimTime env_streak_start{};
  /// Machines a RetryElsewhere/Migrate strategy decision has excluded for
  /// this job: matches offering them are declined (per-job, unlike the
  /// pool-wide chronic-host avoidance list).
  std::vector<std::string> excluded_machines;
  /// The summary ad, parsed once at submit/recovery and shared into every
  /// submitter ad and claim request thereafter. Null when the description
  /// does not parse — such a job stays idle and can never be claimed.
  std::shared_ptr<const classad::ClassAd> summary_ad;
};

/// Where a job's checkpoint lives on the submit machine's spool.
inline std::string checkpoint_path(std::uint64_t job_id) {
  return "/spool/ckpt_job_" + std::to_string(job_id);
}

/// Encode an Error into ad attributes (prefix + Kind/Scope/Message) and
/// back; the round trip preserves kind, scope, message, and ground-truth
/// labels.
void error_to_ad(const Error& e, const std::string& prefix,
                 classad::ClassAd& ad);
std::optional<Error> error_from_ad(const classad::ClassAd& ad,
                                   const std::string& prefix);

}  // namespace esg::daemons
