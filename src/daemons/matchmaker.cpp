#include "daemons/matchmaker.hpp"

#include <algorithm>

#include "analysis/topology.hpp"

namespace esg::daemons {

namespace {
constexpr std::uint32_t kNoRank = 0xffffffffu;
}  // namespace

Matchmaker::Matchmaker(sim::Engine& engine, net::NetworkFabric& fabric,
                       std::string host, Ports ports, Timeouts timeouts)
    : Actor(engine, std::move(host)),
      fabric_(fabric),
      ports_(ports),
      timeouts_(timeouts) {
  rebind_trace("matchmaker@" + name());
}

Matchmaker::~Matchmaker() { shutdown(); }

void Matchmaker::shutdown() {
  if (!running_) return;
  running_ = false;
  fabric_.unlisten(address());
  startd_ads_.clear();
  submitter_ads_.clear();
  index_ = classad::AdIndex();
  free_slots_.clear();
  next_slot_ = 0;
  cycle_lookups_.clear();
}

void Matchmaker::boot() {
  running_ = true;
  Result<void> listening = fabric_.listen(
      address(), [this](net::Endpoint ep) { on_accept(std::move(ep)); });
  if (!listening.ok()) {
    log().error("cannot listen: ", listening.error());
    return;
  }
  log().info("matchmaker up at ", address().str());
  // First cycle after one interval, then repeating.
  after(timeouts_.matchmaker_interval, [this] { negotiate(); });
}

void Matchmaker::on_accept(net::Endpoint endpoint) {
  auto channel = std::make_shared<RpcChannel>(engine(), std::move(endpoint),
                                              SimTime::zero());
  channel->set_server(
      [](const std::string&, const classad::ClassAd&,
         std::function<void(classad::ClassAd)> reply) {
        classad::ClassAd nack;
        nack.set("Ok", false);
        reply(std::move(nack));
      },
      [this](const std::string& command, const classad::ClassAd& body) {
        on_update(command, body);
      });
  const std::uint64_t id = next_channel_id_++;
  // Prune on close: advertisers hang up right after the update, so the
  // table holds only live connections (no every-64th-accept sweeps that
  // leak channels indefinitely in small pools).
  channel->set_on_broken([this, id](const Error&) { reap_channel(id); });
  channels_.emplace(id, std::move(channel));
}

void Matchmaker::reap_channel(std::uint64_t id) {
  // on_broken fires from inside the channel's own close handling; erasing
  // it here would destroy the RpcChannel under its own stack. Defer to a
  // zero-delay event, coalescing bursts into one sweep.
  dead_channels_.push_back(id);
  if (reap_scheduled_) return;
  reap_scheduled_ = true;
  engine().schedule(SimTime::zero(), [this] {
    reap_scheduled_ = false;
    for (const std::uint64_t dead : dead_channels_) channels_.erase(dead);
    dead_channels_.clear();
  });
}

std::uint32_t Matchmaker::allocate_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  return next_slot_++;
}

void Matchmaker::release_startd(StartdEntry& entry) {
  index_.erase(entry.slot);
  free_slots_.push_back(entry.slot);
}

void Matchmaker::on_update(const std::string& command,
                           const classad::ClassAd& body) {
  // Every ad comes from an autonomous peer: validate, never assert.
  if (command == kCmdUpdateStartdAd) {
    const std::string name = body.eval_string("Name");
    if (name.empty()) {
      log().warn("startd ad without Name ignored");
      const Error malformed(ErrorKind::kRequestMalformed, ErrorScope::kProcess,
                            "startd ad without Name");
      const std::uint64_t got = trace().raised(malformed, 0, "validating ad");
      trace().consumed(malformed, 0, "ad ignored; sender will re-advertise",
                       got);
      return;
    }
    auto it = startd_ads_.find(name);
    if (it == startd_ads_.end()) {
      it = startd_ads_.emplace(name).first;
      it->second.slot = allocate_slot();
    } else {
      index_.erase(it->second.slot);
    }
    StartdEntry& entry = it->second;
    entry.ad = body;
    entry.updated = now();
    entry.matched_this_cycle = false;
    index_.insert(entry.slot, entry.ad);
    return;
  }
  if (command == kCmdUpdateSubmitterAd) {
    const std::string name = body.eval_string("Name");
    const std::string host = body.eval_string("ScheddHost");
    const int port = static_cast<int>(body.eval_int("ScheddPort"));
    if (name.empty() || host.empty() || port == 0) {
      log().warn("submitter ad missing Name/ScheddHost/ScheddPort; ignored");
      return;
    }
    SubmitterEntry& entry = submitter_ads_[name];
    entry.ad = body;
    entry.schedd_addr = {host, port};
    entry.updated = now();
    return;
  }
  log().warn("unknown update command ", command);
}

void Matchmaker::expire_ads() {
  const SimTime horizon = timeouts_.ad_lifetime;
  for (auto it = startd_ads_.begin(); it != startd_ads_.end();) {
    if (now() - it->second.updated > horizon) {
      log().info("expiring startd ad ", it->first);
      release_startd(it->second);
      it = startd_ads_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = submitter_ads_.begin(); it != submitter_ads_.end();) {
    if (now() - it->second.updated > horizon) {
      it = submitter_ads_.erase(it);
    } else {
      ++it;
    }
  }
}

void Matchmaker::find_candidates(const classad::ClassAd& job_ad,
                                 std::vector<Candidate>& out) {
  out.clear();
  const auto consider = [&](const std::string& machine_name,
                            StartdEntry& machine) {
    if (machine.matched_this_cycle || !machine.unclaimed) return;
    ++match_evals_;
    const classad::MatchResult match =
        classad::symmetric_match(job_ad, machine.ad, now());
    if (!match.matched) return;
    out.push_back(
        Candidate{&machine_name, &machine, match.left_rank, match.right_rank});
  };

  const CycleLookup* lookup = nullptr;
  if (index_mode_ != IndexMode::kExhaustive) {
    const classad::RequirementsProfile profile =
        classad::profile_requirements(job_ad, now());
    // Memoize the lookup for the rest of the cycle, keyed by the profile's
    // signature: at scale whole tiers of jobs share one Requirements
    // skeleton, and the ads the lookup reads are frozen until the cycle
    // ends, so recomputing the intersection per job would only rediscover
    // the same candidate set.
    profile_key_.clear();
    for (const classad::AttrPredicate& p : profile.predicates) {
      profile_key_ += p.str();
      profile_key_ += ';';
    }
    auto memo = cycle_lookups_.find(profile_key_);
    if (memo == cycle_lookups_.end()) {
      memo = cycle_lookups_.emplace(profile_key_).first;
      CycleLookup& fresh = memo->second;
      fresh.indexed = index_.candidates(profile, fresh.slots);
      if (fresh.indexed) {
        // Visit candidates in machine-name order: the tie rotation below
        // depends on insertion order among equal ranks, and the exhaustive
        // scan walks the name-sorted table. Slot → cycle position, sorted.
        fresh.ranks.reserve(fresh.slots.size());
        for (const std::uint32_t slot : fresh.slots) {
          const std::uint32_t rank = rank_of_slot_[slot];
          if (rank != kNoRank) fresh.ranks.push_back(rank);
        }
        std::sort(fresh.ranks.begin(), fresh.ranks.end());
      }
    }
    lookup = &memo->second;
  }
  if (lookup != nullptr && lookup->indexed &&
      index_mode_ == IndexMode::kIndexed) {
    for (const std::uint32_t rank : lookup->ranks) {
      consider(*order_[rank].first, *order_[rank].second);
    }
    return;
  }
  for (auto& [machine_name, machine] : order_) consider(*machine_name, *machine);
  if (lookup != nullptr && lookup->indexed) {
    // kVerify: every machine the full evaluation accepted must have been
    // an index candidate; a miss means the prefilter dropped a match.
    for (const Candidate& c : out) {
      if (!std::binary_search(lookup->slots.begin(), lookup->slots.end(),
                              c.entry->slot)) {
        ++index_mismatches_;
        log().error("ad index dropped eligible machine ", *c.name);
      }
    }
  }
}

void Matchmaker::negotiate() {
  if (!running_) return;
  ++cycle_;
  expire_ads();

  // Cycle-start snapshot: name-sorted visiting order, slot→position map,
  // and the per-machine State cache (ads cannot change mid-cycle; updates
  // arrive in later events).
  cycle_lookups_.clear();
  order_.clear();
  order_.reserve(startd_ads_.size());
  rank_of_slot_.assign(next_slot_, kNoRank);
  std::uint32_t position = 0;
  for (auto& [machine_name, entry] : startd_ads_) {
    entry.matched_this_cycle = false;
    entry.unclaimed =
        entry.ad.eval_string("State", "Unclaimed") == "Unclaimed";
    rank_of_slot_[entry.slot] = position++;
    order_.emplace_back(&machine_name, &entry);
  }

  // For each submitter, walk its advertised idle jobs and offer each the
  // best-ranked compatible unclaimed machine.
  for (auto& [submitter_name, submitter] : submitter_ads_) {
    const classad::Value jobs = submitter.ad.eval_attr("Jobs");
    if (!jobs.is_list()) continue;
    std::vector<classad::ClassAd> notices;
    for (const classad::Value& job_value : jobs.as_list()) {
      if (!job_value.is_ad()) continue;
      const classad::ClassAd& job_ad = *job_value.as_ad();

      // Rank candidate machines: job rank first, then machine rank.
      find_candidates(job_ad, candidates_);
      if (candidates_.empty()) continue;
      std::stable_sort(candidates_.begin(), candidates_.end(),
                       [](const Candidate& a, const Candidate& b) {
                         if (a.job_rank != b.job_rank)
                           return a.job_rank > b.job_rank;
                         return a.machine_rank > b.machine_rank;
                       });
      // Rotate among equally-ranked candidates so one machine cannot
      // monopolize a job across cycles (otherwise a fast-failing machine
      // re-attracts the same job forever — the §5 black hole in its
      // purest, livelocked form).
      std::size_t ties = 1;
      while (ties < candidates_.size() &&
             candidates_[ties].job_rank == candidates_[0].job_rank &&
             candidates_[ties].machine_rank == candidates_[0].machine_rank) {
        ++ties;
      }
      const std::uint64_t job_id =
          static_cast<std::uint64_t>(job_ad.eval_int("JobId"));
      const Candidate& best = candidates_[(cycle_ + job_id) % ties];
      best.entry->matched_this_cycle = true;
      ++matches_made_;

      classad::ClassAd notice;
      notice.set("JobId", job_ad.eval_int("JobId"));
      notice.set("StartdName", *best.name);
      notice.set("StartdHost", best.entry->ad.eval_string("Machine"));
      notice.set("StartdPort", best.entry->ad.eval_int("StartdPort"));
      notice.set("MatchId", static_cast<std::int64_t>(matches_made_));
      // Provenance for flocking schedds: which matchmaker brokered this
      // match. A schedd with flock targets maps this host back to a pool
      // so it can attribute the attempt's outcome across the boundary.
      notice.set("MatchmakerHost", name());
      log().debug("match job ", job_ad.eval_int("JobId"), " <-> ", *best.name);
      notices.push_back(std::move(notice));
    }
    if (notices.empty()) continue;

    // Notify the schedd over one short-lived connection carrying the
    // whole cycle's matches (not one connection per match). A failure
    // here is benign: the matches simply evaporate and a later cycle
    // retries.
    const net::Address schedd_addr = submitter.schedd_addr;
    rpc_connect(engine(), fabric_, name(), schedd_addr, timeouts_.rpc_timeout,
                [notices = std::move(notices)](
                    Result<std::shared_ptr<RpcChannel>> channel) {
                  if (!channel.ok()) return;
                  for (const classad::ClassAd& notice : notices) {
                    channel.value()->notify(kCmdNotifyMatch, notice);
                  }
                  channel.value()->close();
                });
  }

  after(timeouts_.matchmaker_interval, [this] { negotiate(); });
}

void Matchmaker::describe_topology(analysis::TopologyModel& model) {
  model.declare_component("matchmaker");

  model.declare_detection(
      {"matchmaker",
       "matchmaker.negotiate",
       {ErrorKind::kMatchExpired, ErrorKind::kRequestMalformed}});

  // The matchmaker's word is advisory: the only condition it reports to a
  // schedd is that a match went stale. Malformed updates escape here.
  analysis::InterfaceDecl advise;
  advise.component = "matchmaker";
  advise.routine = "matchmaker.advise";
  advise.allowed = {ErrorKind::kMatchExpired};
  model.declare_interface(std::move(advise));
  model.declare_flow("matchmaker.negotiate", "matchmaker.advise");
}

}  // namespace esg::daemons
