#include "daemons/matchmaker.hpp"

#include <algorithm>

#include "analysis/topology.hpp"

namespace esg::daemons {

Matchmaker::Matchmaker(sim::Engine& engine, net::NetworkFabric& fabric,
                       std::string host, Ports ports, Timeouts timeouts)
    : Actor(engine, std::move(host)),
      fabric_(fabric),
      ports_(ports),
      timeouts_(timeouts) {}

Matchmaker::~Matchmaker() { shutdown(); }

void Matchmaker::shutdown() {
  if (!running_) return;
  running_ = false;
  fabric_.unlisten(address());
  startd_ads_.clear();
  submitter_ads_.clear();
}

void Matchmaker::boot() {
  running_ = true;
  Result<void> listening = fabric_.listen(
      address(), [this](net::Endpoint ep) { on_accept(std::move(ep)); });
  if (!listening.ok()) {
    log().error("cannot listen: ", listening.error());
    return;
  }
  log().info("matchmaker up at ", address().str());
  // First cycle after one interval, then repeating.
  after(timeouts_.matchmaker_interval, [this] { negotiate(); });
}

void Matchmaker::on_accept(net::Endpoint endpoint) {
  auto channel =
      std::make_shared<RpcChannel>(engine(), std::move(endpoint), SimTime::zero());
  channel->set_server(
      [](const std::string&, const classad::ClassAd&,
         std::function<void(classad::ClassAd)> reply) {
        classad::ClassAd nack;
        nack.set("Ok", false);
        reply(std::move(nack));
      },
      [this](const std::string& command, const classad::ClassAd& body) {
        on_update(command, body);
      });
  channels_.push_back(std::move(channel));
  // Prune dead inbound channels occasionally.
  if (channels_.size() % 64 == 0) {
    channels_.erase(
        std::remove_if(channels_.begin(), channels_.end(),
                       [](const std::shared_ptr<RpcChannel>& c) {
                         return !c->is_open();
                       }),
        channels_.end());
  }
}

void Matchmaker::on_update(const std::string& command,
                           const classad::ClassAd& body) {
  // Every ad comes from an autonomous peer: validate, never assert.
  if (command == kCmdUpdateStartdAd) {
    const std::string name = body.eval_string("Name");
    if (name.empty()) {
      log().warn("startd ad without Name ignored");
      const Error malformed(ErrorKind::kRequestMalformed, ErrorScope::kProcess,
                            "startd ad without Name");
      const std::uint64_t got = trace().raised(malformed, 0, "validating ad");
      trace().consumed(malformed, 0, "ad ignored; sender will re-advertise",
                       got);
      return;
    }
    StartdEntry& entry = startd_ads_[name];
    entry.ad = body;
    entry.updated = now();
    entry.matched_this_cycle = false;
    return;
  }
  if (command == kCmdUpdateSubmitterAd) {
    const std::string name = body.eval_string("Name");
    const std::string host = body.eval_string("ScheddHost");
    const int port = static_cast<int>(body.eval_int("ScheddPort"));
    if (name.empty() || host.empty() || port == 0) {
      log().warn("submitter ad missing Name/ScheddHost/ScheddPort; ignored");
      return;
    }
    SubmitterEntry& entry = submitter_ads_[name];
    entry.ad = body;
    entry.schedd_addr = {host, port};
    entry.updated = now();
    return;
  }
  log().warn("unknown update command ", command);
}

void Matchmaker::expire_ads() {
  const SimTime horizon = timeouts_.ad_lifetime;
  for (auto it = startd_ads_.begin(); it != startd_ads_.end();) {
    if (now() - it->second.updated > horizon) {
      log().info("expiring startd ad ", it->first);
      it = startd_ads_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = submitter_ads_.begin(); it != submitter_ads_.end();) {
    if (now() - it->second.updated > horizon) {
      it = submitter_ads_.erase(it);
    } else {
      ++it;
    }
  }
}

void Matchmaker::negotiate() {
  if (!running_) return;
  ++cycle_;
  expire_ads();

  for (auto& [name, entry] : startd_ads_) entry.matched_this_cycle = false;

  // For each submitter, walk its advertised idle jobs and offer each the
  // best-ranked compatible unclaimed machine.
  for (auto& [submitter_name, submitter] : submitter_ads_) {
    const classad::Value jobs = submitter.ad.eval_attr("Jobs");
    if (!jobs.is_list()) continue;
    for (const classad::Value& job_value : jobs.as_list()) {
      if (!job_value.is_ad()) continue;
      const classad::ClassAd& job_ad = *job_value.as_ad();

      // Rank candidate machines: job rank first, then machine rank.
      struct Candidate {
        std::string name;
        double job_rank;
        double machine_rank;
      };
      std::vector<Candidate> candidates;
      for (auto& [machine_name, machine] : startd_ads_) {
        if (machine.matched_this_cycle) continue;
        if (machine.ad.eval_string("State", "Unclaimed") != "Unclaimed") {
          continue;
        }
        const classad::MatchResult match =
            classad::symmetric_match(job_ad, machine.ad, now());
        if (!match.matched) continue;
        candidates.push_back(
            Candidate{machine_name, match.left_rank, match.right_rank});
      }
      if (candidates.empty()) continue;
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         if (a.job_rank != b.job_rank)
                           return a.job_rank > b.job_rank;
                         return a.machine_rank > b.machine_rank;
                       });
      // Rotate among equally-ranked candidates so one machine cannot
      // monopolize a job across cycles (otherwise a fast-failing machine
      // re-attracts the same job forever — the §5 black hole in its
      // purest, livelocked form).
      std::size_t ties = 1;
      while (ties < candidates.size() &&
             candidates[ties].job_rank == candidates[0].job_rank &&
             candidates[ties].machine_rank == candidates[0].machine_rank) {
        ++ties;
      }
      const std::uint64_t job_id =
          static_cast<std::uint64_t>(job_ad.eval_int("JobId"));
      const Candidate& best = candidates[(cycle_ + job_id) % ties];
      StartdEntry& machine = startd_ads_.at(best.name);
      machine.matched_this_cycle = true;
      ++matches_made_;

      classad::ClassAd notice;
      notice.set("JobId", job_ad.eval_int("JobId"));
      notice.set("StartdName", best.name);
      notice.set("StartdHost", machine.ad.eval_string("Machine"));
      notice.set("StartdPort", machine.ad.eval_int("StartdPort"));
      notice.set("MatchId", static_cast<std::int64_t>(matches_made_));
      // Provenance for flocking schedds: which matchmaker brokered this
      // match. A schedd with flock targets maps this host back to a pool
      // so it can attribute the attempt's outcome across the boundary.
      notice.set("MatchmakerHost", name());
      log().debug("match job ", job_ad.eval_int("JobId"), " <-> ", best.name);

      // Notify the schedd over a short-lived connection. A failure here is
      // benign: the match simply evaporates and a later cycle retries.
      const net::Address schedd_addr = submitter.schedd_addr;
      rpc_connect(engine(), fabric_, name(), schedd_addr, timeouts_.rpc_timeout,
                  [notice](Result<std::shared_ptr<RpcChannel>> channel) {
                    if (!channel.ok()) return;
                    channel.value()->notify(kCmdNotifyMatch, notice);
                    channel.value()->close();
                  });
    }
  }

  after(timeouts_.matchmaker_interval, [this] { negotiate(); });
}

void Matchmaker::describe_topology(analysis::TopologyModel& model) {
  model.declare_component("matchmaker");

  model.declare_detection(
      {"matchmaker",
       "matchmaker.negotiate",
       {ErrorKind::kMatchExpired, ErrorKind::kRequestMalformed}});

  // The matchmaker's word is advisory: the only condition it reports to a
  // schedd is that a match went stale. Malformed updates escape here.
  analysis::InterfaceDecl advise;
  advise.component = "matchmaker";
  advise.routine = "matchmaker.advise";
  advise.allowed = {ErrorKind::kMatchExpired};
  model.declare_interface(std::move(advise));
  model.declare_flow("matchmaker.negotiate", "matchmaker.advise");
}

}  // namespace esg::daemons
