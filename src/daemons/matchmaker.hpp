// The matchmaker: collector + negotiator.
//
// Collects ClassAds from every participant and periodically notifies
// schedds and startds of compatible partners. Matched parties are then
// individually responsible for claiming one another and verifying that
// their requirements are met (§2.1) — the matchmaker's word is advisory,
// never authoritative.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "classad/match.hpp"
#include "daemons/config.hpp"
#include "daemons/rpc.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::daemons {

class Matchmaker : public sim::Actor {
 public:
  Matchmaker(sim::Engine& engine, net::NetworkFabric& fabric,
             std::string host, Ports ports, Timeouts timeouts);
  ~Matchmaker() override;

  void boot();

  /// Stop negotiating and listening. A replacement Matchmaker on the same
  /// address can be booted afterwards; participants keep advertising into
  /// the void and recover as soon as someone answers again.
  void shutdown();

  [[nodiscard]] net::Address address() const {
    return {name(), ports_.matchmaker};
  }

  [[nodiscard]] std::uint64_t matches_made() const { return matches_made_; }
  [[nodiscard]] std::size_t known_startds() const { return startd_ads_.size(); }
  [[nodiscard]] std::size_t known_submitters() const {
    return submitter_ads_.size();
  }

  /// Static error-topology declaration (the analysis/ model-checker hook):
  /// negotiation detections ("matchmaker.negotiate") and the advisory
  /// contract towards the schedd ("matchmaker.advise"). The matchmaker's
  /// word is advisory, so its topology is discipline-independent.
  static void describe_topology(analysis::TopologyModel& model);

 private:
  struct StartdEntry {
    classad::ClassAd ad;
    SimTime updated{};
    bool matched_this_cycle = false;
  };
  struct SubmitterEntry {
    classad::ClassAd ad;
    net::Address schedd_addr;
    SimTime updated{};
  };

  void on_accept(net::Endpoint endpoint);
  void on_update(const std::string& command, const classad::ClassAd& body);
  void negotiate();
  void expire_ads();

  net::NetworkFabric& fabric_;
  Ports ports_;
  Timeouts timeouts_;
  std::map<std::string, StartdEntry> startd_ads_;      // by machine name
  std::map<std::string, SubmitterEntry> submitter_ads_;  // by schedd name
  std::vector<std::shared_ptr<RpcChannel>> channels_;  // inbound update conns
  std::uint64_t matches_made_ = 0;
  std::uint64_t cycle_ = 0;
  bool running_ = false;
};

}  // namespace esg::daemons
