// The matchmaker: collector + negotiator.
//
// Collects ClassAds from every participant and periodically notifies
// schedds and startds of compatible partners. Matched parties are then
// individually responsible for claiming one another and verifying that
// their requirements are met (§2.1) — the matchmaker's word is advisory,
// never authoritative.
//
// Negotiation scales through the attribute index (classad/index.hpp):
// each job's Requirements is profiled for TARGET-constant conjuncts and
// only the candidate bucket runs the full two-way match. The index is a
// pure prefilter — candidates are visited in the same machine-name order
// the exhaustive scan uses and the authoritative `symmetric_match` still
// decides every pair — so match outcomes are byte-identical across
// IndexMode settings (kVerify cross-checks that claim every cycle).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "classad/index.hpp"
#include "classad/match.hpp"
#include "common/flatmap.hpp"
#include "daemons/config.hpp"
#include "daemons/rpc.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::daemons {

/// How negotiate() selects candidate machines for each job.
enum class IndexMode {
  kIndexed,     ///< attribute-index prefilter, full match on candidates
  kExhaustive,  ///< legacy O(jobs × machines) scan
  kVerify,      ///< exhaustive scan, cross-checked against the index
};

class Matchmaker : public sim::Actor {
 public:
  Matchmaker(sim::Engine& engine, net::NetworkFabric& fabric,
             std::string host, Ports ports, Timeouts timeouts);
  ~Matchmaker() override;

  void boot();

  /// Stop negotiating and listening. A replacement Matchmaker on the same
  /// address can be booted afterwards; participants keep advertising into
  /// the void and recover as soon as someone answers again.
  void shutdown();

  [[nodiscard]] net::Address address() const {
    return {name(), ports_.matchmaker};
  }

  [[nodiscard]] std::uint64_t matches_made() const { return matches_made_; }
  [[nodiscard]] std::size_t known_startds() const { return startd_ads_.size(); }
  [[nodiscard]] std::size_t known_submitters() const {
    return submitter_ads_.size();
  }

  void set_index_mode(IndexMode mode) { index_mode_ = mode; }
  [[nodiscard]] IndexMode index_mode() const { return index_mode_; }

  /// Full symmetric_match evaluations performed across all negotiation
  /// cycles — the scale counter the index exists to shrink.
  [[nodiscard]] std::uint64_t match_evals() const { return match_evals_; }

  /// kVerify only: eligible machines the index would have dropped.
  /// Anything but zero is an index soundness bug.
  [[nodiscard]] std::uint64_t index_mismatches() const {
    return index_mismatches_;
  }

  /// Live inbound update channels (pruned on close, not periodically).
  [[nodiscard]] std::size_t inbound_channels() const {
    return channels_.size();
  }

  /// Static error-topology declaration (the analysis/ model-checker hook):
  /// negotiation detections ("matchmaker.negotiate") and the advisory
  /// contract towards the schedd ("matchmaker.advise"). The matchmaker's
  /// word is advisory, so its topology is discipline-independent.
  static void describe_topology(analysis::TopologyModel& model);

 private:
  struct StartdEntry {
    classad::ClassAd ad;
    SimTime updated{};
    std::uint32_t slot = 0;  ///< stable index slot while the ad is live
    bool matched_this_cycle = false;
    bool unclaimed = true;  ///< cycle-start cache of State == "Unclaimed"
  };
  struct SubmitterEntry {
    classad::ClassAd ad;
    net::Address schedd_addr;
    SimTime updated{};
  };
  struct Candidate {
    const std::string* name;
    StartdEntry* entry;
    double job_rank;
    double machine_rank;
  };

  void on_accept(net::Endpoint endpoint);
  void on_update(const std::string& command, const classad::ClassAd& body);
  void negotiate();
  void expire_ads();
  std::uint32_t allocate_slot();
  void release_startd(StartdEntry& entry);
  void reap_channel(std::uint64_t id);

  /// All machines whose full evaluation accepts `job_ad` (and vice versa),
  /// in machine-name order, skipping claimed/already-matched entries.
  void find_candidates(const classad::ClassAd& job_ad,
                       std::vector<Candidate>& out);

  net::NetworkFabric& fabric_;
  Ports ports_;
  Timeouts timeouts_;
  FlatMap<std::string, StartdEntry> startd_ads_;        // by machine name
  FlatMap<std::string, SubmitterEntry> submitter_ads_;  // by schedd name
  classad::AdIndex index_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t next_slot_ = 0;
  IndexMode index_mode_ = IndexMode::kIndexed;
  std::uint64_t match_evals_ = 0;
  std::uint64_t index_mismatches_ = 0;

  /// One memoized index lookup, valid for the rest of the cycle: ads are
  /// frozen once negotiate() snapshots (updates arrive in later events),
  /// so every job with the same Requirements profile — at scale, whole
  /// tiers of them — shares one bucket intersection and one rank sort.
  struct CycleLookup {
    bool indexed = false;
    std::vector<std::uint32_t> slots;  ///< ascending; kVerify cross-check
    std::vector<std::uint32_t> ranks;  ///< cycle visiting order
  };

  // Per-cycle scratch, reused so a 10k-machine cycle allocates nothing.
  std::vector<std::pair<const std::string*, StartdEntry*>> order_;
  std::vector<std::uint32_t> rank_of_slot_;
  std::vector<Candidate> candidates_;
  FlatMap<std::string, CycleLookup> cycle_lookups_;  // by profile signature
  std::string profile_key_;

  FlatMap<std::uint64_t, std::shared_ptr<RpcChannel>> channels_;  // inbound
  std::uint64_t next_channel_id_ = 0;
  std::vector<std::uint64_t> dead_channels_;
  bool reap_scheduled_ = false;

  std::uint64_t matches_made_ = 0;
  std::uint64_t cycle_ = 0;
  bool running_ = false;
};

}  // namespace esg::daemons
