#include "daemons/rpc.hpp"

namespace esg::daemons {

namespace {
constexpr const char* kAttrRpcId = "RpcId";
constexpr const char* kAttrRpcKind = "RpcKind";  // "req" | "rep" | "note"
constexpr const char* kAttrRpcCmd = "RpcCmd";
}  // namespace

RpcChannel::RpcChannel(sim::Engine& engine, net::Endpoint endpoint,
                       SimTime request_timeout)
    : engine_(engine), endpoint_(std::move(endpoint)), timeout_(request_timeout) {
  std::shared_ptr<bool> alive = alive_;
  endpoint_.set_on_message([this, alive](const std::string& wire) {
    if (*alive) on_message(wire);
  });
  endpoint_.set_on_close([this, alive](const std::optional<Error>& error) {
    if (*alive) on_close(error);
  });
}

RpcChannel::~RpcChannel() {
  *alive_ = false;
  for (auto& [id, entry] : pending_) entry.second.cancel();
}

void RpcChannel::request(const std::string& command, classad::ClassAd body,
                         ReplyCb cb) {
  if (!endpoint_.is_open()) {
    cb(Error(ErrorKind::kConnectionLost, "rpc channel closed"));
    return;
  }
  const std::uint64_t id = next_id_++;
  body.set(kAttrRpcId, static_cast<std::int64_t>(id));
  body.set(kAttrRpcKind, "req");
  body.set(kAttrRpcCmd, command);
  WireMessage msg{command, std::move(body)};
  Result<void> sent = endpoint_.send(msg.encode());
  if (!sent.ok()) {
    cb(std::move(sent).error());
    return;
  }
  sim::TimerHandle timer;
  if (timeout_ > SimTime::zero()) {
    std::shared_ptr<bool> alive = alive_;
    timer = engine_.schedule(timeout_, [this, alive, command] {
      if (!*alive) return;
      // A silent peer means the RPC mechanism itself is invalid: escape by
      // breaking the connection (process scope).
      endpoint_.abort(Error(ErrorKind::kConnectionTimedOut,
                            "rpc '" + command + "' timed out")
                          .widen_scope(ErrorScope::kProcess));
    });
  }
  pending_[id] = {std::move(cb), timer};
}

void RpcChannel::notify(const std::string& command, classad::ClassAd body) {
  if (!endpoint_.is_open()) return;
  body.set(kAttrRpcKind, "note");
  body.set(kAttrRpcCmd, command);
  WireMessage msg{command, std::move(body)};
  (void)endpoint_.send(msg.encode());
}

void RpcChannel::set_server(ServeFn serve, NotifyFn notify) {
  serve_ = std::move(serve);
  notify_ = std::move(notify);
}

void RpcChannel::on_message(const std::string& wire) {
  Result<WireMessage> parsed = WireMessage::parse(wire);
  if (!parsed.ok()) {
    // Garbage on an established channel: protocol is broken; escape.
    endpoint_.abort(Error(ErrorKind::kProtocolError,
                          "unparsable rpc message: " +
                              parsed.error().message())
                        .widen_scope(ErrorScope::kProcess));
    return;
  }
  WireMessage& msg = parsed.value();
  const std::string kind = msg.body.eval_string(kAttrRpcKind);
  const std::uint64_t id =
      static_cast<std::uint64_t>(msg.body.eval_int(kAttrRpcId));

  if (kind == "rep") {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // late reply after timeout: ignore
    auto [cb, timer] = std::move(it->second);
    pending_.erase(it);
    timer.cancel();
    cb(std::move(msg.body));
    return;
  }
  if (kind == "note") {
    if (notify_) notify_(msg.body.eval_string(kAttrRpcCmd), msg.body);
    return;
  }
  if (kind == "req") {
    if (!serve_) {
      endpoint_.abort(Error(ErrorKind::kProtocolError,
                            "request received on client-only channel"));
      return;
    }
    const std::string command = msg.body.eval_string(kAttrRpcCmd);
    std::shared_ptr<bool> alive = alive_;
    serve_(command, msg.body, [this, alive, id](classad::ClassAd reply) {
      if (!*alive || !endpoint_.is_open()) return;
      reply.set(kAttrRpcId, static_cast<std::int64_t>(id));
      reply.set(kAttrRpcKind, "rep");
      WireMessage out{kCmdReply, std::move(reply)};
      (void)endpoint_.send(out.encode());
    });
    return;
  }
  endpoint_.abort(
      Error(ErrorKind::kProtocolError, "rpc message with bad kind"));
}

void RpcChannel::on_close(const std::optional<Error>& error) {
  const Error e = error.has_value()
                      ? *error
                      : Error(ErrorKind::kConnectionLost,
                              "rpc channel closed by peer");
  fail_all(e);
  if (on_broken_ && !broken_reported_) {
    broken_reported_ = true;
    on_broken_(e);
  }
}

void RpcChannel::fail_all(const Error& error) {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [id, entry] : pending) {
    entry.second.cancel();
    entry.first(Error(error));
  }
}

void RpcChannel::close() {
  endpoint_.close();
}

void RpcChannel::abort(Error error) { endpoint_.abort(std::move(error)); }

void rpc_connect(sim::Engine& engine, net::NetworkFabric& fabric,
                 const std::string& from_host, const net::Address& to,
                 SimTime request_timeout,
                 std::function<void(Result<std::shared_ptr<RpcChannel>>)> cb) {
  fabric.connect(from_host, to,
                 [&engine, request_timeout,
                  cb = std::move(cb)](Result<net::Endpoint> ep) {
                   if (!ep.ok()) {
                     cb(std::move(ep).error());
                     return;
                   }
                   cb(std::make_shared<RpcChannel>(
                       engine, std::move(ep).value(), request_timeout));
                 });
}

}  // namespace esg::daemons
