// RpcChannel: request/reply and one-way notification over one Endpoint.
//
// The shadow <-> starter connection multiplexes job details, file
// transfer, remote I/O, and the final summary, so messages carry an id and
// replies may arrive in any order. A failure of the channel itself is a
// process-scope condition ("a failure in RPC has process scope", §3.3):
// every outstanding request fails with the connection's escaping error and
// the owner's on_broken handler fires.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "common/flatmap.hpp"
#include "common/simtime.hpp"
#include "daemons/wire.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace esg::daemons {

class RpcChannel {
 public:
  using ReplyCb = std::function<void(Result<classad::ClassAd>)>;
  using ServeFn =
      std::function<void(const std::string& command, const classad::ClassAd&,
                         std::function<void(classad::ClassAd)> reply)>;
  using NotifyFn =
      std::function<void(const std::string& command, const classad::ClassAd&)>;
  using BrokenFn = std::function<void(const Error&)>;

  RpcChannel(sim::Engine& engine, net::Endpoint endpoint,
             SimTime request_timeout = SimTime::sec(30));
  ~RpcChannel();

  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// Issue a request; `cb` fires once with the reply body or an error.
  /// A timeout aborts the connection (the RPC mechanism is broken).
  void request(const std::string& command, classad::ClassAd body, ReplyCb cb);

  /// Fire-and-forget message (no reply expected).
  void notify(const std::string& command, classad::ClassAd body);

  /// Install the server side: `serve` handles incoming requests (must call
  /// reply exactly once), `notify` handles one-way messages.
  void set_server(ServeFn serve, NotifyFn notify);

  /// Called when the channel dies (escaping error or peer close).
  void set_on_broken(BrokenFn fn) { on_broken_ = std::move(fn); }

  [[nodiscard]] bool is_open() const { return endpoint_.is_open(); }

  void close();                 ///< graceful
  void abort(Error error);      ///< escaping

 private:
  void on_message(const std::string& wire);
  void on_close(const std::optional<Error>& error);
  void fail_all(const Error& error);

  sim::Engine& engine_;
  net::Endpoint endpoint_;
  SimTime timeout_;
  std::uint64_t next_id_ = 1;
  FlatMap<std::uint64_t, std::pair<ReplyCb, sim::TimerHandle>> pending_;
  ServeFn serve_;
  NotifyFn notify_;
  BrokenFn on_broken_;
  bool broken_reported_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

/// Open a connection and wrap it in an RpcChannel. `cb` receives the ready
/// channel or the connection error.
void rpc_connect(sim::Engine& engine, net::NetworkFabric& fabric,
                 const std::string& from_host, const net::Address& to,
                 SimTime request_timeout,
                 std::function<void(Result<std::shared_ptr<RpcChannel>>)> cb);

}  // namespace esg::daemons
