#include "daemons/schedd.hpp"

#include <algorithm>
#include <map>

#include "analysis/topology.hpp"
#include "common/strings.hpp"
#include "core/escalate.hpp"

namespace esg::daemons {

namespace {

/// The catalog strategies share the discipline's retry knobs, so the
/// classic policy's Retry entry reproduces the historical budget and
/// backoff schedule exactly.
resilience::Tuning tuning_from(const DisciplineConfig& discipline) {
  resilience::Tuning tuning;
  tuning.max_attempts = discipline.max_attempts;
  tuning.base_delay = discipline.reschedule_delay;
  tuning.max_backoff = discipline.max_backoff;
  tuning.jitter = discipline.retry_jitter;
  return tuning;
}

}  // namespace

Schedd::Schedd(sim::Engine& engine, net::NetworkFabric& fabric,
               fs::SimFileSystem& submit_fs, std::string host,
               DisciplineConfig discipline, net::Address matchmaker,
               Ports ports, Timeouts timeouts)
    : Actor(engine, std::move(host)),
      fabric_(fabric),
      submit_fs_(submit_fs),
      discipline_(discipline),
      matchmaker_(std::move(matchmaker)),
      ports_(ports),
      timeouts_(timeouts),
      strategies_(tuning_from(discipline)),
      policy_(discipline.policy.empty() ? resilience::PolicyTable::classic()
                                        : discipline.policy) {
  // Spans carry the daemon identity, not just the host: blame keys are
  // (daemon, machine), and machine_of() still maps to the bare host.
  rebind_trace("schedd@" + name());
  // The spool is the schedd's identity on disk; it must exist before the
  // first submit, which may well precede boot().
  (void)submit_fs_.mkdirs("/spool");
  if (discipline_.retry_jitter) {
    // Conditional on the knob, like the pool's fs-fault forks: a stream
    // that exists only when drawn from keeps every no-jitter replay's
    // label sequence untouched.
    jitter_rng_ = this->engine().rng().fork(rng_streams::retry_jitter(name()));
  }
}

Schedd::~Schedd() { shutdown(); }

void Schedd::boot() {
  running_ = true;
  Result<void> listening = fabric_.listen(
      address(), [this](net::Endpoint ep) { on_accept(std::move(ep)); });
  if (!listening.ok()) {
    log().error("cannot listen: ", listening.error());
    return;
  }
  advertise_loop();
}

void Schedd::shutdown() {
  if (!running_) return;
  running_ = false;
  active_.clear();
  fabric_.unlisten(address());
}

void Schedd::set_state(JobRecord& record, JobState state) {
  if (record.state == JobState::kIdle) --idle_jobs_;
  record.state = state;
  if (state == JobState::kIdle) ++idle_jobs_;
  if (state == JobState::kCompleted || state == JobState::kUnexecutable) {
    ++terminal_jobs_;
  }
}

namespace {

/// Parse the summary ad once; every advertise and claim request shares it.
std::shared_ptr<const classad::ClassAd> cache_summary_ad(
    const JobDescription& description) {
  Result<classad::ClassAd> summary = description.to_summary_ad();
  if (!summary.ok()) return nullptr;
  return std::make_shared<const classad::ClassAd>(std::move(summary).value());
}

}  // namespace

JobId Schedd::submit(JobDescription description) {
  const JobId id = job_ids_.next();
  description.id = id;
  JobRecord record;
  record.description = std::move(description);
  record.state = JobState::kIdle;
  ++idle_jobs_;
  record.submitted = now();
  record.summary_ad = cache_summary_ad(record.description);
  journal_submit(record);
  jobs_[id.value()] = std::move(record);
  if (running_) advertise_now();
  return id;
}

const JobRecord* Schedd::job(JobId id) const {
  auto it = jobs_.find(id.value());
  return it == jobs_.end() ? nullptr : &it->second;
}

void Schedd::journal(const std::string& event) {
  // The queue is persistent storage (§2.1): every transition is journaled
  // to the submit machine's spool. An offline spool is survivable — the
  // in-memory state continues; real Condor would block instead.
  Result<fs::FileHandle> h =
      submit_fs_.open("/spool/journal.log", fs::OpenMode::kAppend);
  if (!h.ok()) return;
  (void)h.value().write("LOG [" + now().str() + "] " + event + "\n");
}

void Schedd::journal_submit(const JobRecord& record) {
  Result<classad::ClassAd> ad = record.description.to_full_ad();
  if (!ad.ok()) return;  // an undescribable job cannot be made durable
  Result<fs::FileHandle> h =
      submit_fs_.open("/spool/journal.log", fs::OpenMode::kAppend);
  if (!h.ok()) return;
  (void)h.value().write(
      "SUBMIT " + std::to_string(record.description.id.value()) + " " +
      ad.value().str() + "\n");
}

void Schedd::journal_final(std::uint64_t job_id, JobState state) {
  Result<fs::FileHandle> h =
      submit_fs_.open("/spool/journal.log", fs::OpenMode::kAppend);
  if (!h.ok()) return;
  (void)h.value().write("FINAL " + std::to_string(job_id) + " " +
                        std::string(job_state_name(state)) + "\n");
}

std::size_t Schedd::recover_from_spool() {
  Result<std::string> text = submit_fs_.read_file("/spool/journal.log");
  if (!text.ok()) return 0;  // no journal: nothing to recover
  std::map<std::uint64_t, JobDescription> pending;
  std::uint64_t max_id = 0;
  for (const std::string& line : split(text.value(), '\n')) {
    if (starts_with(line, "SUBMIT ")) {
      const std::vector<std::string> f = split_n(line, ' ', 3);
      if (f.size() != 3) continue;  // torn write: skip defensively
      const std::uint64_t id = std::strtoull(f[1].c_str(), nullptr, 10);
      Result<classad::ClassAd> ad = classad::parse_classad(f[2]);
      if (!ad.ok()) continue;
      Result<JobDescription> job = JobDescription::from_ad(ad.value());
      if (!job.ok()) continue;
      job.value().id = JobId{id};
      max_id = std::max(max_id, id);
      pending[id] = std::move(job).value();
    } else if (starts_with(line, "FINAL ")) {
      const std::vector<std::string> f = split(line, ' ');
      if (f.size() < 2) continue;
      pending.erase(std::strtoull(f[1].c_str(), nullptr, 10));
    }
  }
  for (auto& [id, description] : pending) {
    JobRecord record;
    record.description = std::move(description);
    record.state = JobState::kIdle;
    ++idle_jobs_;
    record.submitted = now();
    record.summary_ad = cache_summary_ad(record.description);
    jobs_[id] = std::move(record);
  }
  job_ids_ = IdGenerator<JobTag>(max_id);
  journal("recovered " + std::to_string(pending.size()) + " jobs from spool");
  return pending.size();
}

void Schedd::advertise_now() {
  if (!running_) return;
  if (timeouts_.advertise_coalesce > SimTime::zero()) {
    // Batch event-driven pushes: the first request in a window arms one
    // timer; everything else rides along in that single ad.
    if (advertise_pending_) return;
    advertise_pending_ = true;
    after(timeouts_.advertise_coalesce, [this] {
      advertise_pending_ = false;
      if (running_) advertise_push();
    });
    return;
  }
  advertise_push();
}

void Schedd::advertise_push() {
  classad::ClassAd ad;
  ad.set("MyType", "Submitter");
  ad.set("Name", "schedd@" + name());
  ad.set("ScheddHost", name());
  ad.set("ScheddPort", ports_.schedd);
  // Attach the idle jobs' summary ads so the matchmaker can negotiate.
  // The ads were parsed once at submit; advertising shares them.
  std::vector<classad::Value> job_ads;
  for (const auto& [id, record] : jobs_) {
    if (record.state != JobState::kIdle) continue;
    if (now() < record.not_before) continue;  // backing off
    if (job_ads.size() >= timeouts_.advertise_max_jobs) break;
    if (record.summary_ad == nullptr) continue;  // unparsable: never runs
    job_ads.push_back(classad::Value::ad(record.summary_ad));
  }
  ad.set("IdleJobs", static_cast<std::int64_t>(job_ads.size()));
  ad.insert("Jobs", std::make_unique<classad::Literal>(
                        classad::Value::list(std::move(job_ads))));

  advertise_to_flock(ad);
  rpc_connect(engine(), fabric_, name(), matchmaker_, timeouts_.rpc_timeout,
              [ad = std::move(ad)](Result<std::shared_ptr<RpcChannel>> ch) {
                if (!ch.ok()) return;
                ch.value()->notify(kCmdUpdateSubmitterAd, ad);
                ch.value()->close();
              });
}

void Schedd::advertise_to_flock(const classad::ClassAd& ad) {
  if (flock_targets_.empty()) return;
  // Flock only once the home pool has demonstrably left work idle: some
  // job has waited past flock_delay without the home matchmaker placing
  // it. This is the deterministic proxy for "my matchmaker can't match".
  bool overflowed = false;
  for (const auto& [id, record] : jobs_) {
    if (record.state != JobState::kIdle) continue;
    if (now() < record.not_before) continue;
    if (record.submitted + discipline_.flock_delay <= now()) {
      overflowed = true;
      break;
    }
  }
  if (!overflowed) return;
  for (const FlockTarget& target : flock_targets_) {
    if (pool_avoided(target.pool)) continue;
    ++flock_ads_sent_;
    rpc_connect(engine(), fabric_, name(), target.matchmaker,
                timeouts_.rpc_timeout,
                [this, pool = target.pool,
                 ad](Result<std::shared_ptr<RpcChannel>> ch) {
                  if (!ch.ok()) {
                    // An unreachable remote matchmaker invalidates the
                    // whole pool from here: network scope, consumed by
                    // the flock layer (its manager).
                    note_pool_unreachable(pool, ch.error(), 0);
                    return;
                  }
                  ch.value()->notify(kCmdUpdateSubmitterAd, ad);
                  ch.value()->close();
                });
  }
}

std::string Schedd::pool_of_matchmaker(const std::string& host) const {
  for (const FlockTarget& target : flock_targets_) {
    if (target.matchmaker.host == host) return target.pool;
  }
  return {};
}

bool Schedd::pool_avoided(const std::string& pool) const {
  auto it = flock_avoid_until_.find(pool);
  return it != flock_avoid_until_.end() && now() < it->second;
}

void Schedd::note_pool_failure(const std::string& pool, const Error& error,
                               std::uint64_t job_id,
                               std::uint64_t parent_span) {
  if (!discipline_.scope_routing) return;
  ++cluster_errors_consumed_;
  const int count = ++pool_failures_[pool];
  std::string detail =
      "flock: remote-pool condition consumed by home schedd (pool " + pool +
      ")";
  if (count >= discipline_.flock_avoidance_threshold &&
      !pool_avoided(pool)) {
    flock_avoid_until_[pool] = now() + discipline_.flock_cooldown;
    detail += "; flocking suspended for " + discipline_.flock_cooldown.str();
    log().info("suspending flocking to pool ", pool, " for ",
               discipline_.flock_cooldown.str(), " after ", count,
               " consecutive remote failures");
  }
  trace().consumed(error, job_id, detail, parent_span);
}

void Schedd::note_pool_unreachable(const std::string& pool, const Error& cause,
                                   std::uint64_t job_id) {
  if (!discipline_.scope_routing) return;
  // A severed inter-pool link is the first genuinely network-scope error:
  // it invalidates every resource behind it at once. Its manager is the
  // flock layer — the one component that knows the pool as a unit — which
  // consumes it by suspending flocking until the link heals.
  Error link = cause;
  link.widen_scope_in_place(ErrorScope::kNetwork);
  const std::uint64_t raised = trace().raised(
      link, job_id, "flock: pool " + pool + " unreachable");
  ++network_errors_consumed_;
  flock_avoid_until_[pool] = now() + discipline_.flock_cooldown;
  trace().consumed(link, job_id,
                   "flock: network-scope condition consumed; pool " + pool +
                       " suspended for " + discipline_.flock_cooldown.str(),
                   raised);
}

void Schedd::advertise_loop() {
  advertise_push();
  after(timeouts_.advertise_interval, [this] { advertise_loop(); });
}

void Schedd::on_accept(net::Endpoint endpoint) {
  auto channel = std::make_shared<RpcChannel>(engine(), std::move(endpoint),
                                              SimTime::zero());
  channel->set_server(
      [](const std::string&, const classad::ClassAd&,
         std::function<void(classad::ClassAd)> reply) {
        classad::ClassAd nack;
        nack.set("Ok", false);
        reply(std::move(nack));
      },
      [this](const std::string& command, const classad::ClassAd& body) {
        if (command == kCmdNotifyMatch) on_match(body);
      });
  inbound_.push_back(std::move(channel));
  if (inbound_.size() % 64 == 0) {
    inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                  [](const std::shared_ptr<RpcChannel>& c) {
                                    return !c->is_open();
                                  }),
                   inbound_.end());
  }
}

bool Schedd::machine_avoided(const std::string& machine) const {
  auto it = avoid_until_.find(machine);
  return it != avoid_until_.end() && now() < it->second;
}

void Schedd::on_match(const classad::ClassAd& body) {
  const std::uint64_t job_id =
      static_cast<std::uint64_t>(body.eval_int("JobId"));
  const std::string startd_name = body.eval_string("StartdName");
  const std::string startd_host = body.eval_string("StartdHost");
  const int startd_port = static_cast<int>(body.eval_int("StartdPort"));
  // Which pool brokered this? Empty = our own matchmaker.
  const std::string pool =
      pool_of_matchmaker(body.eval_string("MatchmakerHost"));
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kIdle) return;
  if (startd_host.empty() || startd_port == 0) return;
  if ((discipline_.schedd_avoidance ||
       policy_.uses(resilience::PatternKind::kAvoid)) &&
      machine_avoided(startd_name)) {
    log().debug("declining match to avoided machine ", startd_name);
    return;
  }
  if (!it->second.excluded_machines.empty() &&
      std::find(it->second.excluded_machines.begin(),
                it->second.excluded_machines.end(),
                startd_name) != it->second.excluded_machines.end()) {
    // A RetryElsewhere/Migrate decision pinned this job away from the
    // machine that failed it; the match goes back to the pot.
    log().debug("declining match to excluded machine ", startd_name);
    return;
  }
  if (!pool.empty() && pool_avoided(pool)) {
    log().debug("declining flocked match from suspended pool ", pool);
    return;
  }
  set_state(it->second, JobState::kClaiming);
  // Leaving the idle queue matters to the matchmaker too: without a
  // re-advertise it keeps offering this job machines until the next
  // periodic ad, and every stale match burns a free machine for a full
  // cycle (matched_this_cycle). Only coalescing configurations push here —
  // a burst of claims becomes one ad — so the zero-coalesce cadence the
  // small-pool experiments were blessed under is untouched.
  if (timeouts_.advertise_coalesce > SimTime::zero()) advertise_now();
  try_claim(job_id, {startd_host, startd_port}, startd_name, pool);
}

void Schedd::try_claim(std::uint64_t job_id, const net::Address& startd_addr,
                       const std::string& startd_name,
                       const std::string& pool) {
  auto record_it = jobs_.find(job_id);
  if (record_it == jobs_.end()) return;
  if (record_it->second.summary_ad == nullptr) {
    // The job cannot even be described: job scope, unexecutable.
    finalize(record_it->second, JobState::kUnexecutable,
             ExecutionSummary::environment(
                 Error(ErrorKind::kBadJobDescription, ErrorScope::kJob,
                       "job description does not parse"),
                 startd_name));
    return;
  }
  classad::ClassAd body;
  body.insert("Job", std::make_unique<classad::Literal>(
                         classad::Value::ad(record_it->second.summary_ad)));

  rpc_connect(
      engine(), fabric_, name(), startd_addr, timeouts_.rpc_timeout,
      [this, job_id, startd_addr, startd_name, pool,
       body = std::move(body)](Result<std::shared_ptr<RpcChannel>> ch) mutable {
        auto it = jobs_.find(job_id);
        if (it == jobs_.end() || it->second.state != JobState::kClaiming) {
          return;
        }
        if (!ch.ok()) {
          // Claiming is cheap to retry: back to idle, next cycle will
          // offer another machine. (Matchmaking-level failures were
          // always retried, even pre-redesign.) When the unreachable
          // machine sits in another pool, the failure is also a
          // network-scope fact about the inter-pool link.
          if (!pool.empty()) note_pool_unreachable(pool, ch.error(), job_id);
          set_state(it->second, JobState::kIdle);
          advertise_now();
          return;
        }
        std::shared_ptr<RpcChannel> channel = std::move(ch).value();
        RpcChannel* raw = channel.get();
        raw->request(
            kCmdRequestClaim, std::move(body),
            [this, job_id, startd_addr, startd_name, pool,
             channel](Result<classad::ClassAd> r) {
              channel->close();
              auto it = jobs_.find(job_id);
              if (it == jobs_.end() ||
                  it->second.state != JobState::kClaiming) {
                return;
              }
              if (!r.ok() || !r.value().eval_bool("Granted")) {
                ++claims_denied_;
                set_state(it->second, JobState::kIdle);
                advertise_now();  // the job is matchable again, right now
                return;
              }
              const auto claim = ClaimId{static_cast<std::uint64_t>(
                  r.value().eval_int("ClaimId"))};
              start_shadow(job_id, startd_addr, startd_name, pool, claim);
            });
      });
}

void Schedd::start_shadow(std::uint64_t job_id, const net::Address& startd_addr,
                          const std::string& startd_name,
                          const std::string& pool, ClaimId claim) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  set_state(it->second, JobState::kRunning);
  ++total_attempts_;
  if (!pool.empty()) ++flock_attempts_;
  journal("start job " + std::to_string(job_id) + " on " + startd_name +
          " attempt " + std::to_string(it->second.attempts.size() + 1));

  AttemptRecord attempt;
  attempt.machine = startd_name;
  attempt.started = now();
  it->second.attempts.push_back(std::move(attempt));

  // The schedd starts a shadow, which provides the details of the job to
  // be run (§2.1).
  auto shadow = std::make_unique<Shadow>(
      engine(), fabric_, name(), submit_fs_, discipline_, timeouts_,
      it->second.description, startd_addr, startd_name, claim,
      [this, job_id, startd_name, pool](ExecutionSummary summary) {
        // Defer: the shadow is deleted in on_attempt_done, and we are
        // inside its callback.
        engine().schedule(SimTime::zero(),
                          [this, job_id, startd_name, pool,
                           summary = std::move(summary)] {
                            on_attempt_done(job_id, startd_name, pool,
                                            summary);
                          });
      });
  shadow->run();
  active_[job_id] = Running{std::move(shadow)};
}

void Schedd::note_machine_failure(const std::string& machine,
                                  const Error& error) {
  // The chronic-host tracker runs for the classic avoidance knob and for
  // any policy that can reach the Avoid pattern; otherwise it stays cold.
  if (!discipline_.schedd_avoidance &&
      !policy_.uses(resilience::PatternKind::kAvoid)) {
    return;
  }
  const int count = ++consecutive_failures_[machine];
  if (count >= discipline_.avoidance_threshold) {
    avoid_until_[machine] = now() + discipline_.avoidance_cooldown;
    log().info("avoiding ", machine, " for ",
               discipline_.avoidance_cooldown.str(), " after ", count,
               " chronic failures (last: ", error.str(), ")");
    // The flight recorder takes its "last N events before failure" dump at
    // exactly this moment — the schedd has just decided a machine is
    // chronically bad.
    context().recorder().chronic_failure(
        "machine " + machine + " after " + std::to_string(count) +
        " consecutive failures (last: " + error.str() + ")");
  }
}

void Schedd::note_machine_success(const std::string& machine) {
  consecutive_failures_.erase(machine);
  avoid_until_.erase(machine);
}

void Schedd::on_attempt_done(std::uint64_t job_id, const std::string& machine,
                             const std::string& pool,
                             ExecutionSummary summary) {
  active_.erase(job_id);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end() || it->second.state != JobState::kRunning) return;
  JobRecord& record = it->second;
  if (!record.attempts.empty()) {
    record.attempts.back().ended = now();
    record.attempts.back().summary = summary;
  }
  journal("attempt done job " + std::to_string(job_id) + ": " +
          summary.str());

  if (!discipline_.scope_routing) {
    // §2.3 behaviour: whatever happened is returned to the user, who must
    // perform postmortem analysis to decide whether the job exited of its
    // own account or because of accidental properties of the site.
    if (summary.environment_error.has_value()) {
      trace().delivered(summary.environment_error.value(), job_id,
                        "naive: returned to user for postmortem");
    }
    finalize(record, JobState::kCompleted, std::move(summary));
    return;
  }

  // The redesign: route by scope (Principle 3; Figure 3's last line of
  // defense).
  if (summary.have_program_result) {
    note_machine_success(machine);
    if (!pool.empty()) {
      // The remote pool delivered a genuine result: its failure streak is
      // over, and any suspension can lift early.
      pool_failures_.erase(pool);
      flock_avoid_until_.erase(pool);
    }
    record.env_streak_start = SimTime::zero();
    context().audit().record(Principle::kP3, AuditOutcome::kApplied,
                             "schedd@" + name());
    if (summary.program_result.error.has_value()) {
      // A program-scope error is the job's own result (Figure 3). The
      // policy table decides whether it is handed back explicit and
      // unmangled (Surface — the classic, and only honest, binding) or
      // blindly hammered by a recovery pattern that refuses to believe
      // the program (the monoculture cells the scorecard measures).
      const Error error = *summary.program_result.error;
      dispose(record, job_id, machine, error, error.scope(),
              /*program_result=*/true, std::move(summary));
      return;
    }
    finalize(record, JobState::kCompleted, std::move(summary));
    return;
  }

  const Error& error = summary.environment_error.value();
  note_machine_failure(machine, error);
  context().audit().record(Principle::kP3, AuditOutcome::kApplied,
                           "schedd@" + name());
  trace().routed(error, "schedd@" + name(), job_id);

  if (!pool.empty()) {
    // Cross-pool scope transition: inside pool X this was a machine- (or
    // wider) scope condition, but the home schedd does not administer
    // pool X's machines — from here the whole remote pool is suspect, so
    // the error crosses the boundary at cluster scope. Were it allowed to
    // reach the disposition switch below, cluster scope would wrongly
    // mark the job unexecutable (the job is fine; a *pool* failed it).
    // The flock layer is the cluster-scope manager: it consumes the
    // condition — counting it against the pool and suspending flocking on
    // a streak — and the job simply retries elsewhere.
    Error widened = error;
    widened.widen_scope_in_place(ErrorScope::kCluster);
    const std::uint64_t escalated = trace().escalated(
        widened, error.scope(), job_id,
        "remote failure crosses pool boundary from " + pool);
    note_pool_failure(pool, widened, job_id, escalated);
    reschedule(record, job_id, std::move(summary));
    return;
  }

  // §5: time is a factor in error propagation. Track how long this job's
  // environment has been failing; persistence widens the effective scope
  // of the condition, and a wide-enough scope ends the retry loop. An
  // attempt that ran for a while before failing (an eviction after real
  // progress) is churn, not a persistent fault: it restarts the streak.
  if (!record.attempts.empty() &&
      record.attempts.back().ended - record.attempts.back().started >=
          discipline_.escalation_progress_reset) {
    record.env_streak_start = now();  // churn: the streak starts afresh
  } else if (record.env_streak_start == SimTime::zero()) {
    record.env_streak_start =
        record.attempts.empty() ? now() : record.attempts.back().started;
  }
  ErrorScope effective_scope = error.scope();
  if (discipline_.use_escalation) {
    static const ScopeEscalator escalator = ScopeEscalator::schedd_defaults();
    effective_scope = escalator.scope_after(
        error.scope(), now() - record.env_streak_start);
    if (effective_scope != error.scope()) {
      log().info("job ", job_id, " failure persisted ",
                 (now() - record.env_streak_start).str(),
                 "; scope escalated to ", scope_name(effective_scope));
      Error widened = error;
      widened.widen_scope_in_place(effective_scope);
      trace().escalated(widened, error.scope(), job_id,
                        "environment failure persisted " +
                            (now() - record.env_streak_start).str());
    }
  }

  dispose(record, job_id, machine, error, effective_scope,
          /*program_result=*/false, std::move(summary));
}

int Schedd::consecutive_failures(const JobRecord& record) {
  // The backoff doubles with consecutive incidental failures: a transient
  // condition clears quickly, a persistent one (offline home filesystem)
  // should not burn the attempt budget while it lasts — time is a factor
  // in error propagation (§5).
  int consecutive = 0;
  for (auto it2 = record.attempts.rbegin(); it2 != record.attempts.rend();
       ++it2) {
    if (it2->summary.have_program_result) break;
    ++consecutive;
  }
  return consecutive;
}

resilience::ErrorSite Schedd::error_site(const JobRecord& record,
                                         std::uint64_t job_id,
                                         const std::string& machine,
                                         const Error& error,
                                         ErrorScope effective_scope,
                                         bool program_result) const {
  resilience::ErrorSite site;
  site.scope = effective_scope;
  site.kind = error.kind();
  site.job = job_id;
  site.machine = machine;
  site.attempts = static_cast<int>(record.attempts.size());
  site.consecutive_failures = consecutive_failures(record);
  site.program_result = program_result;
  return site;
}

void Schedd::dispose(JobRecord& record, std::uint64_t job_id,
                     const std::string& machine, const Error& error,
                     ErrorScope effective_scope, bool program_result,
                     ExecutionSummary summary) {
  const resilience::PatternKind pattern =
      policy_.lookup(effective_scope, error.kind());
  const resilience::Decision decision = strategies_.at(pattern).decide(
      error_site(record, job_id, machine, error, effective_scope,
                 program_result),
      jitter_rng_ ? &*jitter_rng_ : nullptr);
  apply_decision(record, job_id, machine, decision, error, effective_scope,
                 std::move(summary));
}

void Schedd::apply_decision(JobRecord& record, std::uint64_t job_id,
                            const std::string& machine,
                            const resilience::Decision& decision,
                            const Error& error, ErrorScope effective_scope,
                            ExecutionSummary summary) {
  switch (decision.action) {
    case resilience::RecoveryAction::kDeliverResult:
      // Handing the condition back explicit and unmangled is the final
      // delivery to its true manager, the user.
      trace().delivered(error, job_id, decision.detail);
      finalize(record, JobState::kCompleted, std::move(summary));
      return;
    case resilience::RecoveryAction::kDeliverUnexecutable: {
      if (decision.budget_exhausted) {
        log().warn("job ", job_id, " exhausted ",
                   strategies_.tuning().max_attempts,
                   " attempts; returning last error to the user");
        trace().delivered(error, job_id, decision.detail);
        finalize(record, JobState::kUnexecutable, std::move(summary));
        return;
      }
      if (effective_scope != error.scope() &&
          summary.environment_error.has_value()) {
        summary.environment_error->widen_scope_in_place(effective_scope);
      }
      trace().delivered(summary.environment_error.has_value()
                            ? summary.environment_error.value()
                            : error,
                        job_id, decision.detail);
      finalize(record, JobState::kUnexecutable, std::move(summary));
      return;
    }
    case resilience::RecoveryAction::kReschedule:
      if (decision.exclude_machine && !machine.empty()) {
        record.excluded_machines.push_back(machine);
      }
      // Log the error and attempt execution at a new site.
      log().info("job ", job_id, " failed with ", error.str(),
                 "; rescheduling in ", decision.delay.str());
      trace().masked(error, job_id, decision.detail);
      set_state(record, JobState::kIdle);
      record.not_before = now() + decision.delay;
      after(decision.delay, [this] { advertise_now(); });
      return;
  }
}

void Schedd::reschedule(JobRecord& record, std::uint64_t job_id,
                        ExecutionSummary summary) {
  // Thin shim kept for the cross-pool path: the flock layer has already
  // consumed the condition at cluster scope, so the only sane recovery is
  // the plain Retry strategy — budget check, exponential backoff, back to
  // Idle — regardless of what the policy table binds elsewhere.
  const Error error = summary.environment_error.value();
  const resilience::Decision decision =
      strategies_.at(resilience::PatternKind::kRetry)
          .decide(error_site(record, job_id, /*machine=*/{}, error,
                             error.scope(), /*program_result=*/false),
                  jitter_rng_ ? &*jitter_rng_ : nullptr);
  apply_decision(record, job_id, /*machine=*/{}, decision, error,
                 error.scope(), std::move(summary));
}

void Schedd::finalize(JobRecord& record, JobState state,
                      ExecutionSummary summary) {
  set_state(record, state);
  record.final_summary = std::move(summary);
  record.finished = now();
  journal_final(record.description.id.value(), state);
  // A finished job's checkpoint is garbage; reclaim the spool space.
  (void)submit_fs_.unlink(
      checkpoint_path(record.description.id.value()));
  journal("finalize job " + std::to_string(record.description.id.value()) +
          " " + std::string(job_state_name(state)));
  if (on_job_done_) on_job_done_(record);
}

void Schedd::describe_topology(analysis::TopologyModel& model,
                               const DisciplineConfig& discipline) {
  model.declare_component("schedd");

  // Queue-side discoveries: bad submissions and claim/match breakdowns.
  model.declare_detection(
      {"schedd",
       "schedd.queue",
       {ErrorKind::kBadJobDescription, ErrorKind::kClaimRejected,
        ErrorKind::kMatchExpired, ErrorKind::kDaemonCrashed}});

  analysis::InterfaceDecl disposition;
  disposition.component = "schedd";
  disposition.routine = "schedd.disposition";
  if (discipline.scope_routing) {
    // §4: the last line of defense. Program and job scope go back to the
    // user; anything in between is the schedd's to retry elsewhere.
    model.declare_handler("schedd", ErrorScope::kJob);
    if (discipline.use_escalation) {
      const ScopeEscalator escalator = ScopeEscalator::schedd_defaults();
      for (const EscalationRule& rule : escalator.rules()) {
        model.declare_escalation("schedd", rule.from, rule.to);
      }
    }
    disposition.allowed = {
        ErrorKind::kNullPointer,     ErrorKind::kArrayIndexOutOfBounds,
        ErrorKind::kArithmeticError, ErrorKind::kUncaughtException,
        ErrorKind::kExitNonZero,     ErrorKind::kOutOfMemory,
        ErrorKind::kStackOverflow,   ErrorKind::kInternalVmError,
        ErrorKind::kCorruptImage,    ErrorKind::kClassNotFound,
        ErrorKind::kBadJobDescription};
    disposition.escape_floor = ErrorScope::kJob;
  } else {
    // §2.3: every outcome is returned to the user directly.
    disposition.allowed = {ErrorKind::kExitNonZero};
    disposition.mode = analysis::InterfaceMode::kLeak;
  }
  model.declare_interface(std::move(disposition));
  model.declare_flow("schedd.queue", "schedd.disposition");
}

}  // namespace esg::daemons
