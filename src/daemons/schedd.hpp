// The schedd: keeper of the job queue and the last line of defense (§4).
//
// "If it detects an error of program scope, it identifies the job as
// complete and returns it to the user. If it detects an error of job
// scope, it identifies the job as unexecutable and also returns it to the
// user. Anything in between causes it to log the error and then attempt to
// execute the program at a new site."
//
// Under the naive discipline (scope_routing=false) every execution outcome
// is returned to the user directly, reproducing §2.3. The §5 avoidance
// mitigation tracks chronic per-machine failures and declines matches to
// offending hosts for a cooldown period.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/flatmap.hpp"
#include "daemons/config.hpp"
#include "daemons/job.hpp"
#include "daemons/rpc.hpp"
#include "daemons/shadow.hpp"
#include "fs/simfs.hpp"
#include "net/fabric.hpp"
#include "resilience/strategy.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::daemons {

/// A remote pool this schedd may flock to when its home matchmaker leaves
/// jobs idle. The pool name is the provenance label under which remote
/// failures are attributed (cluster scope: "pool B is failing us", never
/// "machine b.exec3" — the home schedd has no standing to judge a machine
/// it does not administer).
struct FlockTarget {
  std::string pool;
  net::Address matchmaker;
};

class Schedd : public sim::Actor {
 public:
  Schedd(sim::Engine& engine, net::NetworkFabric& fabric,
         fs::SimFileSystem& submit_fs, std::string host,
         DisciplineConfig discipline, net::Address matchmaker, Ports ports,
         Timeouts timeouts);
  ~Schedd() override;

  void boot();
  void shutdown();

  /// Crash recovery (§2.1: the schedd "keeps the job state in persistent
  /// storage"): replay the spool journal and re-queue every job that was
  /// submitted but never finalized. Call before boot() on a schedd that
  /// replaces a crashed one over the same filesystem. Returns how many
  /// jobs were recovered.
  std::size_t recover_from_spool();

  /// Enqueue a job; the id is assigned here. State starts Idle.
  JobId submit(JobDescription description);

  /// Give this schedd a disjoint job-id range (call before any submit).
  /// Required when several schedds share one pool: attempt records are
  /// keyed by job id across the whole grid.
  void set_job_id_base(std::uint64_t base) {
    job_ids_ = IdGenerator<JobTag>(base);
  }

  /// Fires when a job reaches a terminal state (Completed/Unexecutable).
  void set_on_job_done(std::function<void(const JobRecord&)> fn) {
    on_job_done_ = std::move(fn);
  }

  /// Enable flocking: when the home matchmaker leaves jobs idle past
  /// DisciplineConfig::flock_delay, the submitter ad is also sent to these
  /// remote pools' matchmakers. Call before boot().
  void set_flock_targets(std::vector<FlockTarget> targets) {
    flock_targets_ = std::move(targets);
  }

  [[nodiscard]] net::Address address() const { return {name(), ports_.schedd}; }
  [[nodiscard]] const JobRecord* job(JobId id) const;
  [[nodiscard]] const FlatMap<std::uint64_t, JobRecord>& jobs() const {
    return jobs_;
  }
  /// O(1): maintained by the state-transition helper, so run_until_done's
  /// per-event predicate does not scan the queue (at 1M jobs that scan was
  /// the simulation's single hottest loop).
  [[nodiscard]] bool all_done() const {
    return terminal_jobs_ == jobs_.size();
  }
  [[nodiscard]] std::size_t idle_count() const { return idle_jobs_; }
  [[nodiscard]] std::uint64_t total_attempts() const { return total_attempts_; }
  [[nodiscard]] std::uint64_t claims_denied() const { return claims_denied_; }
  [[nodiscard]] const FlatMap<std::string, SimTime>& avoided_machines() const {
    return avoid_until_;
  }
  [[nodiscard]] const FlatMap<std::string, SimTime>& avoided_pools() const {
    return flock_avoid_until_;
  }
  [[nodiscard]] std::uint64_t flock_ads_sent() const { return flock_ads_sent_; }
  [[nodiscard]] std::uint64_t flock_attempts() const { return flock_attempts_; }
  [[nodiscard]] std::uint64_t cluster_errors_consumed() const {
    return cluster_errors_consumed_;
  }
  [[nodiscard]] std::uint64_t network_errors_consumed() const {
    return network_errors_consumed_;
  }
  /// The resolved resilience policy (classic when the discipline left its
  /// table empty) and the strategy registry it selects from.
  [[nodiscard]] const resilience::PolicyTable& policy() const {
    return policy_;
  }
  [[nodiscard]] const resilience::StrategyRegistry& strategies() const {
    return strategies_;
  }

  /// Static error-topology declaration (the analysis/ model-checker hook):
  /// queue-side detections ("schedd.queue") and the disposition contract
  /// towards the user ("schedd.disposition"). Under the scoped discipline
  /// the schedd registers as job-scope manager and contributes its
  /// ScopeEscalator::schedd_defaults() escalation edges.
  static void describe_topology(analysis::TopologyModel& model,
                                const DisciplineConfig& discipline);

 private:
  struct Running {
    std::unique_ptr<Shadow> shadow;
  };

  void advertise_loop();
  /// Request a submitter-ad push; called on every job-state change so the
  /// matchmaker never negotiates over a stale queue. With
  /// Timeouts::advertise_coalesce set, bursts collapse into one ad per
  /// window; otherwise the push happens immediately.
  void advertise_now();
  /// Build and send the submitter ad (and flock copies) right now.
  void advertise_push();
  /// The one place a job's state changes: keeps the idle/terminal
  /// counters behind all_done()/idle_count() exact.
  void set_state(JobRecord& record, JobState state);
  void on_accept(net::Endpoint endpoint);
  void on_match(const classad::ClassAd& body);
  /// `pool` is empty for home-pool matches, the flock-target pool name for
  /// matches brokered by a remote matchmaker.
  void try_claim(std::uint64_t job_id, const net::Address& startd_addr,
                 const std::string& startd_name, const std::string& pool);
  void start_shadow(std::uint64_t job_id, const net::Address& startd_addr,
                    const std::string& startd_name, const std::string& pool,
                    ClaimId claim);
  void on_attempt_done(std::uint64_t job_id, const std::string& machine,
                       const std::string& pool, ExecutionSummary summary);
  void finalize(JobRecord& record, JobState state, ExecutionSummary summary);
  /// The policy-table consult: build the ErrorSite for this disposition,
  /// ask the bound strategy, and apply its Decision. `error` is the
  /// condition being disposed of (program-result error or environment
  /// error); `effective_scope` is its scope after §5 escalation.
  void dispose(JobRecord& record, std::uint64_t job_id,
               const std::string& machine, const Error& error,
               ErrorScope effective_scope, bool program_result,
               ExecutionSummary summary);
  void apply_decision(JobRecord& record, std::uint64_t job_id,
                      const std::string& machine,
                      const resilience::Decision& decision, const Error& error,
                      ErrorScope effective_scope, ExecutionSummary summary);
  /// Thin shim over the Retry strategy: log-and-retry tail shared by the
  /// cross-pool consumption path (which already consumed the condition at
  /// cluster scope and always retries, regardless of policy).
  void reschedule(JobRecord& record, std::uint64_t job_id,
                  ExecutionSummary summary);
  /// Trailing environment-failure streak, the backoff-doubling input.
  [[nodiscard]] static int consecutive_failures(const JobRecord& record);
  [[nodiscard]] resilience::ErrorSite error_site(const JobRecord& record,
                                                std::uint64_t job_id,
                                                const std::string& machine,
                                                const Error& error,
                                                ErrorScope effective_scope,
                                                bool program_result) const;
  void note_machine_failure(const std::string& machine, const Error& error);
  void note_machine_success(const std::string& machine);
  [[nodiscard]] bool machine_avoided(const std::string& machine) const;
  /// Cross-pool error-scope semantics (the flock layer as cluster- and
  /// network-scope manager; see DESIGN.md "Federation").
  void advertise_to_flock(const classad::ClassAd& ad);
  [[nodiscard]] std::string pool_of_matchmaker(const std::string& host) const;
  [[nodiscard]] bool pool_avoided(const std::string& pool) const;
  void note_pool_failure(const std::string& pool, const Error& error,
                         std::uint64_t job_id, std::uint64_t parent_span);
  void note_pool_unreachable(const std::string& pool, const Error& cause,
                             std::uint64_t job_id);
  void journal(const std::string& event);
  void journal_submit(const JobRecord& record);
  void journal_final(std::uint64_t job_id, JobState state);

  net::NetworkFabric& fabric_;
  fs::SimFileSystem& submit_fs_;
  DisciplineConfig discipline_;
  net::Address matchmaker_;
  Ports ports_;
  Timeouts timeouts_;

  // The resilience catalog: one constructed strategy per pattern (shared
  // tuning from the discipline knobs) and the policy table binding a
  // pattern per (scope × kind). An empty configured table resolves to the
  // classic discipline. The jitter stream exists only when the discipline
  // asks for it, so legacy replays draw nothing.
  resilience::StrategyRegistry strategies_;
  resilience::PolicyTable policy_;
  std::optional<Rng> jitter_rng_;

  bool running_ = false;
  bool advertise_pending_ = false;
  IdGenerator<JobTag> job_ids_;
  // Job ids are assigned monotonically, so insertion into the flat map is
  // an amortized O(1) append; lookups are binary searches over one
  // contiguous allocation.
  FlatMap<std::uint64_t, JobRecord> jobs_;
  FlatMap<std::uint64_t, Running> active_;   // by job id
  std::size_t idle_jobs_ = 0;
  std::size_t terminal_jobs_ = 0;
  std::vector<std::shared_ptr<RpcChannel>> inbound_;
  std::function<void(const JobRecord&)> on_job_done_;

  // §5 avoidance state.
  FlatMap<std::string, int> consecutive_failures_;
  FlatMap<std::string, SimTime> avoid_until_;

  // Flocking state: remote pools, their consecutive-failure streaks, and
  // suspension windows (the cluster-scope twin of machine avoidance).
  std::vector<FlockTarget> flock_targets_;
  FlatMap<std::string, int> pool_failures_;
  FlatMap<std::string, SimTime> flock_avoid_until_;

  std::uint64_t total_attempts_ = 0;
  std::uint64_t claims_denied_ = 0;
  std::uint64_t flock_ads_sent_ = 0;
  std::uint64_t flock_attempts_ = 0;
  std::uint64_t cluster_errors_consumed_ = 0;
  std::uint64_t network_errors_consumed_ = 0;
};

}  // namespace esg::daemons
