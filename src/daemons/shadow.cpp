#include "daemons/shadow.hpp"

#include "analysis/topology.hpp"
#include "jvm/jvm.hpp"

namespace esg::daemons {

Shadow::Shadow(sim::Engine& engine, net::NetworkFabric& fabric,
               std::string submit_host, fs::SimFileSystem& submit_fs,
               DisciplineConfig discipline, Timeouts timeouts,
               JobDescription job, net::Address startd_addr,
               std::string startd_name, ClaimId claim,
               std::function<void(ExecutionSummary)> done)
    : engine_(engine),
      fabric_(fabric),
      submit_host_(std::move(submit_host)),
      submit_fs_(submit_fs),
      log_(engine.context().logger("shadow@" + submit_host_ + "/job" +
                                   std::to_string(job.id.value()))),
      trace_(engine.context().trace("shadow@" + submit_host_ + "/job" +
                                    std::to_string(job.id.value()))),
      discipline_(discipline),
      timeouts_(timeouts),
      job_(std::move(job)),
      startd_addr_(std::move(startd_addr)),
      startd_name_(std::move(startd_name)),
      claim_(claim),
      done_(std::move(done)) {}

Shadow::~Shadow() {
  *alive_ = false;
  watchdog_.cancel();
}

void Shadow::run() {
  std::shared_ptr<bool> alive = alive_;
  rpc_connect(engine_, fabric_, submit_host_, startd_addr_,
              timeouts_.rpc_timeout,
              [this, alive](Result<std::shared_ptr<RpcChannel>> channel) {
                if (!*alive) return;
                on_channel(std::move(channel));
              });
}

void Shadow::on_channel(Result<std::shared_ptr<RpcChannel>> channel) {
  if (!channel.ok()) {
    // Cannot even reach the execution machine. At this instant the error
    // has network scope; persistence would widen it (§5) — that judgement
    // belongs to the schedd, which sees repetition.
    Error unreachable = std::move(channel).error();
    trace_.raised(unreachable, job_.id.value(),
                  "cannot reach execution machine");
    fail(std::move(unreachable));
    return;
  }
  channel_ = std::move(channel).value();
  remote_io_ = std::make_unique<chirp::FsBackend>(
      submit_fs_, "", ErrorScope::kLocalResource);

  std::shared_ptr<bool> alive = alive_;
  channel_->set_server(
      [this, alive](const std::string& command, const classad::ClassAd& body,
                    std::function<void(classad::ClassAd)> reply) {
        if (*alive) serve(command, body, std::move(reply));
      },
      [this, alive](const std::string& command,
                    const classad::ClassAd& body) {
        if (*alive) on_notify(command, body);
      });
  channel_->set_on_broken([this, alive](const Error& error) {
    if (!*alive) return;
    // The claim's lifeline broke: starter crash, network fault, or our own
    // watchdog. The escaping error arrives here — the level above the
    // connection — as an explicit error (Principle 2 in action).
    trace_.converted_to_explicit(error, job_.id.value(),
                                 "escaping connection break caught (P2)");
    fail(Error(error));
  });

  // The inactivity watchdog bounds the job's *silence*, not its runtime:
  // every message from the starter (remote I/O, checkpoints, keepalives)
  // re-arms it. Only a wedged or unreachable execution site trips it.
  arm_watchdog();

  activate();
}

void Shadow::activate() {
  Result<classad::ClassAd> full_ad = job_.to_full_ad();
  if (!full_ad.ok()) {
    fail(Error(ErrorKind::kBadJobDescription, ErrorScope::kJob,
               "job cannot be serialized")
             .caused_by(std::move(full_ad).error()));
    return;
  }
  // Ship the latest checkpoint, if one survived a previous attempt. A
  // checkpoint that fails to parse is ignored (fresh start) — stale spool
  // contents must never make a job unexecutable.
  if (Result<std::string> ckpt =
          submit_fs_.read_file(checkpoint_path(job_.id.value()));
      ckpt.ok()) {
    if (jvm::Checkpoint::parse(ckpt.value()).ok()) {
      full_ad.value().set("Checkpoint", ckpt.value());
    }
  }
  classad::ClassAd body;
  body.set("ClaimId", static_cast<std::int64_t>(claim_.value()));
  body.insert("Job", std::make_unique<classad::Literal>(classad::Value::ad(
                         std::make_shared<classad::ClassAd>(
                             std::move(full_ad).value()))));
  std::shared_ptr<bool> alive = alive_;
  channel_->request(kCmdActivateClaim, std::move(body),
                    [this, alive](Result<classad::ClassAd> r) {
                      if (!*alive) return;
                      if (!r.ok()) {
                        fail(std::move(r).error());
                        return;
                      }
                      if (!r.value().eval_bool("Ok")) {
                        std::optional<Error> e =
                            error_from_ad(r.value(), "Error");
                        fail(e.value_or(Error(ErrorKind::kClaimRejected,
                                              "activation refused")));
                        return;
                      }
                      log_.debug("claim activated on ", startd_name_);
                    });
}

void Shadow::arm_watchdog() {
  watchdog_.cancel();
  std::shared_ptr<bool> alive = alive_;
  watchdog_ = engine_.schedule(discipline_.job_watchdog, [this, alive] {
    if (!*alive || finished_) return;
    Error timed_out = Error(ErrorKind::kConnectionTimedOut,
                            "job silent for " + discipline_.job_watchdog.str())
                          .with_label("watchdog", "expired");
    // Silence is an implicit error; the watchdog is the device that turns
    // it into an escaping one (the abort), which Principle 2 converts back
    // to explicit at set_on_broken above.
    const std::uint64_t silence = trace_.implicit(
        ErrorKind::kConnectionTimedOut, ErrorScope::kNetwork,
        job_.id.value(), "watchdog: job silent");
    trace_.converted_to_escaping(timed_out, job_.id.value(),
                                 "watchdog aborts the claim channel",
                                 silence);
    channel_->abort(std::move(timed_out));
  });
}

void Shadow::serve(const std::string& command, const classad::ClassAd& body,
                   std::function<void(classad::ClassAd)> reply) {
  arm_watchdog();
  if (command == kCmdFetchFile) {
    const std::string path = body.eval_string("Path");
    Result<std::string> data = submit_fs_.read_file(path);
    classad::ClassAd response;
    if (data.ok()) {
      response.set("Ok", true);
      response.set("Data", data.value());
    } else {
      Error e = std::move(data).error();
      // Classify per Figure 3: a missing or unreadable input file is a
      // defect of the *job* — it can never run anywhere. An offline home
      // filesystem is a local-resource condition — the job cannot run
      // right now.
      if (e.kind() == ErrorKind::kFileNotFound ||
          e.kind() == ErrorKind::kAccessDenied) {
        e.widen_scope_in_place(ErrorScope::kJob);
      } else if (e.kind() == ErrorKind::kMountOffline) {
        e.widen_scope_in_place(ErrorScope::kLocalResource);
      }
      response.set("Ok", false);
      const ErrorScope scope = e.scope();
      error_to_ad(Error(ErrorKind::kInputUnavailable, scope,
                        "cannot fetch " + path)
                      .caused_by(std::move(e)),
                  "Error", response);
    }
    reply(std::move(response));
    return;
  }

  if (command == kCmdStoreFile) {
    const std::string name = body.eval_string("Path");
    const std::string dir = "/out/job_" + std::to_string(job_.id.value());
    classad::ClassAd response;
    Result<void> wrote = submit_fs_.mkdirs(dir);
    if (wrote.ok()) {
      wrote = submit_fs_.write_file(dir + "/" + name,
                                    body.eval_string("Data"));
    }
    if (wrote.ok()) {
      response.set("Ok", true);
    } else {
      response.set("Ok", false);
      error_to_ad(std::move(wrote).error(), "Error", response);
    }
    reply(std::move(response));
    return;
  }

  if (command == kCmdRemoteIo) {
    Result<chirp::Request> req =
        chirp::parse_request(body.eval_string("Payload"));
    if (!req.ok()) {
      classad::ClassAd response;
      response.set("Payload",
                   chirp::Response::fail(chirp::Code::kMalformed).encode());
      reply(std::move(response));
      return;
    }
    // Reuse the chirp dispatch table against the submit filesystem.
    auto respond = [reply = std::move(reply)](chirp::Response resp) {
      classad::ClassAd response;
      response.set("Payload", resp.encode());
      reply(std::move(response));
    };
    const chirp::Request& r = req.value();
    auto int_arg = [&r](std::size_t i) -> std::int64_t {
      return i < r.args.size() ? std::strtoll(r.args[i].c_str(), nullptr, 10)
                               : -1;
    };
    if (r.command == "open" && r.args.size() == 2) {
      remote_io_->op_open(r.args[0], r.args[1], respond);
    } else if (r.command == "close" && r.args.size() == 1) {
      remote_io_->op_close(int_arg(0), respond);
    } else if (r.command == "read" && r.args.size() == 2) {
      remote_io_->op_read(int_arg(0), int_arg(1), respond);
    } else if (r.command == "write" && r.args.size() == 1) {
      remote_io_->op_write(int_arg(0), r.data, respond);
    } else if (r.command == "lseek" && r.args.size() == 2) {
      remote_io_->op_lseek(int_arg(0), int_arg(1), respond);
    } else if (r.command == "stat" && r.args.size() == 1) {
      remote_io_->op_stat(r.args[0], respond);
    } else if (r.command == "unlink" && r.args.size() == 1) {
      remote_io_->op_unlink(r.args[0], respond);
    } else if (r.command == "mkdir" && r.args.size() == 1) {
      remote_io_->op_mkdir(r.args[0], respond);
    } else if (r.command == "rmdir" && r.args.size() == 1) {
      remote_io_->op_rmdir(r.args[0], respond);
    } else if (r.command == "rename" && r.args.size() == 2) {
      remote_io_->op_rename(r.args[0], r.args[1], respond);
    } else if (r.command == "getdir" && r.args.size() == 1) {
      remote_io_->op_getdir(r.args[0], respond);
    } else {
      respond(chirp::Response::fail(chirp::Code::kUnknownCommand));
    }
    return;
  }

  classad::ClassAd response;
  response.set("Ok", false);
  reply(std::move(response));
}

void Shadow::on_notify(const std::string& command,
                       const classad::ClassAd& body) {
  arm_watchdog();
  if (command == kCmdKeepalive) return;  // its arrival was the message
  if (command == kCmdCheckpoint) {
    // Persist the checkpoint; failures here are survivable (the job just
    // loses resume progress) and must not disturb the execution.
    const std::string encoded = body.eval_string("Checkpoint");
    if (!encoded.empty() && jvm::Checkpoint::parse(encoded).ok()) {
      (void)submit_fs_.write_file(checkpoint_path(job_.id.value()), encoded);
    }
    return;
  }
  if (command != kCmdJobSummary) return;
  Result<ExecutionSummary> summary = ExecutionSummary::from_ad(body);
  if (!summary.ok()) {
    // The starter sent garbage: the reporting mechanism is broken, which
    // is a process-scope failure of the execution side.
    Error garbage = Error(ErrorKind::kProtocolError, ErrorScope::kProcess,
                          "unparsable execution summary")
                        .caused_by(std::move(summary).error());
    trace_.raised(garbage, job_.id.value());
    fail(std::move(garbage));
    return;
  }
  finish(std::move(summary).value());
}

void Shadow::finish(ExecutionSummary summary) {
  if (finished_) return;
  finished_ = true;
  watchdog_.cancel();
  if (channel_) channel_->close();
  if (summary.machine.empty()) summary.machine = startd_name_;
  done_(std::move(summary));
}

void Shadow::fail(Error error) {
  finish(ExecutionSummary::environment(
      std::move(error).with_origin("shadow@" + submit_host_), startd_name_));
}

void Shadow::describe_topology(analysis::TopologyModel& model,
                               const DisciplineConfig& discipline) {
  model.declare_component("shadow");

  // Submit-side I/O served off the home filesystem: every per-file failure
  // SimFileSystem can produce, plus an offline mount, which invalidates
  // the whole local resource.
  model.declare_detection(
      {"shadow",
       "shadow.submit-io",
       {ErrorKind::kFileNotFound, ErrorKind::kAccessDenied,
        ErrorKind::kFileExists, ErrorKind::kNotDirectory,
        ErrorKind::kIsDirectory, ErrorKind::kEndOfFile, ErrorKind::kDiskFull,
        ErrorKind::kIoError, ErrorKind::kBadFileDescriptor,
        ErrorKind::kMountOffline}});

  // What the shadow concludes about an attempt from its own vantage point:
  // submit-side unavailability and execution-channel breakdowns.
  model.declare_detection(
      {"shadow",
       "shadow.classify",
       {ErrorKind::kInputUnavailable, ErrorKind::kConnectionLost,
        ErrorKind::kConnectionTimedOut, ErrorKind::kDaemonCrashed}});

  analysis::InterfaceDecl attempt;
  attempt.component = "shadow";
  attempt.routine = "shadow.attempt";
  if (discipline.scope_routing) {
    // Figure 3: the shadow manages local-resource scope and reports a
    // scope-bearing attempt outcome to the schedd.
    model.declare_handler("shadow", ErrorScope::kLocalResource);
    attempt.allowed = {
        ErrorKind::kNullPointer,      ErrorKind::kArrayIndexOutOfBounds,
        ErrorKind::kArithmeticError,  ErrorKind::kUncaughtException,
        ErrorKind::kExitNonZero,      ErrorKind::kOutOfMemory,
        ErrorKind::kStackOverflow,    ErrorKind::kInternalVmError,
        ErrorKind::kCorruptImage,     ErrorKind::kClassNotFound,
        ErrorKind::kJvmMissing,       ErrorKind::kJvmMisconfigured,
        ErrorKind::kScratchUnavailable, ErrorKind::kInputUnavailable,
        ErrorKind::kConnectionLost,   ErrorKind::kConnectionTimedOut,
        ErrorKind::kDaemonCrashed};
    // kMountOffline is deliberately absent: the shadow reclassifies an
    // offline home mount as kInputUnavailable before it ever crosses this
    // boundary (see the kMountOffline branch in classify above), so a
    // contract entry for it would be dead vocabulary (esf/redundant-
    // consumption).
    attempt.escape_floor = ErrorScope::kLocalResource;
  } else {
    // Naive: the attempt outcome is whatever exit code came back.
    attempt.allowed = {ErrorKind::kExitNonZero};
    attempt.mode = analysis::InterfaceMode::kLeak;
  }
  model.declare_interface(std::move(attempt));
  model.declare_flow("shadow.classify", "shadow.attempt");
}

}  // namespace esg::daemons
