// The shadow: the submit-side representative of one running job (§2.1).
//
// Provides the details of the job to the execution site, serves the
// standard Condor remote I/O channel backed by the submit machine's
// filesystem, receives the execution summary, and reports the attempt's
// outcome to the schedd. The shadow manages local-resource scope: failures
// of submit-side resources are its to classify (Figure 3: "The shadow
// would be responsible for informing the schedd that the job cannot run
// right now").
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "chirp/server.hpp"
#include "daemons/config.hpp"
#include "daemons/job.hpp"
#include "daemons/rpc.hpp"
#include "fs/simfs.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::daemons {

class Shadow {
 public:
  /// `done` fires exactly once with the attempt's outcome.
  Shadow(sim::Engine& engine, net::NetworkFabric& fabric,
         std::string submit_host, fs::SimFileSystem& submit_fs,
         DisciplineConfig discipline, Timeouts timeouts, JobDescription job,
         net::Address startd_addr, std::string startd_name, ClaimId claim,
         std::function<void(ExecutionSummary)> done);
  ~Shadow();

  Shadow(const Shadow&) = delete;
  Shadow& operator=(const Shadow&) = delete;

  void run();

  /// Static error-topology declaration (the analysis/ model-checker hook):
  /// what the shadow detects on the submit side ("shadow.submit-io",
  /// "shadow.classify") and the attempt-outcome contract it reports
  /// upward ("shadow.attempt"). Under the scoped discipline the shadow
  /// also registers as local-resource scope manager (Figure 3).
  static void describe_topology(analysis::TopologyModel& model,
                                const DisciplineConfig& discipline);

 private:
  void on_channel(Result<std::shared_ptr<RpcChannel>> channel);
  void activate();
  void serve(const std::string& command, const classad::ClassAd& body,
             std::function<void(classad::ClassAd)> reply);
  void on_notify(const std::string& command, const classad::ClassAd& body);
  /// (Re)arm the inactivity watchdog; called on every sign of life from
  /// the execution side.
  void arm_watchdog();
  void finish(ExecutionSummary summary);
  void fail(Error error);

  sim::Engine& engine_;
  net::NetworkFabric& fabric_;
  std::string submit_host_;
  fs::SimFileSystem& submit_fs_;
  Logger log_;
  obs::TraceSink trace_;
  DisciplineConfig discipline_;
  Timeouts timeouts_;
  JobDescription job_;
  net::Address startd_addr_;
  std::string startd_name_;
  ClaimId claim_;
  std::function<void(ExecutionSummary)> done_;

  std::shared_ptr<RpcChannel> channel_;
  /// Remote I/O is served straight off the submit filesystem; errors that
  /// invalidate the whole home filesystem carry local-resource scope.
  std::unique_ptr<chirp::FsBackend> remote_io_;
  sim::TimerHandle watchdog_;
  bool finished_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace esg::daemons
