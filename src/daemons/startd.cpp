#include "daemons/startd.hpp"

#include <algorithm>

#include "analysis/topology.hpp"
#include "classad/match.hpp"
#include "daemons/starter.hpp"
#include "jvm/javaio.hpp"

namespace esg::daemons {

Startd::Startd(sim::Engine& engine, net::NetworkFabric& fabric,
               fs::SimFileSystem& machine_fs, std::string host,
               StartdConfig config, DisciplineConfig discipline,
               net::Address matchmaker, Ports ports, Timeouts timeouts)
    : Actor(engine, std::move(host)),
      fabric_(fabric),
      machine_fs_(machine_fs),
      config_(std::move(config)),
      discipline_(discipline),
      matchmaker_(std::move(matchmaker)),
      ports_(ports),
      timeouts_(timeouts) {
  rebind_trace("startd@" + name());
}

Startd::~Startd() { shutdown(); }

void Startd::boot() {
  running_ = true;
  (void)machine_fs_.mkdirs("/scratch");
  Result<void> listening = fabric_.listen(
      address(), [this](net::Endpoint ep) { on_accept(std::move(ep)); });
  if (!listening.ok()) {
    log().error("cannot listen: ", listening.error());
    return;
  }
  if (discipline_.startd_selftest) {
    // §5: do not blindly accept the owner's assertion regarding the Java
    // installation; test it at startup, Autoconf-style. If found lacking,
    // simply decline to advertise the capability.
    run_selftest([this] { advertise_loop(); });
  } else {
    has_java_ = config_.owner_asserts_java;
    advertise_loop();
  }
}

void Startd::shutdown() {
  if (!running_) return;
  running_ = false;
  if (starter_ != nullptr) starter_->kill("startd shutting down");
  starter_.reset();
  // The claim is daemon state, and the daemon is going down: forget it.
  // A machine rebooted mid-activation would otherwise advertise
  // State=Claimed forever — no shadow is left to release the claim, and
  // the unactivated-claim expiry does not apply — so it could never be
  // matched again.
  claim_.reset();
  fabric_.unlisten(address());
}

void Startd::run_selftest(std::function<void()> then) {
  if (!config_.owner_asserts_java || !config_.jvm.installed) {
    // Nothing to test: either the owner never claimed Java, or there is no
    // binary to exec (the probe's exec would fail exactly like a job's).
    has_java_ = false;
    log().info("java self-test: no usable JVM (not advertising java)");
    then();
    return;
  }
  (void)machine_fs_.mkdirs("/scratch/.selftest");
  auto io = std::make_shared<jvm::LocalJavaIo>(
      machine_fs_, jvm::IoDiscipline::kConcise, "", &context());
  auto probe_jvm = std::make_shared<jvm::SimJvm>(engine(), config_.jvm);
  const jvm::JobProgram probe =
      jvm::ProgramBuilder("SelfTestProbe").compute(SimTime::msec(10)).build();
  probe_jvm->run(
      probe, *io, jvm::WrapMode::kWrapped, &machine_fs_,
      "/scratch/.selftest/result",
      [this, io, probe_jvm, then = std::move(then)](
          const jvm::JvmOutcome& outcome) {
        has_java_ = outcome.completed_main;
        log().info("java self-test: ",
                   has_java_ ? "passed" : "FAILED (not advertising java)");
        if (!has_java_) {
          // §5 mitigation: the owner's assertion was wrong, the probe
          // found out, and the machine consumes the condition itself by
          // not advertising java — the black hole never forms.
          Error broken = outcome.condition.value_or(
              Error(ErrorKind::kJvmMisconfigured, ErrorScope::kRemoteResource,
                    "self-test probe failed"));
          const std::uint64_t found = trace().raised(broken, 0, "self-test");
          trace().consumed(broken, 0, "withholding HasJava from the ad",
                           found);
        }
        then();
      });
}

classad::ClassAd Startd::machine_ad() const {
  classad::ClassAd ad;
  ad.set("MyType", "Machine");
  ad.set("Name", name());
  ad.set("Machine", name());
  ad.set("StartdPort", ports_.startd);
  ad.set("State", claim_.has_value() ? "Claimed" : "Unclaimed");
  ad.set("Arch", config_.arch);
  ad.set("OpSys", config_.opsys);
  ad.set("Memory", config_.memory_mb);
  if (has_java_) {
    ad.set("HasJava", true);
    ad.set("JavaVersion", config_.java_version);
  }
  // The owner's policy is the machine's Requirements for matchmaking. A
  // policy that does not even parse admits nobody, and an active owner
  // overrides everything.
  if (owner_active_) {
    ad.set("Requirements", false);
  } else if (Result<void> r =
                 ad.insert_expr("Requirements", config_.start_expr);
             !r.ok()) {
    ad.set("Requirements", false);
  }
  ad.set("Rank", 0);
  return ad;
}

void Startd::advertise_now() {
  if (!running_) return;
  rpc_connect(engine(), fabric_, name(), matchmaker_, timeouts_.rpc_timeout,
              [ad = machine_ad()](Result<std::shared_ptr<RpcChannel>> ch) {
                if (!ch.ok()) return;  // matchmaker down: retry next round
                ch.value()->notify(kCmdUpdateStartdAd, ad);
                ch.value()->close();
              });
}

void Startd::advertise_loop() {
  advertise_now();
  after(timeouts_.advertise_interval, [this] { advertise_loop(); });
}

void Startd::on_accept(net::Endpoint endpoint) {
  auto channel = std::make_shared<RpcChannel>(engine(), std::move(endpoint),
                                              SimTime::zero());
  std::weak_ptr<RpcChannel> weak = channel;
  channel->set_server(
      [this, weak](const std::string& command, const classad::ClassAd& body,
                   std::function<void(classad::ClassAd)> reply) {
        if (auto ch = weak.lock()) {
          handle_request(ch, command, body, std::move(reply));
        }
      },
      [this](const std::string& command, const classad::ClassAd& body) {
        if (command == kCmdReleaseClaim) {
          const auto id =
              ClaimId{static_cast<std::uint64_t>(body.eval_int("ClaimId"))};
          if (claim_.has_value() && claim_->id == id) {
            release_claim("released by schedd");
          }
        }
      });
  channel->set_on_broken([this, weak](const Error& error) {
    // The activation channel is the claim's lifeline: if it breaks while a
    // job is running, the job must die with it (the shadow is gone).
    auto ch = weak.lock();
    if (ch && starter_ != nullptr && claim_.has_value() &&
        claim_->activated) {
      starter_->kill("shadow channel broke: " + error.str());
      starter_.reset();
      release_claim("activation channel lost");
    }
  });
  inbound_.push_back(std::move(channel));
  if (inbound_.size() % 32 == 0) {
    inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                  [](const std::shared_ptr<RpcChannel>& c) {
                                    return !c->is_open();
                                  }),
                   inbound_.end());
  }
}

void Startd::handle_request(const std::shared_ptr<RpcChannel>& channel,
                            const std::string& command,
                            const classad::ClassAd& body,
                            std::function<void(classad::ClassAd)> reply) {
  if (command == kCmdRequestClaim) {
    classad::ClassAd response;
    if (claim_.has_value()) {
      response.set("Granted", false);
      response.set("Reason", "machine is already claimed");
      reply(std::move(response));
      return;
    }
    // Verify the owner's policy directly — the matchmaker's word is
    // advisory (§2.1: matched parties verify that their needs are met).
    const classad::Value job_value = body.eval_attr("Job");
    if (!job_value.is_ad()) {
      response.set("Granted", false);
      response.set("Reason", "malformed claim request");
      reply(std::move(response));
      return;
    }
    const classad::ClassAd my_ad = machine_ad();
    const classad::Value verdict = classad::eval_with_target(
        my_ad, *job_value.as_ad(), "Requirements", now());
    if (!verdict.is_bool() || !verdict.as_bool()) {
      response.set("Granted", false);
      response.set("Reason", "owner policy refuses this job");
      reply(std::move(response));
      return;
    }
    Claim claim;
    claim.id = context().ids().claim.next();
    claim.job_id = static_cast<std::uint64_t>(
        job_value.as_ad()->eval_attr("JobId").is_int()
            ? job_value.as_ad()->eval_int("JobId")
            : 0);
    claim.granted = now();
    claim_ = claim;
    advertise_now();  // the machine is Claimed as of now
    response.set("Granted", true);
    response.set("ClaimId", static_cast<std::int64_t>(claim.id.value()));
    reply(std::move(response));
    // Unactivated claims expire: a shadow that never shows up must not
    // wedge the machine.
    const ClaimId expiring = claim.id;
    after(SimTime::sec(60), [this, expiring] { claim_expired(expiring); });
    return;
  }

  if (command == kCmdActivateClaim) {
    classad::ClassAd response;
    const auto id =
        ClaimId{static_cast<std::uint64_t>(body.eval_int("ClaimId"))};
    if (!claim_.has_value() || claim_->id != id) {
      response.set("Ok", false);
      error_to_ad(Error(ErrorKind::kClaimRejected,
                        "no such claim on " + name()),
                  "Error", response);
      reply(std::move(response));
      return;
    }
    if (claim_->activated) {
      response.set("Ok", false);
      error_to_ad(Error(ErrorKind::kClaimRejected, "claim already active"),
                  "Error", response);
      reply(std::move(response));
      return;
    }
    const classad::Value job_value = body.eval_attr("Job");
    Result<JobDescription> job =
        job_value.is_ad()
            ? JobDescription::from_ad(*job_value.as_ad())
            : Result<JobDescription>(Error(ErrorKind::kBadJobDescription,
                                           "activation without job ad"));
    if (!job.ok()) {
      response.set("Ok", false);
      error_to_ad(job.error(), "Error", response);
      reply(std::move(response));
      return;
    }
    claim_->activated = true;
    ++jobs_started_;
    const int proxy_port = ports_.starter_proxy_base + (next_starter_port_++ % 100);
    // Resume point, if the shadow shipped one with the activation.
    jvm::Checkpoint resume;
    if (const std::string encoded =
            job_value.as_ad()->eval_string("Checkpoint");
        !encoded.empty()) {
      if (Result<jvm::Checkpoint> parsed = jvm::Checkpoint::parse(encoded);
          parsed.ok()) {
        resume = parsed.value();
      }
    }
    starter_ = std::make_unique<Starter>(
        engine(), fabric_, machine_fs_, name(), config_.jvm, discipline_,
        timeouts_, std::move(job).value(), channel, proxy_port,
        ground_truth_, [this] {
          // Starter finished (summary already sent): release the machine.
          // Destruction is deferred — we are inside the starter's own
          // callback.
          engine().schedule(SimTime::zero(), [this] { starter_.reset(); });
          release_claim("job finished");
        });
    starter_->set_resume(resume);
    response.set("Ok", true);
    reply(std::move(response));
    starter_->run();
    return;
  }

  classad::ClassAd response;
  response.set("Ok", false);
  error_to_ad(Error(ErrorKind::kRequestMalformed, "unknown command " + command),
              "Error", response);
  reply(std::move(response));
}

void Startd::set_owner_active(bool active) {
  if (owner_active_ == active) return;
  owner_active_ = active;
  if (active && starter_ != nullptr) {
    log().info("owner returned; evicting visiting job");
    starter_->preempt("machine owner returned");
  }
  if (running_) advertise_now();
}

void Startd::claim_expired(ClaimId id) {
  if (claim_.has_value() && claim_->id == id && !claim_->activated) {
    release_claim("claim never activated");
  }
}

void Startd::release_claim(const std::string& why) {
  if (!claim_.has_value()) return;
  log().debug("claim released: ", why);
  claim_.reset();
  advertise_now();  // the machine is Unclaimed as of now
}

void Startd::describe_topology(analysis::TopologyModel& model,
                               const DisciplineConfig& discipline) {
  model.declare_component("startd");

  std::vector<ErrorKind> kinds = {ErrorKind::kPolicyRefused,
                                  ErrorKind::kClaimRejected};
  // Without the §5 self-test, the owner's wrong assertion about Java is
  // only discovered by a visiting job; with it, the broken installation is
  // never advertised, so the fault cannot reach the pool's error paths.
  if (!discipline.startd_selftest) {
    kinds.push_back(ErrorKind::kJvmMisconfigured);
  }
  model.declare_detection({"startd", "startd.policy", std::move(kinds)});
}

}  // namespace esg::daemons
