// The startd: representative of the execution machine's owner.
//
// Enforces the owner's policy (a START expression), advertises the
// machine's capabilities, and manages claims. With the §5 self-test
// enabled, the startd does not blindly accept the owner's assertion about
// the Java installation: it runs a probe program through the real JVM at
// boot — borrowed from Autoconf — and declines to advertise a Java
// capability it cannot demonstrate.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "daemons/config.hpp"
#include "daemons/groundtruth.hpp"
#include "daemons/job.hpp"
#include "daemons/rpc.hpp"
#include "fs/simfs.hpp"
#include "jvm/jvm.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::daemons {

class Starter;

struct StartdConfig {
  jvm::JvmConfig jvm;
  /// What the machine owner asserts about the Java installation — possibly
  /// wrong, which is the whole point of the self-test.
  bool owner_asserts_java = true;
  std::string java_version = "1.3.1";
  /// Owner policy: when may visiting jobs run (ClassAd expression over the
  /// job ad as TARGET).
  std::string start_expr = "true";
  /// Platform identity, advertised as Arch/OpSys. Heterogeneous pools pin
  /// job Requirements to these, which is what gives the matchmaker's ad
  /// index its selectivity.
  std::string arch = "INTEL";
  std::string opsys = "LINUX";
  std::int64_t memory_mb = 512;
  std::int64_t scratch_capacity_bytes = 64LL << 20;
};

class Startd : public sim::Actor {
 public:
  Startd(sim::Engine& engine, net::NetworkFabric& fabric,
         fs::SimFileSystem& machine_fs, std::string host, StartdConfig config,
         DisciplineConfig discipline, net::Address matchmaker, Ports ports,
         Timeouts timeouts);
  ~Startd() override;

  void boot();
  void shutdown();

  [[nodiscard]] net::Address address() const { return {name(), ports_.startd}; }
  [[nodiscard]] bool advertises_java() const { return has_java_; }
  [[nodiscard]] bool claimed() const { return claim_.has_value(); }
  [[nodiscard]] std::uint64_t jobs_started() const { return jobs_started_; }

  /// The machine's current classad (as would be sent to the matchmaker).
  [[nodiscard]] classad::ClassAd machine_ad() const;

  /// Harness hook: attempt outcomes are recorded here (may be null).
  void set_ground_truth(GroundTruthLog* log) { ground_truth_ = log; }

  /// The machine owner sits down (or leaves): while active, visiting jobs
  /// are refused, and a running job is evicted — Condor's founding
  /// scenario of scavenging idle workstation cycles (§2.1).
  void set_owner_active(bool active);
  [[nodiscard]] bool owner_active() const { return owner_active_; }

  /// Static error-topology declaration (the analysis/ model-checker hook):
  /// the owner-policy detections ("startd.policy"). With the §5 self-test
  /// on, a misconfigured Java never reaches jobs — the kind drops out of
  /// the detection set entirely.
  static void describe_topology(analysis::TopologyModel& model,
                                const DisciplineConfig& discipline);

 private:
  struct Claim {
    ClaimId id;
    std::uint64_t job_id = 0;
    SimTime granted{};
    bool activated = false;
  };

  void run_selftest(std::function<void()> then);
  void advertise_loop();
  /// Push the current ad immediately (also on every claim transition, as
  /// real startds do — the matchmaker must not act on a stale state).
  void advertise_now();
  void on_accept(net::Endpoint endpoint);
  void handle_request(const std::shared_ptr<RpcChannel>& channel,
                      const std::string& command, const classad::ClassAd& body,
                      std::function<void(classad::ClassAd)> reply);
  void claim_expired(ClaimId id);
  void release_claim(const std::string& why);

  net::NetworkFabric& fabric_;
  fs::SimFileSystem& machine_fs_;
  StartdConfig config_;
  DisciplineConfig discipline_;
  net::Address matchmaker_;
  Ports ports_;
  Timeouts timeouts_;

  bool running_ = false;
  bool has_java_ = false;
  bool owner_active_ = false;
  std::optional<Claim> claim_;
  std::unique_ptr<Starter> starter_;
  std::vector<std::shared_ptr<RpcChannel>> inbound_;
  std::uint64_t jobs_started_ = 0;
  int next_starter_port_ = 0;
  GroundTruthLog* ground_truth_ = nullptr;
};

}  // namespace esg::daemons
