#include "daemons/starter.hpp"

#include <sstream>

#include "analysis/topology.hpp"
#include "common/strings.hpp"

namespace esg::daemons {

namespace {

std::string basename(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

// ---- ProxyBackend ----

ProxyBackend::ProxyBackend(fs::SimFileSystem& machine_fs,
                           std::string scratch_dir,
                           std::shared_ptr<RpcChannel> shadow)
    : local_(machine_fs, std::move(scratch_dir), ErrorScope::kRemoteResource),
      shadow_(std::move(shadow)) {}

void ProxyBackend::forward(const chirp::Request& req, Reply reply) {
  if (!shadow_ || !shadow_->is_open()) {
    reply(chirp::Response::fail_scoped(chirp::Code::kDisconnected,
                                       ErrorScope::kNetwork));
    return;
  }
  classad::ClassAd body;
  body.set("Payload", req.encode());
  shadow_->request(
      kCmdRemoteIo, std::move(body),
      [reply = std::move(reply)](Result<classad::ClassAd> r) {
        if (!r.ok()) {
          // The remote I/O channel itself failed: this is not a file
          // error; it is the loss of the mechanism, and the scope rides
          // in the response so the I/O library can classify it.
          reply(chirp::Response::fail_scoped(
              chirp::kind_to_code(r.error().kind()),
              r.error().scope()));
          return;
        }
        Result<chirp::Response> resp =
            chirp::parse_response(r.value().eval_string("Payload"));
        if (!resp.ok()) {
          reply(chirp::Response::fail_scoped(chirp::Code::kDisconnected,
                                             ErrorScope::kProcess));
          return;
        }
        reply(std::move(resp).value());
      });
}

void ProxyBackend::op_open(const std::string& path, const std::string& mode,
                           Reply reply) {
  const std::int64_t fd = next_fd_++;
  if (is_remote(path)) {
    chirp::Request req;
    req.command = "open";
    req.args = {path, mode};
    forward(req, [this, fd, reply = std::move(reply)](chirp::Response resp) {
      if (resp.code == chirp::Code::kOk) {
        fds_[fd] = FdEntry{true, resp.value};
        resp.value = fd;
      }
      reply(std::move(resp));
    });
    return;
  }
  local_.op_open(path, mode,
                 [this, fd, reply = std::move(reply)](chirp::Response resp) {
                   if (resp.code == chirp::Code::kOk) {
                     fds_[fd] = FdEntry{false, resp.value};
                     resp.value = fd;
                   }
                   reply(std::move(resp));
                 });
}

void ProxyBackend::op_close(std::int64_t fd, Reply reply) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    reply(chirp::Response::fail(chirp::Code::kBadFd));
    return;
  }
  const FdEntry entry = it->second;
  fds_.erase(it);
  if (entry.remote) {
    chirp::Request req;
    req.command = "close";
    req.args = {std::to_string(entry.backend_fd)};
    forward(req, std::move(reply));
    return;
  }
  local_.op_close(entry.backend_fd, std::move(reply));
}

void ProxyBackend::op_read(std::int64_t fd, std::int64_t length, Reply reply) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    reply(chirp::Response::fail(chirp::Code::kBadFd));
    return;
  }
  if (it->second.remote) {
    chirp::Request req;
    req.command = "read";
    req.args = {std::to_string(it->second.backend_fd), std::to_string(length)};
    forward(req, std::move(reply));
    return;
  }
  local_.op_read(it->second.backend_fd, length, std::move(reply));
}

void ProxyBackend::op_write(std::int64_t fd, const std::string& data,
                            Reply reply) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    reply(chirp::Response::fail(chirp::Code::kBadFd));
    return;
  }
  if (it->second.remote) {
    chirp::Request req;
    req.command = "write";
    req.args = {std::to_string(it->second.backend_fd)};
    req.data = data;
    forward(req, std::move(reply));
    return;
  }
  local_.op_write(it->second.backend_fd, data, std::move(reply));
}

void ProxyBackend::op_lseek(std::int64_t fd, std::int64_t offset,
                            Reply reply) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    reply(chirp::Response::fail(chirp::Code::kBadFd));
    return;
  }
  if (it->second.remote) {
    chirp::Request req;
    req.command = "lseek";
    req.args = {std::to_string(it->second.backend_fd), std::to_string(offset)};
    forward(req, std::move(reply));
    return;
  }
  local_.op_lseek(it->second.backend_fd, offset, std::move(reply));
}

void ProxyBackend::op_stat(const std::string& path, Reply reply) {
  if (is_remote(path)) {
    chirp::Request req;
    req.command = "stat";
    req.args = {path};
    forward(req, std::move(reply));
    return;
  }
  local_.op_stat(path, std::move(reply));
}

void ProxyBackend::op_unlink(const std::string& path, Reply reply) {
  if (is_remote(path)) {
    chirp::Request req;
    req.command = "unlink";
    req.args = {path};
    forward(req, std::move(reply));
    return;
  }
  local_.op_unlink(path, std::move(reply));
}

void ProxyBackend::op_mkdir(const std::string& path, Reply reply) {
  if (is_remote(path)) {
    chirp::Request req;
    req.command = "mkdir";
    req.args = {path};
    forward(req, std::move(reply));
    return;
  }
  local_.op_mkdir(path, std::move(reply));
}

void ProxyBackend::op_rmdir(const std::string& path, Reply reply) {
  if (is_remote(path)) {
    chirp::Request req;
    req.command = "rmdir";
    req.args = {path};
    forward(req, std::move(reply));
    return;
  }
  local_.op_rmdir(path, std::move(reply));
}

void ProxyBackend::op_rename(const std::string& from, const std::string& to,
                             Reply reply) {
  // A rename must stay on one side of the proxy; mixing local and remote
  // would be a copy, which the protocol deliberately does not hide.
  if (is_remote(from) != is_remote(to)) {
    reply(chirp::Response::fail(chirp::Code::kNotAllowed));
    return;
  }
  if (is_remote(from)) {
    chirp::Request req;
    req.command = "rename";
    req.args = {from, to};
    forward(req, std::move(reply));
    return;
  }
  local_.op_rename(from, to, std::move(reply));
}

void ProxyBackend::op_getdir(const std::string& path, Reply reply) {
  if (is_remote(path)) {
    chirp::Request req;
    req.command = "getdir";
    req.args = {path};
    forward(req, std::move(reply));
    return;
  }
  local_.op_getdir(path, std::move(reply));
}

// ---- Starter ----

Starter::Starter(sim::Engine& engine, net::NetworkFabric& fabric,
                 fs::SimFileSystem& machine_fs, std::string host,
                 jvm::JvmConfig jvm_config, DisciplineConfig discipline,
                 Timeouts timeouts, JobDescription job,
                 std::shared_ptr<RpcChannel> shadow, int proxy_port,
                 GroundTruthLog* ground_truth,
                 std::function<void()> on_finished)
    : engine_(engine),
      fabric_(fabric),
      machine_fs_(machine_fs),
      host_(std::move(host)),
      log_(engine.context().logger("starter@" + host_)),
      trace_(engine.context().trace("starter@" + host_)),
      jvm_config_(jvm_config),
      discipline_(discipline),
      timeouts_(timeouts),
      job_(std::move(job)),
      shadow_(std::move(shadow)),
      proxy_port_(proxy_port),
      ground_truth_(ground_truth),
      on_finished_(std::move(on_finished)),
      rng_(engine.rng().fork("starter@" + host_)) {}

Starter::~Starter() {
  *alive_ = false;
  *cancelled_ = true;
  if (proxy_listening_) {
    fabric_.unlisten({host_, proxy_port_});
  }
}

void Starter::run() {
  std::ostringstream dir;
  dir << "/scratch/job_" << job_.id.value() << "_p" << proxy_port_;
  scratch_ = dir.str();

  // Heartbeats feed the shadow's inactivity watchdog: a silent starter is
  // indistinguishable from a dead one, so never be silent.
  std::shared_ptr<bool> alive_ka = alive_;
  engine_.schedule(timeouts_.keepalive_interval, [this, alive_ka] {
    if (*alive_ka) keepalive();
  });

  // 1. The execution environment starts with a scratch directory (§2.1).
  Result<void> made = machine_fs_.mkdirs(scratch_);
  if (!made.ok()) {
    fail_environment(Error(ErrorKind::kScratchUnavailable,
                           ErrorScope::kRemoteResource,
                           "cannot create scratch directory")
                         .caused_by(std::move(made).error()));
    return;
  }

  // 2. Transfer input files from the shadow.
  std::shared_ptr<bool> alive = alive_;
  fetch_inputs(0, [this, alive](Result<void> r) {
    if (!*alive) return;
    if (!r.ok()) {
      // The shadow stamped the scope (job for a missing input,
      // local-resource for an offline home filesystem).
      fail_environment(std::move(r).error());
      return;
    }
    // 3. Reveal the cookie through the local filesystem (§2.2).
    std::ostringstream hex;
    hex << std::hex << rng_.next_u64() << rng_.next_u64();
    secret_ = hex.str();
    Result<void> wrote =
        machine_fs_.write_file(chirp::cookie_path(scratch_), secret_);
    if (!wrote.ok()) {
      fail_environment(Error(ErrorKind::kScratchUnavailable,
                             ErrorScope::kRemoteResource,
                             "cannot write chirp cookie")
                           .caused_by(std::move(wrote).error()));
      return;
    }
    // 4. Proxy, then 5. JVM.
    start_proxy();
    launch_job();
  });
}

void Starter::fetch_inputs(std::size_t index,
                           std::function<void(Result<void>)> done) {
  if (index >= job_.input_files.size()) {
    done(Ok());
    return;
  }
  const std::string& path = job_.input_files[index];
  classad::ClassAd body;
  body.set("Path", path);
  std::shared_ptr<bool> alive = alive_;
  shadow_->request(
      kCmdFetchFile, std::move(body),
      [this, alive, index, path, done = std::move(done)](
          Result<classad::ClassAd> r) mutable {
        if (!*alive) return;
        if (!r.ok()) {
          done(std::move(r).error());
          return;
        }
        if (!r.value().eval_bool("Ok")) {
          std::optional<Error> e = error_from_ad(r.value(), "Error");
          done(e.value_or(Error(ErrorKind::kProtocolError,
                                "malformed FETCH_FILE reply")));
          return;
        }
        Result<void> wrote = machine_fs_.write_file(
            scratch_ + "/" + basename(path), r.value().eval_string("Data"));
        if (!wrote.ok()) {
          done(Error(ErrorKind::kScratchUnavailable,
                     ErrorScope::kRemoteResource,
                     "cannot stage input " + path)
                   .caused_by(std::move(wrote).error()));
          return;
        }
        fetch_inputs(index + 1, std::move(done));
      });
}

void Starter::keepalive() {
  if (finished_ || !shadow_->is_open()) return;
  classad::ClassAd body;
  body.set("JobId", static_cast<std::int64_t>(job_.id.value()));
  shadow_->notify(kCmdKeepalive, std::move(body));
  std::shared_ptr<bool> alive = alive_;
  engine_.schedule(timeouts_.keepalive_interval, [this, alive] {
    if (*alive) keepalive();
  });
}

void Starter::start_proxy() {
  backend_ = std::make_unique<ProxyBackend>(machine_fs_, scratch_, shadow_);
  std::shared_ptr<bool> alive = alive_;
  Result<void> listening = fabric_.listen(
      {host_, proxy_port_}, [this, alive](net::Endpoint ep) {
        if (!*alive) return;
        proxy_servers_.push_back(std::make_unique<chirp::ChirpServer>(
            std::move(ep), *backend_, secret_));
      });
  proxy_listening_ = listening.ok();
}

void Starter::launch_job() {
  if (job_.universe == Universe::kVanilla) {
    launch_vanilla();
    return;
  }
  launch_java();
}

bool Starter::is_standard_universe() const {
  return job_.universe == Universe::kStandard;
}

void Starter::launch_vanilla() {
  // The Vanilla universe runs the program as a plain binary: no JVM, no
  // wrapper, no Chirp proxy (§2.1: such jobs "cannot checkpoint or migrate
  // outside of a shared file system"). I/O is the machine's own
  // filesystem, relative paths resolving to the scratch directory, and the
  // only program result is the exit code — even under the scoped
  // discipline, the Vanilla universe simply has less to say.
  vanilla_io_ = std::make_unique<jvm::LocalJavaIo>(
      machine_fs_, jvm::IoDiscipline::kConcise, scratch_, &engine_.context());
  jvm::JvmConfig native;
  native.installed = true;
  native.classpath_ok = true;  // a native binary carries its own runtime
  native.heap_bytes = 1LL << 40;  // bounded by the machine, not a VM flag
  native.startup_time = SimTime::msec(5);
  jvm_ = std::make_unique<jvm::SimJvm>(engine_, native, "jvm@" + host_);
  std::shared_ptr<bool> alive = alive_;
  jvm_control_ = jvm_->run(
      job_.program, *vanilla_io_, jvm::WrapMode::kBare, &machine_fs_,
      scratch_ + "/.result",
      [this, alive](const jvm::JvmOutcome& outcome) {
              if (!*alive) return;
              cpu_seconds_ = outcome.cpu_time.as_sec();
              if (ground_truth_ != nullptr) {
                AttemptGroundTruth truth;
                truth.job_id = job_.id.value();
                truth.machine = host_;
                truth.completed_main = outcome.completed_main;
                truth.system_exit = outcome.system_exit;
                truth.condition = outcome.condition;
                truth.cpu_seconds = cpu_seconds_;
                ground_truth_->record(truth);
              }
              if (preempt_error_.has_value()) {
                Error reason = std::move(*preempt_error_);
                preempt_error_.reset();
                fail_environment(std::move(reason));
                return;
              }
              interpret_bare(outcome);
            },
            cancelled_);
}

void Starter::launch_java() {
  // A missing JVM binary fails at exec time — there is no JVM to produce
  // even an exit code. (Standard-universe binaries carry their own
  // runtime: the Condor library was linked in, no JVM is involved.)
  if (!jvm_config_.installed && !is_standard_universe()) {
    AttemptGroundTruth truth;
    truth.job_id = job_.id.value();
    truth.machine = host_;
    truth.condition = Error(ErrorKind::kJvmMissing,
                            "exec failed: owner-advertised JVM path is wrong")
                          .with_label("injected", "jvm-missing");
    if (ground_truth_ != nullptr) ground_truth_->record(truth);

    if (discipline_.scope_routing) {
      fail_environment(Error(ErrorKind::kJvmMissing,
                             ErrorScope::kRemoteResource,
                             "exec failed: cannot run advertised JVM"));
    } else {
      // Naive: the starter reports "the job exited with code 1" — the
      // environmental failure is laundered into a program result (§2.3).
      // The starter *knew* the explicit cause and destroyed it; linking the
      // implicit event to the raise is exactly the P1 violation the
      // checker exists to catch.
      const std::uint64_t knew = trace_.raised(
          Error(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource,
                "exec failed: cannot run advertised JVM"),
          job_.id.value(), "naive discipline");
      trace_.implicit(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource,
                      job_.id.value(), "laundered to program exit code 1",
                      knew);
      jvm::ResultFile rf;
      rf.exit_by = jvm::ResultFile::ExitBy::kSystemExit;
      rf.exit_code = 1;
      report(ExecutionSummary::program(rf, host_, 0));
    }
    return;
  }

  // The job process: connect to the proxy over loopback, read the cookie
  // through the local filesystem, authenticate, and run main.
  std::shared_ptr<bool> alive = alive_;
  fabric_.connect(
      host_, {host_, proxy_port_},
      [this, alive](Result<net::Endpoint> ep) {
        if (!*alive) return;
        if (!ep.ok()) {
          fail_environment(Error(ErrorKind::kScratchUnavailable,
                                 ErrorScope::kRemoteResource,
                                 "job cannot reach I/O proxy")
                               .caused_by(std::move(ep).error()));
          return;
        }
        job_chirp_ = std::make_unique<chirp::ChirpClient>(
            engine_, std::move(ep).value(), timeouts_.chirp_timeout,
            "chirp-client@" + host_);

        Result<std::string> cookie =
            machine_fs_.read_file(chirp::cookie_path(scratch_));
        if (!cookie.ok()) {
          fail_environment(Error(ErrorKind::kScratchUnavailable,
                                 ErrorScope::kRemoteResource,
                                 "job cannot read chirp cookie")
                               .caused_by(std::move(cookie).error()));
          return;
        }
        job_chirp_->authenticate(
            cookie.value(), [this, alive](Result<void> auth) {
              if (!*alive) return;
              if (!auth.ok()) {
                fail_environment(Error(ErrorKind::kAuthenticationFailed,
                                       ErrorScope::kRemoteResource,
                                       "job cannot authenticate to proxy")
                                     .caused_by(std::move(auth).error()));
                return;
              }
              jvm::ChirpJavaIo::Options io_options;
              io_options.discipline = discipline_.io;
              io_options.generic_diskfull_blocks =
                  discipline_.generic_diskfull_blocks;
              io_options.component = "javaio@" + host_;
              jvm::JvmConfig config = jvm_config_;
              jvm::WrapMode wrap = discipline_.wrap;
              if (is_standard_universe()) {
                // The Condor syscall library *is* the concise interface;
                // the binary needs no JVM and has no wrapper, and
                // checkpointing is the universe's whole point.
                io_options.discipline = jvm::IoDiscipline::kConcise;
                config.installed = true;
                config.classpath_ok = true;
                config.startup_time = SimTime::msec(5);
                wrap = jvm::WrapMode::kBare;
              }
              job_io_ = std::make_unique<jvm::ChirpJavaIo>(*job_chirp_,
                                                           io_options);
              jvm_ = std::make_unique<jvm::SimJvm>(engine_, config,
                                                   "jvm@" + host_);
              jvm::RunExtras extras;
              if (discipline_.checkpointing || is_standard_universe()) {
                extras.resume = resume_;
                extras.sink = &checkpoint_sink_;
                extras.checkpoint_interval = discipline_.checkpoint_interval;
              }
              jvm_control_ =
                  jvm_->run(job_.program, *job_io_, wrap,
                            &machine_fs_, scratch_ + "/.result",
                            [this, alive](const jvm::JvmOutcome& outcome) {
                              if (!*alive) return;
                              on_jvm_outcome(outcome);
                            },
                            cancelled_, extras);
            });
      });
}

void Starter::on_jvm_outcome(const jvm::JvmOutcome& outcome) {
  cpu_seconds_ = outcome.cpu_time.as_sec();
  if (ground_truth_ != nullptr) {
    AttemptGroundTruth truth;
    truth.job_id = job_.id.value();
    truth.machine = host_;
    truth.completed_main = outcome.completed_main;
    truth.system_exit = outcome.system_exit;
    truth.condition = outcome.condition;
    truth.cpu_seconds = cpu_seconds_;
    ground_truth_->record(truth);
  }
  if (preempt_error_.has_value()) {
    // The process died because we killed it; report the eviction, not the
    // (absent) program result.
    Error reason = std::move(*preempt_error_);
    preempt_error_.reset();
    fail_environment(std::move(reason));
    return;
  }
  if (discipline_.wrap == jvm::WrapMode::kWrapped &&
      !is_standard_universe()) {
    interpret_wrapped(outcome);
  } else {
    interpret_bare(outcome);
  }
}

void Starter::interpret_wrapped(const jvm::JvmOutcome& outcome) {
  // The starter examines the result file and ignores the JVM exit code
  // entirely (§4).
  (void)outcome;
  Result<std::string> text = machine_fs_.read_file(scratch_ + "/.result");
  if (!text.ok()) {
    fail_environment(Error(ErrorKind::kScratchUnavailable,
                           ErrorScope::kRemoteResource,
                           "wrapper result file unreadable")
                         .caused_by(std::move(text).error()));
    return;
  }
  Result<jvm::ResultFile> rf = jvm::ResultFile::parse(text.value());
  if (!rf.ok()) {
    fail_environment(Error(ErrorKind::kScratchUnavailable,
                           ErrorScope::kRemoteResource,
                           "wrapper result file corrupt")
                         .caused_by(std::move(rf).error()));
    return;
  }
  const jvm::ResultFile& result = rf.value();
  if (result.exit_by == jvm::ResultFile::ExitBy::kException &&
      result.error.has_value() &&
      result.error->scope() != ErrorScope::kProgram) {
    // An error in the surrounding environment, not a program result: the
    // scope rides up the chain (Principle 3).
    fail_environment(Error(*result.error));
    return;
  }
  transfer_outputs(0, ExecutionSummary::program(result, host_, cpu_seconds_));
}

void Starter::interpret_bare(const jvm::JvmOutcome& outcome) {
  // All the starter has is Figure 4's result code.
  jvm::ResultFile rf;
  if (outcome.exit_code == 0) {
    rf.exit_by = jvm::ResultFile::ExitBy::kCompletion;
    rf.exit_code = 0;
  } else {
    rf.exit_by = jvm::ResultFile::ExitBy::kSystemExit;
    rf.exit_code = outcome.exit_code;
  }
  transfer_outputs(0, ExecutionSummary::program(rf, host_, cpu_seconds_));
}

void Starter::transfer_outputs(std::size_t index, ExecutionSummary summary) {
  if (!summary.have_program_result ||
      summary.program_result.exit_by == jvm::ResultFile::ExitBy::kException ||
      index >= job_.output_files.size()) {
    report(std::move(summary));
    return;
  }
  const std::string& name = job_.output_files[index];
  Result<std::string> data = machine_fs_.read_file(scratch_ + "/" + name);
  if (!data.ok()) {
    // The program chose not to produce this output; nothing to transfer.
    transfer_outputs(index + 1, std::move(summary));
    return;
  }
  classad::ClassAd body;
  body.set("Path", name);
  body.set("Data", data.value());
  std::shared_ptr<bool> alive = alive_;
  shadow_->request(
      kCmdStoreFile, std::move(body),
      [this, alive, index, name, summary = std::move(summary)](
          Result<classad::ClassAd> r) mutable {
        if (!*alive) return;
        if (!r.ok()) {
          fail_environment(std::move(r).error());
          return;
        }
        if (!r.value().eval_bool("Ok")) {
          std::optional<Error> e = error_from_ad(r.value(), "Error");
          fail_environment(
              Error(ErrorKind::kInputUnavailable, ErrorScope::kLocalResource,
                    "cannot store output " + name)
                  .caused_by(e.value_or(Error(ErrorKind::kUnknown))));
          return;
        }
        transfer_outputs(index + 1, std::move(summary));
      });
}

void Starter::report(ExecutionSummary summary) {
  if (finished_) return;
  finished_ = true;
  log_.info("job ", job_.id.value(), ": ", summary.str());
  if (shadow_->is_open()) {
    shadow_->notify(kCmdJobSummary, summary.to_ad());
  }
  cleanup();
  if (on_finished_) on_finished_();
}

void Starter::fail_environment(Error error) {
  trace_.raised(error, job_.id.value(),
                "starter classifies environment failure");
  report(ExecutionSummary::environment(
      std::move(error).with_origin("starter@" + host_), host_,
      cpu_seconds_));
}

void Starter::ShadowCheckpointSink::store(const jvm::Checkpoint& checkpoint) {
  if (owner_.finished_ || !owner_.shadow_->is_open()) return;
  classad::ClassAd body;
  body.set("JobId", static_cast<std::int64_t>(owner_.job_.id.value()));
  body.set("Checkpoint", checkpoint.encode());
  owner_.shadow_->notify(kCmdCheckpoint, std::move(body));
}

void Starter::preempt(const std::string& why) {
  if (finished_) return;
  Error reason = Error(ErrorKind::kPolicyRefused, ErrorScope::kRemoteResource,
                       "evicted: " + why)
                     .with_label("evicted", why);
  if (jvm_control_ != nullptr && !jvm_control_->finished()) {
    // Kill the process; its death report flows through on_jvm_outcome so
    // the consumed CPU is still accounted for.
    preempt_error_ = reason;
    jvm_control_->terminate(std::move(reason));
    return;
  }
  // Not running yet (staging phase): report directly.
  *cancelled_ = true;
  fail_environment(std::move(reason));
}

void Starter::kill(const std::string& why) {
  if (finished_) return;
  finished_ = true;
  log_.info("job ", job_.id.value(), " killed: ", why);
  if (ground_truth_ != nullptr && jvm_control_ != nullptr &&
      !jvm_control_->finished()) {
    // A cancelled run never reports an outcome, so the compute it burned
    // would otherwise vanish from the harness's books. Record the death
    // here — the wasted-CPU accounting in chaos scorecards depends on it.
    AttemptGroundTruth truth;
    truth.job_id = job_.id.value();
    truth.machine = host_;
    truth.condition = Error(ErrorKind::kDaemonCrashed,
                            ErrorScope::kRemoteResource, "killed: " + why)
                          .with_label("killed", why);
    truth.cpu_seconds = jvm_control_->consumed().as_sec();
    ground_truth_->record(truth);
  }
  *alive_ = false;
  *cancelled_ = true;
  cleanup();
}

void Starter::cleanup() {
  if (proxy_listening_) {
    fabric_.unlisten({host_, proxy_port_});
    proxy_listening_ = false;
  }
  if (!scratch_.empty()) {
    (void)machine_fs_.remove_all(scratch_);
  }
}

void Starter::describe_topology(analysis::TopologyModel& model,
                                const DisciplineConfig& discipline) {
  model.declare_component("starter");

  // Environment faults the starter discovers while building the job's
  // world: exec-time JVM failures, scratch space, and image problems.
  model.declare_detection(
      {"starter",
       "starter.environment",
       {ErrorKind::kJvmMissing, ErrorKind::kJvmMisconfigured,
        ErrorKind::kScratchUnavailable, ErrorKind::kCorruptImage,
        ErrorKind::kClassNotFound}});

  analysis::InterfaceDecl report;
  report.component = "starter";
  report.routine = "starter.report";
  if (discipline.wrap == jvm::WrapMode::kWrapped) {
    // §4: the starter reads the wrapper's result file, adds what it knows
    // about the environment, and reports a scope-bearing summary. It
    // manages remote-resource scope — this machine's failures are its own.
    model.declare_handler("starter", ErrorScope::kRemoteResource);
    report.allowed = {
        ErrorKind::kNullPointer,      ErrorKind::kArrayIndexOutOfBounds,
        ErrorKind::kArithmeticError,  ErrorKind::kUncaughtException,
        ErrorKind::kExitNonZero,      ErrorKind::kOutOfMemory,
        ErrorKind::kStackOverflow,    ErrorKind::kInternalVmError,
        ErrorKind::kCorruptImage,     ErrorKind::kClassNotFound,
        ErrorKind::kJvmMissing,       ErrorKind::kJvmMisconfigured,
        ErrorKind::kScratchUnavailable};
    report.escape_floor = ErrorScope::kRemoteResource;
  } else {
    // §2.3: the report is the JVM exit code. Every condition — program
    // exception, missing JVM, offline filesystem — collapses into it, and
    // the starter passes it along as if it were the program's own doing.
    report.allowed = {ErrorKind::kExitNonZero};
    report.mode = analysis::InterfaceMode::kLeak;
  }
  model.declare_interface(std::move(report));
  model.declare_flow("starter.environment", "starter.report");
}

}  // namespace esg::daemons
