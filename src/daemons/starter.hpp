// The starter: manager of one job's execution environment (§2.1, §2.2).
//
// Responsibilities, in order: create a scratch directory, transfer input
// files from the shadow, reveal the Chirp cookie through the local
// filesystem, run the I/O proxy, invoke the JVM (bare or wrapped per the
// discipline), interpret the outcome, transfer outputs back, and report an
// ExecutionSummary. The starter manages remote-resource scope: failures of
// the machine it runs on are *its* to classify and report.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chirp/client.hpp"
#include "chirp/server.hpp"
#include "daemons/config.hpp"
#include "daemons/groundtruth.hpp"
#include "daemons/job.hpp"
#include "daemons/rpc.hpp"
#include "fs/simfs.hpp"
#include "jvm/jvm.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::daemons {

/// Routes proxy operations: relative paths go to the local scratch
/// sandbox; absolute paths are forwarded to the shadow's remote I/O
/// channel over the starter<->shadow RPC connection (§2.2: "We demonstrate
/// a typical application of the proxy by making use of the standard Condor
/// remote I/O channel to the shadow").
class ProxyBackend final : public chirp::Backend {
 public:
  ProxyBackend(fs::SimFileSystem& machine_fs, std::string scratch_dir,
               std::shared_ptr<RpcChannel> shadow);

  void op_open(const std::string& path, const std::string& mode,
               Reply reply) override;
  void op_close(std::int64_t fd, Reply reply) override;
  void op_read(std::int64_t fd, std::int64_t length, Reply reply) override;
  void op_write(std::int64_t fd, const std::string& data,
                Reply reply) override;
  void op_lseek(std::int64_t fd, std::int64_t offset, Reply reply) override;
  void op_stat(const std::string& path, Reply reply) override;
  void op_unlink(const std::string& path, Reply reply) override;
  void op_mkdir(const std::string& path, Reply reply) override;
  void op_rmdir(const std::string& path, Reply reply) override;
  void op_rename(const std::string& from, const std::string& to,
                 Reply reply) override;
  void op_getdir(const std::string& path, Reply reply) override;

 private:
  static bool is_remote(const std::string& path) {
    return !path.empty() && path[0] == '/';
  }
  void forward(const chirp::Request& req, Reply reply);

  chirp::FsBackend local_;
  std::shared_ptr<RpcChannel> shadow_;
  // Our fd namespace: maps to (remote?, backend fd).
  struct FdEntry {
    bool remote = false;
    std::int64_t backend_fd = 0;
  };
  std::map<std::int64_t, FdEntry> fds_;
  std::int64_t next_fd_ = 3;
};

class Starter {
 public:
  Starter(sim::Engine& engine, net::NetworkFabric& fabric,
          fs::SimFileSystem& machine_fs, std::string host,
          jvm::JvmConfig jvm_config, DisciplineConfig discipline,
          Timeouts timeouts, JobDescription job,
          std::shared_ptr<RpcChannel> shadow, int proxy_port,
          GroundTruthLog* ground_truth, std::function<void()> on_finished);

  /// Resume point shipped with the activation (empty = fresh start).
  void set_resume(jvm::Checkpoint resume) { resume_ = resume; }
  ~Starter();

  Starter(const Starter&) = delete;
  Starter& operator=(const Starter&) = delete;

  void run();

  /// Tear down without reporting (channel already dead or claim revoked).
  void kill(const std::string& why);

  /// Owner policy eviction: stop the job and report a remote-resource
  /// scope condition — the job did nothing wrong; the machine withdrew.
  void preempt(const std::string& why);

  [[nodiscard]] const std::string& scratch_dir() const { return scratch_; }

  /// Static error-topology declaration (the analysis/ model-checker hook):
  /// the environment faults the starter discovers ("starter.environment")
  /// and the report it sends the shadow ("starter.report"). Under kWrapped
  /// the report preserves scope and the starter manages remote-resource
  /// scope; under kBare it is the exit code — the §2.3 laundering boundary.
  static void describe_topology(analysis::TopologyModel& model,
                                const DisciplineConfig& discipline);

 private:
  void fetch_inputs(std::size_t index, std::function<void(Result<void>)> done);
  void start_proxy();
  void keepalive();
  void launch_job();
  void launch_java();
  void launch_vanilla();
  [[nodiscard]] bool is_standard_universe() const;
  void on_jvm_outcome(const jvm::JvmOutcome& outcome);
  void interpret_wrapped(const jvm::JvmOutcome& outcome);
  void interpret_bare(const jvm::JvmOutcome& outcome);
  void transfer_outputs(std::size_t index, ExecutionSummary summary);
  void report(ExecutionSummary summary);
  void fail_environment(Error error);
  void cleanup();

  sim::Engine& engine_;
  net::NetworkFabric& fabric_;
  fs::SimFileSystem& machine_fs_;
  std::string host_;
  Logger log_;
  obs::TraceSink trace_;
  jvm::JvmConfig jvm_config_;
  DisciplineConfig discipline_;
  Timeouts timeouts_;
  JobDescription job_;
  std::shared_ptr<RpcChannel> shadow_;
  int proxy_port_;
  GroundTruthLog* ground_truth_;
  std::function<void()> on_finished_;

  std::string scratch_;
  std::string secret_;
  Rng rng_;
  std::unique_ptr<ProxyBackend> backend_;
  std::vector<std::unique_ptr<chirp::ChirpServer>> proxy_servers_;
  /// Forwards checkpoints over the shadow channel to stable storage.
  class ShadowCheckpointSink final : public jvm::CheckpointSink {
   public:
    explicit ShadowCheckpointSink(Starter& owner) : owner_(owner) {}
    void store(const jvm::Checkpoint& checkpoint) override;

   private:
    Starter& owner_;
  };

  std::unique_ptr<chirp::ChirpClient> job_chirp_;
  std::unique_ptr<jvm::ChirpJavaIo> job_io_;
  std::unique_ptr<jvm::LocalJavaIo> vanilla_io_;
  std::unique_ptr<jvm::SimJvm> jvm_;
  std::shared_ptr<jvm::JvmControl> jvm_control_;
  ShadowCheckpointSink checkpoint_sink_{*this};
  jvm::Checkpoint resume_;
  /// Set while an eviction is being delivered: on_jvm_outcome reports this
  /// instead of interpreting the (killed) process's result.
  std::optional<Error> preempt_error_;
  bool proxy_listening_ = false;
  bool finished_ = false;
  double cpu_seconds_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  /// Inverse of alive_, for SimJvm's cancel token (true = killed).
  std::shared_ptr<bool> cancelled_ = std::make_shared<bool>(false);
};

}  // namespace esg::daemons
