#include "daemons/wire.hpp"

namespace esg::daemons {

std::string WireMessage::encode() const {
  return command + "\n" + body.str();
}

Result<WireMessage> WireMessage::parse(const std::string& wire) {
  const std::size_t nl = wire.find('\n');
  WireMessage out;
  out.command = wire.substr(0, nl);
  if (out.command.empty()) {
    return Error(ErrorKind::kRequestMalformed, "empty wire command");
  }
  if (nl != std::string::npos && nl + 1 < wire.size()) {
    Result<classad::ClassAd> ad = classad::parse_classad(wire.substr(nl + 1));
    if (!ad.ok()) {
      return Error(ErrorKind::kRequestMalformed,
                   "bad wire body for " + out.command + ": " +
                       ad.error().message());
    }
    out.body = std::move(ad).value();
  }
  return out;
}

}  // namespace esg::daemons
