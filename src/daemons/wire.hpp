// Wire format for daemon-to-daemon messages.
//
// Like real Condor, daemons speak ClassAds to each other: every message is
// a command word plus an ad. Every parse is defensive — the peer is an
// autonomous component and its output crosses a trust boundary.
#pragma once

#include <string>

#include "classad/classad.hpp"
#include "core/result.hpp"

namespace esg::daemons {

struct WireMessage {
  std::string command;
  classad::ClassAd body;

  [[nodiscard]] std::string encode() const;
  static Result<WireMessage> parse(const std::string& wire);
};

// Command vocabulary (concise and finite, per Principle 4).
inline constexpr const char* kCmdUpdateStartdAd = "UPDATE_STARTD_AD";
inline constexpr const char* kCmdUpdateSubmitterAd = "UPDATE_SUBMITTER_AD";
inline constexpr const char* kCmdNotifyMatch = "NOTIFY_MATCH";
inline constexpr const char* kCmdRequestClaim = "REQUEST_CLAIM";
inline constexpr const char* kCmdClaimGranted = "CLAIM_GRANTED";
inline constexpr const char* kCmdClaimDenied = "CLAIM_DENIED";
inline constexpr const char* kCmdActivateClaim = "ACTIVATE_CLAIM";
inline constexpr const char* kCmdActivated = "ACTIVATED";
inline constexpr const char* kCmdActivateFailed = "ACTIVATE_FAILED";
inline constexpr const char* kCmdReleaseClaim = "RELEASE_CLAIM";
inline constexpr const char* kCmdFetchFile = "FETCH_FILE";
inline constexpr const char* kCmdStoreFile = "STORE_FILE";
inline constexpr const char* kCmdRemoteIo = "REMOTE_IO";
inline constexpr const char* kCmdJobSummary = "JOB_SUMMARY";
inline constexpr const char* kCmdCheckpoint = "CHECKPOINT_STORE";
inline constexpr const char* kCmdKeepalive = "KEEPALIVE";
inline constexpr const char* kCmdReply = "REPLY";

}  // namespace esg::daemons
