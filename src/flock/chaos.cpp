#include "flock/chaos.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "daemons/config.hpp"
#include "obs/export.hpp"
#include "pool/workload.hpp"

namespace esg::flock {
namespace {

using chaos::FaultAction;
using chaos::FaultActionType;
using chaos::FaultPlan;

std::string pool_of(const std::string& host) {
  return host.substr(0, host.find('.'));
}

bool is_central(const std::string& host) { return host.ends_with(".central"); }

}  // namespace

std::string federated_pool_name(int index) {
  return index == 0 ? "home" : strfmt("p%d", index);
}

FaultPlan make_federated_plan(std::uint64_t seed,
                              const chaos::PoolShape& shape) {
  FaultPlan plan;
  plan.seed = seed;
  plan.shape = shape;
  const int pools = std::max(shape.pools, 2);
  const int machines = std::max(shape.machines, 1);
  Rng rng(seed);

  const auto remote = [&] {
    return static_cast<int>(rng.uniform_int(1, pools - 1));
  };
  const auto push_pair = [&](FaultAction first, FaultActionType recovery,
                             SimTime recover_at) {
    FaultAction recover = first;
    recover.type = recovery;
    recover.at = recover_at;
    plan.actions.push_back(std::move(first));
    plan.actions.push_back(std::move(recover));
  };

  // 1. A remote execution machine crashes under flocked work: machine
  // scope inside its own pool, *cluster* scope at the home schedd.
  {
    FaultAction crash;
    crash.type = FaultActionType::kCrash;
    crash.host =
        strfmt("%s.exec%lld", federated_pool_name(remote()).c_str(),
               static_cast<long long>(rng.uniform_int(0, machines - 1)));
    crash.at = SimTime::sec(rng.uniform_int(45, 120));
    const SimTime recover_at = crash.at + SimTime::sec(rng.uniform_int(30, 90));
    push_pair(std::move(crash), FaultActionType::kRestart, recover_at);
  }
  // 2. The home<->remote trunk severed mid-flock: advertisements and
  // claims toward that matchmaker now fail *network*-scope.
  {
    FaultAction sever;
    sever.type = FaultActionType::kSever;
    sever.host = "home.submit";
    sever.peer = federated_pool_name(remote()) + ".central";
    sever.at = SimTime::sec(rng.uniform_int(30, 90));
    const SimTime recover_at = sever.at + SimTime::sec(rng.uniform_int(20, 60));
    push_pair(std::move(sever), FaultActionType::kReconnect, recover_at);
  }
  // 3. A remote pool blacks out mid-negotiation (matchmaker partitioned,
  // then healed) — the flock layer must avoid, not hang.
  {
    FaultAction blackout;
    blackout.type = FaultActionType::kPartition;
    blackout.host = federated_pool_name(remote()) + ".central";
    blackout.at = SimTime::sec(rng.uniform_int(40, 110));
    const SimTime recover_at = blackout.at + SimTime::sec(rng.uniform_int(20, 60));
    push_pair(std::move(blackout), FaultActionType::kHeal, recover_at);
  }
  // 4. The telemetry stream to the parent partitioned: the child holds
  // its chunks and retransmits after reconnect (at-least-once contract).
  {
    FaultAction cut;
    cut.type = FaultActionType::kSever;
    cut.host =
        federated_pool_name(static_cast<int>(rng.uniform_int(0, pools - 1))) +
        ".central";
    cut.peer = "parent";
    cut.at = SimTime::sec(rng.uniform_int(30, 100));
    const SimTime recover_at = cut.at + SimTime::sec(rng.uniform_int(30, 90));
    push_pair(std::move(cut), FaultActionType::kReconnect, recover_at);
  }

  std::stable_sort(plan.actions.begin(), plan.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FederatedInjector::FederatedInjector(Federation& federation, FaultPlan plan)
    : federation_(federation), plan_(std::move(plan)) {}

std::shared_ptr<FederatedInjector> FederatedInjector::arm(
    Federation& federation, FaultPlan plan) {
  std::shared_ptr<FederatedInjector> injector(
      new FederatedInjector(federation, std::move(plan)));
  // Same contract as chaos::Injector: fork the injection streams at arm
  // time, in plan order, before any event runs.
  for (const FaultAction& action : injector->plan_.actions) {
    switch (action.type) {
      case FaultActionType::kFsFaults:
      case FaultActionType::kChronic:
        injector->fs_rng(action.host);
        break;
      case FaultActionType::kCorrupt:
        injector->corrupt_rng(action.host);
        break;
      default:
        break;
    }
  }
  injector->schedule_all(injector);
  return injector;
}

Rng& FederatedInjector::fs_rng(const std::string& host) {
  for (auto& [name, rng] : fs_rngs_) {
    if (name == host) return rng;
  }
  fs_rngs_.emplace_back(
      host, federation_.engine().rng().fork(rng_streams::chaos_fs(host)));
  return fs_rngs_.back().second;
}

Rng& FederatedInjector::corrupt_rng(const std::string& host) {
  for (auto& [name, rng] : corrupt_rngs_) {
    if (name == host) return rng;
  }
  corrupt_rngs_.emplace_back(
      host,
      federation_.engine().rng().fork(rng_streams::chaos_corruption(host)));
  return corrupt_rngs_.back().second;
}

void FederatedInjector::schedule_all(
    const std::shared_ptr<FederatedInjector>& self) {
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    federation_.engine().schedule_at(plan_.actions[i].at, [self, i] {
      self->apply(self->plan_.actions[i]);
    });
    const FaultAction& action = plan_.actions[i];
    const bool windowed = action.type == FaultActionType::kLink ||
                          action.type == FaultActionType::kFsFaults ||
                          action.type == FaultActionType::kCorrupt;
    if (windowed) {
      federation_.engine().schedule_at(action.at + action.duration, [self, i] {
        self->restore(self->plan_.actions[i]);
      });
    }
  }
}

void FederatedInjector::note(const FaultAction& action, const char* phase) {
  ++fired_;
  log_.push_back(strfmt("%s %s", phase, action.str().c_str()));
}

void FederatedInjector::apply(const FaultAction& action) {
  net::NetworkFabric& fabric = federation_.fabric();
  switch (action.type) {
    case FaultActionType::kCrash:
      // The daemon dies first (aborting its connections — §3.2's escaping
      // error), then the host drops off the network.
      if (is_central(action.host)) {
        if (daemons::Matchmaker* mm =
                federation_.matchmaker(pool_of(action.host))) {
          mm->shutdown();
        }
      } else if (daemons::Startd* startd = federation_.startd(action.host)) {
        startd->shutdown();
      }
      fabric.crash_host(action.host);
      break;
    case FaultActionType::kRestart:
      if (is_central(action.host)) {
        if (daemons::Matchmaker* mm =
                federation_.matchmaker(pool_of(action.host))) {
          mm->boot();
        }
      } else if (daemons::Startd* startd = federation_.startd(action.host)) {
        startd->boot();
      }
      break;
    case FaultActionType::kPartition:
      fabric.set_partitioned(action.host, true);
      break;
    case FaultActionType::kHeal:
      fabric.set_partitioned(action.host, false);
      break;
    case FaultActionType::kLink: {
      net::HostFaults faults = fabric.faults_for(action.host);
      faults.drop_msg_prob = action.rate;
      faults.latency += action.extra_latency;
      fabric.set_host_faults(action.host, faults);
      break;
    }
    case FaultActionType::kFsFaults:
      if (fs::SimFileSystem* fs = federation_.machine_fs(action.host)) {
        fs->set_transient_fault_rate(action.rate, fs_rng(action.host));
      }
      break;
    case FaultActionType::kCorrupt:
      if (fs::SimFileSystem* fs = federation_.machine_fs(action.host)) {
        fs->set_silent_corruption_rate(action.rate, corrupt_rng(action.host));
      }
      break;
    case FaultActionType::kChronic:
      if (fs::SimFileSystem* fs = federation_.machine_fs(action.host)) {
        fs->set_transient_fault_rate(action.rate, fs_rng(action.host));
      }
      federation_.recorder().chronic_failure("chaos: chronic " + action.host);
      break;
    case FaultActionType::kSever:
      fabric.set_link_severed(action.host, action.peer, true);
      break;
    case FaultActionType::kReconnect:
      fabric.set_link_severed(action.host, action.peer, false);
      break;
  }
  note(action, "apply");
}

void FederatedInjector::restore(const FaultAction& action) {
  net::NetworkFabric& fabric = federation_.fabric();
  switch (action.type) {
    case FaultActionType::kLink: {
      // Federated cells build all-good machines, so base rates are zero.
      net::HostFaults faults = fabric.faults_for(action.host);
      faults.drop_msg_prob = 0;
      faults.latency -= action.extra_latency;
      fabric.set_host_faults(action.host, faults);
      break;
    }
    case FaultActionType::kFsFaults:
      if (fs::SimFileSystem* fs = federation_.machine_fs(action.host)) {
        fs->set_transient_fault_rate(0, fs_rng(action.host));
      }
      break;
    case FaultActionType::kCorrupt:
      if (fs::SimFileSystem* fs = federation_.machine_fs(action.host)) {
        fs->set_silent_corruption_rate(0, corrupt_rng(action.host));
      }
      break;
    default:
      break;  // non-windowed actions have nothing to restore
  }
  note(action, "restore");
}

FederationConfig federated_cell_config(const FaultPlan& plan) {
  FederationConfig config;
  config.seed = plan.seed;
  config.discipline = plan.shape.discipline == "naive"
                          ? daemons::DisciplineConfig::naive()
                          : daemons::DisciplineConfig::scoped();
  if (plan.shape.discipline != "naive") {
    config.discipline.schedd_avoidance = true;
  }
  config.trace = true;
  config.trace_capacity = 1 << 16;
  config.stream = true;
  // Home is deliberately starved (one machine) so the workload overflows
  // through flocking; remote pools are all-good, so any red cell is
  // attributable to the injected plan.
  const int pools = std::max(plan.shape.pools, 2);
  for (int i = 0; i < pools; ++i) {
    PoolSpec spec;
    spec.name = federated_pool_name(i);
    const int machines = i == 0 ? 1 : std::max(plan.shape.machines, 1);
    for (int m = 0; m < machines; ++m) {
      spec.machines.push_back(pool::MachineSpec::good(strfmt("exec%d", m)));
    }
    config.pools.push_back(std::move(spec));
  }
  return config;
}

pool::SweepCell make_federated_cell(const FaultPlan& plan, std::string label) {
  pool::SweepCell cell;
  cell.label = std::move(label);
  cell.limit = plan.shape.limit;
  cell.run = [plan, label = cell.label] {
    Federation federation(federated_cell_config(plan));
    federation.boot();

    pool::stage_workload_inputs(*federation.submit_fs("home"));
    pool::WorkloadOptions workload;
    workload.count = plan.shape.jobs;
    workload.mean_compute = plan.shape.mean_compute;
    workload.remote_io_fraction = 0.25;
    workload.remote_write_fraction = 0.25;
    Rng rng = Rng(plan.seed).fork("chaos.workload");
    for (auto& job : pool::make_workload(workload, rng)) {
      federation.submit(0, std::move(job));
    }
    FederatedInjector::arm(federation, plan);

    pool::CellOutcome out;
    out.label = label;
    out.seed = plan.seed;
    out.finished = federation.run_until_done(plan.shape.limit);
    out.report = federation.report();
    out.trace_events = federation.recorder().total_recorded();
    out.trace_dump = obs::render_dump(federation.recorder().events(), label);
    out.journal = obs::journal_str(federation.recorder());
    out.engine_events = federation.engine().executed();
    return out;
  };
  return cell;
}

chaos::RunResult replay_federated(const FaultPlan& plan) {
  std::vector<pool::SweepCell> cells;
  cells.push_back(make_federated_cell(plan, "replay"));
  const pool::SweepReport sweep = pool::SweepRunner(1).run(std::move(cells));
  const pool::CellOutcome& outcome = sweep.cells.front();
  chaos::RunResult out;
  out.finished = outcome.finished;
  out.report = outcome.report;
  std::vector<obs::TraceEvent> events;
  if (std::optional<obs::Journal> journal = obs::parse_journal(outcome.journal)) {
    events = std::move(journal->events);
  }
  out.oracles = chaos::evaluate_oracles(outcome.report, outcome.finished, events);
  out.engine_events = outcome.engine_events;
  out.journal = outcome.journal;
  return out;
}

chaos::CampaignHooks federated_hooks() {
  chaos::CampaignHooks hooks;
  hooks.draw = [](std::uint64_t seed, const chaos::CampaignOptions& options) {
    return make_federated_plan(seed, options.shape);
  };
  hooks.cell = [](const FaultPlan& plan, std::string label) {
    return make_federated_cell(plan, std::move(label));
  };
  hooks.replay = replay_federated;
  return hooks;
}

chaos::CampaignResult run_federated_campaign(
    const chaos::CampaignOptions& options) {
  return chaos::CampaignRunner(options).run(federated_hooks());
}

}  // namespace esg::flock
