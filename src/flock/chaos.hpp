// Chaos for federations: flocking-era fault plans, the federated injector,
// and the campaign hooks that let chaos::CampaignRunner judge multi-pool
// cells unchanged.
//
// A federated plan speaks the same esg-faultplan v1 language as a
// single-pool plan (shape.pools >= 2 marks it federated) but draws
// flocking-era faults: a remote pool blacked out mid-negotiation, the
// inter-pool trunk severed (the first genuinely *network*-scope error), a
// remote execution machine crashed under a flocked job (surfacing at the
// home schedd as *cluster* scope), and the telemetry stream to the parent
// aggregator partitioned so the child must retransmit. The same five
// resilience oracles apply: Federation::report() has pool::PoolReport
// shape, and the shared flight recorder yields one judgeable journal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "flock/federation.hpp"
#include "pool/sweep.hpp"

namespace esg::flock {

/// The pool name scheme federated cells use: pool 0 is "home" (one
/// machine, all jobs submitted here), the rest are "p1".."pN-1" with
/// shape.machines executors each. Plan hosts are full names
/// ("p1.exec0", "home.submit", "p2.central", "parent").
[[nodiscard]] std::string federated_pool_name(int index);

/// Draw a deterministic flocking-era plan: same seed, same shape -> the
/// same plan, bit for bit. Every plan carries the four federated fault
/// kinds (remote exec crash+restart, home<->remote trunk sever+reconnect,
/// remote matchmaker blackout+heal, child->parent stream sever+reconnect)
/// with seeded victims and times, so every cell exercises both the
/// cluster-scope and the network-scope boundary crossings.
[[nodiscard]] chaos::FaultPlan make_federated_plan(std::uint64_t seed,
                                                   const chaos::PoolShape& shape);

/// chaos::Injector's twin over a Federation: schedules every plan action
/// on the federation's engine. Crashing "<pool>.central" kills the
/// matchmaker; crashing an exec host kills its startd; sever/reconnect
/// drive NetworkFabric::set_link_severed. Injection RNG streams fork at
/// arm time, in plan order (same determinism contract as the single-pool
/// injector).
class FederatedInjector {
 public:
  static std::shared_ptr<FederatedInjector> arm(Federation& federation,
                                                chaos::FaultPlan plan);

  [[nodiscard]] const chaos::FaultPlan& plan() const { return plan_; }
  [[nodiscard]] std::size_t fired() const { return fired_; }
  [[nodiscard]] const std::vector<std::string>& log() const { return log_; }

 private:
  FederatedInjector(Federation& federation, chaos::FaultPlan plan);

  void schedule_all(const std::shared_ptr<FederatedInjector>& self);
  void apply(const chaos::FaultAction& action);
  void restore(const chaos::FaultAction& action);
  void note(const chaos::FaultAction& action, const char* phase);
  Rng& fs_rng(const std::string& host);
  Rng& corrupt_rng(const std::string& host);

  Federation& federation_;
  chaos::FaultPlan plan_;
  std::vector<std::pair<std::string, Rng>> fs_rngs_;
  std::vector<std::pair<std::string, Rng>> corrupt_rngs_;
  std::size_t fired_ = 0;
  std::vector<std::string> log_;
};

/// Build the FederationConfig a federated plan targets (exposed so demos
/// and tests construct the exact topology a campaign cell runs).
[[nodiscard]] FederationConfig federated_cell_config(const chaos::FaultPlan& plan);

/// The federated counterpart of CampaignRunner::make_cell: a SweepCell
/// whose custom `run` hook builds a streaming Federation per plan.shape
/// (home pool + pools-1 remotes), submits the whole workload at home so it
/// overflows through flocking, arms the FederatedInjector, and returns the
/// outcome in the same shape single-pool cells produce — so SweepRunner,
/// the oracles, ddmin, and triage all apply unchanged.
[[nodiscard]] pool::SweepCell make_federated_cell(const chaos::FaultPlan& plan,
                                                  std::string label);

/// Run one federated plan by itself and evaluate the oracles.
[[nodiscard]] chaos::RunResult replay_federated(const chaos::FaultPlan& plan);

/// The three campaign stages bound to their federated implementations.
[[nodiscard]] chaos::CampaignHooks federated_hooks();

/// CampaignRunner over federated cells: options.shape.pools selects the
/// federation width (>= 2). Verdict bytes are thread-count independent,
/// exactly like the single-pool campaign.
[[nodiscard]] chaos::CampaignResult run_federated_campaign(
    const chaos::CampaignOptions& options);

}  // namespace esg::flock
