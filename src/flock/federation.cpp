#include "flock/federation.hpp"

#include <utility>

#include "common/rng.hpp"
#include "obs/dashboard.hpp"

namespace esg::flock {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string strip_trailing_newlines(std::string s) {
  while (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

Federation::Federation(FederationConfig config)
    : config_(std::move(config)), engine_(config_.seed), fabric_(engine_) {
  // Name anonymous pools and machines before anything derives hosts.
  for (std::size_t i = 0; i < config_.pools.size(); ++i) {
    if (config_.pools[i].name.empty()) {
      config_.pools[i].name = "p" + std::to_string(i);
    }
    for (std::size_t j = 0; j < config_.pools[i].machines.size(); ++j) {
      if (config_.pools[i].machines[j].name.empty()) {
        config_.pools[i].machines[j].name = "exec" + std::to_string(j);
      }
    }
  }

  if (config_.trace) {
    obs::FlightRecorder& recorder = engine_.context().recorder();
    recorder.set_enabled(true);
    recorder.set_capacity(config_.trace_capacity);
    aggregator_ =
        std::make_unique<obs::ScopeAggregator>(config_.dashboard_slice);
    // One recorder, one tap, two consumers: the federation-wide aggregate
    // sees everything; each event is also routed to its pool's streamer by
    // the pool prefix of its machine name ("beta.exec0" -> "beta"). The
    // tap fires inside record(), before the ring can wrap, so neither
    // consumer ever misses a span.
    recorder.set_tap([this](const obs::TraceEvent& event) {
      aggregator_->observe(event);
      if (!config_.stream) return;
      const std::string machine = obs::machine_of(event.component);
      const std::size_t dot = machine.find('.');
      if (dot == std::string::npos) return;  // parent-side or helper event
      const auto it = by_name_.find(machine.substr(0, dot));
      if (it == by_name_.end()) return;
      if (ChildStreamer* streamer = children_[it->second]->streamer.get()) {
        streamer->offer(event);
      }
    });
  }

  const daemons::Ports ports;
  const bool streaming = config_.stream && config_.trace;
  if (streaming) {
    parent_ = std::make_unique<Aggregator>(engine_, fabric_,
                                           config_.parent_host,
                                           config_.parent_port,
                                           config_.dashboard_slice);
  }

  for (std::size_t i = 0; i < config_.pools.size(); ++i) {
    const PoolSpec& spec = config_.pools[i];
    auto child = std::make_unique<Child>();
    child->name = spec.name;
    const std::string central = spec.name + ".central";
    const std::string submit = spec.name + ".submit";
    const net::Address mm_addr{central, ports.matchmaker};

    child->matchmaker = std::make_unique<daemons::Matchmaker>(
        engine_, fabric_, central, ports, config_.timeouts);

    child->submit_fs = std::make_unique<fs::SimFileSystem>(submit);
    child->submit_fs->add_mount("/home", 0);
    (void)child->submit_fs->mkdirs("/out");
    (void)child->submit_fs->mkdirs("/spool");
    if (spec.submit_fs_fault_rate > 0) {
      child->submit_fs->set_transient_fault_rate(
          spec.submit_fs_fault_rate,
          engine_.rng().fork(rng_streams::fs_faults(submit)));
    }
    child->schedd = std::make_unique<daemons::Schedd>(
        engine_, fabric_, *child->submit_fs, submit, config_.discipline,
        mm_addr, ports, config_.timeouts);
    // Disjoint job-id ranges across the federation: attempt ground truth
    // is keyed by job id grid-wide, exactly as with extra submitters.
    child->schedd->set_job_id_base(i * 1000000ULL);

    for (const pool::MachineSpec& machine_spec : spec.machines) {
      const std::string host = spec.name + "." + machine_spec.name;
      Machine machine;
      machine.fs = std::make_unique<fs::SimFileSystem>(host);
      machine.fs->add_mount("/scratch",
                            machine_spec.startd.scratch_capacity_bytes);
      if (machine_spec.fs_fault_rate > 0) {
        machine.fs->set_transient_fault_rate(
            machine_spec.fs_fault_rate,
            engine_.rng().fork(rng_streams::fs_faults(host)));
      }
      if (machine_spec.silent_corruption_rate > 0) {
        machine.fs->set_silent_corruption_rate(
            machine_spec.silent_corruption_rate,
            engine_.rng().fork(rng_streams::fs_corruption(host)));
      }
      machine.startd = std::make_unique<daemons::Startd>(
          engine_, fabric_, *machine.fs, host, machine_spec.startd,
          config_.discipline, mm_addr, ports, config_.timeouts);
      machine.startd->set_ground_truth(&ground_truth_);
      fabric_.set_host_faults(host, machine_spec.net_faults);
      child->machines[host] = std::move(machine);
    }

    if (streaming) {
      child->streamer = std::make_unique<ChildStreamer>(
          engine_, fabric_, spec.name, central,
          net::Address{config_.parent_host, config_.parent_port},
          config_.stream_interval);
    }

    by_name_[spec.name] = i;
    children_.push_back(std::move(child));
  }

  // Flocking wiring: every schedd may overflow to every other pool's
  // matchmaker, in federation order.
  for (std::size_t i = 0; i < children_.size(); ++i) {
    std::vector<daemons::FlockTarget> targets;
    for (std::size_t j = 0; j < children_.size(); ++j) {
      if (j == i) continue;
      targets.push_back(daemons::FlockTarget{
          children_[j]->name,
          net::Address{children_[j]->name + ".central", ports.matchmaker}});
    }
    children_[i]->schedd->set_flock_targets(std::move(targets));
  }
}

Federation::~Federation() {
  if (config_.trace) engine_.context().recorder().clear_tap();
}

void Federation::boot() {
  if (booted_) return;
  booted_ = true;
  if (parent_ != nullptr) parent_->boot();
  for (const std::unique_ptr<Child>& child : children_) {
    child->matchmaker->boot();
    child->schedd->boot();
    for (auto& [host, machine] : child->machines) machine.startd->boot();
    if (child->streamer != nullptr) child->streamer->boot();
  }
}

const Federation::Child* Federation::child(const std::string& pool) const {
  const auto it = by_name_.find(pool);
  return it == by_name_.end() ? nullptr : children_[it->second].get();
}

Federation::Child* Federation::child(const std::string& pool) {
  const auto it = by_name_.find(pool);
  return it == by_name_.end() ? nullptr : children_[it->second].get();
}

std::vector<std::string> Federation::pool_names() const {
  std::vector<std::string> out;
  out.reserve(children_.size());
  for (const std::unique_ptr<Child>& child : children_) {
    out.push_back(child->name);
  }
  return out;
}

daemons::Schedd* Federation::schedd(const std::string& pool) {
  Child* c = child(pool);
  return c == nullptr ? nullptr : c->schedd.get();
}

daemons::Matchmaker* Federation::matchmaker(const std::string& pool) {
  Child* c = child(pool);
  return c == nullptr ? nullptr : c->matchmaker.get();
}

daemons::Startd* Federation::startd(const std::string& host) {
  const std::size_t dot = host.find('.');
  if (dot == std::string::npos) return nullptr;
  Child* c = child(host.substr(0, dot));
  if (c == nullptr) return nullptr;
  const auto it = c->machines.find(host);
  return it == c->machines.end() ? nullptr : it->second.startd.get();
}

fs::SimFileSystem* Federation::machine_fs(const std::string& host) {
  const std::size_t dot = host.find('.');
  if (dot == std::string::npos) return nullptr;
  Child* c = child(host.substr(0, dot));
  if (c == nullptr) return nullptr;
  const auto it = c->machines.find(host);
  return it == c->machines.end() ? nullptr : it->second.fs.get();
}

fs::SimFileSystem* Federation::submit_fs(const std::string& pool) {
  Child* c = child(pool);
  return c == nullptr ? nullptr : c->submit_fs.get();
}

ChildStreamer* Federation::streamer(const std::string& pool) {
  Child* c = child(pool);
  return c == nullptr ? nullptr : c->streamer.get();
}

JobId Federation::submit(std::size_t pool_index,
                         daemons::JobDescription description) {
  if (pool_index >= children_.size()) return JobId{};
  return children_[pool_index]->schedd->submit(std::move(description));
}

JobId Federation::submit(const std::string& pool,
                         daemons::JobDescription description) {
  Child* c = child(pool);
  if (c == nullptr) return JobId{};
  return c->schedd->submit(std::move(description));
}

bool Federation::run_until_done(SimTime limit) {
  boot();
  return engine_.run_until(
      [this] {
        for (const std::unique_ptr<Child>& child : children_) {
          if (!child->schedd->all_done()) return false;
        }
        for (const std::unique_ptr<Child>& child : children_) {
          if (child->streamer != nullptr && !child->streamer->drained()) {
            return false;
          }
        }
        return true;
      },
      engine_.now() + limit);
}

obs::FlowAggregate Federation::flow() const {
  if (aggregator_ == nullptr) return obs::FlowAggregate{};
  obs::FlowAggregate out = aggregator_->aggregate();
  for (const auto& [scope, count] :
       engine_.context().recorder().dropped_by_scope()) {
    out.dropped_spans[scope] += count;
  }
  return out;
}

pool::PoolReport Federation::report() const {
  pool::PoolReport report;
  report.discipline = config_.discipline.name();
  report.flow = flow();
  report.network_messages = fabric_.total_messages();
  report.network_bytes = fabric_.total_bytes();
  report.makespan_seconds = engine_.now().as_sec();

  std::map<std::uint64_t, const daemons::AttemptGroundTruth*> last_truth;
  for (const daemons::AttemptGroundTruth& truth : ground_truth_.entries()) {
    ++report.total_attempts;
    if (truth.incidental()) {
      ++report.incidental_attempts;
      report.wasted_cpu_seconds += truth.cpu_seconds;
    }
    last_truth[truth.job_id] = &truth;
  }

  double turnaround_sum = 0;
  int finished = 0;
  for (const std::unique_ptr<Child>& child : children_) {
    for (const auto& [id, record] : child->schedd->jobs()) {
      ++report.jobs_total;
      switch (record.state) {
        case daemons::JobState::kIdle:
        case daemons::JobState::kClaiming:
        case daemons::JobState::kRunning:
          ++report.unfinished;
          continue;
        case daemons::JobState::kUnexecutable: {
          ++report.unexecutable;
          const bool job_scope =
              record.final_summary.environment_error.has_value() &&
              record.final_summary.environment_error->scope() ==
                  ErrorScope::kJob;
          if (!job_scope) ++report.gave_up;
          break;
        }
        case daemons::JobState::kCompleted: {
          const auto truth_it = last_truth.find(id);
          const daemons::AttemptGroundTruth* truth =
              truth_it == last_truth.end() ? nullptr : truth_it->second;
          const bool genuinely_program =
              truth != nullptr && !truth->incidental();
          if (record.final_summary.have_program_result && genuinely_program) {
            report.goodput_cpu_seconds += truth->cpu_seconds;
            const auto& rf = record.final_summary.program_result;
            const bool is_error =
                rf.exit_by == jvm::ResultFile::ExitBy::kException ||
                (rf.exit_by == jvm::ResultFile::ExitBy::kSystemExit &&
                 rf.exit_code != 0);
            if (is_error) {
              ++report.completed_program_error;
            } else {
              ++report.completed_genuine;
            }
          } else {
            ++report.user_incidental_exposures;
          }
          break;
        }
      }
      turnaround_sum += (record.finished - record.submitted).as_sec();
      ++finished;
    }
  }
  if (finished > 0) report.mean_turnaround_seconds = turnaround_sum / finished;
  return report;
}

std::string Federation::federated_dashboard_json(std::string_view label) const {
  if (parent_ != nullptr) return parent_->json(label);
  // No streaming: same document shape, with the tap-fed federation
  // aggregate standing in for the merged view and no per-pool feeds.
  return "{\"label\":\"" + json_escape(label) +
         "\",\"malformed_chunks\":0,\"pools\":[\n],\"merged\":" +
         strip_trailing_newlines(obs::dashboard_json(flow(), "merged")) +
         "}\n";
}

}  // namespace esg::flock
