// Federation: N pools, one deterministic engine, and flocking between them.
//
// Condor flocking (Epema et al.; §6 of the paper's lineage) lets a schedd
// whose home matchmaker cannot place its jobs negotiate with other pools'
// matchmakers. A Federation builds that topology as one simulation: every
// pool gets its own matchmaker ("<pool>.central"), submit machine
// ("<pool>.submit", schedd + filesystem), and execution machines
// ("<pool>.<name>"), all sharing one engine, one network fabric, and one
// ground-truth log — so a federated run is as replayable, byte for byte,
// as a single pool.
//
// The interesting part is what crossing the pool boundary does to error
// scope. Inside pool B, a crashed startd is a machine-scope condition B's
// own schedd handles with avoidance. Seen from pool A's schedd, the same
// event is *cluster* scope: A has no standing to judge B's machines — it
// can only judge B. The schedd's flock layer therefore escalates remote
// execution failures to cluster scope and consumes them itself (suspending
// the pool after a streak), and raises + consumes *network*-scope errors
// when an inter-pool link is severed — the first errors in this codebase
// that genuinely live at those two rungs of the §3 scope ladder. The
// federated TopologyModel (pool/topology.hpp, describe_federated_topology)
// declares exactly this contract for esg-verify.
//
// With FederationConfig::stream set, each pool runs a ChildStreamer and a
// parent flock::Aggregator (host "parent") merges every pool's journal
// deltas with provenance intact — see flock/stream.hpp and esg-top
// --parent.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "daemons/config.hpp"
#include "daemons/groundtruth.hpp"
#include "daemons/matchmaker.hpp"
#include "daemons/schedd.hpp"
#include "daemons/startd.hpp"
#include "flock/stream.hpp"
#include "fs/simfs.hpp"
#include "net/fabric.hpp"
#include "obs/aggregate.hpp"
#include "pool/pool.hpp"
#include "pool/report.hpp"
#include "sim/engine.hpp"

namespace esg::flock {

/// One member pool: a matchmaker, a submit machine, and its executors.
/// Machine names are local ("exec0"); hosts get the pool prefix
/// ("beta.exec0"), which is also how dashboards attribute provenance.
struct PoolSpec {
  std::string name;
  std::vector<pool::MachineSpec> machines;
  double submit_fs_fault_rate = 0;
};

struct FederationConfig {
  std::uint64_t seed = 42;
  daemons::DisciplineConfig discipline;
  daemons::Timeouts timeouts;
  std::vector<PoolSpec> pools;
  /// Enable the shared flight recorder (one journal for the whole
  /// federation; events carry pool provenance in their component names).
  bool trace = false;
  std::size_t trace_capacity = 1 << 16;
  SimTime dashboard_slice = SimTime::minutes(1);
  /// Stream each pool's journal deltas to a parent Aggregator (requires
  /// trace; see flock/stream.hpp).
  bool stream = false;
  SimTime stream_interval = SimTime::sec(30);
  std::string parent_host = "parent";
  int parent_port = kStreamPort;
};

class Federation {
 public:
  explicit Federation(FederationConfig config);
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  void boot();

  /// Submit to a pool's schedd (by index or name). Jobs overflow to other
  /// pools only when the home pool leaves them idle past
  /// DisciplineConfig::flock_delay.
  JobId submit(std::size_t pool_index, daemons::JobDescription description);
  JobId submit(const std::string& pool, daemons::JobDescription description);

  /// Run until every schedd's queue is terminal and — when streaming —
  /// every child's chunks are flushed and acknowledged, or `limit`
  /// elapses. Waiting for the streams means the parent's aggregates are
  /// complete at return, not trailing one flush interval behind.
  bool run_until_done(SimTime limit = SimTime::hours(4));

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] obs::FlightRecorder& recorder() {
    return engine_.context().recorder();
  }
  [[nodiscard]] net::NetworkFabric& fabric() { return fabric_; }
  [[nodiscard]] daemons::GroundTruthLog& ground_truth() {
    return ground_truth_;
  }
  [[nodiscard]] const FederationConfig& config() const { return config_; }
  [[nodiscard]] std::vector<std::string> pool_names() const;

  [[nodiscard]] daemons::Schedd* schedd(const std::string& pool);
  [[nodiscard]] daemons::Matchmaker* matchmaker(const std::string& pool);
  /// Lookup by full host name ("beta.exec0").
  [[nodiscard]] daemons::Startd* startd(const std::string& host);
  [[nodiscard]] fs::SimFileSystem* machine_fs(const std::string& host);
  [[nodiscard]] fs::SimFileSystem* submit_fs(const std::string& pool);
  [[nodiscard]] ChildStreamer* streamer(const std::string& pool);
  /// The parent aggregator; null unless config.stream.
  [[nodiscard]] Aggregator* parent() { return parent_.get(); }

  /// The federation-wide error-flow aggregate (complete, tap-fed), with
  /// the recorder's dropped-span accounting folded in. Empty unless
  /// config.trace.
  [[nodiscard]] obs::FlowAggregate flow() const;

  /// One report over every pool's jobs against the shared ground truth —
  /// the same shape as pool::Pool::report(), so the chaos oracles judge a
  /// federated run unchanged.
  [[nodiscard]] pool::PoolReport report() const;

  /// Deterministic federated dashboard JSON: per-pool streamed aggregates
  /// with provenance plus the merged view when streaming; the tap-fed
  /// federation aggregate otherwise.
  [[nodiscard]] std::string federated_dashboard_json(
      std::string_view label = {}) const;

 private:
  struct Machine {
    std::unique_ptr<fs::SimFileSystem> fs;
    std::unique_ptr<daemons::Startd> startd;
  };
  struct Child {
    std::string name;
    std::unique_ptr<fs::SimFileSystem> submit_fs;
    std::unique_ptr<daemons::Matchmaker> matchmaker;
    std::unique_ptr<daemons::Schedd> schedd;
    std::map<std::string, Machine> machines;  // keyed by full host name
    std::unique_ptr<ChildStreamer> streamer;
  };

  [[nodiscard]] const Child* child(const std::string& pool) const;
  [[nodiscard]] Child* child(const std::string& pool);

  FederationConfig config_;
  sim::Engine engine_;
  net::NetworkFabric fabric_;
  daemons::GroundTruthLog ground_truth_;
  std::vector<std::unique_ptr<Child>> children_;
  std::map<std::string, std::size_t> by_name_;
  std::unique_ptr<Aggregator> parent_;
  /// Fed by the recorder tap (never attach()ed — the tap fans out to this
  /// and to the per-pool streamers). Declared after engine_ so it outlives
  /// no recorder it observes.
  std::unique_ptr<obs::ScopeAggregator> aggregator_;
  bool booted_ = false;
};

}  // namespace esg::flock
