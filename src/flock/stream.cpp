#include "flock/stream.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/strings.hpp"
#include "obs/export.hpp"

namespace esg::flock {
namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// dashboard_json ends with a newline; embedding it inside a larger JSON
/// document wants the bare object.
std::string strip_trailing_newlines(std::string s) {
  while (!s.empty() && s.back() == '\n') s.pop_back();
  return s;
}

}  // namespace

// ---- ChildStreamer ----

ChildStreamer::ChildStreamer(sim::Engine& engine, net::NetworkFabric& fabric,
                             std::string pool, std::string source_host,
                             net::Address parent, SimTime interval)
    : Actor(engine, "stream@" + source_host),
      fabric_(fabric),
      pool_(std::move(pool)),
      source_host_(std::move(source_host)),
      parent_(std::move(parent)),
      interval_(interval) {}

ChildStreamer::~ChildStreamer() = default;

void ChildStreamer::boot() {
  if (running_) return;
  running_ = true;
  after(interval_, [this] { flush(); });
}

void ChildStreamer::flush() {
  if (!running_) return;
  if (!buffer_.empty()) {
    Chunk chunk;
    chunk.seq = next_seq_++;
    chunk.message = "pool " + pool_ + " seq " + std::to_string(chunk.seq) +
                    "\n" + obs::journal_str(buffer_, {});
    events_streamed_ += buffer_.size();
    buffer_.clear();
    pending_.push_back(std::move(chunk));
  }
  if (!pending_.empty()) {
    if (stream_.has_value() && stream_->is_open()) {
      send_pending();
    } else if (!dialing_) {
      dial();
    }
  }
  after(interval_, [this] { flush(); });
}

void ChildStreamer::dial() {
  dialing_ = true;
  fabric_.connect(source_host_, parent_, [this](Result<net::Endpoint> conn) {
    dialing_ = false;
    if (!conn.ok()) {
      // The parent is out of reach. That is the stream's problem, not the
      // pool's: note it at network scope and consume it right here — the
      // retransmit queue is the handler. Next flush redials.
      Error link = conn.error();
      link.widen_scope_in_place(ErrorScope::kNetwork);
      const std::uint64_t raised =
          trace().raised(link, 0, "stream: parent " + parent_.str() +
                                      " unreachable; chunks held for "
                                      "retransmission");
      trace().consumed(link, 0, "stream: will redial", raised);
      return;
    }
    stream_ = conn.value();
    stream_->set_on_message(
        [this](const std::string& message) { on_ack(message); });
    stream_->set_on_close([this](const std::optional<Error>& error) {
      on_stream_closed(error);
    });
    send_pending();
  });
}

void ChildStreamer::send_pending() {
  if (!stream_.has_value() || !stream_->is_open()) return;
  for (Chunk& chunk : pending_) {
    if (chunk.in_flight) continue;
    if (chunk.sends > 0) ++retransmits_;
    ++chunk.sends;
    Result<void> sent = stream_->send(chunk.message);
    if (!sent.ok()) {
      // The connection died under us; on_close rewinds in-flight state.
      return;
    }
    chunk.in_flight = true;
    ++chunks_sent_;
  }
}

void ChildStreamer::on_stream_closed(const std::optional<Error>& error) {
  stream_.reset();
  // Everything unacked goes back to the queue head, in order: the parent
  // deduplicates by sequence, so resending an already-applied chunk is
  // harmless, while *not* resending could lose events for good.
  for (Chunk& chunk : pending_) chunk.in_flight = false;
  if (error.has_value()) {
    Error link = *error;
    link.widen_scope_in_place(ErrorScope::kNetwork);
    const std::uint64_t raised = trace().raised(
        link, 0,
        "stream: connection to parent broken with " +
            std::to_string(pending_.size()) + " chunk(s) unacked");
    trace().consumed(link, 0, "stream: retransmitting on redial", raised);
  }
}

void ChildStreamer::on_ack(const std::string& message) {
  const std::vector<std::string> fields = split(message, ' ');
  if (fields.size() != 2 || fields[0] != "ack") return;
  std::uint64_t seq = 0;
  for (char c : fields[1]) {
    if (c < '0' || c > '9') return;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  while (!pending_.empty() && pending_.front().seq <= seq) {
    pending_.pop_front();
    ++chunks_acked_;
  }
}

// ---- Aggregator ----

Aggregator::Aggregator(sim::Engine& engine, net::NetworkFabric& fabric,
                       std::string host, int port, SimTime slice)
    : Actor(engine, "flock@" + host),
      fabric_(fabric),
      host_(std::move(host)),
      port_(port),
      slice_(slice) {}

Aggregator::~Aggregator() { shutdown(); }

void Aggregator::boot() {
  if (running_) return;
  running_ = true;
  Result<void> listening = fabric_.listen(
      address(), [this](net::Endpoint ep) { on_accept(std::move(ep)); });
  if (!listening.ok()) {
    log().error("cannot listen: ", listening.error());
    return;
  }
  log().info("flock parent up at ", address().str());
}

void Aggregator::shutdown() {
  if (!running_) return;
  running_ = false;
  fabric_.unlisten(address());
  for (net::Endpoint& ep : inbound_) ep.close();
  inbound_.clear();
}

void Aggregator::on_accept(net::Endpoint endpoint) {
  net::Endpoint handle = endpoint;
  handle.set_on_message([this, endpoint](const std::string& message) mutable {
    on_chunk(endpoint, message);
  });
  inbound_.push_back(std::move(handle));
  if (inbound_.size() % 16 == 0) {
    inbound_.erase(std::remove_if(inbound_.begin(), inbound_.end(),
                                  [](const net::Endpoint& ep) {
                                    return !ep.is_open();
                                  }),
                   inbound_.end());
  }
}

void Aggregator::on_chunk(net::Endpoint endpoint, const std::string& message) {
  const std::size_t nl = message.find('\n');
  const std::string header = nl == std::string::npos ? message
                                                     : message.substr(0, nl);
  const std::vector<std::string> fields = split(header, ' ');
  std::uint64_t seq = 0;
  bool seq_ok = fields.size() == 4 && fields[0] == "pool" &&
                fields[2] == "seq" && !fields[3].empty();
  if (seq_ok) {
    for (char c : fields[3]) {
      if (c < '0' || c > '9') {
        seq_ok = false;
        break;
      }
      seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
  }
  std::optional<obs::Journal> journal;
  if (seq_ok && nl != std::string::npos) {
    journal = obs::parse_journal(std::string_view(message).substr(nl + 1));
  }
  if (!seq_ok || !journal.has_value()) {
    // A poison chunk must not wedge the stream: count it, and ack whatever
    // sequence we could read so the child moves on instead of
    // retransmitting it forever.
    ++malformed_chunks_;
    if (seq_ok) (void)endpoint.send("ack " + std::to_string(seq));
    return;
  }

  PoolFeed& feed = feeds_[fields[1]];
  if (feed.flow.slice_usec == 0 || feed.chunks == 0) {
    feed.flow.slice_usec = slice_.as_usec() > 0 ? slice_.as_usec() : 1;
  }
  if (seq <= feed.last_seq) {
    // A retransmission of a chunk we already applied (the ack was lost
    // with the connection). At-least-once delivery, exactly-once counting.
    ++feed.duplicates;
  } else {
    feed.last_seq = seq;
    ++feed.chunks;
    feed.events += journal->events.size();
    for (const obs::TraceEvent& event : journal->events) {
      feed.flow.add(event);
    }
  }
  (void)endpoint.send("ack " + std::to_string(seq));
}

obs::FlowAggregate Aggregator::merged() const {
  obs::FlowAggregate out;
  out.slice_usec = slice_.as_usec() > 0 ? slice_.as_usec() : 1;
  for (const auto& [pool, feed] : feeds_) out.merge(feed.flow);
  return out;
}

std::string Aggregator::dashboard_str(
    const obs::DashboardOptions& options) const {
  std::ostringstream os;
  os << "flock parent";
  if (!options.title.empty()) os << " — " << options.title;
  os << "\n";
  for (const auto& [pool, feed] : feeds_) {
    os << "  pool " << pool << ": chunks " << feed.chunks << " (dup "
       << feed.duplicates << ")  events " << feed.events << "  last-seq "
       << feed.last_seq << "\n";
  }
  if (malformed_chunks_ != 0) {
    os << "  malformed chunks " << malformed_chunks_ << "\n";
  }
  os << "\n";
  for (const auto& [pool, feed] : feeds_) {
    obs::DashboardOptions per_pool = options;
    per_pool.title = "pool " + pool;
    os << obs::render_dashboard(feed.flow, per_pool) << "\n";
  }
  obs::DashboardOptions merged_options = options;
  merged_options.title = "all pools";
  os << obs::render_dashboard(merged(), merged_options);
  return os.str();
}

std::string Aggregator::json(std::string_view label) const {
  std::ostringstream os;
  os << "{\"label\":\"" << json_escape(label) << "\",";
  os << "\"malformed_chunks\":" << malformed_chunks_ << ",";
  os << "\"pools\":[";
  bool first = true;
  for (const auto& [pool, feed] : feeds_) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"pool\":\"" << json_escape(pool) << "\",\"last_seq\":"
       << feed.last_seq << ",\"chunks\":" << feed.chunks
       << ",\"duplicates\":" << feed.duplicates << ",\"events\":"
       << feed.events << ",\"dashboard\":"
       << strip_trailing_newlines(obs::dashboard_json(feed.flow, pool)) << "}";
  }
  os << "\n],\"merged\":"
     << strip_trailing_newlines(obs::dashboard_json(merged(), "merged"))
     << "}\n";
  return os.str();
}

}  // namespace esg::flock
