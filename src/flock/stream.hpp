// Netdata-style streaming telemetry for a federation of pools.
//
// Each child pool runs a ChildStreamer that buffers its share of the
// federation's trace events and, on a fixed cadence, ships them to a
// parent flock::Aggregator as chunked esg-journal v1 deltas over an
// ordinary simulated-socket connection:
//
//   pool <name> seq <N>\n
//   # esg-journal v1
//   <events...>
//
// The protocol is the netdata parent/child design in miniature: one-way
// event flow, explicit sequence numbers, and at-least-once delivery. A
// chunk stays queued at the child until the parent acknowledges it
// ("ack <seq>" on the same connection); when the connection breaks — the
// §3.2 escaping-error rule makes a severed stream indistinguishable from a
// dead parent — the child redials and retransmits everything unacked. The
// parent deduplicates by highest-seen sequence per pool, so retransmitted
// chunks are counted once: per-pool flow aggregates converge to exactly
// the events the child recorded, regardless of how often the stream broke.
//
// Everything runs on the federation's single deterministic engine, so the
// streamed aggregates — and their rendered dashboards — are byte-stable
// per seed.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/fabric.hpp"
#include "obs/aggregate.hpp"
#include "obs/dashboard.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace esg::flock {

/// Default parent endpoint (FederationConfig can override the host).
inline constexpr int kStreamPort = 9700;

/// Child side: buffers one pool's trace events and streams them to the
/// parent as acknowledged, retransmittable chunks.
class ChildStreamer : public sim::Actor {
 public:
  ChildStreamer(sim::Engine& engine, net::NetworkFabric& fabric,
                std::string pool, std::string source_host, net::Address parent,
                SimTime interval);
  ~ChildStreamer() override;

  /// Start the flush cadence. Call once, before the engine runs.
  void boot();

  /// Hand the streamer one recorded event (the federation's recorder tap
  /// routes events here by machine prefix). Buffering only — no engine
  /// interaction, so it is safe inside FlightRecorder::record().
  void offer(const obs::TraceEvent& event) { buffer_.push_back(event); }

  [[nodiscard]] const std::string& pool() const { return pool_; }
  [[nodiscard]] std::uint64_t chunks_sent() const { return chunks_sent_; }
  [[nodiscard]] std::uint64_t chunks_acked() const { return chunks_acked_; }
  /// Chunk transmissions beyond the first (the at-least-once overhead a
  /// broken stream cost this child).
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t events_streamed() const {
    return events_streamed_;
  }
  /// Chunks queued or in flight but not yet acknowledged.
  [[nodiscard]] std::size_t unacked() const { return pending_.size(); }
  /// Everything offered so far has been chunked, delivered, and
  /// acknowledged — the stream is caught up.
  [[nodiscard]] bool drained() const {
    return buffer_.empty() && pending_.empty();
  }

 private:
  struct Chunk {
    std::uint64_t seq = 0;
    std::string message;  ///< header line + esg-journal body
    bool in_flight = false;  ///< sent on the current connection, unacked
    std::uint32_t sends = 0;
  };

  void flush();
  void dial();
  void send_pending();
  void on_stream_closed(const std::optional<Error>& error);
  void on_ack(const std::string& message);

  net::NetworkFabric& fabric_;
  std::string pool_;
  std::string source_host_;
  net::Address parent_;
  SimTime interval_;

  std::vector<obs::TraceEvent> buffer_;
  std::deque<Chunk> pending_;
  std::optional<net::Endpoint> stream_;
  bool dialing_ = false;
  bool running_ = false;

  std::uint64_t next_seq_ = 1;
  std::uint64_t chunks_sent_ = 0;
  std::uint64_t chunks_acked_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t events_streamed_ = 0;
};

/// Parent side: accepts child streams, deduplicates chunks by sequence
/// number, and folds each pool's events into a per-pool FlowAggregate with
/// provenance intact — the data behind `esg-top --parent`.
class Aggregator : public sim::Actor {
 public:
  Aggregator(sim::Engine& engine, net::NetworkFabric& fabric, std::string host,
             int port, SimTime slice);
  ~Aggregator() override;

  void boot();
  void shutdown();

  [[nodiscard]] net::Address address() const { return {host_, port_}; }

  /// One child pool's streamed state, as the parent sees it.
  struct PoolFeed {
    std::uint64_t last_seq = 0;    ///< highest chunk sequence applied
    std::uint64_t chunks = 0;      ///< chunks applied (first deliveries)
    std::uint64_t duplicates = 0;  ///< retransmissions discarded by dedup
    std::uint64_t events = 0;      ///< events folded into the aggregate
    obs::FlowAggregate flow;
  };

  /// Feeds keyed by pool name (ordered — renders deterministically).
  [[nodiscard]] const std::map<std::string, PoolFeed>& feeds() const {
    return feeds_;
  }
  [[nodiscard]] std::uint64_t malformed_chunks() const {
    return malformed_chunks_;
  }

  /// Every pool's aggregate folded into one, in pool-name order.
  [[nodiscard]] obs::FlowAggregate merged() const;

  /// The federated dashboard: a provenance header (per pool: chunks,
  /// duplicates, events, last seq), each child's own dashboard table, and
  /// the merged cross-pool table. Plain text, deterministic.
  [[nodiscard]] std::string dashboard_str(
      const obs::DashboardOptions& options = {}) const;

  /// Deterministic JSON: {"label":...,"pools":[{"pool":...,"last_seq":N,
  /// "chunks":N,"duplicates":N,"events":N,"dashboard":{...}},...],
  /// "merged":{...}} — per-pool provenance plus the merged aggregate,
  /// byte-identical for equal feeds.
  [[nodiscard]] std::string json(std::string_view label = {}) const;

 private:
  void on_accept(net::Endpoint endpoint);
  void on_chunk(net::Endpoint endpoint, const std::string& message);

  net::NetworkFabric& fabric_;
  std::string host_;
  int port_;
  SimTime slice_;
  bool running_ = false;

  std::map<std::string, PoolFeed> feeds_;
  std::vector<net::Endpoint> inbound_;
  std::uint64_t malformed_chunks_ = 0;
};

}  // namespace esg::flock
