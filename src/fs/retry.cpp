#include "fs/retry.hpp"

#include <memory>

namespace esg::fs {

bool is_retryable(const Error& error) {
  // Exhaustive on purpose: a new kind must make a deliberate choice about
  // retry semantics rather than silently inheriting "permanent".
  switch (error.kind()) {
    case ErrorKind::kMountOffline:
    case ErrorKind::kIoError:
    case ErrorKind::kConnectionTimedOut:
    case ErrorKind::kConnectionLost:
      return true;
    case ErrorKind::kFileNotFound:
    case ErrorKind::kAccessDenied:
    case ErrorKind::kFileExists:
    case ErrorKind::kNotDirectory:
    case ErrorKind::kIsDirectory:
    case ErrorKind::kNameTooLong:
    case ErrorKind::kEndOfFile:
    case ErrorKind::kDiskFull:
    case ErrorKind::kBadFileDescriptor:
    case ErrorKind::kQuotaExceeded:
    case ErrorKind::kConnectionRefused:
    case ErrorKind::kHostUnreachable:
    case ErrorKind::kProtocolError:
    case ErrorKind::kAuthenticationFailed:
    case ErrorKind::kCredentialsExpired:
    case ErrorKind::kNotAuthorized:
    case ErrorKind::kNullPointer:
    case ErrorKind::kArrayIndexOutOfBounds:
    case ErrorKind::kArithmeticError:
    case ErrorKind::kUncaughtException:
    case ErrorKind::kExitNonZero:
    case ErrorKind::kOutOfMemory:
    case ErrorKind::kStackOverflow:
    case ErrorKind::kInternalVmError:
    case ErrorKind::kJvmMisconfigured:
    case ErrorKind::kJvmMissing:
    case ErrorKind::kScratchUnavailable:
    case ErrorKind::kCorruptImage:
    case ErrorKind::kClassNotFound:
    case ErrorKind::kBadJobDescription:
    case ErrorKind::kInputUnavailable:
    case ErrorKind::kClaimRejected:
    case ErrorKind::kPolicyRefused:
    case ErrorKind::kMatchExpired:
    case ErrorKind::kDaemonCrashed:
    case ErrorKind::kRequestMalformed:
    case ErrorKind::kUnknown:
      return false;
  }
  return false;
}

namespace {

struct Attempt {
  sim::Engine* engine;
  SimFileSystem* fs;
  std::string path;
  RetryPolicy policy;
  const ScopeEscalator* escalator;
  obs::TraceSink trace;  ///< bound to the engine's recorder
  std::function<void(PolicyOutcome)> done;
  SimTime started{};
  int attempts = 0;
};

void try_once(const std::shared_ptr<Attempt>& attempt) {
  ++attempt->attempts;
  Result<std::string> r = attempt->fs->read_file(attempt->path);
  PolicyOutcome out;
  out.attempts = attempt->attempts;
  out.latency = attempt->engine->now() - attempt->started;
  if (r.ok()) {
    out.succeeded = true;
    out.data = std::move(r).value();
    attempt->done(std::move(out));
    return;
  }
  Error e = std::move(r).error();
  if (!is_retryable(e)) {
    out.error = std::move(e);
    attempt->done(std::move(out));
    return;
  }
  switch (attempt->policy.mode) {
    case RetryPolicy::Mode::kHard:
      // Hide the error; keep trying. The caller hangs for the duration —
      // exactly NFS's hard-mount behaviour.
      attempt->engine->schedule(attempt->policy.retry_interval,
                                [attempt] { try_once(attempt); });
      return;
    case RetryPolicy::Mode::kSoft:
      if (attempt->attempts <= attempt->policy.max_retries) {
        attempt->engine->schedule(attempt->policy.retry_interval,
                                  [attempt] { try_once(attempt); });
        return;
      }
      // Expose the failure after the fixed retry budget. What the caller
      // sees is the NFS client's view — "server not responding", network
      // scope — because from here the true scope is indeterminate (§5).
      out.error = Error(ErrorKind::kConnectionTimedOut,
                        "server not responding after " +
                            std::to_string(attempt->policy.max_retries) +
                            " retries")
                      .caused_by(std::move(e));
      attempt->done(std::move(out));
      return;
    case RetryPolicy::Mode::kDeadline: {
      const SimTime persisted = attempt->engine->now() - attempt->started;
      if (persisted < attempt->policy.deadline) {
        attempt->engine->schedule(attempt->policy.retry_interval,
                                  [attempt] { try_once(attempt); });
        return;
      }
      // The caller's own deadline expired: surface the client-view error
      // (network scope at first sight), escalated for the time the fault
      // persisted (§5: a failure of one second is network scope; a
      // persistent one invalidates more).
      Error timeout = Error(ErrorKind::kConnectionTimedOut,
                            "deadline of " + attempt->policy.deadline.str() +
                                " expired")
                          .caused_by(std::move(e));
      out.error = attempt->escalator->escalate(std::move(timeout),
                                               attempt->started,
                                               attempt->engine->now(),
                                               &attempt->trace);
      attempt->done(std::move(out));
      return;
    }
  }
}

}  // namespace

void read_with_policy(sim::Engine& engine, SimFileSystem& fs,
                      const std::string& path, const RetryPolicy& policy,
                      const ScopeEscalator& escalator,
                      std::function<void(PolicyOutcome)> done) {
  auto attempt = std::make_shared<Attempt>();
  attempt->engine = &engine;
  attempt->fs = &fs;
  attempt->path = path;
  attempt->policy = policy;
  attempt->escalator = &escalator;
  attempt->trace = engine.context().trace("escalator@" + fs.host());
  attempt->done = std::move(done);
  attempt->started = engine.now();
  try_once(attempt);
}

}  // namespace esg::fs
