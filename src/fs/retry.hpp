// Retry policies over the filesystem — the §5 NFS hard/soft/deadline triad.
//
// "A file system may either be 'hard mounted' to hide all network errors
// or 'soft mounted' to expose them to callers after a certain retry period
// expires. Both of these choices are unsavory, as they offer no mechanism
// for a single program to choose its own failure criteria."
//
// read_with_policy() is that mechanism: kHard retries forever, kSoft gives
// up after a fixed retry budget, and kDeadline lets the caller pick its
// own deadline — after which the error surfaces with its scope escalated
// for the time the fault persisted.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/escalate.hpp"
#include "fs/simfs.hpp"
#include "sim/engine.hpp"

namespace esg::fs {

struct PolicyOutcome {
  bool succeeded = false;
  std::string data;              ///< on success
  std::optional<Error> error;    ///< on failure, scope possibly escalated
  int attempts = 0;
  SimTime latency{};             ///< total time until success or give-up
};

/// Is this the kind of transient, resource-level error a mount policy
/// should retry? (Namespace errors like FileNotFound surface immediately:
/// retrying cannot create the file.)
bool is_retryable(const Error& error);

/// Read a whole file under a retry policy. `done` fires exactly once.
/// kHard never fails on retryable errors — the caller simply waits
/// (possibly forever). The escalator is consulted only by kDeadline.
void read_with_policy(sim::Engine& engine, SimFileSystem& fs,
                      const std::string& path, const RetryPolicy& policy,
                      const ScopeEscalator& escalator,
                      std::function<void(PolicyOutcome)> done);

}  // namespace esg::fs
