#include "fs/simfs.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace esg::fs {

namespace detail {

struct Node {
  std::string name;
  bool is_dir = false;
  std::string data;                                   // files
  std::map<std::string, std::shared_ptr<Node>> kids;  // directories
  Mount* mount = nullptr;
  SimTime mtime{};
};

struct Mount {
  std::string prefix;            // normalized, no trailing slash except "/"
  std::uint64_t capacity = 0;    // 0 = unlimited
  std::uint64_t used = 0;
  bool online = true;
};

}  // namespace detail

using detail::Mount;
using detail::Node;

Result<std::string> normalize_path(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Error(ErrorKind::kRequestMalformed,
                 "path must be absolute: '" + path + "'");
  }
  std::vector<std::string> parts;
  for (const std::string& piece : split(path, '/')) {
    if (piece.empty() || piece == ".") continue;
    if (piece == "..") {
      return Error(ErrorKind::kAccessDenied,
                   "upward traversal forbidden: '" + path + "'");
    }
    parts.push_back(piece);
  }
  std::string out = "/";
  out += join(parts, "/");
  return out;
}

SimFileSystem::SimFileSystem(std::string host)
    : host_(std::move(host)), fault_rng_(0) {
  root_ = std::make_shared<Node>();
  root_->is_dir = true;
  root_->name = "/";
  auto root_mount = std::make_unique<Mount>();
  root_mount->prefix = "/";
  mounts_.push_back(std::move(root_mount));
  root_->mount = mounts_.front().get();
}

SimFileSystem::~SimFileSystem() = default;

Result<std::vector<std::string>> SimFileSystem::components(
    const std::string& path) const {
  Result<std::string> norm = normalize_path(path);
  if (!norm.ok()) return std::move(norm).error();
  std::vector<std::string> parts;
  for (const std::string& piece : split(norm.value(), '/')) {
    if (!piece.empty()) parts.push_back(piece);
  }
  return parts;
}

Mount* SimFileSystem::mount_for(const std::string& path) {
  return const_cast<Mount*>(
      static_cast<const SimFileSystem*>(this)->mount_for(path));
}

const Mount* SimFileSystem::mount_for(const std::string& path) const {
  const Mount* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& m : mounts_) {
    const std::string& p = m->prefix;
    const bool hit = p == "/" || path == p ||
                     (starts_with(path, p) && path.size() > p.size() &&
                      path[p.size()] == '/');
    if (hit && p.size() >= best_len) {
      best = m.get();
      best_len = p.size();
    }
  }
  return best;
}

Result<void> SimFileSystem::check_available(const std::string& path) {
  const Mount* m = mount_for(path);
  if (m != nullptr && !m->online) {
    return Error(ErrorKind::kMountOffline,
                 "filesystem '" + m->prefix + "' on " + host_ + " is offline")
        .with_label("injected", "mount-offline");
  }
  return Ok();
}

Result<void> SimFileSystem::maybe_inject() {
  ++ops_;
  if (fault_rate_ > 0 && fault_rng_.chance(fault_rate_)) {
    return Error(ErrorKind::kIoError, "transient device error on " + host_)
        .with_label("injected", "transient-io");
  }
  return Ok();
}

Result<SimFileSystem::Resolved> SimFileSystem::resolve(
    const std::string& path) {
  Result<std::vector<std::string>> parts = components(path);
  if (!parts.ok()) return std::move(parts).error();
  Resolved out;
  std::shared_ptr<Node> cur = root_;
  out.parent = root_;
  out.node = root_;
  out.leaf = "/";
  for (std::size_t i = 0; i < parts.value().size(); ++i) {
    const std::string& name = parts.value()[i];
    if (!cur->is_dir) {
      return Error(ErrorKind::kNotDirectory,
                   "'" + name + "' traverses a non-directory in " + path);
    }
    auto it = cur->kids.find(name);
    out.leaf = name;
    if (i + 1 == parts.value().size()) {
      out.parent = cur;
      out.node = it == cur->kids.end() ? nullptr : it->second;
      return out;
    }
    if (it == cur->kids.end()) {
      out.parent = nullptr;
      out.node = nullptr;
      return out;  // an intermediate directory is missing
    }
    cur = it->second;
  }
  return out;
}

namespace {

Result<std::string> normalized(const std::string& path) {
  return normalize_path(path);
}

}  // namespace

Result<void> SimFileSystem::mkdir(const std::string& path) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok()) return r;
  if (Result<void> r = maybe_inject(); !r.ok()) return r;
  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  if (res.value().node != nullptr) {
    if (res.value().node == root_) return Ok();
    return Error(ErrorKind::kFileExists, "'" + path + "' exists");
  }
  if (res.value().parent == nullptr) {
    return Error(ErrorKind::kFileNotFound,
                 "parent of '" + path + "' does not exist");
  }
  auto node = std::make_shared<Node>();
  node->name = res.value().leaf;
  node->is_dir = true;
  node->mount = mount_for(norm.value());
  res.value().parent->kids[res.value().leaf] = std::move(node);
  return Ok();
}

Result<void> SimFileSystem::mkdirs(const std::string& path) {
  Result<std::vector<std::string>> parts = components(path);
  if (!parts.ok()) return std::move(parts).error();
  std::string prefix;
  for (const std::string& piece : parts.value()) {
    prefix += "/" + piece;
    Result<Resolved> res = resolve(prefix);
    if (!res.ok()) return std::move(res).error();
    if (res.value().node != nullptr) {
      if (!res.value().node->is_dir) {
        return Error(ErrorKind::kNotDirectory, "'" + prefix + "' is a file");
      }
      continue;
    }
    if (Result<void> r = mkdir(prefix); !r.ok()) return r;
  }
  return Ok();
}

Result<FileHandle> SimFileSystem::open(const std::string& path,
                                       OpenMode mode) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok())
    return std::move(r).error();
  if (Result<void> r = maybe_inject(); !r.ok()) return std::move(r).error();

  // Access control.
  bool readable = true;
  bool writable = true;
  for (const auto& [prefix, rw] : acls_) {
    if (norm.value() == prefix ||
        (starts_with(norm.value(), prefix) &&
         (prefix == "/" || norm.value()[prefix.size()] == '/'))) {
      readable = rw.first;
      writable = rw.second;
    }
  }
  const bool want_write = mode != OpenMode::kRead;
  if (want_write && !writable) {
    return Error(ErrorKind::kAccessDenied,
                 "'" + path + "' is not writable on " + host_);
  }
  if (!want_write && !readable) {
    return Error(ErrorKind::kAccessDenied,
                 "'" + path + "' is not readable on " + host_);
  }

  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  std::shared_ptr<Node> node = res.value().node;
  if (node != nullptr && node->is_dir) {
    return Error(ErrorKind::kIsDirectory, "'" + path + "' is a directory");
  }
  if (mode == OpenMode::kRead) {
    if (node == nullptr) {
      return Error(ErrorKind::kFileNotFound, "'" + path + "' not found on " + host_);
    }
    return FileHandle(this, std::move(node), false);
  }
  if (node == nullptr) {
    if (res.value().parent == nullptr) {
      return Error(ErrorKind::kFileNotFound,
                   "parent of '" + path + "' does not exist");
    }
    node = std::make_shared<Node>();
    node->name = res.value().leaf;
    node->mount = mount_for(norm.value());
    res.value().parent->kids[res.value().leaf] = node;
  } else if (mode == OpenMode::kWrite) {
    // Truncate: release the mount bytes.
    if (node->mount != nullptr) node->mount->used -= node->data.size();
    node->data.clear();
  }
  FileHandle h(this, node, true);
  if (mode == OpenMode::kAppend) h.offset_ = node->data.size();
  return h;
}

Result<void> SimFileSystem::unlink(const std::string& path) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok()) return r;
  if (Result<void> r = maybe_inject(); !r.ok()) return r;
  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  if (res.value().node == nullptr) {
    return Error(ErrorKind::kFileNotFound, "'" + path + "' not found");
  }
  if (res.value().node->is_dir) {
    return Error(ErrorKind::kIsDirectory, "'" + path + "' is a directory");
  }
  if (res.value().node->mount != nullptr) {
    res.value().node->mount->used -= res.value().node->data.size();
  }
  res.value().parent->kids.erase(res.value().leaf);
  return Ok();
}

Result<void> SimFileSystem::rmdir(const std::string& path) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok()) return r;
  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  if (res.value().node == nullptr) {
    return Error(ErrorKind::kFileNotFound, "'" + path + "' not found");
  }
  if (!res.value().node->is_dir) {
    return Error(ErrorKind::kNotDirectory, "'" + path + "' is not a directory");
  }
  if (!res.value().node->kids.empty()) {
    return Error(ErrorKind::kAccessDenied, "'" + path + "' is not empty");
  }
  if (res.value().node == root_) {
    return Error(ErrorKind::kAccessDenied, "cannot remove '/'");
  }
  res.value().parent->kids.erase(res.value().leaf);
  return Ok();
}

namespace {

void release_recursive(Node& node) {
  if (!node.is_dir) {
    if (node.mount != nullptr) node.mount->used -= node.data.size();
    return;
  }
  for (auto& [name, kid] : node.kids) release_recursive(*kid);
}

}  // namespace

Result<void> SimFileSystem::remove_all(const std::string& path) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok()) return r;
  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  if (res.value().node == nullptr) {
    return Error(ErrorKind::kFileNotFound, "'" + path + "' not found");
  }
  if (res.value().node == root_) {
    return Error(ErrorKind::kAccessDenied, "cannot remove '/'");
  }
  release_recursive(*res.value().node);
  res.value().parent->kids.erase(res.value().leaf);
  return Ok();
}

Result<void> SimFileSystem::rename(const std::string& from,
                                   const std::string& to) {
  Result<std::string> from_norm = normalized(from);
  if (!from_norm.ok()) return std::move(from_norm).error();
  Result<std::string> to_norm = normalized(to);
  if (!to_norm.ok()) return std::move(to_norm).error();
  if (Result<void> r = check_available(from_norm.value()); !r.ok()) return r;
  if (Result<void> r = check_available(to_norm.value()); !r.ok()) return r;
  if (Result<void> r = maybe_inject(); !r.ok()) return r;

  const Mount* from_mount = mount_for(from_norm.value());
  const Mount* to_mount = mount_for(to_norm.value());
  if (from_mount != to_mount) {
    return Error(ErrorKind::kAccessDenied,
                 "rename across mounts: '" + from + "' -> '" + to + "'");
  }
  Result<Resolved> src = resolve(from_norm.value());
  if (!src.ok()) return std::move(src).error();
  if (src.value().node == nullptr) {
    return Error(ErrorKind::kFileNotFound, "'" + from + "' not found");
  }
  if (src.value().node == root_) {
    return Error(ErrorKind::kAccessDenied, "cannot rename '/'");
  }
  Result<Resolved> dst = resolve(to_norm.value());
  if (!dst.ok()) return std::move(dst).error();
  if (dst.value().node != nullptr) {
    return Error(ErrorKind::kFileExists, "'" + to + "' exists");
  }
  if (dst.value().parent == nullptr) {
    return Error(ErrorKind::kFileNotFound,
                 "parent of '" + to + "' does not exist");
  }
  std::shared_ptr<Node> moving = src.value().node;
  src.value().parent->kids.erase(src.value().leaf);
  moving->name = dst.value().leaf;
  dst.value().parent->kids[dst.value().leaf] = std::move(moving);
  return Ok();
}

Result<Stat> SimFileSystem::stat(const std::string& path) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok())
    return std::move(r).error();
  if (Result<void> r = maybe_inject(); !r.ok()) return std::move(r).error();
  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  if (res.value().node == nullptr) {
    return Error(ErrorKind::kFileNotFound, "'" + path + "' not found on " + host_);
  }
  Stat s;
  s.is_dir = res.value().node->is_dir;
  s.size = res.value().node->data.size();
  s.mtime = res.value().node->mtime;
  return s;
}

Result<std::vector<std::string>> SimFileSystem::list(const std::string& path) {
  Result<std::string> norm = normalized(path);
  if (!norm.ok()) return std::move(norm).error();
  if (Result<void> r = check_available(norm.value()); !r.ok())
    return std::move(r).error();
  Result<Resolved> res = resolve(norm.value());
  if (!res.ok()) return std::move(res).error();
  if (res.value().node == nullptr) {
    return Error(ErrorKind::kFileNotFound, "'" + path + "' not found");
  }
  if (!res.value().node->is_dir) {
    return Error(ErrorKind::kNotDirectory, "'" + path + "' is not a directory");
  }
  std::vector<std::string> names;
  names.reserve(res.value().node->kids.size());
  for (const auto& [name, kid] : res.value().node->kids) names.push_back(name);
  return names;
}

bool SimFileSystem::exists(const std::string& path) {
  Result<Resolved> res = resolve(path);
  return res.ok() && res.value().node != nullptr;
}

Result<std::string> SimFileSystem::read_file(const std::string& path) {
  Result<FileHandle> h = open(path, OpenMode::kRead);
  if (!h.ok()) return std::move(h).error();
  Result<std::uint64_t> size = h.value().size();
  if (!size.ok()) return std::move(size).error();
  return h.value().read(static_cast<std::size_t>(size.value()));
}

Result<void> SimFileSystem::write_file(const std::string& path,
                                       const std::string& data) {
  Result<FileHandle> h = open(path, OpenMode::kWrite);
  if (!h.ok()) return std::move(h).error();
  return h.value().write(data);
}

void SimFileSystem::set_access(const std::string& path, bool readable,
                               bool writable) {
  Result<std::string> norm = normalize_path(path);
  if (!norm.ok()) return;
  acls_.emplace_back(norm.value(), std::make_pair(readable, writable));
}

void SimFileSystem::add_mount(const std::string& prefix,
                              std::uint64_t capacity_bytes) {
  Result<std::string> norm = normalize_path(prefix);
  if (!norm.ok()) return;
  auto m = std::make_unique<Mount>();
  m->prefix = norm.value();
  m->capacity = capacity_bytes;
  mounts_.push_back(std::move(m));
  (void)mkdirs(norm.value());
}

void SimFileSystem::set_mount_online(const std::string& prefix, bool online) {
  Result<std::string> norm = normalize_path(prefix);
  if (!norm.ok()) return;
  for (auto& m : mounts_) {
    if (m->prefix == norm.value()) m->online = online;
  }
}

bool SimFileSystem::mount_online(const std::string& prefix) const {
  const Mount* m = mount_for(prefix);
  return m == nullptr || m->online;
}

std::uint64_t SimFileSystem::mount_used(const std::string& prefix) const {
  const Mount* m = mount_for(prefix);
  return m == nullptr ? 0 : m->used;
}

void SimFileSystem::set_transient_fault_rate(double prob, Rng rng) {
  fault_rate_ = prob;
  fault_rng_ = rng;
}

void SimFileSystem::set_silent_corruption_rate(double prob, Rng rng) {
  corruption_rate_ = prob;
  corruption_rng_ = rng;
}

Result<void> SimFileSystem::charge_mount(Node& node, std::uint64_t new_size) {
  Mount* m = node.mount;
  if (m == nullptr) return Ok();
  const std::uint64_t old_size = node.data.size();
  if (new_size > old_size) {
    const std::uint64_t grow = new_size - old_size;
    if (m->capacity != 0 && m->used + grow > m->capacity) {
      return Error(ErrorKind::kDiskFull,
                   "filesystem '" + m->prefix + "' on " + host_ + " is full");
    }
    m->used += grow;
  } else {
    m->used -= old_size - new_size;
  }
  return Ok();
}

// ---- FileHandle ----

FileHandle::FileHandle(SimFileSystem* owner, std::shared_ptr<Node> node,
                       bool writable)
    : owner_(owner), node_(std::move(node)), writable_(writable) {}

Result<std::string> FileHandle::read(std::size_t n) {
  if (!valid()) {
    return Error(ErrorKind::kBadFileDescriptor, "read on closed handle");
  }
  if (node_->mount != nullptr && !node_->mount->online) {
    return Error(ErrorKind::kMountOffline, "filesystem '" +
                                               node_->mount->prefix + "' on " +
                                               owner_->host() + " is offline")
        .with_label("injected", "mount-offline");
  }
  if (Result<void> r = owner_->maybe_inject(); !r.ok())
    return std::move(r).error();
  if (offset_ >= node_->data.size()) return std::string{};
  const std::size_t avail = node_->data.size() - offset_;
  const std::size_t take = std::min(n, avail);
  std::string out = node_->data.substr(offset_, take);
  offset_ += take;
  // The implicit error: data presented as valid that is otherwise
  // determined to be false (§3.1). No error is reported — deliberately.
  // Only bulk reads are affected; see kCorruptionMinBytes.
  if (out.size() >= SimFileSystem::kCorruptionMinBytes &&
      owner_->corruption_rate_ > 0 &&
      owner_->corruption_rng_.chance(owner_->corruption_rate_)) {
    const std::size_t victim = static_cast<std::size_t>(
        owner_->corruption_rng_.uniform_int(
            0, static_cast<std::int64_t>(out.size()) - 1));
    out[victim] = static_cast<char>(out[victim] ^ 0x20);
    ++owner_->corruptions_;
  }
  return out;
}

Result<std::string> FileHandle::read_exact(std::size_t n) {
  Result<std::string> r = read(n);
  if (!r.ok()) return r;
  if (r.value().size() != n) {
    return Error(ErrorKind::kEndOfFile,
                 "wanted " + std::to_string(n) + " bytes, got " +
                     std::to_string(r.value().size()));
  }
  return r;
}

Result<void> FileHandle::write(const std::string& data) {
  if (!valid()) {
    return Error(ErrorKind::kBadFileDescriptor, "write on closed handle");
  }
  if (!writable_) {
    return Error(ErrorKind::kAccessDenied, "handle opened read-only");
  }
  if (node_->mount != nullptr && !node_->mount->online) {
    return Error(ErrorKind::kMountOffline, "filesystem '" +
                                               node_->mount->prefix + "' on " +
                                               owner_->host() + " is offline")
        .with_label("injected", "mount-offline");
  }
  if (Result<void> r = owner_->maybe_inject(); !r.ok()) return r;
  const std::uint64_t end = offset_ + data.size();
  const std::uint64_t new_size =
      std::max<std::uint64_t>(node_->data.size(), end);
  if (Result<void> r = owner_->charge_mount(*node_, new_size); !r.ok()) {
    return r;
  }
  if (node_->data.size() < end) node_->data.resize(end);
  node_->data.replace(static_cast<std::size_t>(offset_), data.size(), data);
  offset_ = end;
  return Ok();
}

Result<void> FileHandle::seek(std::uint64_t offset) {
  if (!valid()) {
    return Error(ErrorKind::kBadFileDescriptor, "seek on closed handle");
  }
  offset_ = offset;
  return Ok();
}

Result<std::uint64_t> FileHandle::size() const {
  if (!valid()) {
    return Error(ErrorKind::kBadFileDescriptor, "size on closed handle");
  }
  return static_cast<std::uint64_t>(node_->data.size());
}

void FileHandle::close() {
  node_.reset();
  owner_ = nullptr;
}

}  // namespace esg::fs
