// Simulated filesystem.
//
// Each host owns one SimFileSystem: an in-memory tree with mounts that can
// go offline (the paper's "home file system was offline" case), capacity
// limits (DiskFull), per-path access control (AccessDenied), and seeded
// transient-fault injection (IoError). The error vocabulary deliberately
// matches the paper's discussion of I/O interfaces: namespace operations
// (open) fail with errors of permission and existence; data operations
// (read/write) fail with bounds and capacity errors — and anything outside
// that contract is the caller's cue for an escaping error.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "core/result.hpp"

namespace esg::fs {

struct Stat {
  bool is_dir = false;
  std::uint64_t size = 0;
  SimTime mtime{};
};

enum class OpenMode {
  kRead,      ///< existing file, read only
  kWrite,     ///< create or truncate
  kAppend,    ///< create or append
};

namespace detail {
struct Node;
struct Mount;
}  // namespace detail

class SimFileSystem;

/// An open file. Handles stay usable across mount outages — operations
/// fail while the mount is offline and succeed again when it returns —
/// matching the NFS behaviour discussed in §5.
class FileHandle {
 public:
  FileHandle() = default;

  [[nodiscard]] bool valid() const { return node_ != nullptr; }

  /// Read up to `n` bytes from the current offset. Returns an empty string
  /// at end of file (POSIX convention).
  Result<std::string> read(std::size_t n);

  /// Read exactly `n` bytes or fail with kEndOfFile.
  Result<std::string> read_exact(std::size_t n);

  Result<void> write(const std::string& data);

  /// Absolute seek. Seeking past EOF is allowed (sparse write semantics).
  Result<void> seek(std::uint64_t offset);
  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  Result<std::uint64_t> size() const;

  void close();

 private:
  friend class SimFileSystem;
  FileHandle(SimFileSystem* owner, std::shared_ptr<detail::Node> node,
             bool writable);
  SimFileSystem* owner_ = nullptr;
  std::shared_ptr<detail::Node> node_;
  std::uint64_t offset_ = 0;
  bool writable_ = false;
};

class SimFileSystem {
 public:
  explicit SimFileSystem(std::string host);
  ~SimFileSystem();  // out of line: detail::Mount is incomplete here

  SimFileSystem(const SimFileSystem&) = delete;
  SimFileSystem& operator=(const SimFileSystem&) = delete;

  [[nodiscard]] const std::string& host() const { return host_; }

  // -- namespace operations --
  Result<void> mkdir(const std::string& path);
  Result<void> mkdirs(const std::string& path);
  Result<FileHandle> open(const std::string& path, OpenMode mode);
  Result<void> unlink(const std::string& path);
  Result<void> rmdir(const std::string& path);      ///< must be empty
  Result<void> remove_all(const std::string& path); ///< recursive
  /// Move a file or directory. The destination must not exist; moving
  /// across mounts is rejected (like rename(2) across filesystems).
  Result<void> rename(const std::string& from, const std::string& to);
  Result<Stat> stat(const std::string& path);
  Result<std::vector<std::string>> list(const std::string& path);
  [[nodiscard]] bool exists(const std::string& path);

  // -- whole-file conveniences --
  Result<std::string> read_file(const std::string& path);
  Result<void> write_file(const std::string& path, const std::string& data);

  // -- access control --
  /// Deny reads and/or writes under `path` (inclusive).
  void set_access(const std::string& path, bool readable, bool writable);

  // -- mounts --
  /// Declare `prefix` a mount point with a byte capacity (0 = unlimited).
  /// "/" is always an implicit unlimited mount.
  void add_mount(const std::string& prefix, std::uint64_t capacity_bytes);
  /// Take a mount offline / bring it back. Operations under an offline
  /// mount fail with kMountOffline (local-resource scope by default).
  void set_mount_online(const std::string& prefix, bool online);
  [[nodiscard]] bool mount_online(const std::string& prefix) const;
  [[nodiscard]] std::uint64_t mount_used(const std::string& prefix) const;

  // -- fault injection --
  /// Probability that any single operation fails with a transient kIoError.
  void set_transient_fault_rate(double prob, Rng rng);

  /// Probability that a bulk read (>= kCorruptionMinBytes) is *silently
  /// corrupted* — one byte flipped, result presented as valid. This is the
  /// paper's implicit error (§3.1/§5): no layer below the end user can
  /// detect it, which is why the end-to-end machinery in
  /// pool/reliable.hpp exists. Small metadata reads (cookies, result
  /// files) are spared: corruption strikes data volume, and sparing
  /// control metadata is precisely what keeps the error *implicit* — the
  /// grid keeps functioning while quietly delivering wrong bytes.
  void set_silent_corruption_rate(double prob, Rng rng);
  static constexpr std::size_t kCorruptionMinBytes = 64;
  [[nodiscard]] std::uint64_t corruptions_injected() const {
    return corruptions_;
  }

  // -- introspection --
  [[nodiscard]] std::uint64_t op_count() const { return ops_; }

 private:
  friend class FileHandle;

  struct Resolved {
    std::shared_ptr<detail::Node> node;        // may be null (not found)
    std::shared_ptr<detail::Node> parent;      // deepest existing dir
    std::string leaf;                          // final path component
  };

  Result<std::vector<std::string>> components(const std::string& path) const;
  Result<Resolved> resolve(const std::string& path);
  Result<void> check_available(const std::string& path);
  detail::Mount* mount_for(const std::string& path);
  const detail::Mount* mount_for(const std::string& path) const;
  Result<void> charge_mount(detail::Node& node, std::uint64_t new_size);
  Result<void> maybe_inject();

  std::string host_;
  std::shared_ptr<detail::Node> root_;
  std::vector<std::unique_ptr<detail::Mount>> mounts_;
  std::vector<std::pair<std::string, std::pair<bool, bool>>> acls_;
  double fault_rate_ = 0;
  Rng fault_rng_;
  double corruption_rate_ = 0;
  Rng corruption_rng_;
  std::uint64_t corruptions_ = 0;
  std::uint64_t ops_ = 0;
};

/// Normalize a path: collapse '//', resolve '.', forbid '..' (the grid
/// never needs upward traversal and forbidding it keeps sandboxing simple).
Result<std::string> normalize_path(const std::string& path);

}  // namespace esg::fs
