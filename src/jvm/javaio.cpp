#include "jvm/javaio.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace esg::jvm {

namespace {

/// Fallbacks for classify_io_failure callers that run outside a simulation
/// context (benches, tools).
const obs::TraceSink& shim_trace() {
  static const obs::TraceSink sink("javaio");
  return sink;
}

PrincipleAudit& resolve_audit(PrincipleAudit* audit) {
  // Compat fallback for unbound callers.  esg-lint: allow(lint/global-singleton)
  return audit != nullptr ? *audit : PrincipleAudit::global();
}

/// Payload used for simulated writes; content is irrelevant, size matters.
std::string zeros(std::int64_t n) {
  return std::string(static_cast<std::size_t>(std::max<std::int64_t>(0, n)),
                     '\0');
}

}  // namespace

JavaThrowable classify_io_failure(IoDiscipline discipline,
                                  const ErrorInterface& contract, Error e,
                                  PrincipleAudit* audit,
                                  const obs::TraceSink* trace) {
  PrincipleAudit& ledger = resolve_audit(audit);
  const obs::TraceSink& sink = trace != nullptr ? *trace : shim_trace();
  JavaThrowable out;
  if (discipline == IoDiscipline::kGeneric) {
    // Everything extends IOException; the program is handed errors whose
    // scope it does not manage. Record the P4 violation (and the P3 one it
    // implies) exactly once, at the conversion site.
    if (!contract.allows(e.kind())) {
      ledger.record(Principle::kP4, AuditOutcome::kViolated,
                    contract.routine());
      ledger.record(Principle::kP3, AuditOutcome::kViolated,
                    contract.routine());
    }
    out.is_java_error = false;
    out.error = std::move(e);
    return out;
  }
  // Concise discipline.
  if (contract.allows(e.kind())) {
    ledger.record(Principle::kP4, AuditOutcome::kApplied, contract.routine());
    out.is_java_error = false;
    out.error = std::move(e);
    return out;
  }
  // Outside the contract: escape as a Java Error (Principle 2). The scope
  // travels with it so the wrapper can report it to the starter.
  ledger.record(Principle::kP2, AuditOutcome::kApplied, contract.routine());
  out.is_java_error = true;
  out.error = Error(e.kind(), e.scope(),
                    "java.lang.Error escaping " + contract.routine() + ": " +
                        e.message())
                  .caused_by(std::move(e));
  out.trace_span = sink.converted_to_escaping(
      out.error, 0, "out of " + contract.routine() + " contract (P2 raise)");
  return out;
}

// ---- contracts ----

const ErrorInterface& ChirpJavaIo::open_contract() {
  static const ErrorInterface contract(
      "JavaIo.open",
      {ErrorKind::kFileNotFound, ErrorKind::kAccessDenied,
       ErrorKind::kIsDirectory});
  return contract;
}

const ErrorInterface& ChirpJavaIo::read_contract() {
  static const ErrorInterface contract("JavaIo.read",
                                       {ErrorKind::kEndOfFile});
  return contract;
}

const ErrorInterface& ChirpJavaIo::write_contract() {
  static const ErrorInterface contract("JavaIo.write",
                                       {ErrorKind::kDiskFull});
  return contract;
}

// ---- ChirpJavaIo ----

ChirpJavaIo::ChirpJavaIo(chirp::ChirpClient& client, Options options)
    : client_(client),
      options_(std::move(options)),
      audit_(&client.engine().context().audit()),
      trace_(client.engine().context().trace(options_.component)) {}

template <class T>
void ChirpJavaIo::deliver_failure(const ErrorInterface& contract, Error e,
                                  const std::function<void(IoResult<T>)>& cb) {
  if (options_.discipline == IoDiscipline::kGeneric &&
      options_.generic_diskfull_blocks && e.kind() == ErrorKind::kDiskFull) {
    // §3.4: this implementation "avoids" the unrepresentable error by
    // blocking indefinitely. The callback is simply never invoked. The
    // explicit DiskFull existed right here and became pure silence.
    const std::uint64_t knew =
        trace_.raised(e, 0, "write failed under generic discipline");
    trace_.implicit(e.kind(), e.scope(), 0,
                    "blocking forever instead of reporting DiskFull", knew);
    return;
  }
  cb(IoResult<T>{classify_io_failure(options_.discipline, contract,
                                     std::move(e), audit_, &trace_)});
}

void ChirpJavaIo::open_read(int stream, const std::string& path, OpenCb cb) {
  client_.open(path, "r", [this, stream, cb = std::move(cb)](
                              Result<std::int64_t> r) {
    if (!r.ok()) {
      deliver_failure<std::monostate>(open_contract(), std::move(r).error(),
                                      cb);
      return;
    }
    fds_[stream] = r.value();
    cb(IoResult<std::monostate>{std::monostate{}});
  });
}

void ChirpJavaIo::open_write(int stream, const std::string& path, OpenCb cb) {
  client_.open(path, "w", [this, stream, cb = std::move(cb)](
                              Result<std::int64_t> r) {
    if (!r.ok()) {
      deliver_failure<std::monostate>(open_contract(), std::move(r).error(),
                                      cb);
      return;
    }
    fds_[stream] = r.value();
    cb(IoResult<std::monostate>{std::monostate{}});
  });
}

void ChirpJavaIo::read(int stream, std::int64_t bytes, ReadCb cb) {
  auto it = fds_.find(stream);
  if (it == fds_.end()) {
    deliver_failure<std::int64_t>(
        read_contract(),
        Error(ErrorKind::kBadFileDescriptor, "stream not open"), cb);
    return;
  }
  client_.read(it->second, bytes,
               [this, cb = std::move(cb)](Result<std::string> r) {
                 if (!r.ok()) {
                   deliver_failure<std::int64_t>(read_contract(),
                                                 std::move(r).error(), cb);
                   return;
                 }
                 cb(IoResult<std::int64_t>{
                     static_cast<std::int64_t>(r.value().size())});
               });
}

void ChirpJavaIo::write(int stream, std::int64_t bytes, WriteCb cb) {
  auto it = fds_.find(stream);
  if (it == fds_.end()) {
    deliver_failure<std::int64_t>(
        write_contract(),
        Error(ErrorKind::kBadFileDescriptor, "stream not open"), cb);
    return;
  }
  client_.write(it->second, zeros(bytes),
                [this, cb = std::move(cb)](Result<std::int64_t> r) {
                  if (!r.ok()) {
                    deliver_failure<std::int64_t>(write_contract(),
                                                  std::move(r).error(), cb);
                    return;
                  }
                  cb(IoResult<std::int64_t>{r.value()});
                });
}

void ChirpJavaIo::close(int stream, CloseCb cb) {
  auto it = fds_.find(stream);
  if (it == fds_.end()) {
    // Closing an unopened stream is a no-op, matching Java semantics.
    cb(IoResult<std::monostate>{std::monostate{}});
    return;
  }
  const std::int64_t fd = it->second;
  fds_.erase(it);
  client_.close_fd(fd, [this, cb = std::move(cb)](Result<void> r) {
    if (!r.ok()) {
      deliver_failure<std::monostate>(write_contract(), std::move(r).error(),
                                      cb);
      return;
    }
    cb(IoResult<std::monostate>{std::monostate{}});
  });
}

// ---- LocalJavaIo ----

LocalJavaIo::LocalJavaIo(fs::SimFileSystem& fs, IoDiscipline discipline,
                         std::string sandbox, sim::SimContext* ctx)
    : fs_(fs),
      discipline_(discipline),
      sandbox_(std::move(sandbox)),
      audit_(ctx != nullptr ? &ctx->audit() : nullptr),
      trace_(ctx != nullptr ? ctx->trace("javaio@" + fs.host())
                            : obs::TraceSink("javaio@" + fs.host())) {}

std::string LocalJavaIo::map_path(const std::string& path) const {
  if (path.empty() || path[0] == '/' || sandbox_.empty()) return path;
  return sandbox_ + "/" + path;
}

template <class T>
void LocalJavaIo::deliver_failure(const ErrorInterface& contract, Error e,
                                  const std::function<void(IoResult<T>)>& cb) {
  cb(IoResult<T>{classify_io_failure(discipline_, contract, std::move(e),
                                     audit_, &trace_)});
}

void LocalJavaIo::open_read(int stream, const std::string& path, OpenCb cb) {
  Result<fs::FileHandle> h = fs_.open(map_path(path), fs::OpenMode::kRead);
  if (!h.ok()) {
    deliver_failure<std::monostate>(ChirpJavaIo::open_contract(),
                                    std::move(h).error(), cb);
    return;
  }
  handles_[stream] = std::move(h).value();
  cb(IoResult<std::monostate>{std::monostate{}});
}

void LocalJavaIo::open_write(int stream, const std::string& path, OpenCb cb) {
  Result<fs::FileHandle> h = fs_.open(map_path(path), fs::OpenMode::kWrite);
  if (!h.ok()) {
    deliver_failure<std::monostate>(ChirpJavaIo::open_contract(),
                                    std::move(h).error(), cb);
    return;
  }
  handles_[stream] = std::move(h).value();
  cb(IoResult<std::monostate>{std::monostate{}});
}

void LocalJavaIo::read(int stream, std::int64_t bytes, ReadCb cb) {
  auto it = handles_.find(stream);
  if (it == handles_.end()) {
    deliver_failure<std::int64_t>(
        ChirpJavaIo::read_contract(),
        Error(ErrorKind::kBadFileDescriptor, "stream not open"), cb);
    return;
  }
  Result<std::string> r =
      it->second.read(static_cast<std::size_t>(std::max<std::int64_t>(0, bytes)));
  if (!r.ok()) {
    deliver_failure<std::int64_t>(ChirpJavaIo::read_contract(),
                                  std::move(r).error(), cb);
    return;
  }
  cb(IoResult<std::int64_t>{static_cast<std::int64_t>(r.value().size())});
}

void LocalJavaIo::write(int stream, std::int64_t bytes, WriteCb cb) {
  auto it = handles_.find(stream);
  if (it == handles_.end()) {
    deliver_failure<std::int64_t>(
        ChirpJavaIo::write_contract(),
        Error(ErrorKind::kBadFileDescriptor, "stream not open"), cb);
    return;
  }
  Result<void> r = it->second.write(zeros(bytes));
  if (!r.ok()) {
    deliver_failure<std::int64_t>(ChirpJavaIo::write_contract(),
                                  std::move(r).error(), cb);
    return;
  }
  cb(IoResult<std::int64_t>{bytes});
}

void LocalJavaIo::close(int stream, CloseCb cb) {
  auto it = handles_.find(stream);
  if (it != handles_.end()) {
    it->second.close();
    handles_.erase(it);
  }
  cb(IoResult<std::monostate>{std::monostate{}});
}

}  // namespace esg::jvm
