// The Java-style I/O library (§2.2, fixed in §4).
//
// The library presents stream abstractions to the program and speaks Chirp
// to the proxy. Two disciplines are implemented:
//
//  * kGeneric — the paper's first, incorrect design: every proxy error is
//    blindly converted into a corresponding Java exception extending the
//    generic IOException, so the program receives "connection timed out"
//    and "credentials expired" as if they were ordinary I/O results
//    (violating Principles 3 and 4). As a faithful nod to §3.4, a DiskFull
//    under this discipline can optionally block forever — "at least one
//    Java implementation avoids this problem entirely by blocking
//    indefinitely when the disk is full."
//
//  * kConcise — the fix: each operation has a concise, finite exception
//    contract (open: FileNotFound/AccessDenied; read: EndOfFile;
//    write: DiskFull). Any other failure is delivered as a Java *Error*
//    (an escaping error) carrying the true scope, which the wrapper
//    communicates to the starter through the result file.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>

#include "chirp/client.hpp"
#include "core/core.hpp"
#include "fs/simfs.hpp"
#include "obs/trace.hpp"
#include "sim/context.hpp"

namespace esg::jvm {

/// How the library exposes failures to the program.
enum class IoDiscipline {
  kGeneric,  ///< naive: everything is an IOException (paper §2.3 behaviour)
  kConcise,  ///< fixed: contractual exceptions + escaping Java Errors (§4)
};

/// What a Java I/O call delivers to the program when it fails.
struct JavaThrowable {
  /// true  => java.lang.Error: non-contractual, must escape the program
  /// false => checked exception: part of the method's declared contract
  bool is_java_error = false;
  Error error;
  /// Flight-recorder span of the escaping conversion (0 when tracing is
  /// off); the catcher links its own event to it.
  std::uint64_t trace_span = 0;
};

template <class T>
using IoResult = std::variant<T, JavaThrowable>;

/// Abstract stream environment used by SimJvm to execute program I/O ops.
/// Stream slots are small integers chosen by the program.
class JavaIo {
 public:
  virtual ~JavaIo() = default;

  using OpenCb = std::function<void(IoResult<std::monostate>)>;
  using ReadCb = std::function<void(IoResult<std::int64_t>)>;  // bytes read
  using WriteCb = std::function<void(IoResult<std::int64_t>)>; // bytes written
  using CloseCb = std::function<void(IoResult<std::monostate>)>;

  virtual void open_read(int stream, const std::string& path, OpenCb cb) = 0;
  virtual void open_write(int stream, const std::string& path, OpenCb cb) = 0;
  virtual void read(int stream, std::int64_t bytes, ReadCb cb) = 0;
  virtual void write(int stream, std::int64_t bytes, WriteCb cb) = 0;
  virtual void close(int stream, CloseCb cb) = 0;
};

/// The real library: streams over a ChirpClient.
class ChirpJavaIo final : public JavaIo {
 public:
  struct Options {
    IoDiscipline discipline = IoDiscipline::kConcise;
    /// §3.4: under the generic discipline, a full disk blocks forever.
    bool generic_diskfull_blocks = false;
    /// Trace-span component; launchers host-qualify it ("javaio@exec3")
    /// so dashboards attribute I/O errors to the executing machine.
    std::string component = "javaio";
  };

  ChirpJavaIo(chirp::ChirpClient& client, Options options);

  void open_read(int stream, const std::string& path, OpenCb cb) override;
  void open_write(int stream, const std::string& path, OpenCb cb) override;
  void read(int stream, std::int64_t bytes, ReadCb cb) override;
  void write(int stream, std::int64_t bytes, WriteCb cb) override;
  void close(int stream, CloseCb cb) override;

  /// The concise contracts, exposed for tests and documentation.
  static const ErrorInterface& open_contract();
  static const ErrorInterface& read_contract();
  static const ErrorInterface& write_contract();

 private:
  /// Apply the discipline to a failed operation's error.
  template <class T>
  void deliver_failure(const ErrorInterface& contract, Error e,
                       const std::function<void(IoResult<T>)>& cb);

  chirp::ChirpClient& client_;
  Options options_;
  PrincipleAudit* audit_;   ///< the client's engine-context ledger
  obs::TraceSink trace_;    ///< bound to the same context's recorder
  std::map<int, std::int64_t> fds_;  // stream slot -> remote fd
};

/// A direct-to-filesystem implementation (no proxy): used by unit tests,
/// the startd's Java self-test probe, and the Vanilla universe (which has
/// no Chirp library — it sees only the machine's own filesystem).
/// Relative paths resolve under `sandbox` when one is given.
class LocalJavaIo final : public JavaIo {
 public:
  /// `ctx` binds audit records and trace spans to a simulation context;
  /// without one (unit tests, tools) they fall to the process-wide shims.
  LocalJavaIo(fs::SimFileSystem& fs, IoDiscipline discipline,
              std::string sandbox = {}, sim::SimContext* ctx = nullptr);

  void open_read(int stream, const std::string& path, OpenCb cb) override;
  void open_write(int stream, const std::string& path, OpenCb cb) override;
  void read(int stream, std::int64_t bytes, ReadCb cb) override;
  void write(int stream, std::int64_t bytes, WriteCb cb) override;
  void close(int stream, CloseCb cb) override;

 private:
  template <class T>
  void deliver_failure(const ErrorInterface& contract, Error e,
                       const std::function<void(IoResult<T>)>& cb);
  std::string map_path(const std::string& path) const;

  fs::SimFileSystem& fs_;
  IoDiscipline discipline_;
  std::string sandbox_;
  PrincipleAudit* audit_ = nullptr;
  obs::TraceSink trace_;
  std::map<int, fs::FileHandle> handles_;
};

/// Classify a failure per the discipline: returns the JavaThrowable the
/// program will see. Under kConcise, errors outside `contract` become Java
/// Errors (escaping) and keep their scope; under kGeneric everything is a
/// checked exception (is_java_error=false) — a deliberate violation of
/// Principle 4, recorded in the audit. Simulation callers pass their
/// context's audit ledger and trace sink; unbound callers (benches, tools)
/// omit them and fall back to the process-wide shims.
JavaThrowable classify_io_failure(IoDiscipline discipline,
                                  const ErrorInterface& contract, Error e,
                                  PrincipleAudit* audit = nullptr,
                                  const obs::TraceSink* trace = nullptr);

}  // namespace esg::jvm
