#include "jvm/jvm.hpp"

#include <cassert>
#include <memory>
#include <set>
#include <sstream>

#include "analysis/topology.hpp"
#include "classad/classad.hpp"
#include "obs/trace.hpp"

namespace esg::jvm {

namespace {

/// Per-execution state, kept alive by the chain of callbacks.
struct Run {
  sim::Engine* engine = nullptr;
  obs::TraceSink trace;  ///< bound to the engine's context recorder
  JvmConfig config;
  JobProgram program;
  JavaIo* io = nullptr;
  WrapMode mode = WrapMode::kBare;
  fs::SimFileSystem* scratch_fs = nullptr;
  std::string result_path;
  std::function<void(JvmOutcome)> done;

  std::size_t pc = 0;            ///< next op index
  std::int64_t heap_used = 0;
  SimTime cpu_time{};
  bool finished = false;
  std::shared_ptr<const bool> cancel;
  RunExtras extras;
  std::set<int> open_streams;
  SimTime last_checkpoint{};
  double banked_cpu = 0;  ///< cpu from prior attempts (via the checkpoint)
  std::uint64_t trace_span = 0;  ///< span of the terminal condition's raise
};

using RunPtr = std::shared_ptr<Run>;

void step(const RunPtr& run);

/// Terminal path: assemble the outcome, let the wrapper write its result
/// file (wrapped mode), and report the Figure 4 exit code.
void finish(const RunPtr& run, JvmOutcome outcome) {
  if (run->finished) return;
  if (run->cancel && *run->cancel) {
    run->finished = true;  // killed: report nothing
    return;
  }
  run->finished = true;
  outcome.cpu_time = run->cpu_time;

  // Figure 4 exit-code semantics: the JVM collapses everything abnormal
  // to 1.
  if (outcome.completed_main) {
    outcome.exit_code = 0;
  } else if (outcome.system_exit.has_value()) {
    outcome.exit_code = *outcome.system_exit;
  } else {
    outcome.exit_code = 1;
  }

  if (run->mode == WrapMode::kWrapped && run->scratch_fs != nullptr) {
    // The wrapper catches the terminal condition and records the program
    // result and the scope of any error discovered (§4). If the scratch
    // filesystem itself is gone, the file cannot be written — the starter
    // will interpret the missing file as a remote-resource error, which is
    // exactly the scope of a broken scratch disk.
    ResultFile rf;
    if (outcome.completed_main) {
      rf.exit_by = ResultFile::ExitBy::kCompletion;
      rf.exit_code = 0;
    } else if (outcome.system_exit.has_value()) {
      rf.exit_by = ResultFile::ExitBy::kSystemExit;
      rf.exit_code = *outcome.system_exit;
    } else {
      rf.exit_by = ResultFile::ExitBy::kException;
      rf.exit_code = 1;
      rf.error = outcome.condition;
    }
    Result<void> wrote =
        run->scratch_fs->write_file(run->result_path, rf.encode());
    outcome.wrote_result_file = wrote.ok();
    if (rf.error.has_value() && wrote.ok()) {
      run->trace.converted_to_explicit(
          *rf.error, 0, "wrapper result file preserves error and scope",
          run->trace_span);
    }
  } else if (outcome.condition.has_value() &&
             outcome.condition->scope() != ErrorScope::kProgram &&
             !outcome.completed_main) {
    // Bare mode: an environment-scope condition leaves the process as
    // nothing but Figure 4's exit code — the information is destroyed
    // right here. Linking the collapse to the raise is a P1 violation by
    // construction, which is the point.
    run->trace.implicit(
        outcome.condition->kind(), outcome.condition->scope(), 0,
        "Figure 4: collapsed to exit code " + std::to_string(outcome.exit_code),
        run->trace_span);
  }
  run->done(outcome);
}

/// SIGKILL path: stop immediately, report without a result file.
void kill_with(const RunPtr& run, Error error) {
  if (run->finished) return;
  run->finished = true;
  JvmOutcome out;
  out.exit_code = 137;  // 128 + SIGKILL
  out.condition = std::move(error);
  out.cpu_time = run->cpu_time;
  run->done(out);
}

void fail_with(const RunPtr& run, Error error) {
  run->trace_span = run->trace.raised(error, 0);
  JvmOutcome out;
  out.condition = std::move(error);
  finish(run, out);
}

/// Handle a JavaThrowable surfacing from an I/O operation. A checked
/// exception that the (scripted, catch-less) program does not handle is an
/// *uncaught exception escaping main* — a program-scope result, regardless
/// of what the underlying condition was. That is precisely how the naive
/// discipline launders environmental errors into program results (§2.3).
/// A Java Error keeps its true scope for the wrapper to report.
void on_throwable(const RunPtr& run, JavaThrowable thrown) {
  if (thrown.is_java_error) {
    // The level above main catches the escaping Java Error and
    // re-expresses it explicitly (Principle 2's catch half) — the wrapper
    // in wrapped mode, the JVM's own top-level handler in bare mode.
    run->trace_span = run->trace.converted_to_explicit(
        thrown.error, 0,
        run->mode == WrapMode::kWrapped
            ? "wrapper catches escaping java.lang.Error"
            : "JVM top-level catches escaping java.lang.Error",
        thrown.trace_span);
    JvmOutcome out;
    out.condition = std::move(thrown.error);
    finish(run, out);
    return;
  }
  const std::uint64_t origin = run->trace.raised(thrown.error, 0);
  Error uncaught =
      Error(ErrorKind::kUncaughtException, ErrorScope::kProgram,
            "uncaught " + std::string(kind_name(thrown.error.kind())) +
                " escaping main: " + thrown.error.message())
          .caused_by(std::move(thrown.error));
  run->trace_span = run->trace.converted_to_explicit(
      uncaught, 0, "checked exception escaping main collapses scope to program",
      origin);
  JvmOutcome out;
  out.condition = std::move(uncaught);
  finish(run, out);
}

void exec_op(const RunPtr& run, const Op& op) {
  switch (op.kind) {
    case Op::Kind::kCompute:
      run->cpu_time += op.duration;
      run->engine->schedule(op.duration, [run] { step(run); });
      return;

    case Op::Kind::kAlloc:
      run->heap_used += op.bytes;
      if (run->heap_used > run->config.heap_bytes) {
        fail_with(run,
                  Error(ErrorKind::kOutOfMemory,
                        "OutOfMemoryError: requested " +
                            std::to_string(op.bytes) + " bytes, heap limit " +
                            std::to_string(run->config.heap_bytes)));
        return;
      }
      run->engine->schedule(SimTime::usec(10), [run] { step(run); });
      return;

    case Op::Kind::kFreeAll:
      run->heap_used = 0;
      run->engine->schedule(SimTime::usec(10), [run] { step(run); });
      return;

    case Op::Kind::kThrow: {
      Error e(op.exception);
      // A throw in the program text is the program's own doing.
      fail_with(run, Error(op.exception, ErrorScope::kProgram,
                           "exception thrown by program")
                         .caused_by(std::move(e)));
      return;
    }

    case Op::Kind::kExit: {
      JvmOutcome out;
      out.system_exit = op.exit_code;
      finish(run, out);
      return;
    }

    case Op::Kind::kOpenRead:
      run->io->open_read(op.stream, op.path,
                         [run, stream = op.stream](IoResult<std::monostate> r) {
                           if (auto* t = std::get_if<JavaThrowable>(&r)) {
                             on_throwable(run, std::move(*t));
                             return;
                           }
                           run->open_streams.insert(stream);
                           step(run);
                         });
      return;

    case Op::Kind::kOpenWrite:
      run->io->open_write(op.stream, op.path,
                          [run, stream = op.stream](IoResult<std::monostate> r) {
                            if (auto* t = std::get_if<JavaThrowable>(&r)) {
                              on_throwable(run, std::move(*t));
                              return;
                            }
                            run->open_streams.insert(stream);
                            step(run);
                          });
      return;

    case Op::Kind::kRead:
      run->io->read(op.stream, op.bytes, [run](IoResult<std::int64_t> r) {
        if (auto* t = std::get_if<JavaThrowable>(&r)) {
          on_throwable(run, std::move(*t));
          return;
        }
        step(run);
      });
      return;

    case Op::Kind::kWrite:
      run->io->write(op.stream, op.bytes, [run](IoResult<std::int64_t> r) {
        if (auto* t = std::get_if<JavaThrowable>(&r)) {
          on_throwable(run, std::move(*t));
          return;
        }
        step(run);
      });
      return;

    case Op::Kind::kCloseStream:
      run->io->close(op.stream, [run, stream = op.stream](IoResult<std::monostate> r) {
        if (auto* t = std::get_if<JavaThrowable>(&r)) {
          on_throwable(run, std::move(*t));
          return;
        }
        run->open_streams.erase(stream);
        step(run);
      });
      return;
  }
}

void step(const RunPtr& run) {
  if (run->finished) return;
  if (run->cancel && *run->cancel) {
    run->finished = true;
    return;
  }
  // Checkpoint at op boundaries: periodic, and only when no streams are
  // open (connections cannot migrate).
  if (run->extras.sink != nullptr && run->open_streams.empty() &&
      run->pc > run->extras.resume.pc &&
      run->engine->now() - run->last_checkpoint >=
          run->extras.checkpoint_interval) {
    run->last_checkpoint = run->engine->now();
    Checkpoint ckpt;
    ckpt.pc = run->pc;
    ckpt.heap_used = run->heap_used;
    ckpt.cpu_seconds = run->banked_cpu + run->cpu_time.as_sec();
    run->extras.sink->store(ckpt);
  }
  if (run->pc >= run->program.ops.size()) {
    JvmOutcome out;
    out.completed_main = true;
    finish(run, out);
    return;
  }
  const Op& op = run->program.ops[run->pc++];
  // A fixed dispatch overhead keeps time advancing even for free ops.
  (void)run->config.io_dispatch_overhead;
  exec_op(run, op);
}

class JvmControlImpl final : public JvmControl {
 public:
  explicit JvmControlImpl(RunPtr run) : run_(std::move(run)) {}
  void terminate(Error condition) override {
    kill_with(run_, std::move(condition));
  }
  [[nodiscard]] bool finished() const override { return run_->finished; }
  [[nodiscard]] SimTime consumed() const override { return run_->cpu_time; }

 private:
  RunPtr run_;
};

}  // namespace

std::string Checkpoint::encode() const {
  classad::ClassAd ad;
  ad.set("Pc", static_cast<std::int64_t>(pc));
  ad.set("HeapUsed", heap_used);
  ad.set("CpuSeconds", cpu_seconds);
  return ad.str();
}

Result<Checkpoint> Checkpoint::parse(const std::string& text) {
  Result<classad::ClassAd> ad = classad::parse_classad(text);
  if (!ad.ok()) {
    return Error(ErrorKind::kRequestMalformed,
                 "unparsable checkpoint: " + ad.error().message());
  }
  Checkpoint out;
  const std::int64_t pc = ad.value().eval_int("Pc", -1);
  if (pc < 0) {
    return Error(ErrorKind::kRequestMalformed, "checkpoint without Pc");
  }
  out.pc = static_cast<std::size_t>(pc);
  out.heap_used = ad.value().eval_int("HeapUsed");
  out.cpu_seconds = ad.value().eval_real("CpuSeconds");
  return out;
}

SimJvm::SimJvm(sim::Engine& engine, JvmConfig config, std::string component)
    : engine_(engine), config_(config), component_(std::move(component)) {}

std::shared_ptr<JvmControl> SimJvm::run(
    const JobProgram& program, JavaIo& io, WrapMode mode,
    fs::SimFileSystem* scratch_fs, const std::string& result_path,
    std::function<void(JvmOutcome)> done, std::shared_ptr<const bool> cancel,
    RunExtras extras) {
  assert(config_.installed && "a missing JVM fails in the starter, not here");
  auto run = std::make_shared<Run>();
  run->cancel = std::move(cancel);
  run->extras = std::move(extras);
  run->pc = run->extras.resume.pc;
  run->heap_used = run->extras.resume.heap_used;
  run->banked_cpu = run->extras.resume.cpu_seconds;
  // A resume point past the program is a corrupt checkpoint; start over.
  if (run->pc > program.ops.size()) {
    run->pc = 0;
    run->heap_used = 0;
    run->banked_cpu = 0;
    run->extras.resume = Checkpoint{};
  }
  run->engine = &engine_;
  run->trace = engine_.context().trace(component_);
  run->config = config_;
  run->program = program;
  run->io = &io;
  run->mode = mode;
  run->scratch_fs = scratch_fs;
  run->result_path = result_path;
  run->done = std::move(done);

  engine_.schedule(config_.startup_time, [run] {
    // 1. The JVM locates its own standard libraries.
    if (!run->config.classpath_ok) {
      fail_with(run, Error(ErrorKind::kJvmMisconfigured,
                           "NoClassDefFoundError: java/lang/Object "
                           "(owner-specified classpath is wrong)")
                         .with_label("injected", "jvm-misconfig"));
      return;
    }
    // 2. Load and verify the program image.
    if (!run->program.verifies()) {
      fail_with(run, Error(ErrorKind::kCorruptImage,
                           "ClassFormatError: bad checksum on " +
                               run->program.main_class));
      return;
    }
    if (run->program.main_class_missing) {
      fail_with(run, Error(ErrorKind::kClassNotFound,
                           "NoClassDefFoundError: " + run->program.main_class));
      return;
    }
    // 3. Invoke main.
    step(run);
  });
  return std::make_shared<JvmControlImpl>(run);
}

void describe_topology(analysis::TopologyModel& model, IoDiscipline io,
                       WrapMode wrap) {
  using analysis::InterfaceDecl;
  using analysis::InterfaceMode;

  // Everything a JVM execution can discover on its own: the program's
  // doing (program scope), the machine's (virtual-machine scope), and the
  // startup checks — classpath, image verification, entry class — that
  // fail before main() ever runs (see Jvm::execute steps 1-3).
  model.declare_detection(
      {"jvm",
       "jvm.execute",
       {ErrorKind::kNullPointer, ErrorKind::kArrayIndexOutOfBounds,
        ErrorKind::kArithmeticError, ErrorKind::kUncaughtException,
        ErrorKind::kExitNonZero, ErrorKind::kOutOfMemory,
        ErrorKind::kStackOverflow, ErrorKind::kInternalVmError,
        ErrorKind::kJvmMisconfigured, ErrorKind::kCorruptImage,
        ErrorKind::kClassNotFound}});

  if (wrap == WrapMode::kWrapped) {
    // The §4 wrapper manages program scope (it catches every throwable)
    // and the JVM itself manages virtual-machine scope (Figure 3).
    model.declare_handler("jvm-wrapper", ErrorScope::kProgram);
    model.declare_handler("jvm", ErrorScope::kVirtualMachine);
    // The result-file vocabulary: concise, finite, and scope-bearing.
    InterfaceDecl wrapper;
    wrapper.component = "jvm";
    wrapper.routine = "jvm.wrapper";
    wrapper.allowed = {
        ErrorKind::kNullPointer,   ErrorKind::kArrayIndexOutOfBounds,
        ErrorKind::kArithmeticError, ErrorKind::kUncaughtException,
        ErrorKind::kExitNonZero,   ErrorKind::kOutOfMemory,
        ErrorKind::kStackOverflow, ErrorKind::kInternalVmError,
        ErrorKind::kCorruptImage,  ErrorKind::kClassNotFound};
    wrapper.escape_floor = ErrorScope::kVirtualMachine;
    model.declare_interface(std::move(wrapper));
    model.declare_flow("jvm.execute", "jvm.wrapper");
  }
  // In bare mode there is no wrapper node: pool wiring sends "jvm.execute"
  // straight into the starter's exit-code boundary, where Figure 4's
  // collapse shows up as a statically provable P1 laundering hazard.

  if (io == IoDiscipline::kConcise) {
    // Declare the *runtime* contract objects, so the static model can
    // never drift from what ErrorInterface::filter actually enforces.
    for (const ErrorInterface* contract :
         {&ChirpJavaIo::open_contract(), &ChirpJavaIo::read_contract(),
          &ChirpJavaIo::write_contract()}) {
      InterfaceDecl decl;
      decl.component = "jvm";
      decl.routine = contract->routine();
      decl.allowed = contract->allowed();
      decl.escape_floor = ErrorScope::kProcess;
      model.declare_interface(std::move(decl));
      model.declare_flow(contract->routine(), "program.catch");
    }
    // What the program is written to catch: the union of the concise
    // contracts. Anything else escapes at program scope for the wrapper.
    InterfaceDecl prog;
    prog.component = "program";
    prog.routine = "program.catch";
    prog.allowed = {ErrorKind::kFileNotFound, ErrorKind::kAccessDenied,
                    ErrorKind::kIsDirectory, ErrorKind::kEndOfFile,
                    ErrorKind::kDiskFull};
    prog.escape_floor = ErrorScope::kProgram;
    model.declare_interface(std::move(prog));
  } else {
    // §3.4: everything extends IOException. One catch-all contract that
    // *leaks* — non-contractual kinds are handed to the program as if they
    // were ordinary I/O results. The verifier flags the kUnknown catch-all
    // (P4) and every laundering delivery through it (P1).
    InterfaceDecl generic;
    generic.component = "jvm";
    generic.routine = "JavaIo.IOException";
    generic.allowed = {ErrorKind::kUnknown};
    generic.mode = InterfaceMode::kLeak;
    model.declare_interface(std::move(generic));
  }
}

}  // namespace esg::jvm
