// SimJvm: the simulated Java Virtual Machine, with Figure 4 semantics.
//
// The JVM executes a JobProgram against a configuration supplied by the
// machine owner. Its exit code faithfully reproduces the paper's Figure 4:
// a normal completion is 0, System.exit(x) is x, and *every* abnormal
// condition — program exception, OutOfMemoryError, misconfigured
// installation, offline home filesystem, corrupt image — collapses to 1.
// The exit code therefore cannot distinguish error scopes; the JobWrapper
// (§4) restores the distinction through the result file.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "fs/simfs.hpp"
#include "jvm/javaio.hpp"
#include "jvm/program.hpp"
#include "jvm/resultfile.hpp"
#include "sim/engine.hpp"

namespace esg::analysis {
class TopologyModel;
}

namespace esg::jvm {

/// Machine-owner supplied configuration (§2.2: "The JVM binary, libraries,
/// and configuration files are all specified by the machine owner").
struct JvmConfig {
  bool installed = true;       ///< binary present at the advertised path
  bool classpath_ok = true;    ///< standard libraries locatable
  std::int64_t heap_bytes = 256LL << 20;
  SimTime startup_time = SimTime::msec(300);
  SimTime io_dispatch_overhead = SimTime::usec(50);
};

/// Whether the starter interposes the JobWrapper (§4 fix) or trusts the
/// JVM exit code (§2.3 naive design).
enum class WrapMode { kBare, kWrapped };

/// A checkpoint of a running program: enough to resume at an op boundary
/// on another machine (§2.1: transparent checkpointing and process
/// migration are Condor's founding tools for an unfriendly execution
/// environment). Checkpoints are only taken with no streams open — open
/// connections do not travel.
struct Checkpoint {
  std::size_t pc = 0;           ///< next op index
  std::int64_t heap_used = 0;
  double cpu_seconds = 0;       ///< cumulative compute already banked

  [[nodiscard]] bool fresh() const { return pc == 0; }
  [[nodiscard]] std::string encode() const;
  static Result<Checkpoint> parse(const std::string& text);
};

/// Receives checkpoints as the program runs (the starter forwards them to
/// the shadow's stable storage).
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void store(const Checkpoint& checkpoint) = 0;
};

/// Optional execution extras: resume point and checkpoint stream.
struct RunExtras {
  Checkpoint resume;
  CheckpointSink* sink = nullptr;
  SimTime checkpoint_interval = SimTime::minutes(5);
};

/// Everything there is to know about one JVM execution. `exit_code` is
/// the only field visible to a naive starter; `condition` is ground truth
/// for the harness (and, in wrapped mode, is also serialized into the
/// result file, which is how the *system* legitimately learns it).
struct JvmOutcome {
  int exit_code = 0;
  bool completed_main = false;
  std::optional<int> system_exit;
  std::optional<Error> condition;
  bool wrote_result_file = false;
  SimTime cpu_time{};  ///< simulated compute consumed
};

/// Control handle for a running JVM process.
class JvmControl {
 public:
  virtual ~JvmControl() = default;
  /// Kill the process (SIGKILL semantics): the program stops mid-op, no
  /// result file is written, and `done` fires once with exit code 137 and
  /// `condition` as the terminal condition — so the supervisor still
  /// learns what the process had consumed.
  virtual void terminate(Error condition) = 0;
  [[nodiscard]] virtual bool finished() const = 0;
  /// Compute consumed so far by this attempt (excludes CPU banked in a
  /// resumed checkpoint). Valid while running and after termination; lets
  /// a supervisor account for work destroyed by a kill, since a cancelled
  /// run never reports an outcome.
  [[nodiscard]] virtual SimTime consumed() const = 0;
};

class SimJvm {
 public:
  /// `component` labels this JVM's trace spans; launchers pass a
  /// host-qualified name ("jvm@exec3") so dashboards can attribute
  /// virtual-machine-scope errors to the machine running the VM.
  SimJvm(sim::Engine& engine, JvmConfig config, std::string component = "jvm");

  /// Execute `program` with stream environment `io`. In kWrapped mode the
  /// wrapper writes its result file to `result_path` on `scratch_fs`
  /// before the JVM exits. `done` fires exactly once.
  ///
  /// Precondition: config.installed — a missing JVM fails at exec time in
  /// the *starter*, before a JVM exists to run (see Starter::launch).
  ///
  /// `cancel`, when set and flipped true, kills the process: no further
  /// ops run and `done` never fires (the starter tore the job down).
  std::shared_ptr<JvmControl> run(
      const JobProgram& program, JavaIo& io, WrapMode mode,
      fs::SimFileSystem* scratch_fs, const std::string& result_path,
      std::function<void(JvmOutcome)> done,
      std::shared_ptr<const bool> cancel = nullptr, RunExtras extras = {});

  [[nodiscard]] const JvmConfig& config() const { return config_; }

 private:
  sim::Engine& engine_;
  JvmConfig config_;
  std::string component_;
};

/// Static error-topology declaration for the JVM layer (the analysis/
/// model-checker hook). Declares the execution detection point
/// ("jvm.execute"), the wrapper's result-file contract ("jvm.wrapper",
/// wrapped mode only), the I/O library contracts — the *same*
/// ErrorInterface objects the runtime enforces ("JavaIo.open/read/write"
/// under kConcise; the catch-all "JavaIo.IOException" under kGeneric) —
/// and the program's catch boundary ("program.catch").
void describe_topology(analysis::TopologyModel& model, IoDiscipline io,
                       WrapMode wrap);

}  // namespace esg::jvm
