#include "jvm/program.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace esg::jvm {

std::uint32_t checksum(const std::string& bytes) {
  // FNV-1a, 32 bit.
  std::uint32_t h = 2166136261u;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

ProgramBuilder::ProgramBuilder(std::string main_class) {
  program_.main_class = std::move(main_class);
}

ProgramBuilder& ProgramBuilder::compute(SimTime duration) {
  Op op;
  op.kind = Op::Kind::kCompute;
  op.duration = duration;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::open_read(std::string path, int stream) {
  Op op;
  op.kind = Op::Kind::kOpenRead;
  op.path = std::move(path);
  op.stream = stream;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::open_write(std::string path, int stream) {
  Op op;
  op.kind = Op::Kind::kOpenWrite;
  op.path = std::move(path);
  op.stream = stream;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::read(int stream, std::int64_t bytes) {
  Op op;
  op.kind = Op::Kind::kRead;
  op.stream = stream;
  op.bytes = bytes;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::write(int stream, std::int64_t bytes) {
  Op op;
  op.kind = Op::Kind::kWrite;
  op.stream = stream;
  op.bytes = bytes;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::close_stream(int stream) {
  Op op;
  op.kind = Op::Kind::kCloseStream;
  op.stream = stream;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::alloc(std::int64_t bytes) {
  Op op;
  op.kind = Op::Kind::kAlloc;
  op.bytes = bytes;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::free_all() {
  Op op;
  op.kind = Op::Kind::kFreeAll;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::throw_exception(ErrorKind kind) {
  Op op;
  op.kind = Op::Kind::kThrow;
  op.exception = kind;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::exit(int code) {
  Op op;
  op.kind = Op::Kind::kExit;
  op.exit_code = code;
  program_.ops.push_back(op);
  return *this;
}

ProgramBuilder& ProgramBuilder::corrupt_image() {
  program_.image_corrupt = true;
  return *this;
}

ProgramBuilder& ProgramBuilder::missing_main_class() {
  program_.main_class_missing = true;
  return *this;
}

JobProgram ProgramBuilder::build() const {
  JobProgram out = program_;
  out.image = serialize_program(out);
  out.image_checksum = checksum(out.image);
  return out;
}

std::string serialize_program(const JobProgram& program) {
  std::ostringstream os;
  os << "main " << program.main_class << "\n";
  os << "corrupt " << (program.image_corrupt ? 1 : 0) << "\n";
  os << "missing-main " << (program.main_class_missing ? 1 : 0) << "\n";
  for (const Op& op : program.ops) {
    switch (op.kind) {
      case Op::Kind::kCompute:
        os << "op compute " << op.duration.as_usec() << "\n";
        break;
      case Op::Kind::kOpenRead:
        os << "op open-read " << op.stream << " " << op.path << "\n";
        break;
      case Op::Kind::kOpenWrite:
        os << "op open-write " << op.stream << " " << op.path << "\n";
        break;
      case Op::Kind::kRead:
        os << "op read " << op.stream << " " << op.bytes << "\n";
        break;
      case Op::Kind::kWrite:
        os << "op write " << op.stream << " " << op.bytes << "\n";
        break;
      case Op::Kind::kCloseStream:
        os << "op close " << op.stream << "\n";
        break;
      case Op::Kind::kAlloc:
        os << "op alloc " << op.bytes << "\n";
        break;
      case Op::Kind::kFreeAll:
        os << "op free-all\n";
        break;
      case Op::Kind::kThrow:
        os << "op throw " << kind_name(op.exception) << "\n";
        break;
      case Op::Kind::kExit:
        os << "op exit " << op.exit_code << "\n";
        break;
    }
  }
  return os.str();
}

Result<JobProgram> deserialize_program(const std::string& text) {
  JobProgram program;
  auto malformed = [](const std::string& line) {
    return Error(ErrorKind::kCorruptImage, "bad program line: " + line);
  };
  for (const std::string& raw : split(text, '\n')) {
    const std::string line{trim(raw)};
    if (line.empty()) continue;
    const std::vector<std::string> f = split(line, ' ');
    if (f[0] == "main" && f.size() == 2) {
      program.main_class = f[1];
    } else if (f[0] == "corrupt" && f.size() == 2) {
      program.image_corrupt = f[1] == "1";
    } else if (f[0] == "missing-main" && f.size() == 2) {
      program.main_class_missing = f[1] == "1";
    } else if (f[0] == "op" && f.size() >= 2) {
      Op op;
      const std::string& k = f[1];
      if (k == "compute" && f.size() == 3) {
        op.kind = Op::Kind::kCompute;
        op.duration = SimTime::usec(std::strtoll(f[2].c_str(), nullptr, 10));
      } else if ((k == "open-read" || k == "open-write") && f.size() == 4) {
        op.kind = k == "open-read" ? Op::Kind::kOpenRead : Op::Kind::kOpenWrite;
        op.stream = static_cast<int>(std::strtol(f[2].c_str(), nullptr, 10));
        op.path = f[3];
      } else if ((k == "read" || k == "write") && f.size() == 4) {
        op.kind = k == "read" ? Op::Kind::kRead : Op::Kind::kWrite;
        op.stream = static_cast<int>(std::strtol(f[2].c_str(), nullptr, 10));
        op.bytes = std::strtoll(f[3].c_str(), nullptr, 10);
      } else if (k == "close" && f.size() == 3) {
        op.kind = Op::Kind::kCloseStream;
        op.stream = static_cast<int>(std::strtol(f[2].c_str(), nullptr, 10));
      } else if (k == "alloc" && f.size() == 3) {
        op.kind = Op::Kind::kAlloc;
        op.bytes = std::strtoll(f[2].c_str(), nullptr, 10);
      } else if (k == "free-all") {
        op.kind = Op::Kind::kFreeAll;
      } else if (k == "throw" && f.size() == 3) {
        op.kind = Op::Kind::kThrow;
        const std::optional<ErrorKind> kind = parse_kind(f[2]);
        if (!kind.has_value()) return malformed(line);
        op.exception = *kind;
      } else if (k == "exit" && f.size() == 3) {
        op.kind = Op::Kind::kExit;
        op.exit_code = static_cast<int>(std::strtol(f[2].c_str(), nullptr, 10));
      } else {
        return malformed(line);
      }
      program.ops.push_back(std::move(op));
    } else {
      return malformed(line);
    }
  }
  program.image = text;
  program.image_checksum = checksum(text);
  return program;
}

}  // namespace esg::jvm
