// JobProgram: the scripted model of a user's Java program.
//
// A program is a linear sequence of operations — compute, stream I/O,
// allocation, throw, exit — plus an image whose checksum is verified at
// load time (a corrupt image is the paper's canonical job-scope error).
// The builder interface keeps scenario definitions readable:
//
//   JobProgram p = ProgramBuilder("Sim")
//       .compute(SimTime::sec(5))
//       .open_read("/data/input")
//       .read(0, 4096)
//       .throw_exception(ErrorKind::kArrayIndexOutOfBounds)
//       .build();
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/simtime.hpp"
#include "core/kinds.hpp"
#include "core/result.hpp"

namespace esg::jvm {

struct Op {
  enum class Kind {
    kCompute,     ///< burn CPU for `duration`
    kOpenRead,    ///< open `path` for reading into stream slot `stream`
    kOpenWrite,   ///< open `path` for writing into stream slot `stream`
    kRead,        ///< read `bytes` from stream slot
    kWrite,       ///< write `bytes` to stream slot
    kCloseStream, ///< close stream slot
    kAlloc,       ///< allocate `bytes` of heap (persists until kFreeAll)
    kFreeAll,     ///< drop all allocations
    kThrow,       ///< throw an exception of kind `exception`
    kExit,        ///< System.exit(exit_code)
  };

  Kind kind = Kind::kCompute;
  SimTime duration{};
  std::string path;
  int stream = 0;
  std::int64_t bytes = 0;
  ErrorKind exception = ErrorKind::kUncaughtException;
  int exit_code = 0;
};

struct JobProgram {
  std::string main_class = "Main";
  std::string image;             ///< the program "bytes"
  std::uint32_t image_checksum = 0;
  bool image_corrupt = false;    ///< flips the stored checksum
  bool main_class_missing = false;  ///< entry class absent from the image
  std::vector<Op> ops;

  /// Checksum actually stored with the image (wrong when corrupt).
  [[nodiscard]] std::uint32_t stored_checksum() const {
    return image_corrupt ? image_checksum ^ 0xdeadbeef : image_checksum;
  }
  [[nodiscard]] bool verifies() const {
    return stored_checksum() == image_checksum;
  }
};

std::uint32_t checksum(const std::string& bytes);

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string main_class);

  ProgramBuilder& compute(SimTime duration);
  ProgramBuilder& open_read(std::string path, int stream = 0);
  ProgramBuilder& open_write(std::string path, int stream = 0);
  ProgramBuilder& read(int stream, std::int64_t bytes);
  ProgramBuilder& write(int stream, std::int64_t bytes);
  ProgramBuilder& close_stream(int stream);
  ProgramBuilder& alloc(std::int64_t bytes);
  ProgramBuilder& free_all();
  ProgramBuilder& throw_exception(ErrorKind kind);
  ProgramBuilder& exit(int code);
  ProgramBuilder& corrupt_image();
  ProgramBuilder& missing_main_class();

  /// Finalize: serializes the ops into the image and checksums it.
  [[nodiscard]] JobProgram build() const;

 private:
  JobProgram program_;
};

/// Serialize a program as the "image" text and back — jobs travel the wire
/// as their serialized form, so a transfer really moves the program.
std::string serialize_program(const JobProgram& program);
Result<JobProgram> deserialize_program(const std::string& text);

}  // namespace esg::jvm
