#include "jvm/resultfile.hpp"

#include "classad/classad.hpp"

namespace esg::jvm {

std::string_view exit_by_name(ResultFile::ExitBy e) {
  switch (e) {
    case ResultFile::ExitBy::kCompletion: return "completion";
    case ResultFile::ExitBy::kSystemExit: return "system-exit";
    case ResultFile::ExitBy::kException: return "exception";
  }
  return "?";
}

std::string ResultFile::encode() const {
  classad::ClassAd ad;
  ad.set("ExitBy", std::string(exit_by_name(exit_by)));
  ad.set("ExitCode", exit_code);
  if (error.has_value()) {
    ad.set("ErrorKind", std::string(kind_name(error->kind())));
    ad.set("ErrorScope", std::string(scope_name(error->scope())));
    ad.set("Message", error->message());
    // Ground-truth labels ride along so the harness can classify results
    // end to end; daemons never read them.
    for (const auto& [k, v] : error->labels()) {
      ad.set("Label_" + k, v);
    }
  }
  return ad.str();
}

Result<ResultFile> ResultFile::parse(const std::string& text) {
  Result<classad::ClassAd> ad = classad::parse_classad(text);
  if (!ad.ok()) {
    return Error(ErrorKind::kRequestMalformed,
                 "unparsable result file: " + ad.error().message());
  }
  ResultFile out;
  const std::string exit_by = ad.value().eval_string("ExitBy");
  if (exit_by == "completion") {
    out.exit_by = ExitBy::kCompletion;
  } else if (exit_by == "system-exit") {
    out.exit_by = ExitBy::kSystemExit;
  } else if (exit_by == "exception") {
    out.exit_by = ExitBy::kException;
  } else {
    return Error(ErrorKind::kRequestMalformed,
                 "result file has bad ExitBy: '" + exit_by + "'");
  }
  out.exit_code = static_cast<int>(ad.value().eval_int("ExitCode"));
  if (out.exit_by == ExitBy::kException) {
    const std::optional<ErrorKind> kind =
        parse_kind(ad.value().eval_string("ErrorKind"));
    const std::optional<ErrorScope> scope =
        parse_scope(ad.value().eval_string("ErrorScope"));
    if (!kind.has_value() || !scope.has_value()) {
      return Error(ErrorKind::kRequestMalformed,
                   "result file has bad error kind/scope");
    }
    Error e(*kind, *scope, ad.value().eval_string("Message"));
    for (const std::string& name : ad.value().names()) {
      constexpr std::string_view kPrefix = "Label_";
      if (name.size() > kPrefix.size() &&
          name.substr(0, kPrefix.size()) == kPrefix) {
        e = std::move(e).with_label(name.substr(kPrefix.size()),
                                    ad.value().eval_string(name));
      }
    }
    out.error = std::move(e);
  }
  return out;
}

}  // namespace esg::jvm
