// The wrapper's result file (§4).
//
// "The wrapper locates the program, attempts to execute it, and catches
// any exceptions it may throw. It examines the exception type, and then
// produces a result file describing the program result and the scope of
// any errors discovered. The starter examines this result file and ignores
// the JVM result entirely."
//
// The file is encoded as a ClassAd — the same language the rest of the
// kernel speaks — and crosses a trust boundary (the job wrote it), so
// parsing is fully defensive.
#pragma once

#include <optional>
#include <string>

#include "core/error.hpp"
#include "core/result.hpp"

namespace esg::jvm {

struct ResultFile {
  enum class ExitBy { kCompletion, kSystemExit, kException };

  ExitBy exit_by = ExitBy::kCompletion;
  int exit_code = 0;                 ///< for completion / System.exit
  std::optional<Error> error;        ///< for exceptions, with true scope

  [[nodiscard]] std::string encode() const;
  static Result<ResultFile> parse(const std::string& text);
};

std::string_view exit_by_name(ResultFile::ExitBy e);

}  // namespace esg::jvm
