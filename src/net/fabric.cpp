#include "net/fabric.hpp"

#include <algorithm>

namespace esg::net {

namespace detail {

struct ConnState {
  ConnId id;
  std::string host[2];
  bool open = false;
  bool broken = false;  // aborted (escaping error), vs gracefully closed
  SimTime deliver_floor[2]{};  // per-direction FIFO: no message overtakes
  std::function<void(const std::string&)> on_message[2];
  std::function<void(const std::optional<Error>&)> on_close[2];
  sim::Engine* engine = nullptr;
  NetworkFabric* fabric = nullptr;
};

}  // namespace detail

using detail::ConnState;

// ---- Endpoint ----

Endpoint::Endpoint(std::shared_ptr<ConnState> state, int side)
    : state_(std::move(state)), side_(side) {}

bool Endpoint::is_open() const { return state_ && state_->open; }

const std::string& Endpoint::local_host() const {
  static const std::string kNone;
  return state_ ? state_->host[side_] : kNone;
}

const std::string& Endpoint::remote_host() const {
  static const std::string kNone;
  return state_ ? state_->host[1 - side_] : kNone;
}

ConnId Endpoint::id() const { return state_ ? state_->id : ConnId{}; }

Result<void> Endpoint::send(std::string message) {
  if (!is_open()) {
    return Error(ErrorKind::kConnectionLost, "send on closed connection");
  }
  state_->fabric->deliver(state_, 1 - side_, std::move(message));
  return Ok();
}

void Endpoint::set_on_message(std::function<void(const std::string&)> fn) {
  if (state_) state_->on_message[side_] = std::move(fn);
}

void Endpoint::set_on_close(
    std::function<void(const std::optional<Error>&)> fn) {
  if (state_) state_->on_close[side_] = std::move(fn);
}

void Endpoint::close() {
  if (!is_open()) return;
  state_->open = false;
  // The peer learns of a graceful close asynchronously, after any data
  // already in flight (TCP FIN semantics). The closer's own handler does
  // not fire (it already knows). The close notice travels at the maximum
  // link latency so earlier sends, which travel at most that fast and were
  // enqueued earlier, arrive first.
  auto state = state_;
  const int peer = 1 - side_;
  const net::HostFaults& fa = state->fabric->faults_for(state->host[0]);
  const net::HostFaults& fb = state->fabric->faults_for(state->host[1]);
  const net::HostFaults& worse = fa.latency >= fb.latency ? fa : fb;
  const SimTime fin_latency = worse.latency + worse.latency_jitter;
  NetworkFabric* fabric = state->fabric;
  fabric->enqueue(state->host[peer], state->engine->now() + fin_latency,
                  sim::Task(state->engine->arena(), [state, peer] {
                    if (state->broken) return;  // an abort superseded it
                    if (state->on_close[peer]) {
                      state->on_close[peer](std::nullopt);
                    }
                  }));
}

void Endpoint::abort(Error error) {
  if (!is_open()) return;
  NetworkFabric::break_conn(state_, std::move(error));
}

// ---- NetworkFabric ----

NetworkFabric::NetworkFabric(sim::Engine& engine)
    : engine_(engine), rng_(engine.rng().fork(rng_streams::kNetworkFabric)) {}

NetworkFabric::~NetworkFabric() {
  // The armed flush timers capture `this`; disarm them so an engine that
  // outlives the fabric cannot fire into a dead object.
  for (auto& [host, queue] : host_queues_) queue.armed.cancel();
}

void NetworkFabric::enqueue(const std::string& host, SimTime when,
                            sim::Task fn) {
  HostQueue& q = host_queues_[host];
  q.heap.push_back(HostQueue::Entry{when, delivery_seq_++, std::move(fn)});
  std::push_heap(q.heap.begin(), q.heap.end(), HostQueue::After{});
  arm(host, q);
}

void NetworkFabric::arm(const std::string& host, HostQueue& q) {
  const SimTime due = q.heap.front().when;
  if (q.armed.valid() && q.armed_at <= due) return;
  q.armed.cancel();
  q.armed_at = due;
  q.armed = engine_.schedule_at(due, [this, host] { flush(host); });
}

void NetworkFabric::flush(const std::string& host) {
  // Entries run handlers, and handlers may enqueue to *other* hosts —
  // which can grow host_queues_ and move this host's queue. Re-find after
  // every callback instead of holding a reference across it.
  if (auto it = host_queues_.find(host); it != host_queues_.end()) {
    it->second.armed_at = SimTime::max();
  }
  while (true) {
    auto it = host_queues_.find(host);
    if (it == host_queues_.end()) return;
    HostQueue& q = it->second;
    if (q.heap.empty() || q.heap.front().when > engine_.now()) break;
    std::pop_heap(q.heap.begin(), q.heap.end(), HostQueue::After{});
    sim::Task fn = std::move(q.heap.back().fn);
    q.heap.pop_back();
    fn();
  }
  auto it = host_queues_.find(host);
  if (it != host_queues_.end() && !it->second.heap.empty()) {
    arm(host, it->second);
  }
}

std::size_t NetworkFabric::queued_deliveries() const {
  std::size_t n = 0;
  for (const auto& [host, queue] : host_queues_) n += queue.heap.size();
  return n;
}

Result<void> NetworkFabric::listen(const Address& addr,
                                   std::function<void(Endpoint)> on_accept) {
  if (listeners_.count(addr) != 0) {
    return Error(ErrorKind::kRequestMalformed,
                 "address already bound: " + addr.str());
  }
  listeners_[addr] = std::move(on_accept);
  return Ok();
}

void NetworkFabric::unlisten(const Address& addr) { listeners_.erase(addr); }

void NetworkFabric::set_host_faults(const std::string& host,
                                    const HostFaults& faults) {
  host_faults_[host] = faults;
}

const HostFaults& NetworkFabric::faults_for(const std::string& host) const {
  auto it = host_faults_.find(host);
  return it == host_faults_.end() ? default_faults_ : it->second;
}

void NetworkFabric::set_partitioned(const std::string& host,
                                    bool partitioned) {
  HostFaults f = faults_for(host);
  f.partitioned = partitioned;
  host_faults_[host] = f;
}

void NetworkFabric::set_link_severed(const std::string& host_a,
                                     const std::string& host_b,
                                     bool severed) {
  auto pair = std::minmax(host_a, host_b);
  if (severed) {
    severed_links_.emplace(pair.first, pair.second);
  } else {
    severed_links_.erase({pair.first, pair.second});
  }
}

bool NetworkFabric::link_severed(const std::string& host_a,
                                 const std::string& host_b) const {
  auto pair = std::minmax(host_a, host_b);
  return severed_links_.count({pair.first, pair.second}) != 0;
}

SimTime NetworkFabric::draw_latency(const std::string& a,
                                    const std::string& b) {
  const HostFaults& fa = faults_for(a);
  const HostFaults& fb = faults_for(b);
  const HostFaults& worse =
      fa.latency >= fb.latency ? fa : fb;
  const double jitter = rng_.uniform(
      0, static_cast<double>(worse.latency_jitter.as_usec()));
  return worse.latency + SimTime::usec(static_cast<std::int64_t>(jitter));
}

void NetworkFabric::connect(const std::string& from_host, const Address& to,
                            std::function<void(Result<Endpoint>)> on_done) {
  const SimTime latency = draw_latency(from_host, to.host);
  // Capture decisions at delivery time, not now: a partition raised while
  // the SYN is in flight still kills the attempt.
  auto attempt = [this, from_host, to,
                  on_done = std::move(on_done)]() mutable {
    const HostFaults& src = faults_for(from_host);
    const HostFaults& dst = faults_for(to.host);
    if (src.partitioned || dst.partitioned) {
      on_done(Error(ErrorKind::kHostUnreachable,
                    "no route to " + to.str() + " from " + from_host));
      return;
    }
    if (link_severed(from_host, to.host)) {
      on_done(Error(ErrorKind::kHostUnreachable,
                    "link severed between " + from_host + " and " + to.host));
      return;
    }
    auto listener = listeners_.find(to);
    if (listener == listeners_.end()) {
      on_done(Error(ErrorKind::kConnectionRefused,
                    "nothing listening at " + to.str()));
      return;
    }
    if (rng_.chance(dst.refuse_prob)) {
      on_done(Error(ErrorKind::kConnectionRefused,
                    "connection refused by " + to.str() + " (injected)")
                  .with_label("injected", "refuse"));
      return;
    }
    auto state = std::make_shared<ConnState>();
    state->id = engine_.context().ids().conn.next();
    state->host[0] = from_host;
    state->host[1] = to.host;
    state->open = true;
    state->engine = &engine_;
    state->fabric = this;
    conns_.push_back(state);
    if (conns_.size() % 256 == 0) prune();
    // Hand the server its end first (it installs handlers), then the
    // client; both in this event.
    listener->second(Endpoint(state, 1));
    on_done(Endpoint(state, 0));
  };
  enqueue(to.host, engine_.now() + latency,
          sim::Task(engine_.arena(), std::move(attempt)));
}

void NetworkFabric::deliver(std::shared_ptr<ConnState> state, int to_side,
                            std::string message) {
  ++messages_;
  bytes_ += message.size();
  const SimTime latency = draw_latency(state->host[0], state->host[1]);
  // Transmission time: the slower endpoint's bandwidth governs.
  const HostFaults& fa = faults_for(state->host[0]);
  const HostFaults& fb = faults_for(state->host[1]);
  std::uint64_t bw = fa.bandwidth_bytes_per_sec;
  if (fb.bandwidth_bytes_per_sec != 0 &&
      (bw == 0 || fb.bandwidth_bytes_per_sec < bw)) {
    bw = fb.bandwidth_bytes_per_sec;
  }
  const SimTime transmission =
      bw == 0 ? SimTime::zero()
              : SimTime::usec(static_cast<std::int64_t>(
                    (message.size() * 1000000ULL) / bw));
  // TCP semantics: messages on one connection never overtake each other,
  // whatever the per-message latency draw says, and each occupies the
  // pipe for its transmission time.
  SimTime when = engine_.now() + latency;
  if (when < state->deliver_floor[to_side]) {
    when = state->deliver_floor[to_side];
  }
  when += transmission;
  state->deliver_floor[to_side] = when;
  const std::string& dest = state->host[to_side];
  auto handoff = [this, state = std::move(state), to_side,
                  message = std::move(message)] {
    if (state->broken) return;  // data on a broken connection is gone
    const HostFaults& src = faults_for(state->host[1 - to_side]);
    const HostFaults& dst = faults_for(state->host[to_side]);
    if (src.partitioned || dst.partitioned) {
      break_conn(state, Error(ErrorKind::kConnectionTimedOut,
                              "partition between " + state->host[0] + " and " +
                                  state->host[1]));
      return;
    }
    if (link_severed(state->host[0], state->host[1])) {
      break_conn(state, Error(ErrorKind::kConnectionTimedOut,
                              "link severed between " + state->host[0] +
                                  " and " + state->host[1]));
      return;
    }
    if (rng_.chance(std::max(src.drop_msg_prob, dst.drop_msg_prob))) {
      break_conn(state, Error(ErrorKind::kConnectionLost,
                              "message lost on " + state->host[0] + "<->" +
                                  state->host[1] + " (injected)")
                            .with_label("injected", "drop"));
      return;
    }
    if (state->on_message[to_side]) state->on_message[to_side](message);
  };
  enqueue(dest, when, sim::Task(engine_.arena(), std::move(handoff)));
}

void NetworkFabric::break_conn(const std::shared_ptr<ConnState>& state,
                               Error error) {
  if (state->broken) return;
  state->open = false;
  state->broken = true;
  // Both sides observe the escaping error. Delivery is immediate (within
  // this event) — the connection object is the shared fate domain.
  for (int side = 0; side < 2; ++side) {
    if (state->on_close[side]) {
      state->on_close[side](error);
    }
  }
}

void NetworkFabric::crash_host(const std::string& host) {
  // Collect first: handlers may open/close connections reentrantly.
  std::vector<std::shared_ptr<ConnState>> victims;
  for (const auto& weak : conns_) {
    if (auto state = weak.lock()) {
      if (state->open && (state->host[0] == host || state->host[1] == host)) {
        victims.push_back(std::move(state));
      }
    }
  }
  for (auto& state : victims) {
    break_conn(state, Error(ErrorKind::kConnectionLost,
                            "peer crashed: " + host)
                          .with_label("injected", "crash"));
  }
  for (auto it = listeners_.begin(); it != listeners_.end();) {
    if (it->first.host == host) {
      it = listeners_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t NetworkFabric::open_connections() const {
  std::size_t n = 0;
  for (const auto& weak : conns_) {
    if (auto state = weak.lock(); state && state->open) ++n;
  }
  return n;
}

void NetworkFabric::prune() {
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::weak_ptr<ConnState>& w) {
                                auto s = w.lock();
                                return !s || !s->open;
                              }),
               conns_.end());
}

}  // namespace esg::net
