// Simulated network fabric.
//
// Hosts open duplex message connections through one NetworkFabric, which
// injects latency and faults. The paper's rule for communicating an
// escaping error over a network interface — "an escaping error is
// communicated by breaking the connection" (§3.2) — is reified here:
// Endpoint::abort(error) tears the connection down and delivers the error
// to the peer's on_close handler; a graceful close delivers no error.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/flatmap.hpp"
#include "common/ids.hpp"
#include "core/error.hpp"
#include "core/result.hpp"
#include "sim/engine.hpp"

namespace esg::net {

struct Address {
  std::string host;
  int port = 0;

  [[nodiscard]] std::string str() const {
    return host + ":" + std::to_string(port);
  }
  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

namespace detail {
struct ConnState;
}

/// One end of a duplex connection. Value-semantic handle; copies share the
/// underlying connection.
class Endpoint {
 public:
  Endpoint() = default;

  [[nodiscard]] bool is_open() const;
  [[nodiscard]] const std::string& local_host() const;
  [[nodiscard]] const std::string& remote_host() const;
  [[nodiscard]] ConnId id() const;

  /// Deliver a message to the peer after the link latency. Fails
  /// explicitly if the connection is already closed. A message-drop fault
  /// breaks the whole connection (lost messages are indistinguishable from
  /// a lost peer at this abstraction level).
  Result<void> send(std::string message);

  void set_on_message(std::function<void(const std::string&)> fn);
  /// `error` is nullopt for a graceful close, the escaping error otherwise.
  void set_on_close(std::function<void(const std::optional<Error>&)> fn);

  /// Graceful shutdown: peer sees on_close(nullopt).
  void close();

  /// Break the connection to communicate an escaping error (§3.2): both
  /// sides see on_close(error).
  void abort(Error error);

 private:
  friend class NetworkFabric;
  Endpoint(std::shared_ptr<detail::ConnState> state, int side);
  std::shared_ptr<detail::ConnState> state_;
  int side_ = 0;
};

/// Per-host fault model, applied to traffic to/from the host.
struct HostFaults {
  double refuse_prob = 0;     ///< connect() refused outright
  double drop_msg_prob = 0;   ///< any message loss breaks the connection
  bool partitioned = false;   ///< connect() fails; in-flight conns break lazily
  SimTime latency = SimTime::usec(200);
  SimTime latency_jitter = SimTime::usec(50);
  /// Link bandwidth in bytes per simulated second (0 = unlimited). A
  /// message occupies the connection for size/bandwidth; later messages
  /// queue behind it (per-direction FIFO), so bulk transfers take time.
  std::uint64_t bandwidth_bytes_per_sec = 0;
};

class NetworkFabric {
 public:
  explicit NetworkFabric(sim::Engine& engine);
  ~NetworkFabric();

  NetworkFabric(const NetworkFabric&) = delete;
  NetworkFabric& operator=(const NetworkFabric&) = delete;

  /// Accept connections at `addr`. The handler receives the server-side
  /// endpoint. At most one listener per address.
  Result<void> listen(const Address& addr,
                      std::function<void(Endpoint)> on_accept);
  void unlisten(const Address& addr);

  /// Open a connection from `from_host` to `to`. The callback fires after
  /// connection latency with the client endpoint, or with an explicit
  /// error (refused / unreachable / partitioned).
  void connect(const std::string& from_host, const Address& to,
               std::function<void(Result<Endpoint>)> on_done);

  void set_default_faults(const HostFaults& faults) { default_faults_ = faults; }
  void set_host_faults(const std::string& host, const HostFaults& faults);
  [[nodiscard]] const HostFaults& faults_for(const std::string& host) const;

  /// Partition or heal a host. Existing connections break on next use.
  void set_partitioned(const std::string& host, bool partitioned);

  /// Sever or restore the link between exactly two hosts — an inter-pool
  /// trunk cut. Both hosts stay reachable from everywhere else; only
  /// traffic between this pair fails. connect() attempts across a severed
  /// pair are refused as unreachable; messages in flight break the
  /// connection (the §3.2 escaping-error rule for a dead link).
  void set_link_severed(const std::string& host_a, const std::string& host_b,
                        bool severed);
  [[nodiscard]] bool link_severed(const std::string& host_a,
                                  const std::string& host_b) const;

  /// Simulate a host crash: every open connection touching the host breaks
  /// with a ConnectionLost escaping error, and its listeners are removed.
  void crash_host(const std::string& host);

  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_; }
  [[nodiscard]] std::size_t open_connections() const;

  /// In-flight deliveries (messages, SYNs, FINs) not yet handed to their
  /// destination host — across all per-host batch queues.
  [[nodiscard]] std::size_t queued_deliveries() const;

 private:
  friend class Endpoint;

  /// Everything bound for one destination host. Deliveries are batched
  /// here — a (when, seq) min-heap — instead of each being its own engine
  /// event, so the engine queue holds one armed timer per busy host rather
  /// than one entry per in-flight message. seq is fabric-global and
  /// assigned in enqueue order, so same-host deliveries fire in exactly
  /// the order the engine would have run them; only the interleaving of
  /// same-instant deliveries to *different* hosts can differ from the
  /// unbatched fabric.
  struct HostQueue {
    struct Entry {
      SimTime when;
      std::uint64_t seq;
      sim::Task fn;
    };
    struct After {
      bool operator()(const Entry& a, const Entry& b) const {
        if (a.when != b.when) return a.when > b.when;
        return a.seq > b.seq;
      }
    };
    std::vector<Entry> heap;
    sim::TimerHandle armed;
    SimTime armed_at = SimTime::max();
  };

  SimTime draw_latency(const std::string& a, const std::string& b);
  void deliver(std::shared_ptr<detail::ConnState> state, int to_side,
               std::string message);
  static void break_conn(const std::shared_ptr<detail::ConnState>& state,
                         Error error);
  void prune();

  /// Queue `fn` to run at `when` (>= now) at `host`, re-arming the host's
  /// timer if this entry is now the earliest.
  void enqueue(const std::string& host, SimTime when, sim::Task fn);
  void arm(const std::string& host, HostQueue& q);
  /// Run every due entry for `host` in (when, seq) order, then re-arm.
  void flush(const std::string& host);

  sim::Engine& engine_;
  Rng rng_;
  FlatMap<Address, std::function<void(Endpoint)>> listeners_;
  std::vector<std::weak_ptr<detail::ConnState>> conns_;
  FlatMap<std::string, HostFaults> host_faults_;
  FlatMap<std::string, HostQueue> host_queues_;
  std::uint64_t delivery_seq_ = 0;
  std::set<std::pair<std::string, std::string>> severed_links_;
  HostFaults default_faults_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace esg::net
