#include "obs/aggregate.hpp"

#include <algorithm>

namespace esg::obs {

std::string_view disposition_name(FlowDisposition disposition) {
  switch (disposition) {
    case FlowDisposition::kRaised: return "raised";
    case FlowDisposition::kPropagated: return "propagated";
    case FlowDisposition::kConsumed: return "consumed";
    case FlowDisposition::kMasked: return "masked";
    case FlowDisposition::kEscaped: return "escaped";
  }
  return "?";
}

FlowDisposition flow_disposition(TraceEventType type) {
  // Not a switch over ErrorKind/ErrorScope, so the lint exhaustive-switch
  // rule does not apply; still kept exhaustive by hand.
  switch (type) {
    case TraceEventType::kRaised: return FlowDisposition::kRaised;
    case TraceEventType::kConverted:
    case TraceEventType::kEscalated:
    case TraceEventType::kRouted: return FlowDisposition::kPropagated;
    case TraceEventType::kConsumed:
    case TraceEventType::kDelivered: return FlowDisposition::kConsumed;
    case TraceEventType::kMasked: return FlowDisposition::kMasked;
    case TraceEventType::kDropped:
    case TraceEventType::kImplicit: return FlowDisposition::kEscaped;
  }
  return FlowDisposition::kEscaped;
}

std::string machine_of(std::string_view component) {
  if (component.empty()) return "-";
  std::size_t at = component.rfind('@');
  std::string_view rest =
      at == std::string_view::npos ? component : component.substr(at + 1);
  std::size_t slash = rest.find('/');
  if (slash != std::string_view::npos) rest = rest.substr(0, slash);
  if (rest.empty()) return "-";
  return std::string(rest);
}

void FlowSeries::merge(const FlowSeries& other) {
  total += other.total;
  for (const auto& [slice, count] : other.slices) slices[slice] += count;
}

void FlowAggregate::add(const TraceEvent& event) {
  FlowKey key;
  key.scope = event.scope;
  key.machine = machine_of(event.component);
  key.kind = event.kind;
  key.disposition = flow_disposition(event.type);

  FlowSeries& series = cells[key];
  ++series.total;
  const std::int64_t width = slice_usec > 0 ? slice_usec : 1;
  ++series.slices[event.when.as_usec() / width];

  if (events_seen == 0 || event.when < first_event) first_event = event.when;
  if (events_seen == 0 || event.when > last_event) last_event = event.when;
  ++events_seen;
}

void FlowAggregate::merge(const FlowAggregate& other) {
  if (other.empty()) return;
  if (empty() && cells.empty()) slice_usec = other.slice_usec;
  // Differently-sliced aggregates cannot be aligned; keep ours and fold the
  // other's counters in at its own slice indices (totals stay exact, the
  // timeline of the minority slicing degrades gracefully).
  for (const auto& [key, series] : other.cells) cells[key].merge(series);
  for (const auto& [scope, count] : other.dropped_spans) {
    dropped_spans[scope] += count;
  }
  if (other.events_seen != 0) {
    if (events_seen == 0 || other.first_event < first_event) {
      first_event = other.first_event;
    }
    if (events_seen == 0 || other.last_event > last_event) {
      last_event = other.last_event;
    }
  }
  events_seen += other.events_seen;
}

std::uint64_t FlowAggregate::dropped_total() const {
  std::uint64_t total = 0;
  for (const auto& [scope, count] : dropped_spans) total += count;
  return total;
}

std::uint64_t FlowAggregate::count(FlowDisposition disposition) const {
  std::uint64_t total = 0;
  for (const auto& [key, series] : cells) {
    if (key.disposition == disposition) total += series.total;
  }
  return total;
}

std::uint64_t FlowAggregate::count(ErrorScope scope,
                                   FlowDisposition disposition) const {
  std::uint64_t total = 0;
  for (const auto& [key, series] : cells) {
    if (key.scope == scope && key.disposition == disposition) {
      total += series.total;
    }
  }
  return total;
}

std::uint64_t FlowAggregate::machine_count(std::string_view machine,
                                           FlowDisposition disposition) const {
  std::uint64_t total = 0;
  for (const auto& [key, series] : cells) {
    if (key.machine == machine && key.disposition == disposition) {
      total += series.total;
    }
  }
  return total;
}

std::vector<std::string> FlowAggregate::machines() const {
  std::vector<std::string> out;
  for (const auto& [key, series] : cells) {
    if (std::find(out.begin(), out.end(), key.machine) == out.end()) {
      out.push_back(key.machine);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ErrorScope> FlowAggregate::scopes() const {
  std::vector<ErrorScope> out;
  for (ErrorScope scope : kAllScopes) {
    bool present = dropped_spans.count(scope) != 0;
    for (const auto& [key, series] : cells) {
      if (present) break;
      present = key.scope == scope;
    }
    if (present) out.push_back(scope);
  }
  return out;
}

void ScopeAggregator::attach(FlightRecorder& recorder) {
  detach();
  recorder_ = &recorder;
  recorder_->set_tap([this](const TraceEvent& event) { agg_.add(event); });
}

void ScopeAggregator::detach() {
  if (recorder_ != nullptr) {
    recorder_->clear_tap();
    recorder_ = nullptr;
  }
}

FlowAggregate ScopeAggregator::snapshot() const {
  FlowAggregate out = agg_;
  if (recorder_ != nullptr) {
    for (const auto& [scope, count] : recorder_->dropped_by_scope()) {
      out.dropped_spans[scope] += count;
    }
  }
  return out;
}

}  // namespace esg::obs
