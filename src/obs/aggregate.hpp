// Streaming aggregation of the flight recorder's span journal into
// per-scope / per-machine error-flow counters — the data model behind the
// dashboards (obs/dashboard.hpp) and tools/esg-top.
//
// The recorder's journal answers "what exactly happened to this error";
// the aggregate answers the operator's question: *per scope, per machine,
// how many errors were raised, propagated, consumed, masked, or escaped,
// and when?* Counters are keyed by (scope, machine, kind, disposition) and
// time-sliced over simulated time, so a dashboard can show flow rates, not
// just totals. Everything is plain ordered data (std::map), so two
// aggregates built from the same journal — or merged from the same sweep
// cells in the same order — render byte-identical dumps regardless of
// thread count (the PR-3 determinism discipline).
//
// Feeding an aggregator:
//   - live: ScopeAggregator::attach() installs a FlightRecorder tap
//     (through the pool's sim::SimContext recorder), so the aggregate sees
//     the complete stream even after the ring wraps;
//   - post-hoc: observe_all() over a saved journal's events.
//
// Ring-wrap losses are first-class: dropped_spans carries the recorder's
// per-scope count of overwritten spans, so a dashboard can flag that its
// *retained-event* view is truncated even though the live counters are not.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/simtime.hpp"
#include "core/kinds.hpp"
#include "core/scope.hpp"
#include "obs/trace.hpp"

namespace esg::obs {

/// The dashboard's disposition taxonomy: what stage of its lifecycle an
/// error-flow event represents. Coarser than TraceEventType — tuned for
/// the operator's question ("is this scope consuming or leaking?") rather
/// than the checker's ("which principle broke?").
enum class FlowDisposition {
  kRaised,      ///< first discovered (TraceEventType::kRaised)
  kPropagated,  ///< in flight: converted, escalated, or routed
  kConsumed,    ///< accepted by a scope manager, or delivered to the user
  kMasked,      ///< hidden by fault tolerance (retry, replica, reschedule)
  kEscaped,     ///< left the explicit structure: dropped, or went implicit
};

inline constexpr std::size_t kNumFlowDispositions = 5;

inline constexpr FlowDisposition kAllFlowDispositions[] = {
    FlowDisposition::kRaised,   FlowDisposition::kPropagated,
    FlowDisposition::kConsumed, FlowDisposition::kMasked,
    FlowDisposition::kEscaped,
};

/// Short stable name ("raised", "propagated", ...).
std::string_view disposition_name(FlowDisposition disposition);

/// The disposition an event type aggregates under.
FlowDisposition flow_disposition(TraceEventType type);

/// Machine attribution for a span's component name. Components are either
/// host-named daemons ("submit0", "bad0", "central"), host-qualified
/// handles ("starter@bad0", "jvm@good1", "shadow@submit0/job3",
/// "fs@exec2"), or free-standing helpers. The rule: text after the last
/// '@' up to the first '/', else the whole component; empty input maps to
/// "-" so job-less helper events still land in a stable row.
std::string machine_of(std::string_view component);

/// One aggregation key. Ordered (std::map key) so every rendering of an
/// aggregate is deterministic.
struct FlowKey {
  ErrorScope scope = ErrorScope::kProcess;
  std::string machine;
  ErrorKind kind = ErrorKind::kUnknown;
  FlowDisposition disposition = FlowDisposition::kRaised;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// Counters for one key: lifetime total plus per-slice counts over
/// simulated time (slice index = when / slice width).
struct FlowSeries {
  std::uint64_t total = 0;
  std::map<std::int64_t, std::uint64_t> slices;

  void merge(const FlowSeries& other);
};

/// The full aggregate: mergeable, queryable, and renderable (see
/// obs/dashboard.hpp). Plain data — copy freely across threads.
struct FlowAggregate {
  /// Time-slice width in simulated microseconds (default: one sim-minute).
  std::int64_t slice_usec = 60'000'000;
  std::map<FlowKey, FlowSeries> cells;
  /// Ring-wrap losses per scope (recorder accounting), nonzero entries only.
  std::map<ErrorScope, std::uint64_t> dropped_spans;
  std::uint64_t events_seen = 0;
  SimTime first_event{};
  SimTime last_event{};

  void add(const TraceEvent& event);

  /// Fold `other` in: totals and slices sum, time range widens. Slice
  /// widths must match (merging differently-sliced aggregates would
  /// silently misalign timelines); mismatches are ignored defensively with
  /// the wider slice winning only when this aggregate is still empty.
  void merge(const FlowAggregate& other);

  [[nodiscard]] bool empty() const {
    return events_seen == 0 && dropped_spans.empty();
  }
  [[nodiscard]] std::uint64_t dropped_total() const;

  // -- queries (all deterministic aggregations over `cells`) --
  [[nodiscard]] std::uint64_t count(FlowDisposition disposition) const;
  [[nodiscard]] std::uint64_t count(ErrorScope scope,
                                    FlowDisposition disposition) const;
  [[nodiscard]] std::uint64_t machine_count(std::string_view machine,
                                            FlowDisposition disposition) const;
  /// Machines present, in key order.
  [[nodiscard]] std::vector<std::string> machines() const;
  /// Scopes present (in cells or dropped_spans), in scope-rank order.
  [[nodiscard]] std::vector<ErrorScope> scopes() const;
};

/// Streaming consumer building a FlowAggregate, attachable to a live
/// FlightRecorder (tap) or fed post-hoc. Single-threaded like everything
/// else inside a simulation context.
class ScopeAggregator {
 public:
  explicit ScopeAggregator(SimTime slice = SimTime::minutes(1)) {
    agg_.slice_usec = slice.as_usec() > 0 ? slice.as_usec() : 1;
  }
  ~ScopeAggregator() { detach(); }

  ScopeAggregator(const ScopeAggregator&) = delete;
  ScopeAggregator& operator=(const ScopeAggregator&) = delete;

  /// Install this aggregator as `recorder`'s tap. The aggregator then sees
  /// every recorded span, ring wraps included. Replaces any previous tap;
  /// detaches automatically on destruction.
  void attach(FlightRecorder& recorder);
  void detach();

  void observe(const TraceEvent& event) { agg_.add(event); }
  void observe_all(const std::vector<TraceEvent>& events) {
    for (const TraceEvent& event : events) agg_.add(event);
  }

  /// The aggregate so far, with the attached recorder's dropped-span
  /// accounting folded in (so dashboards can flag truncated journals).
  [[nodiscard]] FlowAggregate snapshot() const;

  /// Raw live counters, without the dropped-span fold.
  [[nodiscard]] const FlowAggregate& aggregate() const { return agg_; }

 private:
  FlowAggregate agg_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace esg::obs
