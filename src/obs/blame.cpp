#include "obs/blame.hpp"

#include <charconv>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

#include "obs/aggregate.hpp"

namespace esg::obs {
namespace {

constexpr std::string_view kBlameHeader = "# esg-blame v1";

constexpr std::string_view kBold = "\x1b[1m";
constexpr std::string_view kDim = "\x1b[2m";
constexpr std::string_view kRed = "\x1b[31m";
constexpr std::string_view kReset = "\x1b[0m";

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

template <typename Int>
bool parse_int(std::string_view s, Int& out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

std::uint64_t total_dropped(const Journal& journal) {
  std::uint64_t total = 0;
  for (const auto& [scope, count] : journal.dropped) total += count;
  return total;
}

/// A disposition span ends an error's journey: somebody decided what the
/// error *means* (hand it to the user, absorb it, hide it, lose it).
/// These are the spans where a discipline breach is visible; the journey
/// spans before them (raised/converted/escalated/routed/implicit) differ
/// between two legs for benign reasons too — the disciplines schedule
/// differently, so faults land on different jobs at different times.
bool is_disposition(TraceEventType type) {
  return type == TraceEventType::kDelivered ||
         type == TraceEventType::kConsumed ||
         type == TraceEventType::kMasked || type == TraceEventType::kDropped;
}

/// The earliest event on `side` whose alignment key occurs more times on
/// `side` than on `other` — i.e. an occurrence with no counterpart.
/// Journals are chronological, so scanning in order finds the earliest.
/// `only_dispositions` restricts both sides to disposition spans (tier 1
/// of the divergence search).
const TraceEvent* first_unmatched(const std::vector<TraceEvent>& side,
                                  const std::vector<TraceEvent>& other,
                                  bool only_dispositions) {
  std::map<AlignKey, std::size_t> budget;
  for (const TraceEvent& event : other) {
    if (only_dispositions && !is_disposition(event.type)) continue;
    ++budget[AlignKey::of(event)];
  }
  for (const TraceEvent& event : side) {
    if (only_dispositions && !is_disposition(event.type)) continue;
    std::size_t& remaining = budget[AlignKey::of(event)];
    if (remaining == 0) return &event;
    --remaining;
  }
  return nullptr;
}

/// Root-first causal chain of `leaf` within its own journal. An ancestor
/// evicted by the ring truncates the walk at the oldest retained link; a
/// self- or repeated-parent cycle (corrupt input) stops the walk too.
std::vector<TraceEvent> causal_chain(const TraceEvent& leaf,
                                     const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  by_id.reserve(events.size());
  for (const TraceEvent& event : events) by_id.emplace(event.id, &event);

  std::vector<TraceEvent> chain;
  chain.push_back(leaf);
  std::uint64_t parent = leaf.parent;
  while (parent != 0 && chain.size() <= events.size()) {
    auto it = by_id.find(parent);
    if (it == by_id.end()) break;  // evicted ancestor
    chain.push_back(*it->second);
    parent = it->second->parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void append_side(std::ostringstream& os, std::string_view role,
                 const BlameSide& side) {
  os << "# " << role << " " << side.events << " " << side.dropped << " "
     << side.label << "\n";
}

/// Parse "# <role> <events> <dropped> <label...>" after the role prefix.
bool parse_side(std::string_view rest, BlameSide& side) {
  std::size_t sp1 = rest.find(' ');
  if (sp1 == std::string_view::npos) return false;
  std::size_t sp2 = rest.find(' ', sp1 + 1);
  std::string_view events = rest.substr(0, sp1);
  std::string_view dropped = rest.substr(
      sp1 + 1, sp2 == std::string_view::npos ? sp2 : sp2 - sp1 - 1);
  if (!parse_int(events, side.events) || !parse_int(dropped, side.dropped)) {
    return false;
  }
  side.label =
      sp2 == std::string_view::npos ? std::string() : std::string(rest.substr(sp2 + 1));
  return true;
}

std::string json_event(const TraceEvent& event) {
  std::ostringstream os;
  os << "{\"when_usec\":" << event.when.as_usec() << ",\"id\":" << event.id
     << ",\"parent\":" << event.parent << ",\"action\":\""
     << event_type_name(event.type) << "\",\"form\":\""
     << form_name(event.form) << "\",\"kind\":\""
     << json_escape(kind_name(event.kind)) << "\",\"scope\":\""
     << json_escape(scope_name(event.scope)) << "\",\"job\":" << event.job
     << ",\"component\":\"" << json_escape(event.component)
     << "\",\"detail\":\"" << json_escape(event.detail) << "\"}";
  return os.str();
}

}  // namespace

std::string_view confidence_name(BlameConfidence confidence) {
  switch (confidence) {
    case BlameConfidence::kExact: return "exact";
    case BlameConfidence::kRingWrapped: return "ring-wrapped";
    case BlameConfidence::kNoDivergence: return "no-divergence";
  }
  return "?";
}

std::optional<BlameConfidence> parse_confidence(std::string_view name) {
  if (name == "exact") return BlameConfidence::kExact;
  if (name == "ring-wrapped") return BlameConfidence::kRingWrapped;
  if (name == "no-divergence") return BlameConfidence::kNoDivergence;
  return std::nullopt;
}

std::string_view divergence_name(DivergenceKind kind) {
  switch (kind) {
    case DivergenceKind::kNone: return "none";
    case DivergenceKind::kExtra: return "extra";
    case DivergenceKind::kMissing: return "missing";
  }
  return "?";
}

std::optional<DivergenceKind> parse_divergence(std::string_view name) {
  if (name == "none") return DivergenceKind::kNone;
  if (name == "extra") return DivergenceKind::kExtra;
  if (name == "missing") return DivergenceKind::kMissing;
  return std::nullopt;
}

std::string daemon_of(std::string_view component) {
  if (component.empty()) return "-";
  const std::size_t at = component.find('@');
  if (at == std::string_view::npos) return std::string(component);
  if (at == 0) return "-";
  return std::string(component.substr(0, at));
}

std::string pool_of(std::string_view machine) {
  const std::size_t dot = machine.find('.');
  if (dot == std::string_view::npos || dot == 0) return "-";
  return std::string(machine.substr(0, dot));
}

AlignKey AlignKey::of(const TraceEvent& event) {
  AlignKey key;
  key.daemon = daemon_of(event.component);
  key.machine = machine_of(event.component);
  key.scope = event.scope;
  key.kind = event.kind;
  key.job = event.job;
  key.action = event.type;
  return key;
}

std::string AlignKey::str() const {
  std::ostringstream os;
  if (daemon == machine) {
    os << daemon;  // unqualified component: one name is the whole identity
  } else {
    os << daemon << "@" << machine;
  }
  os << " " << event_type_name(action) << " " << kind_name(kind) << " ("
     << scope_name(scope) << ")";
  if (job != 0) os << " job " << job;
  return os.str();
}

BlameReport blame_journals(const Journal& baseline, const Journal& subject,
                           std::string baseline_label,
                           std::string subject_label) {
  BlameReport report;
  report.baseline = {std::move(baseline_label), baseline.events.size(),
                     total_dropped(baseline)};
  report.subject = {std::move(subject_label), subject.events.size(),
                    total_dropped(subject)};

  // Tier 1: dispositions only — where a discipline breach is visible.
  // Tier 2 (all dispositions align): every span, so a pure journey-level
  // difference (same outcomes, different path) is still surfaced.
  const TraceEvent* extra =
      first_unmatched(subject.events, baseline.events, true);
  const TraceEvent* missing =
      first_unmatched(baseline.events, subject.events, true);
  if (extra == nullptr && missing == nullptr) {
    extra = first_unmatched(subject.events, baseline.events, false);
    missing = first_unmatched(baseline.events, subject.events, false);
  }

  if (extra == nullptr && missing == nullptr) {
    report.confidence = BlameConfidence::kNoDivergence;
    return report;
  }
  // Earliest divergence wins; on a tie the subject's extra span is the
  // better lead (it names what the failing run actually *did*).
  const bool blame_extra =
      missing == nullptr ||
      (extra != nullptr && extra->when.as_usec() <= missing->when.as_usec());
  report.divergence =
      blame_extra ? DivergenceKind::kExtra : DivergenceKind::kMissing;
  report.blamed = blame_extra ? *extra : *missing;
  report.chain = causal_chain(
      report.blamed, blame_extra ? subject.events : baseline.events);
  report.confidence =
      (report.baseline.dropped != 0 || report.subject.dropped != 0)
          ? BlameConfidence::kRingWrapped
          : BlameConfidence::kExact;
  return report;
}

std::string BlameReport::str() const {
  std::ostringstream os;
  os << kBlameHeader << "\n";
  append_side(os, "baseline", baseline);
  append_side(os, "subject", subject);
  os << "# confidence " << confidence_name(confidence) << "\n";
  os << "# verdict " << divergence_name(divergence) << "\n";
  os << "# chain " << chain.size() << "\n";
  for (const TraceEvent& event : chain) {
    os << journal_event_line(event) << "\n";
  }
  return os.str();
}

std::string BlameReport::json() const {
  std::ostringstream os;
  os << "{\n";
  auto side = [&](std::string_view role, const BlameSide& s) {
    os << "  \"" << role << "\": {\"label\": \"" << json_escape(s.label)
       << "\", \"events\": " << s.events << ", \"dropped\": " << s.dropped
       << "},\n";
  };
  side("baseline", baseline);
  side("subject", subject);
  os << "  \"confidence\": \"" << confidence_name(confidence) << "\",\n";
  os << "  \"verdict\": \"" << divergence_name(divergence) << "\",\n";
  if (found()) {
    const AlignKey key = blamed_key();
    os << "  \"blamed\": {\"daemon\": \"" << json_escape(key.daemon)
       << "\", \"machine\": \"" << json_escape(key.machine)
       << "\", \"pool\": \"" << json_escape(pool_of(key.machine))
       << "\", \"scope\": \"" << json_escape(scope_name(key.scope))
       << "\", \"kind\": \"" << json_escape(kind_name(key.kind))
       << "\", \"job\": " << key.job << ", \"action\": \""
       << event_type_name(key.action) << "\"},\n";
  } else {
    os << "  \"blamed\": null,\n";
  }
  os << "  \"chain\": [";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ") << json_event(chain[i]);
  }
  os << (chain.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

std::string BlameReport::ansi(bool color) const {
  const std::string_view bold = color ? kBold : "";
  const std::string_view dim = color ? kDim : "";
  const std::string_view red = color ? kRed : "";
  const std::string_view reset = color ? kReset : "";

  std::ostringstream os;
  os << bold << "esg-blame" << reset << "  baseline=" << baseline.label
     << " (" << baseline.events << " spans";
  if (baseline.dropped != 0) os << ", " << baseline.dropped << " dropped";
  os << ")  subject=" << subject.label << " (" << subject.events << " spans";
  if (subject.dropped != 0) os << ", " << subject.dropped << " dropped";
  os << ")\n";

  if (!found()) {
    os << "  verdict: " << bold << "no divergence" << reset
       << " — the journals align span for span\n";
    return os.str();
  }

  const AlignKey key = blamed_key();
  os << "  verdict: " << red << bold << key.daemon << reset << " on " << bold
     << key.machine << reset;
  if (const std::string pool = pool_of(key.machine); pool != "-") {
    os << dim << " (pool " << pool << ")" << reset;
  }
  os << " — " << (divergence == DivergenceKind::kExtra
                      ? "did something the baseline never did"
                      : "never did something the baseline did")
     << "\n";
  os << "  blamed span: " << bold << event_type_name(key.action) << reset
     << " " << kind_name(key.kind) << " in scope " << bold
     << scope_name(key.scope) << reset;
  if (key.job != 0) os << " (job " << key.job << ")";
  os << "\n";
  os << "  confidence: "
     << (confidence == BlameConfidence::kExact ? "exact" : "")
     << (confidence == BlameConfidence::kRingWrapped
             ? "ring-wrapped — a ring dropped spans; the counterpart may be "
               "lost, not absent"
             : "")
     << "\n";
  os << "  causal chain (root first, from the "
     << (divergence == DivergenceKind::kExtra ? "subject" : "baseline")
     << " journal):\n";
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const TraceEvent& event = chain[i];
    const bool last = i + 1 == chain.size();
    os << "    " << dim << (i == 0 ? "●" : "└─▶") << reset << " ";
    if (last) os << red << bold;
    os << event_type_name(event.type) << " " << kind_name(event.kind) << " ("
       << scope_name(event.scope) << ") @ " << event.component;
    if (last) os << reset;
    os << dim << "  t=" << event.when.as_usec() << "us";
    if (!event.detail.empty()) os << "  " << event.detail;
    os << reset << "\n";
  }
  return os.str();
}

std::optional<BlameReport> parse_blame_report(std::string_view text) {
  BlameReport report;
  bool saw_header = false, saw_baseline = false, saw_subject = false;
  bool saw_confidence = false, saw_verdict = false, saw_chain = false;
  std::size_t chain_expected = 0;

  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line =
        text.substr(start, nl == std::string_view::npos ? nl : nl - start);
    start = nl == std::string_view::npos ? text.size() : nl + 1;
    if (line.empty()) continue;

    if (!saw_header) {
      if (line != kBlameHeader) return std::nullopt;
      saw_header = true;
      continue;
    }
    if (line.starts_with("# baseline ")) {
      if (saw_baseline ||
          !parse_side(line.substr(11), report.baseline)) {
        return std::nullopt;
      }
      saw_baseline = true;
      continue;
    }
    if (line.starts_with("# subject ")) {
      if (saw_subject || !parse_side(line.substr(10), report.subject)) {
        return std::nullopt;
      }
      saw_subject = true;
      continue;
    }
    if (line.starts_with("# confidence ")) {
      std::optional<BlameConfidence> c = parse_confidence(line.substr(13));
      if (saw_confidence || !c) return std::nullopt;
      report.confidence = *c;
      saw_confidence = true;
      continue;
    }
    if (line.starts_with("# verdict ")) {
      std::optional<DivergenceKind> d = parse_divergence(line.substr(10));
      if (saw_verdict || !d) return std::nullopt;
      report.divergence = *d;
      saw_verdict = true;
      continue;
    }
    if (line.starts_with("# chain ")) {
      if (saw_chain || !parse_int(line.substr(8), chain_expected)) {
        return std::nullopt;
      }
      saw_chain = true;
      continue;
    }
    if (line.starts_with('#')) return std::nullopt;  // strict: no unknowns

    std::optional<TraceEvent> event = parse_journal_event_line(line);
    if (!event || !saw_chain || report.chain.size() >= chain_expected) {
      return std::nullopt;
    }
    report.chain.push_back(std::move(*event));
  }

  if (!saw_header || !saw_baseline || !saw_subject || !saw_confidence ||
      !saw_verdict || !saw_chain || report.chain.size() != chain_expected) {
    return std::nullopt;
  }
  if (report.divergence == DivergenceKind::kNone) {
    if (!report.chain.empty() ||
        report.confidence != BlameConfidence::kNoDivergence) {
      return std::nullopt;
    }
  } else {
    if (report.chain.empty() ||
        report.confidence == BlameConfidence::kNoDivergence) {
      return std::nullopt;
    }
    report.blamed = report.chain.back();
  }
  return report;
}

}  // namespace esg::obs
