// Causal journal diffing: localize the daemon at fault from two journals.
//
// The chaos harness can already say *that* a cell went red; the journals
// say what every error did; but "which daemon broke the discipline, where,
// and why" was still a human's job. Following Okita et al. (AADEBUG 2003),
// who localize faulty processes by diffing message-passing traces, this
// module diffs two deterministic causal span journals — a baseline leg
// (scoped discipline, or a healthy seed) against a subject leg (naive
// discipline, or the failing seed) of the *same* fault plan — and names
// the first span where the subject's error handling departs from the
// baseline's, plus the causal chain that led there.
//
// Alignment is by canonical key, not raw span id: span ids shift whenever
// the ring wraps or an unrelated event interleaves, so two journals of the
// same run are compared as multisets of
//
//   (daemon, machine, scope, kind, job, action)
//
// keys with per-key occurrence counting (a ring-wrap-tolerant form of
// sequence matching: the i-th occurrence of a key on one side matches the
// i-th on the other, wherever the ids landed). The search is two-tier:
// *disposition* spans first (delivered/consumed/masked/dropped — the spans
// where somebody decided what an error means, which is where a discipline
// breach shows), then every span if all dispositions align — because the
// journey spans before a disposition legitimately differ between two legs
// (the disciplines schedule differently, so the same fault lands on
// different jobs at different times). The first span on either side whose
// key has no remaining counterpart is the *divergence*, and walking its
// causal `parent` chain back to the root yields the injection-to-
// divergence story the report prints root-first.
//
// Ring wrap degrades the verdict instead of silently misaligning it: if
// either side lost spans to its ring, a missing counterpart may be an
// artifact of truncation, so the report carries a BlameConfidence field
// and both sides' dropped-span counts in its header.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace esg::obs {

/// How much the aligner trusts its verdict.
enum class BlameConfidence {
  kExact,        ///< both journals complete: the divergence is real
  kRingWrapped,  ///< >=1 side lost spans to its ring: the baseline
                 ///< counterpart may have been dropped, not absent
  kNoDivergence, ///< the journals align span for span: nothing to blame
};

std::string_view confidence_name(BlameConfidence confidence);
std::optional<BlameConfidence> parse_confidence(std::string_view name);

/// The daemon identity of a span's component name: text before the first
/// '@' ("schedd@submit0" -> "schedd", "shadow@submit0/job3" -> "shadow"),
/// or the whole component when unqualified ("escalator"); empty maps to
/// "-" like machine_of.
std::string daemon_of(std::string_view component);

/// The pool provenance of a machine name in a federated journal: text
/// before the first '.' ("p1.exec0" -> "p1"), or "-" for a single-pool
/// machine ("exec0"). Blame keys keep the full machine name; this is the
/// report's per-pool attribution on top of it.
std::string pool_of(std::string_view machine);

/// Canonical alignment key: everything about a span that is deterministic
/// across two legs of the same plan, and nothing that is not. Raw span ids
/// are excluded (they shift under ring wrap and interleaving); free-text
/// details are excluded (they carry backoff timers and handler names that
/// legitimately differ between disciplines).
struct AlignKey {
  std::string daemon;
  std::string machine;  ///< machine_of(component); "p1.exec0" keeps pool
  ErrorScope scope = ErrorScope::kProcess;
  ErrorKind kind = ErrorKind::kUnknown;
  std::uint64_t job = 0;
  TraceEventType action = TraceEventType::kRaised;

  friend auto operator<=>(const AlignKey&, const AlignKey&) = default;

  [[nodiscard]] static AlignKey of(const TraceEvent& event);
  /// "schedd@submit0 delivered input-unavailable (remote-resource) job 7".
  [[nodiscard]] std::string str() const;
};

/// Which way the journals disagreed at the first divergence.
enum class DivergenceKind {
  kNone,     ///< aligned span for span
  kExtra,    ///< the subject recorded a span the baseline never did
  kMissing,  ///< the baseline recorded a span the subject never did
};

std::string_view divergence_name(DivergenceKind kind);
std::optional<DivergenceKind> parse_divergence(std::string_view name);

/// One side's identity in the report header.
struct BlameSide {
  std::string label;          ///< "scoped-replay", a journal path, ...
  std::size_t events = 0;     ///< spans retained in the journal
  std::uint64_t dropped = 0;  ///< spans lost to the ring before saving

  friend bool operator==(const BlameSide&, const BlameSide&) = default;
};

/// The localization verdict: who to blame, and the causal chain that
/// convicts them. Serializable three ways — str() is the committed-golden
/// "# esg-blame v1" text format (parse_blame_report reads it back), json()
/// the deterministic machine form, ansi() the colored terminal rendering
/// tools/esg-blame and esg-top --blame print.
struct BlameReport {
  BlameSide baseline;
  BlameSide subject;
  BlameConfidence confidence = BlameConfidence::kNoDivergence;
  DivergenceKind divergence = DivergenceKind::kNone;
  /// The first divergent span (subject side for kExtra, baseline side for
  /// kMissing). Meaningful only when divergence != kNone.
  TraceEvent blamed;
  /// Root-first causal chain through the divergent span's own journal,
  /// ending at the blamed span. An evicted ancestor truncates the walk at
  /// the oldest retained link.
  std::vector<TraceEvent> chain;

  [[nodiscard]] bool found() const {
    return divergence != DivergenceKind::kNone;
  }
  [[nodiscard]] AlignKey blamed_key() const { return AlignKey::of(blamed); }

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::string json() const;
  /// ANSI rendering: headline verdict plus the causal chain drawn as an
  /// arrowed timeline (esg-top's dashboard styling).
  [[nodiscard]] std::string ansi(bool color = true) const;
};

/// Align two journals and localize the first divergence. `baseline` is the
/// leg that behaved (scoped discipline / healthy seed); `subject` the leg
/// under suspicion. Deterministic: equal inputs yield byte-equal reports.
[[nodiscard]] BlameReport blame_journals(const Journal& baseline,
                                         const Journal& subject,
                                         std::string baseline_label,
                                         std::string subject_label);

/// Parse a str()-serialized report. Strict (the artifact crosses a trust
/// boundary): unknown header fields, a malformed chain line, or a missing
/// verdict yields nullopt.
std::optional<BlameReport> parse_blame_report(std::string_view text);

}  // namespace esg::obs
