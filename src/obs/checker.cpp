#include "obs/checker.hpp"

#include <map>
#include <sstream>

namespace esg::obs {
namespace {

std::string_view principle_name(Principle p) {
  switch (p) {
    case Principle::kP1: return "P1";
    case Principle::kP2: return "P2";
    case Principle::kP3: return "P3";
    case Principle::kP4: return "P4";
  }
  return "?";
}

/// Walk parent links within the given snapshot (the journal may have
/// evicted an ancestor; the walk simply stops there).
std::vector<TraceEvent> chain_of(
    const std::map<std::uint64_t, const TraceEvent*>& by_id,
    const TraceEvent& tip) {
  std::vector<TraceEvent> reversed;
  const TraceEvent* cur = &tip;
  while (cur != nullptr) {
    reversed.push_back(*cur);
    auto it = cur->parent != 0 ? by_id.find(cur->parent) : by_id.end();
    cur = it != by_id.end() ? it->second : nullptr;
  }
  return {reversed.rbegin(), reversed.rend()};
}

bool is_terminal(TraceEventType type) {
  switch (type) {
    case TraceEventType::kConsumed:
    case TraceEventType::kMasked:
    case TraceEventType::kDelivered:
    case TraceEventType::kDropped:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string Violation::str() const {
  std::ostringstream os;
  os << principle_name(principle) << " violated: " << message << "\n";
  for (const TraceEvent& event : chain) os << "    " << event.str() << "\n";
  return os.str();
}

std::string CheckReport::str() const {
  std::ostringstream os;
  os << "principle check: " << events_checked << " events, " << chains_checked
     << " chains, " << violations.size() << " violation(s), "
     << warnings.size() << " warning(s)\n";
  for (const Violation& v : violations) os << "  " << v.str();
  for (const std::string& w : warnings) os << "  warning: " << w << "\n";
  return os.str();
}

CheckReport PrincipleChecker::check(
    const std::vector<TraceEvent>& events) const {
  CheckReport report;
  report.events_checked = events.size();

  std::map<std::uint64_t, const TraceEvent*> by_id;
  std::map<std::uint64_t, std::size_t> child_count;
  for (const TraceEvent& event : events) by_id.emplace(event.id, &event);
  for (const TraceEvent& event : events) {
    if (event.parent != 0 && by_id.count(event.parent) != 0) {
      ++child_count[event.parent];
    }
  }

  for (const TraceEvent& event : events) {
    // P1: an implicit error directly downstream of an explicit one means
    // a component received the explicit error and destroyed it.
    if (event.form == ErrorForm::kImplicit && event.parent != 0) {
      auto it = by_id.find(event.parent);
      if (it != by_id.end() && it->second->form == ErrorForm::kExplicit) {
        Violation v;
        v.principle = Principle::kP1;
        std::ostringstream msg;
        msg << "explicit " << kind_name(it->second->kind) << " at "
            << it->second->component << " became implicit at "
            << event.component
            << (event.detail.empty() ? "" : " (" + event.detail + ")");
        v.message = msg.str();
        v.chain = chain_of(by_id, event);
        report.violations.push_back(std::move(v));
      }
    }

    // P2: an escaping error with no descendant was never caught and
    // converted back to an explicit error one level up.
    if (event.form == ErrorForm::kEscaping && child_count[event.id] == 0) {
      Violation v;
      v.principle = Principle::kP2;
      std::ostringstream msg;
      msg << "escaping " << kind_name(event.kind) << " from "
          << event.component << " was never converted back to explicit";
      v.message = msg.str();
      v.chain = chain_of(by_id, event);
      report.violations.push_back(std::move(v));
    }

    // P3: a dropped event is an error discarded with no consumer whose
    // scope manages it.
    if (event.type == TraceEventType::kDropped) {
      Violation v;
      v.principle = Principle::kP3;
      std::ostringstream msg;
      msg << kind_name(event.kind) << " (scope " << scope_name(event.scope)
          << ") dropped at " << event.component << " with no consumer";
      v.message = msg.str();
      v.chain = chain_of(by_id, event);
      report.violations.push_back(std::move(v));
    }

    // P4: delivering kUnknown to the user means the interface lost the
    // error's identity in transit — the opposite of a concise, finite
    // error vocabulary.
    if (event.type == TraceEventType::kDelivered &&
        event.kind == ErrorKind::kUnknown) {
      Violation v;
      v.principle = Principle::kP4;
      std::ostringstream msg;
      msg << event.component << " delivered an unclassified error (kUnknown)";
      v.message = msg.str();
      v.chain = chain_of(by_id, event);
      report.violations.push_back(std::move(v));
    }
  }

  // Chain accounting: tips are events nobody references as a parent.
  for (const TraceEvent& event : events) {
    if (child_count[event.id] != 0) continue;
    ++report.chains_checked;
    if (options_.strict_p3 && !is_terminal(event.type) &&
        event.form != ErrorForm::kEscaping) {
      // Escaping tips are already P2 violations; everything else that ends
      // mid-air is an error still in flight — in strict mode, a hole.
      std::ostringstream msg;
      msg << "chain ending at span #" << event.id << " ("
          << event_type_name(event.type) << " " << kind_name(event.kind)
          << " at " << event.component << ") has no terminal disposition";
      report.warnings.push_back(msg.str());
    }
  }

  return report;
}

CheckReport PrincipleChecker::check(const FlightRecorder& recorder) const {
  return check(recorder.events());
}

}  // namespace esg::obs
