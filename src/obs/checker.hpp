// PrincipleChecker: the paper's four principles as machine-checked
// invariants over the flight recorder's journal.
//
// DESIGN.md states the principles; core/audit.hpp counts how often the
// mechanisms claim to apply them. This checker closes the loop: it reads
// the *recorded causal history* and verifies that the journeys errors
// actually took obey the principles, reporting each violation together with
// the offending span chain so an operator can see exactly where the
// structure broke.
//
// Checked invariants (each deliberately narrow, so a pass means something
// and a violation is a real structural hole, not instrumentation noise):
//
//   P1  No implicit error may be causally downstream of an explicit one:
//       an implicit-form event whose parent is an explicit-form event means
//       some component received a perfectly good explicit error and
//       destroyed it (the Figure-4 exit-code collapse, result-file
//       laundering, and friends).
//   P2  An escaping error must be converted back to an explicit one a
//       level up: an escaping-form event with no causal descendant means
//       the exception/abort was never caught — the error evaporated.
//   P3  Every error must reach the manager of its scope: a `dropped` event
//       is an error discarded with no consumer. In strict mode, any chain
//       that ends without a terminal disposition (consumed, masked,
//       delivered, or dropped-and-flagged) is also reported.
//   P4  Interfaces must be concise and finite: delivering `kUnknown` to
//       the user means the interface lost the error's identity on the way.
#pragma once

#include <string>
#include <vector>

#include "core/audit.hpp"
#include "obs/trace.hpp"

namespace esg::obs {

/// One invariant breach, with the causal span chain that proves it.
struct Violation {
  Principle principle = Principle::kP1;
  std::string message;
  std::vector<TraceEvent> chain;  ///< root..offending event

  [[nodiscard]] std::string str() const;
};

struct CheckReport {
  std::vector<Violation> violations;
  std::vector<std::string> warnings;
  std::size_t events_checked = 0;
  std::size_t chains_checked = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  [[nodiscard]] std::string str() const;
};

class PrincipleChecker {
 public:
  struct Options {
    /// Also flag chains with no terminal disposition (P3). Off by default:
    /// a journal snapshot taken mid-flight legitimately has open chains.
    bool strict_p3 = false;
  };

  PrincipleChecker() = default;
  explicit PrincipleChecker(Options options) : options_(options) {}

  [[nodiscard]] CheckReport check(const std::vector<TraceEvent>& events) const;
  [[nodiscard]] CheckReport check(const FlightRecorder& recorder) const;

 private:
  Options options_;
};

}  // namespace esg::obs
