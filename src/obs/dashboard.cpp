#include "obs/dashboard.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace esg::obs {
namespace {

// Same minimal escaping as export.cpp's (kept local: anonymous namespaces
// do not share across translation units).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

constexpr std::string_view kBold = "\x1b[1m";
constexpr std::string_view kDim = "\x1b[2m";
constexpr std::string_view kRed = "\x1b[31m";
constexpr std::string_view kReset = "\x1b[0m";

struct Palette {
  std::string_view bold, dim, red, reset;
};

Palette palette(bool color) {
  if (color) return {kBold, kDim, kRed, kReset};
  return {"", "", "", ""};
}

void row(std::ostringstream& os, std::string_view label,
         const std::uint64_t (&counts)[kNumFlowDispositions]) {
  os << "  " << std::left << std::setw(18) << label << std::right;
  for (std::uint64_t count : counts) os << std::setw(12) << count;
  os << "\n";
}

void header_row(std::ostringstream& os, const Palette& p,
                std::string_view label) {
  os << p.bold << "  " << std::left << std::setw(18) << label << std::right;
  for (FlowDisposition disposition : kAllFlowDispositions) {
    os << std::setw(12) << disposition_name(disposition);
  }
  os << p.reset << "\n";
}

}  // namespace

std::string sparkline(const FlowSeries& series, std::size_t width) {
  if (width == 0 || series.slices.empty()) return {};
  static constexpr const char* kBlocks[] = {" ", "▁", "▂", "▃", "▄",
                                            "▅", "▆", "▇", "█"};
  const std::int64_t lo = series.slices.begin()->first;
  const std::int64_t hi = series.slices.rbegin()->first;
  const std::int64_t span = hi - lo + 1;
  std::vector<std::uint64_t> buckets(width, 0);
  for (const auto& [slice, count] : series.slices) {
    std::size_t b = static_cast<std::size_t>(
        (slice - lo) * static_cast<std::int64_t>(width) / span);
    if (b >= width) b = width - 1;
    buckets[b] += count;
  }
  const std::uint64_t peak = *std::max_element(buckets.begin(), buckets.end());
  std::string out;
  out.reserve(width * 3);
  for (std::uint64_t count : buckets) {
    // Ceiling scale: a nonzero bucket shows at least the lowest block and
    // the fullest bucket always shows the tallest one.
    const std::size_t level =
        count == 0
            ? 0
            : static_cast<std::size_t>((count * 8 + peak - 1) / peak);
    out += kBlocks[level > 8 ? 8 : level];
  }
  return out;
}

std::string render_dashboard(const FlowAggregate& aggregate,
                             const DashboardOptions& options) {
  const Palette p = palette(options.color);
  std::ostringstream os;

  os << p.bold << "esg-top";
  if (!options.title.empty()) os << " — " << options.title;
  os << p.reset << "\n";
  os << "  events " << aggregate.events_seen;
  if (aggregate.events_seen != 0) {
    os << "   span " << aggregate.first_event.str() << " .. "
       << aggregate.last_event.str();
  }
  os << "   slice " << aggregate.slice_usec / 1000000 << "s";
  if (aggregate.dropped_total() != 0) {
    os << "   " << p.red << "ring dropped " << aggregate.dropped_total()
       << " spans (journal view truncated)" << p.reset;
  }
  os << "\n\n";

  header_row(os, p, "scope");
  for (ErrorScope scope : aggregate.scopes()) {
    std::uint64_t counts[kNumFlowDispositions] = {};
    for (std::size_t i = 0; i < kNumFlowDispositions; ++i) {
      counts[i] = aggregate.count(scope, kAllFlowDispositions[i]);
    }
    row(os, scope_name(scope), counts);
    const auto it = aggregate.dropped_spans.find(scope);
    if (it != aggregate.dropped_spans.end() && it->second != 0) {
      os << "  " << p.dim << std::left << std::setw(18) << " " << std::right
         << "(+" << it->second << " spans dropped from ring)" << p.reset
         << "\n";
    }
  }

  os << "\n";
  header_row(os, p, "machine");
  for (const std::string& machine : aggregate.machines()) {
    std::uint64_t counts[kNumFlowDispositions] = {};
    for (std::size_t i = 0; i < kNumFlowDispositions; ++i) {
      counts[i] = aggregate.machine_count(machine, kAllFlowDispositions[i]);
    }
    row(os, machine, counts);
  }

  // Top error kinds by lifetime total, aggregated over machines. Ties
  // break on (kind, disposition) key order for determinism.
  struct KindRow {
    ErrorKind kind;
    FlowDisposition disposition;
    FlowSeries series;
  };
  std::vector<KindRow> kinds;
  for (const auto& [key, series] : aggregate.cells) {
    auto it = std::find_if(kinds.begin(), kinds.end(), [&](const KindRow& r) {
      return r.kind == key.kind && r.disposition == key.disposition;
    });
    if (it == kinds.end()) {
      it = kinds.insert(kinds.end(), {key.kind, key.disposition, {}});
    }
    it->series.total += series.total;
    for (const auto& [slice, count] : series.slices) {
      it->series.slices[slice] += count;
    }
  }
  std::stable_sort(kinds.begin(), kinds.end(),
                   [](const KindRow& a, const KindRow& b) {
                     return a.series.total > b.series.total;
                   });
  if (kinds.size() > options.top_kinds) kinds.resize(options.top_kinds);
  if (!kinds.empty()) {
    os << "\n" << p.bold << "  top error kinds" << p.reset << "\n";
    for (const KindRow& r : kinds) {
      os << "  " << std::left << std::setw(28) << kind_name(r.kind)
         << std::setw(12) << disposition_name(r.disposition) << std::right
         << std::setw(8) << r.series.total;
      if (options.sparklines) {
        os << "  " << p.dim << sparkline(r.series, options.spark_width)
           << p.reset;
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string dashboard_json(const FlowAggregate& aggregate,
                           std::string_view label) {
  std::ostringstream os;
  os << "{\"label\":\"" << json_escape(label) << "\",";
  os << "\"slice_usec\":" << aggregate.slice_usec << ",";
  os << "\"events_seen\":" << aggregate.events_seen << ",";
  os << "\"first_usec\":" << aggregate.first_event.as_usec() << ",";
  os << "\"last_usec\":" << aggregate.last_event.as_usec() << ",";
  os << "\"dropped_spans\":{";
  bool first = true;
  for (const auto& [scope, count] : aggregate.dropped_spans) {
    if (count == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << scope_name(scope) << "\":" << count;
  }
  os << "},\"cells\":[";
  first = true;
  for (const auto& [key, series] : aggregate.cells) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"scope\":\"" << scope_name(key.scope) << "\",\"machine\":\""
       << json_escape(key.machine) << "\",\"kind\":\"" << kind_name(key.kind)
       << "\",\"disposition\":\"" << disposition_name(key.disposition)
       << "\",\"total\":" << series.total << ",\"slices\":[";
    bool first_slice = true;
    for (const auto& [slice, count] : series.slices) {
      if (!first_slice) os << ",";
      first_slice = false;
      os << "[" << slice << "," << count << "]";
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

std::string flow_prometheus(const FlowAggregate& aggregate) {
  std::ostringstream os;
  os << "# HELP esg_error_flow_total Error-flow events by scope, machine, "
        "kind, and disposition.\n";
  os << "# TYPE esg_error_flow_total counter\n";
  for (const auto& [key, series] : aggregate.cells) {
    os << "esg_error_flow_total{scope=\"" << scope_name(key.scope)
       << "\",machine=\"" << key.machine << "\",kind=\"" << kind_name(key.kind)
       << "\",disposition=\"" << disposition_name(key.disposition) << "\"} "
       << series.total << "\n";
  }
  os << "# HELP esg_error_flow_dropped_spans_total Spans lost to ring wrap, "
        "by scope.\n";
  os << "# TYPE esg_error_flow_dropped_spans_total counter\n";
  for (const auto& [scope, count] : aggregate.dropped_spans) {
    if (count == 0) continue;
    os << "esg_error_flow_dropped_spans_total{scope=\"" << scope_name(scope)
       << "\"} " << count << "\n";
  }
  return os.str();
}

}  // namespace esg::obs
