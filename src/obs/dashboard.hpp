// Dashboard renderings of a FlowAggregate (obs/aggregate.hpp):
//   - a plain-ANSI per-scope / per-machine table (tools/esg-top's screen),
//   - a deterministic JSON timeline dump (attached to pool::PoolReport and
//     merged across pool::SweepRunner cells),
//   - Prometheus exposition lines (esg_error_flow_total{...}),
//   - registration into sim::MetricsRegistry so prometheus_str() carries
//     per-scope flow counters alongside the pool's own metrics.
//
// Every renderer walks the aggregate's ordered maps and emits integers
// only, so a dump is byte-identical for equal aggregates — the property
// the sweep determinism tests pin down.
#pragma once

#include <string>
#include <string_view>

#include "obs/aggregate.hpp"
#include "sim/metrics.hpp"

namespace esg::obs {

struct DashboardOptions {
  /// Title line, e.g. the pool name or journal path.
  std::string title;
  /// ANSI color for the table accents; off for logs/golden files.
  bool color = false;
  /// How many (kind, disposition) rows the "top error kinds" section shows.
  std::size_t top_kinds = 8;
  /// Append a per-kind sparkline of the merged FlowSeries slices to each
  /// "top error kinds" row (off for width-constrained or golden output is
  /// unnecessary — the glyphs are deterministic).
  bool sparklines = true;
  /// Sparkline width in glyph cells.
  std::size_t spark_width = 24;
};

/// Render a FlowSeries' time-sliced counts as a fixed-width sparkline:
/// the observed slice range is mapped onto `width` buckets, each drawn as
/// ' ' (empty) or one of the eight block glyphs scaled against the fullest
/// bucket. Integer math only — equal series render byte-identically.
std::string sparkline(const FlowSeries& series, std::size_t width = 24);

/// The esg-top screen: per-scope flow table, per-machine flow table, and
/// the top error kinds, as plain text (optionally ANSI-colored). No cursor
/// control — the caller owns screen clearing / refresh cadence.
std::string render_dashboard(const FlowAggregate& aggregate,
                             const DashboardOptions& options = {});

/// Deterministic JSON dump of the full aggregate:
///   {"label":...,"slice_usec":N,"events_seen":N,"first_usec":N,
///    "last_usec":N,"dropped_spans":{"<scope>":N,...},
///    "cells":[{"scope":...,"machine":...,"kind":...,"disposition":...,
///              "total":N,"slices":[[idx,count],...]},...]}
/// Integers only (no floats), ordered-map iteration only — equal
/// aggregates always serialize byte-identically.
std::string dashboard_json(const FlowAggregate& aggregate,
                           std::string_view label = {});

/// Prometheus text exposition of the aggregate's lifetime totals:
///   esg_error_flow_total{scope=...,machine=...,kind=...,disposition=...} N
/// plus esg_error_flow_dropped_spans_total{scope=...} for ring-wrap losses.
std::string flow_prometheus(const FlowAggregate& aggregate);

/// Mirror the aggregate's per-scope and per-disposition totals into a
/// MetricsRegistry as counters named
///   trace.flow.<disposition>                  (pool-wide totals)
///   trace.flow.<scope>.<disposition>          (per-scope totals)
///   trace.flow.dropped_spans                  (ring-wrap losses)
/// so MetricsRegistry::prometheus_str() serves them with the pool metrics.
/// Reset-then-add: calling again with a newer snapshot replaces the values.
///
/// Header-only on purpose: obs must not link against esg_sim (sim already
/// depends on obs); only this translation unit-free inline touches the
/// registry type.
inline void register_flow_metrics(const FlowAggregate& aggregate,
                                  sim::MetricsRegistry& metrics) {
  auto set = [&metrics](const std::string& name, std::uint64_t value) {
    sim::Counter& counter = metrics.counter(name);
    counter.reset();
    counter.add(static_cast<std::int64_t>(value));
  };
  for (FlowDisposition disposition : kAllFlowDispositions) {
    const std::string suffix(disposition_name(disposition));
    set("trace.flow." + suffix, aggregate.count(disposition));
  }
  for (ErrorScope scope : aggregate.scopes()) {
    const std::string base = "trace.flow." + std::string(scope_name(scope));
    for (FlowDisposition disposition : kAllFlowDispositions) {
      const std::uint64_t n = aggregate.count(scope, disposition);
      if (n != 0) {
        set(base + "." + std::string(disposition_name(disposition)), n);
      }
    }
  }
  set("trace.flow.dropped_spans", aggregate.dropped_total());
}

}  // namespace esg::obs
