#include "obs/export.hpp"

#include <charconv>
#include <map>
#include <sstream>

namespace esg::obs {
namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  // Chrome's trace_event format wants integer thread ids; give each
  // component its own "thread" and name it with a metadata event so the
  // viewer shows one track per daemon.
  std::map<std::string, int> tids;
  for (const TraceEvent& event : events) {
    const std::string& comp =
        event.component.empty() ? std::string("(unknown)") : event.component;
    tids.emplace(comp, static_cast<int>(tids.size()) + 1);
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) os << ",";
    first = false;
    os << "\n" << obj;
  };

  for (const auto& [comp, tid] : tids) {
    std::ostringstream m;
    m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
      << ",\"args\":{\"name\":\"" << json_escape(comp) << "\"}}";
    emit(m.str());
  }

  for (const TraceEvent& event : events) {
    const std::string comp =
        event.component.empty() ? std::string("(unknown)") : event.component;
    const int tid = tids.at(comp);
    const std::int64_t ts = event.when.as_usec();
    std::ostringstream e;
    e << "{\"name\":\"" << event_type_name(event.type) << " "
      << json_escape(kind_name(event.kind)) << "\",\"cat\":\""
      << form_name(event.form) << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
      << ",\"pid\":1,\"tid\":" << tid << ",\"args\":{\"span\":" << event.id
      << ",\"parent\":" << event.parent << ",\"scope\":\""
      << json_escape(scope_name(event.scope)) << "\",\"job\":" << event.job
      << ",\"detail\":\"" << json_escape(event.detail) << "\"}}";
    emit(e.str());

    // Causal parent link as a flow arrow. The flow step ("s") sits on the
    // parent's track at the parent's time; the finish ("f") on this event.
    if (event.parent != 0) {
      const TraceEvent* parent = nullptr;
      for (const TraceEvent& p : events) {
        if (p.id == event.parent) {
          parent = &p;
          break;
        }
      }
      if (parent != nullptr) {
        const std::string pcomp = parent->component.empty()
                                      ? std::string("(unknown)")
                                      : parent->component;
        std::ostringstream fs;
        fs << "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
           << event.id << ",\"ts\":" << parent->when.as_usec()
           << ",\"pid\":1,\"tid\":" << tids.at(pcomp) << "}";
        emit(fs.str());
        std::ostringstream ff;
        ff << "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
           << "\"id\":" << event.id << ",\"ts\":" << ts
           << ",\"pid\":1,\"tid\":" << tid << "}";
        emit(ff.str());
      }
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string to_chrome_trace(const FlightRecorder& recorder) {
  return to_chrome_trace(recorder.events());
}

std::string to_prometheus(const FlightRecorder& recorder,
                          std::string_view merge) {
  static constexpr TraceEventType kTypes[] = {
      TraceEventType::kRaised,    TraceEventType::kConverted,
      TraceEventType::kEscalated, TraceEventType::kRouted,
      TraceEventType::kConsumed,  TraceEventType::kMasked,
      TraceEventType::kDropped,   TraceEventType::kDelivered,
      TraceEventType::kImplicit,
  };
  std::ostringstream os;
  os << "# HELP esg_trace_events_total Error lifecycle events recorded, by "
        "type.\n";
  os << "# TYPE esg_trace_events_total counter\n";
  for (TraceEventType type : kTypes) {
    os << "esg_trace_events_total{type=\"" << event_type_name(type) << "\"} "
       << recorder.count(type) << "\n";
  }
  os << "# HELP esg_trace_retained_events Events currently held in the "
        "ring buffer.\n";
  os << "# TYPE esg_trace_retained_events gauge\n";
  os << "esg_trace_retained_events " << recorder.size() << "\n";
  os << "# HELP esg_trace_chronic_marks_total Chronic-failure detections "
        "marked by the schedd.\n";
  os << "# TYPE esg_trace_chronic_marks_total counter\n";
  os << "esg_trace_chronic_marks_total " << recorder.chronic_marks().size()
     << "\n";
  os << "# HELP esg_trace_dropped_spans_total Spans lost to ring wrap or "
        "capacity shrink, by scope.\n";
  os << "# TYPE esg_trace_dropped_spans_total counter\n";
  for (ErrorScope scope : kAllScopes) {
    os << "esg_trace_dropped_spans_total{scope=\"" << scope_name(scope)
       << "\"} " << recorder.dropped_spans(scope) << "\n";
  }
  if (!merge.empty()) {
    os << merge;
    if (merge.back() != '\n') os << "\n";
  }
  return os.str();
}

std::string render_dump(const std::vector<TraceEvent>& events,
                        std::string_view reason) {
  std::ostringstream os;
  os << "==== flight recorder dump";
  if (!reason.empty()) os << ": " << reason;
  os << " (" << events.size() << " events, newest last) ====\n";
  for (const TraceEvent& event : events) os << "  " << event.str() << "\n";
  os << "==== end of dump ====\n";
  return os.str();
}

namespace {

constexpr std::string_view kJournalHeader = "# esg-journal v1";

std::string journal_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::optional<std::string> journal_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 == s.size()) return std::nullopt;
    switch (s[++i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case '\\': out += '\\'; break;
      default: return std::nullopt;
    }
  }
  return out;
}

template <typename Int>
bool parse_int(std::string_view s, Int& out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

std::vector<std::string_view> split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = line.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(line.substr(start));
      return out;
    }
    out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string journal_event_line(const TraceEvent& event) {
  std::ostringstream os;
  os << event.when.as_usec() << "\t" << event.id << "\t" << event.parent
     << "\t" << event_type_name(event.type) << "\t" << form_name(event.form)
     << "\t" << kind_name(event.kind) << "\t" << scope_name(event.scope)
     << "\t" << event.job << "\t" << journal_escape(event.component) << "\t"
     << journal_escape(event.detail);
  return os.str();
}

std::optional<TraceEvent> parse_journal_event_line(std::string_view line) {
  std::vector<std::string_view> fields = split(line, '\t');
  if (fields.size() != 10) return std::nullopt;
  TraceEvent event;
  std::int64_t usec = 0;
  if (!parse_int(fields[0], usec) || !parse_int(fields[1], event.id) ||
      !parse_int(fields[2], event.parent) ||
      !parse_int(fields[7], event.job)) {
    return std::nullopt;
  }
  event.when = SimTime::usec(usec);
  std::optional<TraceEventType> type = parse_event_type(fields[3]);
  std::optional<ErrorForm> form = parse_form(fields[4]);
  std::optional<ErrorKind> kind = parse_kind(fields[5]);
  std::optional<ErrorScope> scope = parse_scope(fields[6]);
  std::optional<std::string> component = journal_unescape(fields[8]);
  std::optional<std::string> detail = journal_unescape(fields[9]);
  if (!type || !form || !kind || !scope || !component || !detail) {
    return std::nullopt;
  }
  event.type = *type;
  event.form = *form;
  event.kind = *kind;
  event.scope = *scope;
  event.component = std::move(*component);
  event.detail = std::move(*detail);
  return event;
}

std::string journal_str(const std::vector<TraceEvent>& events,
                        const std::map<ErrorScope, std::uint64_t>& dropped) {
  std::ostringstream os;
  os << kJournalHeader << "\n";
  for (const auto& [scope, count] : dropped) {
    if (count != 0) {
      os << "# dropped " << scope_name(scope) << " " << count << "\n";
    }
  }
  for (const TraceEvent& event : events) {
    os << journal_event_line(event) << "\n";
  }
  return os.str();
}

std::string journal_str(const FlightRecorder& recorder) {
  return journal_str(recorder.events(), recorder.dropped_by_scope());
}

std::optional<Journal> parse_journal(std::string_view text) {
  Journal journal;
  bool saw_header = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? nl : nl - start);
    start = nl == std::string_view::npos ? text.size() : nl + 1;
    if (line.empty()) continue;

    if (!saw_header) {
      if (line != kJournalHeader) return std::nullopt;
      saw_header = true;
      continue;
    }

    if (line.starts_with("# dropped ")) {
      std::vector<std::string_view> parts = split(line, ' ');
      // "# dropped <scope> <count>"
      if (parts.size() != 4) return std::nullopt;
      std::optional<ErrorScope> scope = parse_scope(parts[2]);
      std::uint64_t count = 0;
      if (!scope || !parse_int(parts[3], count)) return std::nullopt;
      journal.dropped[*scope] += count;
      continue;
    }
    if (line.starts_with('#')) continue;  // future header extensions

    std::optional<TraceEvent> event = parse_journal_event_line(line);
    if (!event) return std::nullopt;
    journal.events.push_back(std::move(*event));
  }
  if (!saw_header) return std::nullopt;
  return journal;
}

std::optional<Journal> parse_journal_prefix(std::string_view text,
                                            std::size_t* consumed) {
  const std::size_t last_nl = text.rfind('\n');
  const std::size_t end = last_nl == std::string_view::npos ? 0 : last_nl + 1;
  std::optional<Journal> journal = parse_journal(text.substr(0, end));
  if (journal.has_value() && consumed != nullptr) *consumed = end;
  return journal;
}

}  // namespace esg::obs
