#include "obs/export.hpp"

#include <map>
#include <sstream>

namespace esg::obs {
namespace {

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  // Chrome's trace_event format wants integer thread ids; give each
  // component its own "thread" and name it with a metadata event so the
  // viewer shows one track per daemon.
  std::map<std::string, int> tids;
  for (const TraceEvent& event : events) {
    const std::string& comp =
        event.component.empty() ? std::string("(unknown)") : event.component;
    tids.emplace(comp, static_cast<int>(tids.size()) + 1);
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& obj) {
    if (!first) os << ",";
    first = false;
    os << "\n" << obj;
  };

  for (const auto& [comp, tid] : tids) {
    std::ostringstream m;
    m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
      << ",\"args\":{\"name\":\"" << json_escape(comp) << "\"}}";
    emit(m.str());
  }

  for (const TraceEvent& event : events) {
    const std::string comp =
        event.component.empty() ? std::string("(unknown)") : event.component;
    const int tid = tids.at(comp);
    const std::int64_t ts = event.when.as_usec();
    std::ostringstream e;
    e << "{\"name\":\"" << event_type_name(event.type) << " "
      << json_escape(kind_name(event.kind)) << "\",\"cat\":\""
      << form_name(event.form) << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
      << ",\"pid\":1,\"tid\":" << tid << ",\"args\":{\"span\":" << event.id
      << ",\"parent\":" << event.parent << ",\"scope\":\""
      << json_escape(scope_name(event.scope)) << "\",\"job\":" << event.job
      << ",\"detail\":\"" << json_escape(event.detail) << "\"}}";
    emit(e.str());

    // Causal parent link as a flow arrow. The flow step ("s") sits on the
    // parent's track at the parent's time; the finish ("f") on this event.
    if (event.parent != 0) {
      const TraceEvent* parent = nullptr;
      for (const TraceEvent& p : events) {
        if (p.id == event.parent) {
          parent = &p;
          break;
        }
      }
      if (parent != nullptr) {
        const std::string pcomp = parent->component.empty()
                                      ? std::string("(unknown)")
                                      : parent->component;
        std::ostringstream fs;
        fs << "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":"
           << event.id << ",\"ts\":" << parent->when.as_usec()
           << ",\"pid\":1,\"tid\":" << tids.at(pcomp) << "}";
        emit(fs.str());
        std::ostringstream ff;
        ff << "{\"name\":\"cause\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
           << "\"id\":" << event.id << ",\"ts\":" << ts
           << ",\"pid\":1,\"tid\":" << tid << "}";
        emit(ff.str());
      }
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string to_chrome_trace(const FlightRecorder& recorder) {
  return to_chrome_trace(recorder.events());
}

std::string to_prometheus(const FlightRecorder& recorder,
                          std::string_view merge) {
  static constexpr TraceEventType kTypes[] = {
      TraceEventType::kRaised,    TraceEventType::kConverted,
      TraceEventType::kEscalated, TraceEventType::kRouted,
      TraceEventType::kConsumed,  TraceEventType::kMasked,
      TraceEventType::kDropped,   TraceEventType::kDelivered,
      TraceEventType::kImplicit,
  };
  std::ostringstream os;
  os << "# HELP esg_trace_events_total Error lifecycle events recorded, by "
        "type.\n";
  os << "# TYPE esg_trace_events_total counter\n";
  for (TraceEventType type : kTypes) {
    os << "esg_trace_events_total{type=\"" << event_type_name(type) << "\"} "
       << recorder.count(type) << "\n";
  }
  os << "# HELP esg_trace_retained_events Events currently held in the "
        "ring buffer.\n";
  os << "# TYPE esg_trace_retained_events gauge\n";
  os << "esg_trace_retained_events " << recorder.size() << "\n";
  os << "# HELP esg_trace_chronic_marks_total Chronic-failure detections "
        "marked by the schedd.\n";
  os << "# TYPE esg_trace_chronic_marks_total counter\n";
  os << "esg_trace_chronic_marks_total " << recorder.chronic_marks().size()
     << "\n";
  if (!merge.empty()) {
    os << merge;
    if (merge.back() != '\n') os << "\n";
  }
  return os.str();
}

std::string render_dump(const std::vector<TraceEvent>& events,
                        std::string_view reason) {
  std::ostringstream os;
  os << "==== flight recorder dump";
  if (!reason.empty()) os << ": " << reason;
  os << " (" << events.size() << " events, newest last) ====\n";
  for (const TraceEvent& event : events) os << "  " << event.str() << "\n";
  os << "==== end of dump ====\n";
  return os.str();
}

}  // namespace esg::obs
