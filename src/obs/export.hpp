// Exporters for the flight recorder's journal:
//   - Chrome trace_event JSON (load in chrome://tracing or Perfetto),
//   - Prometheus text exposition (merges with sim::MetricsRegistry output),
//   - a human-readable "last N events before failure" dump,
//   - the esg-journal v1 save/load format (tools/esg-top reads it post-hoc).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace esg::obs {

/// Render events as Chrome trace_event JSON ("JSON Object Format":
/// {"traceEvents": [...]}). Each span becomes an instant event on a
/// per-component track; parent links become flow events, so Perfetto draws
/// the causal arrows of the error's journey. Timestamps are simulated
/// microseconds.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Convenience: export the recorder's retained events.
std::string to_chrome_trace(const FlightRecorder& recorder);

/// Render the recorder's lifetime counters in Prometheus text exposition
/// format (esg_trace_events_total{type="raised"} ... etc.). If `merge` is
/// non-empty it is appended verbatim — pass
/// sim::MetricsRegistry::prometheus_str() to serve one combined page.
std::string to_prometheus(const FlightRecorder& recorder,
                          std::string_view merge = {});

/// Human-readable table of events, newest last, under a banner explaining
/// why the dump was taken ("chronic failure on machine c03", ...).
std::string render_dump(const std::vector<TraceEvent>& events,
                        std::string_view reason);

/// The esg-journal v1 text format: a save/load representation of a
/// recorder's retained events plus its ring-wrap accounting, so a post-hoc
/// dashboard (tools/esg-top --journal) can both rebuild the aggregate and
/// flag that the retained view is truncated.
///
///   # esg-journal v1
///   # dropped <scope-name> <count>            (one per nonzero scope)
///   <usec>\t<id>\t<parent>\t<type>\t<form>\t<kind>\t<scope>\t<job>\t
///       <component>\t<detail>                 (one event per line)
///
/// Free-text fields escape tab, newline, and backslash as \t, \n, \\.
std::string journal_str(const std::vector<TraceEvent>& events,
                        const std::map<ErrorScope, std::uint64_t>& dropped = {});

/// Convenience: the recorder's retained events and dropped-span accounting.
std::string journal_str(const FlightRecorder& recorder);

/// A parsed esg-journal file.
struct Journal {
  std::vector<TraceEvent> events;
  std::map<ErrorScope, std::uint64_t> dropped;
};

/// One esg-journal v1 event line (no trailing newline) — the tab-separated
/// serialization journal_str() emits for each span. Exposed so other
/// journal-derived artifacts (the esg-blame report's causal-chain section)
/// reuse the exact same grammar instead of inventing a second one.
std::string journal_event_line(const TraceEvent& event);

/// Parse one journal_event_line(). Strict, like parse_journal: any
/// malformed field or unknown enum name yields nullopt.
std::optional<TraceEvent> parse_journal_event_line(std::string_view line);

/// Parse an esg-journal v1 document. Journal files cross a trust boundary,
/// so this is strict: a missing/unknown header, a malformed line, or an
/// unknown enum name yields nullopt rather than a half-parsed journal.
std::optional<Journal> parse_journal(std::string_view text);

/// Tolerant variant for tailing a journal another process is still
/// appending to (tools/esg-top --follow): parses the longest prefix of
/// *complete* lines and ignores a torn trailing line (bytes after the
/// last '\n' — a write caught mid-flight), leaving it for the next read.
/// `consumed`, if given, receives the number of bytes actually parsed.
/// Malformed complete lines are still an error, exactly as in
/// parse_journal.
std::optional<Journal> parse_journal_prefix(std::string_view text,
                                            std::size_t* consumed = nullptr);

}  // namespace esg::obs
