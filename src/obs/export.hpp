// Exporters for the flight recorder's journal:
//   - Chrome trace_event JSON (load in chrome://tracing or Perfetto),
//   - Prometheus text exposition (merges with sim::MetricsRegistry output),
//   - a human-readable "last N events before failure" dump.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace esg::obs {

/// Render events as Chrome trace_event JSON ("JSON Object Format":
/// {"traceEvents": [...]}). Each span becomes an instant event on a
/// per-component track; parent links become flow events, so Perfetto draws
/// the causal arrows of the error's journey. Timestamps are simulated
/// microseconds.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Convenience: export the recorder's retained events.
std::string to_chrome_trace(const FlightRecorder& recorder);

/// Render the recorder's lifetime counters in Prometheus text exposition
/// format (esg_trace_events_total{type="raised"} ... etc.). If `merge` is
/// non-empty it is appended verbatim — pass
/// sim::MetricsRegistry::prometheus_str() to serve one combined page.
std::string to_prometheus(const FlightRecorder& recorder,
                          std::string_view merge = {});

/// Human-readable table of events, newest last, under a banner explaining
/// why the dump was taken ("chronic failure on machine c03", ...).
std::string render_dump(const std::vector<TraceEvent>& events,
                        std::string_view reason);

}  // namespace esg::obs
