#include "obs/trace.hpp"

#include <algorithm>
#include <sstream>

namespace esg::obs {

std::string_view form_name(ErrorForm form) {
  switch (form) {
    case ErrorForm::kExplicit: return "explicit";
    case ErrorForm::kEscaping: return "escaping";
    case ErrorForm::kImplicit: return "implicit";
  }
  return "?";
}

std::string_view event_type_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kRaised: return "raised";
    case TraceEventType::kConverted: return "converted";
    case TraceEventType::kEscalated: return "escalated";
    case TraceEventType::kRouted: return "routed";
    case TraceEventType::kConsumed: return "consumed";
    case TraceEventType::kMasked: return "masked";
    case TraceEventType::kDropped: return "dropped";
    case TraceEventType::kDelivered: return "delivered";
    case TraceEventType::kImplicit: return "implicit";
  }
  return "?";
}

std::optional<TraceEventType> parse_event_type(std::string_view name) {
  for (std::size_t i = 0; i < kNumTraceEventTypes; ++i) {
    const auto type = static_cast<TraceEventType>(i);
    if (event_type_name(type) == name) return type;
  }
  return std::nullopt;
}

std::optional<ErrorForm> parse_form(std::string_view name) {
  for (ErrorForm form : {ErrorForm::kExplicit, ErrorForm::kEscaping,
                         ErrorForm::kImplicit}) {
    if (form_name(form) == name) return form;
  }
  return std::nullopt;
}

std::string TraceEvent::str() const {
  std::ostringstream os;
  os << "[" << when.str() << "] #" << id;
  if (parent != 0) os << "<-#" << parent;
  os << " " << event_type_name(type) << "/" << form_name(form) << " "
     << kind_name(kind) << " scope=" << scope_name(scope);
  if (job != 0) os << " job=" << job;
  if (!component.empty()) os << " @" << component;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

FlightRecorder& FlightRecorder::global() {
  // The compat shim's one sanctioned definition site.
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::count_dropped(const TraceEvent& evicted) {
  ++dropped_[static_cast<std::size_t>(evicted.scope)];
  ++dropped_total_;
}

std::map<ErrorScope, std::uint64_t> FlightRecorder::dropped_by_scope() const {
  std::map<ErrorScope, std::uint64_t> out;
  for (ErrorScope scope : kAllScopes) {
    const std::uint64_t n = dropped_spans(scope);
    if (n != 0) out[scope] = n;
  }
  return out;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (ring_.size() > capacity) {
    // Keep the newest `capacity` events, oldest first, and reset the head.
    // The shed prefix is accounted as dropped, same as a ring wrap.
    std::vector<TraceEvent> all = events();
    for (std::size_t i = 0; i + capacity < all.size(); ++i) {
      count_dropped(all[i]);
    }
    std::vector<TraceEvent> kept = last(capacity);
    ring_ = std::move(kept);
    head_ = 0;
  } else if (head_ != 0) {
    // Un-rotate so future pushes stay simple.
    std::vector<TraceEvent> kept = events();
    ring_ = std::move(kept);
    head_ = 0;
  }
  capacity_ = capacity;
  // Grow the ring storage once, here, instead of doubling through the
  // first thousands of record() calls (bounded so a huge cap does not
  // commit memory the run may never use).
  ring_.reserve(std::min<std::size_t>(capacity_, 65536));
}

std::uint64_t FlightRecorder::record(TraceEvent event) {
  event.id = next_id_++;
  if (event.when == SimTime::zero() && clock_) event.when = clock_();
  // Causal linking: unless the caller supplied a parent, chain onto the
  // most recent event touching the same job (or component, for job-less
  // events). Raised events are fresh discoveries and root a new chain; so
  // do implicit observations — silence has no cause on record unless the
  // instrumentation point knows one and links it explicitly.
  const bool roots_chain = event.type == TraceEventType::kRaised ||
                           event.type == TraceEventType::kImplicit;
  if (event.parent == 0 && !roots_chain) {
    if (event.job != 0) {
      auto it = last_by_job_.find(event.job);
      if (it != last_by_job_.end()) event.parent = it->second;
    } else if (!event.component.empty()) {
      auto it = last_by_component_.find(event.component);
      if (it != last_by_component_.end()) event.parent = it->second;
    }
  }
  if (event.job != 0) {
    last_by_job_[event.job] = event.id;
  } else if (!event.component.empty()) {
    last_by_component_[event.component] = event.id;
  }

  ++total_;
  ++counts_[static_cast<std::size_t>(event.type)];
  const std::uint64_t id = event.id;
  if (tap_) tap_(event);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    count_dropped(ring_[head_]);
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  return id;
}

std::vector<TraceEvent> FlightRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> FlightRecorder::last(std::size_t n) const {
  std::vector<TraceEvent> all = events();
  if (all.size() <= n) return all;
  return {all.end() - static_cast<std::ptrdiff_t>(n), all.end()};
}

std::uint64_t FlightRecorder::count(TraceEventType type) const {
  return counts_[static_cast<std::size_t>(type)];
}

const TraceEvent* FlightRecorder::find(std::uint64_t id) const {
  for (const TraceEvent& event : ring_) {
    if (event.id == id) return &event;
  }
  return nullptr;
}

std::vector<TraceEvent> FlightRecorder::chain(std::uint64_t id) const {
  std::vector<TraceEvent> reversed;
  const TraceEvent* cur = find(id);
  while (cur != nullptr) {
    reversed.push_back(*cur);
    cur = cur->parent != 0 ? find(cur->parent) : nullptr;
  }
  return {reversed.rbegin(), reversed.rend()};
}

void FlightRecorder::chronic_failure(const std::string& reason) {
  if (!enabled_) return;
  SimTime when = clock_ ? clock_() : SimTime::zero();
  chronic_marks_.emplace_back(when, reason);
  if (on_chronic_) on_chronic_(reason);
}

void FlightRecorder::clear() {
  ring_.clear();
  head_ = 0;
  next_id_ = 1;
  total_ = 0;
  for (std::uint64_t& c : counts_) c = 0;
  for (std::uint64_t& d : dropped_) d = 0;
  dropped_total_ = 0;
  last_by_job_.clear();
  last_by_component_.clear();
  chronic_marks_.clear();
}

std::uint64_t TraceSink::emit(TraceEventType type, ErrorForm form,
                              ErrorKind kind, ErrorScope scope,
                              std::uint64_t job, std::string detail,
                              std::uint64_t parent, const Error* e) const {
  TraceEvent event;
  event.parent = parent;
  event.type = type;
  event.form = form;
  event.kind = kind;
  event.scope = scope;
  event.job = job;
  event.component = component_;
  event.detail = std::move(detail);
  if (e != nullptr) {
    if (e->when() != SimTime::zero()) event.when = e->when();
    if (event.detail.empty()) event.detail = e->message();
  }
  return recorder().record(std::move(event));
}

}  // namespace esg::obs
